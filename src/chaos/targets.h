#ifndef DLOG_CHAOS_TARGETS_H_
#define DLOG_CHAOS_TARGETS_H_

#include <string>

#include "net/network.h"

namespace dlog::chaos {

/// What a ChaosController can injure. harness::Cluster implements this
/// interface; the indirection keeps chaos below harness in the layering
/// (chaos depends only on sim/net/obs), while the Cluster stays the one
/// owner of server/client lifecycles.
///
/// Id conventions match the harness: servers are 1..num_servers() (the
/// paper's figures), clients are 0..num_clients()-1 (AddClient order),
/// networks are 0..num_networks()-1.
class FaultTargets {
 public:
  virtual ~FaultTargets() = default;

  virtual int num_servers() const = 0;
  virtual bool ServerUp(int server) const = 0;
  virtual void CrashServer(int server) = 0;
  virtual void RestartServer(int server) = 0;
  /// Disk media failure (Section 5.3 repair trigger); the node stays
  /// down until RestartServer.
  virtual void FailServerDisk(int server) = 0;
  /// NVRAM battery loss; the node stays down until RestartServer.
  virtual void LoseServerNvram(int server) = 0;

  virtual int num_clients() const = 0;
  virtual bool ClientUp(int client) const = 0;
  /// The client's trace/metric node name ("client-<client_id>"); flight-
  /// recorder crash dumps are keyed by it. The default assumes client_id
  /// equals the index; the harness overrides with the configured id.
  virtual std::string ClientNodeName(int client) const {
    return "client-" + std::to_string(client);
  }
  virtual void CrashClient(int client) = 0;
  /// Rebuilds the crashed client with its original identity; the caller
  /// (or the workload) runs Init() to re-enter the log.
  virtual void RestartClient(int client) = 0;

  virtual int num_networks() const = 0;
  virtual net::Network& network(int i) = 0;
};

}  // namespace dlog::chaos

#endif  // DLOG_CHAOS_TARGETS_H_
