#ifndef DLOG_CHAOS_FAULT_PLAN_H_
#define DLOG_CHAOS_FAULT_PLAN_H_

#include <string_view>
#include <vector>

#include "net/network.h"
#include "sim/time.h"

namespace dlog::chaos {

/// Every kind of failure the paper's environment admits: node crashes
/// and restarts (Section 3.2's per-server down probability p), network
/// partitions and degraded links (lost packets, Section 2's unreliable
/// datagrams), disk media failures (the Section 5.3 repair trigger), and
/// NVRAM battery loss (Section 4.1's battery-backed CMOS dying).
enum class FaultType {
  kServerCrash,
  kServerRestart,
  kClientCrash,
  kClientRestart,
  kPartition,
  kHealPartition,
  kLinkDegrade,
  kLinkRestore,
  kDiskFail,
  kNvramLoss,
};

/// Stable lower_snake name for `type` ("server_crash", ...): used in
/// span names ("chaos.server_crash"), metric keys, and logs.
std::string_view FaultTypeName(FaultType type);

/// One scheduled fault. `at` is relative to the simulated time the plan
/// is handed to ChaosController::Execute.
struct FaultEvent {
  sim::Duration at = 0;
  FaultType type = FaultType::kServerCrash;
  /// Server id (1..M) or client index (0..), per FaultTargets.
  int target = 0;
  /// Which network the partition/link event applies to.
  int network = 0;
  /// kPartition: the isolated node groups (nodes named in no group share
  /// one implicit extra group).
  std::vector<std::vector<net::NodeId>> groups;
  /// kLinkDegrade / kLinkRestore: the directed link and its degradation.
  net::NodeId src = 0;
  net::NodeId dst = 0;
  net::LinkFault link;
};

/// A deterministic schedule of typed fault events, built fluently:
///
///   chaos::FaultPlan plan;
///   plan.CrashServer(2 * sim::kSecond, 1)
///       .Partition(3 * sim::kSecond, 0, {{1, 2}, {3, 1000}})
///       .Heal(6 * sim::kSecond, 0)
///       .RestartServer(8 * sim::kSecond, 1);
///
/// The plan itself is passive data; ChaosController executes it on the
/// simulator clock. The same (seed, plan) pair always reproduces the
/// same run byte for byte.
class FaultPlan {
 public:
  FaultPlan& Add(FaultEvent event);

  FaultPlan& CrashServer(sim::Duration at, int server);
  FaultPlan& RestartServer(sim::Duration at, int server);
  FaultPlan& CrashClient(sim::Duration at, int client_index);
  FaultPlan& RestartClient(sim::Duration at, int client_index);
  FaultPlan& Partition(sim::Duration at, int network,
                       std::vector<std::vector<net::NodeId>> groups);
  FaultPlan& Heal(sim::Duration at, int network);
  FaultPlan& DegradeLink(sim::Duration at, int network, net::NodeId src,
                         net::NodeId dst, net::LinkFault fault);
  FaultPlan& RestoreLink(sim::Duration at, int network, net::NodeId src,
                         net::NodeId dst);
  FaultPlan& FailDisk(sim::Duration at, int server);
  FaultPlan& LoseNvram(sim::Duration at, int server);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace dlog::chaos

#endif  // DLOG_CHAOS_FAULT_PLAN_H_
