#ifndef DLOG_CHAOS_CONTROLLER_H_
#define DLOG_CHAOS_CONTROLLER_H_

#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/targets.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace dlog::chaos {

/// The continuous-time Markov (alternating-renewal) fault process of
/// Section 3.2: each server is independently up for an exponential time
/// with mean `mttf`, then down for an exponential time with mean `mttr`,
/// so its steady-state down probability is p = MTTR / (MTTF + MTTR) —
/// the `p` of the paper's availability formulas.
struct MarkovFaultConfig {
  sim::Duration mttf = 190 * sim::kSecond;  // mean time to failure
  sim::Duration mttr = 10 * sim::kSecond;   // mean time to repair
  uint64_t seed = 1;

  /// p = MTTR / (MTTF + MTTR).
  double SteadyStateDownProbability() const;

  Status Validate() const;
};

/// Executes FaultPlans and runs the Markov fault process against a
/// FaultTargets (in practice: a harness::Cluster), entirely on the
/// simulator clock. Every injected fault emits a closed root span
/// ("chaos.<type>" on node "chaos", annotated with its target) and bumps
/// a per-type counter, so exported traces show cause -> effect and
/// metric snapshots count what was injured.
///
/// Determinism: plan events fire at fixed simulated times; the Markov
/// process drives each server from its own Rng (derived from the config
/// seed and the server id), so the sampled fault schedule is a pure
/// function of (config, seed) regardless of event interleaving.
class ChaosController {
 public:
  ChaosController(sim::Scheduler* sim, FaultTargets* targets);

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Parallel-engine routing: returns the scheduler (shard) a fault
  /// event must execute on — the target server's or client's shard, so
  /// the fault mutates node state from that node's own thread, or the
  /// control shard for network-wide faults (whose mutations the Network
  /// defers to the barrier anyway). Unset, every fault runs on the
  /// controller's own scheduler (the serial engine).
  using SchedulerRouter = std::function<sim::Scheduler*(const FaultEvent&)>;
  void SetSchedulerRouter(SchedulerRouter router) {
    router_ = std::move(router);
  }

  /// Attaches the shared causal tracer (may be null: spans dropped).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  /// Attaches the flight recorder (may be null): every successfully
  /// applied crash-class fault (server/client crash, disk fail, NVRAM
  /// loss) dumps the victim's ring at the instant of the fault.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  /// Registers the per-fault-type counters under "chaos/...".
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  /// Schedules every event of `plan`, relative to the current simulated
  /// time. Multiple plans may be executed; their events interleave.
  void Execute(const FaultPlan& plan);

  /// Injects one fault immediately (the Execute path, without the
  /// schedule). Faults against targets already in the requested state
  /// (e.g. crashing a down server) are skipped and not counted.
  void Inject(const FaultEvent& event);

  /// Starts the Markov crash/repair process on every server. Replaces a
  /// running process.
  void StartMarkov(const MarkovFaultConfig& config);
  /// Stops sampling; servers stay in whatever state they are in.
  void StopMarkov();
  bool MarkovRunning() const { return markov_running_; }

  uint64_t faults_injected() const { return faults_injected_.value(); }
  sim::Counter& server_crashes() { return server_crashes_; }
  sim::Counter& server_restarts() { return server_restarts_; }
  sim::Counter& client_crashes() { return client_crashes_; }
  sim::Counter& client_restarts() { return client_restarts_; }
  sim::Counter& partitions() { return partitions_; }
  sim::Counter& partition_heals() { return partition_heals_; }
  sim::Counter& link_degrades() { return link_degrades_; }
  sim::Counter& disk_failures() { return disk_failures_; }
  sim::Counter& nvram_losses() { return nvram_losses_; }

 private:
  /// Applies the event against the targets. Returns false when it was a
  /// no-op (already in the requested state / no such target).
  bool Apply(const FaultEvent& event);
  void EmitSpan(const FaultEvent& event);
  /// Flight-recorder dump for crash-class faults (no-op otherwise).
  void MaybeDumpFlight(const FaultEvent& event);
  /// Schedules the next up->down or down->up transition of `server`.
  void ScheduleTransition(int server, bool crash_next);
  sim::Scheduler* SchedulerFor(const FaultEvent& event) {
    return router_ ? router_(event) : sim_;
  }

  sim::Scheduler* sim_;
  FaultTargets* targets_;
  SchedulerRouter router_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;

  MarkovFaultConfig markov_;
  bool markov_running_ = false;
  /// Bumped by StopMarkov/StartMarkov; in-flight transitions from an
  /// older process check it and abandon themselves.
  uint64_t markov_generation_ = 0;
  /// One independent stream per server (index server-1): the sampled
  /// schedule never depends on event interleaving.
  std::vector<Rng> markov_rngs_;

  sim::Counter faults_injected_;
  sim::Counter server_crashes_;
  sim::Counter server_restarts_;
  sim::Counter client_crashes_;
  sim::Counter client_restarts_;
  sim::Counter partitions_;
  sim::Counter partition_heals_;
  sim::Counter link_degrades_;
  sim::Counter disk_failures_;
  sim::Counter nvram_losses_;
};

}  // namespace dlog::chaos

#endif  // DLOG_CHAOS_CONTROLLER_H_
