#include "chaos/fault_plan.h"

#include <utility>

namespace dlog::chaos {

std::string_view FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kServerCrash:
      return "server_crash";
    case FaultType::kServerRestart:
      return "server_restart";
    case FaultType::kClientCrash:
      return "client_crash";
    case FaultType::kClientRestart:
      return "client_restart";
    case FaultType::kPartition:
      return "partition";
    case FaultType::kHealPartition:
      return "heal_partition";
    case FaultType::kLinkDegrade:
      return "link_degrade";
    case FaultType::kLinkRestore:
      return "link_restore";
    case FaultType::kDiskFail:
      return "disk_fail";
    case FaultType::kNvramLoss:
      return "nvram_loss";
  }
  return "unknown";
}

FaultPlan& FaultPlan::Add(FaultEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::CrashServer(sim::Duration at, int server) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kServerCrash;
  e.target = server;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::RestartServer(sim::Duration at, int server) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kServerRestart;
  e.target = server;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::CrashClient(sim::Duration at, int client_index) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kClientCrash;
  e.target = client_index;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::RestartClient(sim::Duration at, int client_index) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kClientRestart;
  e.target = client_index;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::Partition(
    sim::Duration at, int network,
    std::vector<std::vector<net::NodeId>> groups) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kPartition;
  e.network = network;
  e.groups = std::move(groups);
  return Add(std::move(e));
}

FaultPlan& FaultPlan::Heal(sim::Duration at, int network) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kHealPartition;
  e.network = network;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::DegradeLink(sim::Duration at, int network,
                                  net::NodeId src, net::NodeId dst,
                                  net::LinkFault fault) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kLinkDegrade;
  e.network = network;
  e.src = src;
  e.dst = dst;
  e.link = fault;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::RestoreLink(sim::Duration at, int network,
                                  net::NodeId src, net::NodeId dst) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kLinkRestore;
  e.network = network;
  e.src = src;
  e.dst = dst;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::FailDisk(sim::Duration at, int server) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kDiskFail;
  e.target = server;
  return Add(std::move(e));
}

FaultPlan& FaultPlan::LoseNvram(sim::Duration at, int server) {
  FaultEvent e;
  e.at = at;
  e.type = FaultType::kNvramLoss;
  e.target = server;
  return Add(std::move(e));
}

}  // namespace dlog::chaos
