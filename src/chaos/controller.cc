#include "chaos/controller.h"

#include <string>

#include "obs/flight.h"

namespace dlog::chaos {

double MarkovFaultConfig::SteadyStateDownProbability() const {
  return static_cast<double>(mttr) / static_cast<double>(mttf + mttr);
}

Status MarkovFaultConfig::Validate() const {
  if (mttf <= 0) return Status::InvalidArgument("mttf must be > 0");
  if (mttr <= 0) return Status::InvalidArgument("mttr must be > 0");
  return Status::OK();
}

ChaosController::ChaosController(sim::Scheduler* sim, FaultTargets* targets)
    : sim_(sim), targets_(targets) {}

void ChaosController::RegisterMetrics(obs::MetricsRegistry* registry) const {
  registry->RegisterCounter("chaos/faults_injected", &faults_injected_);
  registry->RegisterCounter("chaos/server_crashes", &server_crashes_);
  registry->RegisterCounter("chaos/server_restarts", &server_restarts_);
  registry->RegisterCounter("chaos/client_crashes", &client_crashes_);
  registry->RegisterCounter("chaos/client_restarts", &client_restarts_);
  registry->RegisterCounter("chaos/partitions", &partitions_);
  registry->RegisterCounter("chaos/partition_heals", &partition_heals_);
  registry->RegisterCounter("chaos/link_degrades", &link_degrades_);
  registry->RegisterCounter("chaos/disk_failures", &disk_failures_);
  registry->RegisterCounter("chaos/nvram_losses", &nvram_losses_);
}

void ChaosController::Execute(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    SchedulerFor(event)->After(event.at, [this, event]() { Inject(event); });
  }
}

void ChaosController::Inject(const FaultEvent& event) {
  if (!Apply(event)) return;
  faults_injected_.Increment();
  EmitSpan(event);
  MaybeDumpFlight(event);
}

void ChaosController::MaybeDumpFlight(const FaultEvent& event) {
  if (flight_ == nullptr) return;
  switch (event.type) {
    case FaultType::kServerCrash:
    case FaultType::kDiskFail:
    case FaultType::kNvramLoss:
      flight_->Dump("server-" + std::to_string(event.target), sim_->Now(),
                    "chaos." + std::string(FaultTypeName(event.type)));
      return;
    case FaultType::kClientCrash:
      flight_->Dump(targets_->ClientNodeName(event.target), sim_->Now(),
                    "chaos." + std::string(FaultTypeName(event.type)));
      return;
    default:
      return;
  }
}

bool ChaosController::Apply(const FaultEvent& event) {
  switch (event.type) {
    case FaultType::kServerCrash:
      if (event.target < 1 || event.target > targets_->num_servers() ||
          !targets_->ServerUp(event.target)) {
        return false;
      }
      targets_->CrashServer(event.target);
      server_crashes_.Increment();
      return true;
    case FaultType::kServerRestart:
      if (event.target < 1 || event.target > targets_->num_servers() ||
          targets_->ServerUp(event.target)) {
        return false;
      }
      targets_->RestartServer(event.target);
      server_restarts_.Increment();
      return true;
    case FaultType::kClientCrash:
      if (event.target < 0 || event.target >= targets_->num_clients() ||
          !targets_->ClientUp(event.target)) {
        return false;
      }
      targets_->CrashClient(event.target);
      client_crashes_.Increment();
      return true;
    case FaultType::kClientRestart:
      if (event.target < 0 || event.target >= targets_->num_clients() ||
          targets_->ClientUp(event.target)) {
        return false;
      }
      targets_->RestartClient(event.target);
      client_restarts_.Increment();
      return true;
    case FaultType::kPartition:
      if (event.network < 0 || event.network >= targets_->num_networks()) {
        return false;
      }
      targets_->network(event.network).SetPartition(event.groups);
      partitions_.Increment();
      return true;
    case FaultType::kHealPartition:
      if (event.network < 0 || event.network >= targets_->num_networks() ||
          !targets_->network(event.network).HasPartition()) {
        return false;
      }
      targets_->network(event.network).HealPartition();
      partition_heals_.Increment();
      return true;
    case FaultType::kLinkDegrade:
      if (event.network < 0 || event.network >= targets_->num_networks()) {
        return false;
      }
      targets_->network(event.network)
          .SetLinkFault(event.src, event.dst, event.link);
      link_degrades_.Increment();
      return true;
    case FaultType::kLinkRestore:
      if (event.network < 0 || event.network >= targets_->num_networks()) {
        return false;
      }
      targets_->network(event.network).ClearLinkFault(event.src, event.dst);
      return true;
    case FaultType::kDiskFail:
      if (event.target < 1 || event.target > targets_->num_servers() ||
          !targets_->ServerUp(event.target)) {
        return false;
      }
      targets_->FailServerDisk(event.target);
      disk_failures_.Increment();
      return true;
    case FaultType::kNvramLoss:
      if (event.target < 1 || event.target > targets_->num_servers() ||
          !targets_->ServerUp(event.target)) {
        return false;
      }
      targets_->LoseServerNvram(event.target);
      nvram_losses_.Increment();
      return true;
  }
  return false;
}

void ChaosController::EmitSpan(const FaultEvent& event) {
  if (tracer_ == nullptr) return;
  obs::SpanContext ctx = tracer_->StartTrace(
      "chaos." + std::string(FaultTypeName(event.type)), "chaos");
  switch (event.type) {
    case FaultType::kServerCrash:
    case FaultType::kServerRestart:
    case FaultType::kDiskFail:
    case FaultType::kNvramLoss:
      tracer_->AddArg(ctx, "server", static_cast<uint64_t>(event.target));
      break;
    case FaultType::kClientCrash:
    case FaultType::kClientRestart:
      tracer_->AddArg(ctx, "client", static_cast<uint64_t>(event.target));
      break;
    case FaultType::kPartition:
    case FaultType::kHealPartition:
      tracer_->AddArg(ctx, "network", static_cast<uint64_t>(event.network));
      break;
    case FaultType::kLinkDegrade:
    case FaultType::kLinkRestore:
      tracer_->AddArg(ctx, "network", static_cast<uint64_t>(event.network));
      tracer_->AddArg(ctx, "src", static_cast<uint64_t>(event.src));
      tracer_->AddArg(ctx, "dst", static_cast<uint64_t>(event.dst));
      break;
  }
  tracer_->EndSpan(ctx);
}

void ChaosController::StartMarkov(const MarkovFaultConfig& config) {
  DLOG_CHECK_OK(config.Validate());
  markov_ = config;
  markov_running_ = true;
  ++markov_generation_;
  markov_rngs_.clear();
  for (int s = 1; s <= targets_->num_servers(); ++s) {
    // Independent per-server stream: splitmix inside Rng spreads the
    // (seed, server) pair into unrelated sequences.
    markov_rngs_.emplace_back(config.seed + 0x100000001b3ull *
                                                static_cast<uint64_t>(s));
    ScheduleTransition(s, /*crash_next=*/true);
  }
}

void ChaosController::StopMarkov() {
  markov_running_ = false;
  ++markov_generation_;
}

void ChaosController::ScheduleTransition(int server, bool crash_next) {
  Rng& rng = markov_rngs_[static_cast<size_t>(server - 1)];
  const double mean_s = sim::DurationToSeconds(
      crash_next ? markov_.mttf : markov_.mttr);
  const sim::Duration wait =
      sim::SecondsToDuration(rng.NextExponential(mean_s));
  const uint64_t generation = markov_generation_;
  // Route the whole transition chain onto the target server's shard:
  // the Rng draw, the state check, and the crash/restart all stay
  // thread-local to that server under the parallel engine.
  FaultEvent route;
  route.type = crash_next ? FaultType::kServerCrash
                          : FaultType::kServerRestart;
  route.target = server;
  SchedulerFor(route)->After(wait, [this, server, crash_next, generation]() {
    if (generation != markov_generation_) return;
    FaultEvent e;
    e.type = crash_next ? FaultType::kServerCrash
                        : FaultType::kServerRestart;
    e.target = server;
    Inject(e);
    ScheduleTransition(server, !crash_next);
  });
}

}  // namespace dlog::chaos
