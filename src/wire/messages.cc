#include "wire/messages.h"

#include <cassert>

namespace dlog::wire {
namespace {

void PutHeader(Encoder* enc, MessageType type, uint64_t rpc_id) {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU64(rpc_id);
}

void PutRecord(Encoder* enc, const LogRecord& r) {
  enc->PutU64(r.lsn);
  enc->PutU64(r.epoch);
  enc->PutBool(r.present);
  enc->PutBlob(r.data);
}

Result<LogRecord> GetRecord(Decoder* dec) {
  LogRecord r;
  DLOG_ASSIGN_OR_RETURN(r.lsn, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(r.epoch, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(r.present, dec->GetBool());
  // View into the arriving buffer: record data stays zero-copy until a
  // consumer materializes it (e.g. persistence into a track).
  DLOG_ASSIGN_OR_RETURN(r.data, dec->GetBlobView());
  return r;
}

Result<std::vector<LogRecord>> GetRecords(Decoder* dec) {
  DLOG_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<LogRecord> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DLOG_ASSIGN_OR_RETURN(LogRecord r, GetRecord(dec));
    records.push_back(std::move(r));
  }
  return records;
}

void PutRecords(Encoder* enc, const std::vector<LogRecord>& records) {
  enc->PutU32(static_cast<uint32_t>(records.size()));
  for (const LogRecord& r : records) PutRecord(enc, r);
}

Result<RpcStatus> GetRpcStatus(Decoder* dec) {
  DLOG_ASSIGN_OR_RETURN(uint8_t v, dec->GetU8());
  if (v > static_cast<uint8_t>(RpcStatus::kOverloaded)) {
    return Status::Corruption("bad rpc status byte");
  }
  return static_cast<RpcStatus>(v);
}

}  // namespace

size_t EncodedRecordSize(const LogRecord& record) {
  // lsn(8) + epoch(8) + present(1) + blob length(4) + data
  return 8 + 8 + 1 + 4 + record.data.size();
}

size_t RecordBatchOverhead() {
  // type(1) + rpc_id(8) + client(4) + epoch(8) + trace(8) + span(8) +
  // count(4)
  return 1 + 8 + 4 + 8 + 8 + 8 + 4;
}

Bytes EncodeRecordBatch(MessageType type, const RecordBatch& m,
                        uint64_t rpc_id) {
  assert(type == MessageType::kWriteLog || type == MessageType::kForceLog);
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, type, rpc_id);
  enc.PutU32(m.client);
  enc.PutU64(m.epoch);
  enc.PutU64(m.trace);
  enc.PutU64(m.span);
  PutRecords(&enc, m.records);
  return out;
}

Bytes EncodeNewInterval(const NewIntervalMsg& m) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kNewInterval, 0);
  enc.PutU32(m.client);
  enc.PutU64(m.epoch);
  enc.PutU64(m.starting_lsn);
  return out;
}

Bytes EncodeNewHighLsn(const NewHighLsnMsg& m) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kNewHighLsn, 0);
  enc.PutU64(m.new_high_lsn);
  return out;
}

Bytes EncodeOverloaded(const OverloadedMsg& m) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kOverloaded, 0);
  enc.PutU32(m.client);
  enc.PutU8(m.shed_type);
  enc.PutU64(m.high_lsn);
  enc.PutU64(m.retry_after_us);
  return out;
}

Bytes EncodeMissingInterval(const MissingIntervalMsg& m) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kMissingInterval, 0);
  enc.PutU64(m.low);
  enc.PutU64(m.high);
  return out;
}

Bytes EncodeIntervalListReq(const IntervalListReq& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kIntervalListReq, rpc_id);
  enc.PutU32(m.client);
  return out;
}

Bytes EncodeIntervalListResp(const IntervalListResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kIntervalListResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  enc.PutU32(static_cast<uint32_t>(m.intervals.size()));
  for (const Interval& iv : m.intervals) {
    enc.PutU64(iv.epoch);
    enc.PutU64(iv.low);
    enc.PutU64(iv.high);
  }
  return out;
}

Bytes EncodeReadLogReq(MessageType type, const ReadLogReq& m,
                       uint64_t rpc_id) {
  assert(type == MessageType::kReadLogForwardReq ||
         type == MessageType::kReadLogBackwardReq);
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, type, rpc_id);
  enc.PutU32(m.client);
  enc.PutU64(m.lsn);
  return out;
}

Bytes EncodeReadLogResp(const ReadLogResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kReadLogResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  PutRecords(&enc, m.records);
  return out;
}

Bytes EncodeCopyLogReq(const CopyLogReq& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kCopyLogReq, rpc_id);
  enc.PutU32(m.client);
  enc.PutU64(m.epoch);
  PutRecords(&enc, m.records);
  return out;
}

Bytes EncodeCopyLogResp(const CopyLogResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kCopyLogResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  return out;
}

Bytes EncodeInstallCopiesReq(const InstallCopiesReq& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kInstallCopiesReq, rpc_id);
  enc.PutU32(m.client);
  enc.PutU64(m.epoch);
  return out;
}

Bytes EncodeInstallCopiesResp(const InstallCopiesResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kInstallCopiesResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  return out;
}

Bytes EncodeGenReadReq(const GenReadReq& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kGenReadReq, rpc_id);
  enc.PutU32(m.client);
  return out;
}

Bytes EncodeGenReadResp(const GenReadResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kGenReadResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  enc.PutU64(m.value);
  return out;
}

Bytes EncodeGenWriteReq(const GenWriteReq& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kGenWriteReq, rpc_id);
  enc.PutU32(m.client);
  enc.PutU64(m.value);
  return out;
}

Bytes EncodeGenWriteResp(const GenWriteResp& m, uint64_t rpc_id) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kGenWriteResp, rpc_id);
  enc.PutU8(static_cast<uint8_t>(m.status));
  return out;
}

Result<GenReadReq> DecodeGenReadReq(const SharedBytes& body) {
  Decoder dec(body);
  GenReadReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  return m;
}

Result<GenReadResp> DecodeGenReadResp(const SharedBytes& body) {
  Decoder dec(body);
  GenReadResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  DLOG_ASSIGN_OR_RETURN(m.value, dec.GetU64());
  return m;
}

Result<GenWriteReq> DecodeGenWriteReq(const SharedBytes& body) {
  Decoder dec(body);
  GenWriteReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.value, dec.GetU64());
  return m;
}

Result<GenWriteResp> DecodeGenWriteResp(const SharedBytes& body) {
  Decoder dec(body);
  GenWriteResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  return m;
}

Bytes EncodeTruncateLog(const TruncateLogMsg& m) {
  Bytes out;
  Encoder enc(&out);
  PutHeader(&enc, MessageType::kTruncateLog, 0);
  enc.PutU32(m.client);
  enc.PutU64(m.below);
  return out;
}

Result<TruncateLogMsg> DecodeTruncateLog(const SharedBytes& body) {
  Decoder dec(body);
  TruncateLogMsg m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.below, dec.GetU64());
  return m;
}

Result<Envelope> DecodeEnvelope(const SharedBytes& wire) {
  Decoder dec(wire);
  Envelope env;
  DLOG_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < static_cast<uint8_t>(MessageType::kWriteLog) ||
      type > static_cast<uint8_t>(MessageType::kOverloaded)) {
    return Status::Corruption("unknown message type");
  }
  env.type = static_cast<MessageType>(type);
  DLOG_ASSIGN_OR_RETURN(env.rpc_id, dec.GetU64());
  // Body is a slice of the arriving buffer — no copy.
  const size_t header = wire.size() - dec.remaining();
  env.body = wire.Slice(header, wire.size() - header);
  return env;
}

Result<Envelope> DecodeEnvelope(const Bytes& wire) {
  // Offline/test convenience: wrap the owned buffer first (one copy so
  // the envelope's body view cannot dangle past `wire`).
  return DecodeEnvelope(SharedBytes::Copy(wire.data(), wire.size()));
}

Result<RecordBatch> DecodeRecordBatch(const SharedBytes& body) {
  Decoder dec(body);
  RecordBatch m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.epoch, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.trace, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.span, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.records, GetRecords(&dec));
  return m;
}

Result<NewIntervalMsg> DecodeNewInterval(const SharedBytes& body) {
  Decoder dec(body);
  NewIntervalMsg m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.epoch, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.starting_lsn, dec.GetU64());
  return m;
}

Result<NewHighLsnMsg> DecodeNewHighLsn(const SharedBytes& body) {
  Decoder dec(body);
  NewHighLsnMsg m;
  DLOG_ASSIGN_OR_RETURN(m.new_high_lsn, dec.GetU64());
  return m;
}

Result<OverloadedMsg> DecodeOverloaded(const SharedBytes& body) {
  Decoder dec(body);
  OverloadedMsg m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.shed_type, dec.GetU8());
  DLOG_ASSIGN_OR_RETURN(m.high_lsn, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.retry_after_us, dec.GetU64());
  return m;
}

Result<MissingIntervalMsg> DecodeMissingInterval(const SharedBytes& body) {
  Decoder dec(body);
  MissingIntervalMsg m;
  DLOG_ASSIGN_OR_RETURN(m.low, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.high, dec.GetU64());
  return m;
}

Result<IntervalListReq> DecodeIntervalListReq(const SharedBytes& body) {
  Decoder dec(body);
  IntervalListReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  return m;
}

Result<IntervalListResp> DecodeIntervalListResp(const SharedBytes& body) {
  Decoder dec(body);
  IntervalListResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  DLOG_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  m.intervals.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Interval iv;
    DLOG_ASSIGN_OR_RETURN(iv.epoch, dec.GetU64());
    DLOG_ASSIGN_OR_RETURN(iv.low, dec.GetU64());
    DLOG_ASSIGN_OR_RETURN(iv.high, dec.GetU64());
    m.intervals.push_back(iv);
  }
  return m;
}

Result<ReadLogReq> DecodeReadLogReq(const SharedBytes& body) {
  Decoder dec(body);
  ReadLogReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.lsn, dec.GetU64());
  return m;
}

Result<ReadLogResp> DecodeReadLogResp(const SharedBytes& body) {
  Decoder dec(body);
  ReadLogResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  DLOG_ASSIGN_OR_RETURN(m.records, GetRecords(&dec));
  return m;
}

Result<CopyLogReq> DecodeCopyLogReq(const SharedBytes& body) {
  Decoder dec(body);
  CopyLogReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.epoch, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(m.records, GetRecords(&dec));
  return m;
}

Result<CopyLogResp> DecodeCopyLogResp(const SharedBytes& body) {
  Decoder dec(body);
  CopyLogResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  return m;
}

Result<InstallCopiesReq> DecodeInstallCopiesReq(const SharedBytes& body) {
  Decoder dec(body);
  InstallCopiesReq m;
  DLOG_ASSIGN_OR_RETURN(m.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(m.epoch, dec.GetU64());
  return m;
}

Result<InstallCopiesResp> DecodeInstallCopiesResp(const SharedBytes& body) {
  Decoder dec(body);
  InstallCopiesResp m;
  DLOG_ASSIGN_OR_RETURN(m.status, GetRpcStatus(&dec));
  return m;
}

}  // namespace dlog::wire
