#ifndef DLOG_WIRE_MESSAGES_H_
#define DLOG_WIRE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"

namespace dlog::wire {

/// Message types of the client/log-server interface (Figure 4-1).
///
/// Asynchronous client -> server : kWriteLog, kForceLog, kNewInterval
/// Asynchronous server -> client : kNewHighLsn, kMissingInterval
/// Synchronous RPCs              : the *Req/*Resp pairs
enum class MessageType : uint8_t {
  kWriteLog = 1,
  kForceLog = 2,
  kNewInterval = 3,
  kNewHighLsn = 4,
  kMissingInterval = 5,
  kIntervalListReq = 6,
  kIntervalListResp = 7,
  kReadLogForwardReq = 8,
  kReadLogBackwardReq = 9,
  kReadLogResp = 10,
  kCopyLogReq = 11,
  kCopyLogResp = 12,
  kInstallCopiesReq = 13,
  kInstallCopiesResp = 14,
  // Generator-state-representative access (Appendix I). The paper hosts
  // representatives "on log server nodes"; these two RPCs are the "few
  // other [operations] for reasons of efficiency" implementations add.
  kGenReadReq = 15,
  kGenReadResp = 16,
  kGenWriteReq = 17,
  kGenWriteResp = 18,
  /// Log space management (Section 5.3): "client recovery managers can
  /// use checkpoints and other mechanisms to limit the online log storage
  /// required for node recovery." Asynchronous; the server discards the
  /// client's records with LSNs below the given point.
  kTruncateLog = 19,
  /// Explicit load-shed reply (Section 4.2 lets servers "ignore ForceLog
  /// and WriteLog messages if they become too heavily loaded"; this makes
  /// the refusal visible). Asynchronous server -> client; carries an
  /// advisory retry-after hint and the server's current stored high LSN
  /// so the client's N-of-M accounting stays correct while backing off.
  kOverloaded = 20,
};

/// Every message starts with a fixed header: type, then an RPC id that is
/// zero for asynchronous messages and non-zero (echoed in the response)
/// for synchronous calls. The body is a zero-copy view into the buffer
/// the envelope was decoded from.
struct Envelope {
  MessageType type;
  uint64_t rpc_id = 0;
  SharedBytes body;
};

/// WriteLog / ForceLog (Figure 4-1): "Client processes and log servers
/// attempt to pack as many log records as will fit in a network packet in
/// each call." ForceLog additionally requests an immediate NewHighLsn
/// acknowledgment.
struct RecordBatch {
  ClientId client = 0;
  Epoch epoch = 0;
  /// Causal-trace metadata (src/obs): the wire.send span covering this
  /// batch's delivery. Zero when tracing is off. Carried in the message
  /// so the receiving server can close the sender's span and attribute
  /// buffering/track writes to the originating transaction.
  uint64_t trace = 0;
  uint64_t span = 0;
  std::vector<LogRecord> records;
};

/// NewInterval: tells the server to ignore a missing-LSN gap and start a
/// new interval at `starting_lsn` (used when the client switched servers).
struct NewIntervalMsg {
  ClientId client = 0;
  Epoch epoch = 0;
  Lsn starting_lsn = kNoLsn;
};

/// NewHighLsn: the server's acknowledgment carrying "the highest forced
/// log sequence number".
struct NewHighLsnMsg {
  Lsn new_high_lsn = kNoLsn;
};

/// Overloaded: the server's admission controller rejected a WriteLog /
/// ForceLog batch instead of queueing it.
struct OverloadedMsg {
  ClientId client = 0;
  /// The shed message's type (kWriteLog or kForceLog), as a raw byte.
  uint8_t shed_type = 0;
  /// The server's stored high LSN for this client at shed time: progress
  /// the server *did* make keeps counting toward the client's N copies.
  Lsn high_lsn = kNoLsn;
  /// Advisory backoff hint in microseconds (clients may wait longer).
  uint64_t retry_after_us = 0;
};

/// MissingInterval: prompt negative acknowledgment naming the LSN gap the
/// server noticed ([low, high] inclusive).
struct MissingIntervalMsg {
  Lsn low = kNoLsn;
  Lsn high = kNoLsn;
};

struct IntervalListReq {
  ClientId client = 0;
};

/// RPC responses carry a status byte so server-side errors (e.g., reading
/// an unstored LSN) travel back to the caller.
enum class RpcStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
  kOverloaded = 3,
};

struct IntervalListResp {
  RpcStatus status = RpcStatus::kOk;
  IntervalList intervals;
};

/// ReadLogForward / ReadLogBackward: "differ as to whether log records
/// with log sequence number greater or less than the input LSN are used
/// to fill the packet."
struct ReadLogReq {
  ClientId client = 0;
  Lsn lsn = kNoLsn;
};

struct ReadLogResp {
  RpcStatus status = RpcStatus::kOk;
  std::vector<LogRecord> records;
};

/// CopyLog: recovery-time rewrite of possibly partially-written records;
/// "log servers accept CopyLog calls for records with LSNs that are lower
/// than the highest log sequence number written to the log server."
struct CopyLogReq {
  ClientId client = 0;
  Epoch epoch = 0;
  std::vector<LogRecord> records;
};

struct CopyLogResp {
  RpcStatus status = RpcStatus::kOk;
};

/// InstallCopies: atomically installs all records copied with `epoch`.
struct InstallCopiesReq {
  ClientId client = 0;
  Epoch epoch = 0;
};

struct InstallCopiesResp {
  RpcStatus status = RpcStatus::kOk;
};

/// Reads the generator state representative hosted on this server for
/// the given client's identifier generator.
struct GenReadReq {
  ClientId client = 0;
};

struct GenReadResp {
  RpcStatus status = RpcStatus::kOk;
  uint64_t value = 0;
};

/// Writes the representative (atomic at this server).
struct GenWriteReq {
  ClientId client = 0;
  uint64_t value = 0;
};

/// Discard this client's records with LSN < below (Section 5.3).
struct TruncateLogMsg {
  ClientId client = 0;
  Lsn below = kNoLsn;
};

struct GenWriteResp {
  RpcStatus status = RpcStatus::kOk;
};

// --- Encoding ---
// Each Encode* returns a complete message (header + body) ready to hand
// to a wire::Connection. DecodeEnvelope splits the header off; the caller
// then dispatches on type to the matching Decode*.

Bytes EncodeRecordBatch(MessageType type, const RecordBatch& m,
                        uint64_t rpc_id = 0);
Bytes EncodeNewInterval(const NewIntervalMsg& m);
Bytes EncodeNewHighLsn(const NewHighLsnMsg& m);
Bytes EncodeOverloaded(const OverloadedMsg& m);
Bytes EncodeMissingInterval(const MissingIntervalMsg& m);
Bytes EncodeIntervalListReq(const IntervalListReq& m, uint64_t rpc_id);
Bytes EncodeIntervalListResp(const IntervalListResp& m, uint64_t rpc_id);
Bytes EncodeReadLogReq(MessageType type, const ReadLogReq& m,
                       uint64_t rpc_id);
Bytes EncodeReadLogResp(const ReadLogResp& m, uint64_t rpc_id);
Bytes EncodeCopyLogReq(const CopyLogReq& m, uint64_t rpc_id);
Bytes EncodeCopyLogResp(const CopyLogResp& m, uint64_t rpc_id);
Bytes EncodeInstallCopiesReq(const InstallCopiesReq& m, uint64_t rpc_id);
Bytes EncodeInstallCopiesResp(const InstallCopiesResp& m, uint64_t rpc_id);
Bytes EncodeGenReadReq(const GenReadReq& m, uint64_t rpc_id);
Bytes EncodeGenReadResp(const GenReadResp& m, uint64_t rpc_id);
Bytes EncodeGenWriteReq(const GenWriteReq& m, uint64_t rpc_id);
Bytes EncodeGenWriteResp(const GenWriteResp& m, uint64_t rpc_id);
Bytes EncodeTruncateLog(const TruncateLogMsg& m);

/// Splits the header off `wire`; the returned Envelope's body is a view
/// sharing `wire`'s buffer (no copy). The Bytes overload wraps its input
/// in a fresh SharedBytes first (one counted copy) — convenient for
/// tests and offline tooling.
Result<Envelope> DecodeEnvelope(const SharedBytes& wire);
Result<Envelope> DecodeEnvelope(const Bytes& wire);

/// Decode* bodies are SharedBytes so record payloads come out as views
/// into the arriving buffer; a Bytes argument converts implicitly (with
/// a copy) for callers that hold an owned buffer.
Result<RecordBatch> DecodeRecordBatch(const SharedBytes& body);
Result<NewIntervalMsg> DecodeNewInterval(const SharedBytes& body);
Result<NewHighLsnMsg> DecodeNewHighLsn(const SharedBytes& body);
Result<OverloadedMsg> DecodeOverloaded(const SharedBytes& body);
Result<MissingIntervalMsg> DecodeMissingInterval(const SharedBytes& body);
Result<IntervalListReq> DecodeIntervalListReq(const SharedBytes& body);
Result<IntervalListResp> DecodeIntervalListResp(const SharedBytes& body);
Result<ReadLogReq> DecodeReadLogReq(const SharedBytes& body);
Result<ReadLogResp> DecodeReadLogResp(const SharedBytes& body);
Result<CopyLogReq> DecodeCopyLogReq(const SharedBytes& body);
Result<CopyLogResp> DecodeCopyLogResp(const SharedBytes& body);
Result<InstallCopiesReq> DecodeInstallCopiesReq(const SharedBytes& body);
Result<InstallCopiesResp> DecodeInstallCopiesResp(const SharedBytes& body);
Result<GenReadReq> DecodeGenReadReq(const SharedBytes& body);
Result<GenReadResp> DecodeGenReadResp(const SharedBytes& body);
Result<GenWriteReq> DecodeGenWriteReq(const SharedBytes& body);
Result<GenWriteResp> DecodeGenWriteResp(const SharedBytes& body);
Result<TruncateLogMsg> DecodeTruncateLog(const SharedBytes& body);

/// Bytes a LogRecord occupies inside a RecordBatch encoding; used by the
/// client to pack "as many log records as will fit in a network packet".
size_t EncodedRecordSize(const LogRecord& record);

/// Fixed per-RecordBatch overhead (envelope header + batch fields).
size_t RecordBatchOverhead();

}  // namespace dlog::wire

#endif  // DLOG_WIRE_MESSAGES_H_
