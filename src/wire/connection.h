#ifndef DLOG_WIRE_CONNECTION_H_
#define DLOG_WIRE_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "flow/window.h"
#include "net/network.h"
#include "sim/cpu.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::wire {

/// Parameters of the specialized low-level protocol (Section 4.2). The
/// protocol is connection-oriented a la Watson's tutorial: a three-way
/// handshake establishes a small amount of state on both sides, packets
/// carry permanently unique sequence numbers (so duplicates are detected
/// even across a crash of the receiving node), and every packet carries an
/// allocation implementing moving-window flow control.
struct WireConfig {
  /// Section 4.1: "network and RPC implementation processing can be
  /// performed in one thousand instructions per packet".
  uint64_t instructions_per_packet = 1000;
  /// Moving-window size, in packets: how much unconsumed allocation each
  /// party tries to keep granted to the other.
  uint64_t window_packets = 16;
  /// Grant refresh threshold: a standalone window-update packet is sent
  /// when the peer's unsent grant lags by at least this many packets.
  uint64_t window_update_threshold = 8;
  /// Handshake retransmission interval and retry budget.
  sim::Duration handshake_retry = 200 * sim::kMillisecond;
  int handshake_max_retries = 10;
  /// "Deadlocks are prevented by allowing either party to exceed its
  /// allocation, so long as it pauses several seconds between packets."
  sim::Duration allocation_override_delay = 3 * sim::kSecond;
  /// The incarnation counter models a tiny stable-storage cell that
  /// survives crashes: a node rebuilt after a crash must resume from a
  /// strictly higher incarnation than any previous life, or its
  /// connection ids would collide with connections its peers still hold
  /// from before the crash. Whoever reconstructs the node (the harness
  /// Cluster, for restarted clients) plays the role of that stable cell
  /// by carrying `incarnation() + 1` forward into the new endpoint.
  uint64_t initial_incarnation = 1;
  /// Optional AIMD window over outstanding bytes (src/flow): bounds how
  /// fast a sender injects when the peer sheds load or stops advancing
  /// its allocation. Off by default — the receiver-granted packet window
  /// alone reproduces the paper's transport.
  flow::AimdConfig adaptive_window;
};

class Endpoint;

/// One direction-agnostic protocol connection between two endpoints.
/// Delivery is unordered and unreliable by design: the transport detects
/// duplicates and flow-controls, while loss recovery is end-to-end in the
/// logging protocol itself (Section 4.2, citing Saltzer et al.).
///
/// Arriving payloads are handed up as SharedBytes views into the packet
/// buffer — no bytes are copied between the NIC and the message handler.
class Connection {
 public:
  using MessageHandler = std::function<void(const SharedBytes&)>;
  using CloseHandler = std::function<void()>;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Installs the upcall for arriving (deduplicated) payloads.
  void SetMessageHandler(MessageHandler h) { message_handler_ = std::move(h); }
  /// Installs the upcall for connection failure (reset by peer, handshake
  /// exhaustion, local crash).
  void SetCloseHandler(CloseHandler h) { close_handler_ = std::move(h); }

  /// Queues a payload for transmission. Transmission respects the peer's
  /// allocation; when out of allocation the packet waits, and after
  /// `allocation_override_delay` one packet is sent anyway (the deadlock-
  /// prevention rule). Sending on a closed connection is a silent no-op
  /// (the close handler has already fired). `trace`/`span` are optional
  /// obs span ids stamped on the outgoing packet so the network's packet
  /// probe can attribute its queueing and transmission time (0 = untraced).
  void Send(Bytes payload, uint64_t trace = 0, uint64_t span = 0);

  bool IsEstablished() const { return state_ == State::kEstablished; }
  bool IsClosed() const { return state_ == State::kClosed; }
  net::NodeId peer() const { return peer_; }
  uint64_t id() const { return conn_id_; }

  /// Packets queued locally waiting for allocation.
  size_t send_queue_depth() const { return send_queue_.size(); }

  /// Congestion feedback from the layer above (e.g. the log client on an
  /// Overloaded reply): shrinks the adaptive window multiplicatively.
  /// No-op when the adaptive window is disabled.
  void NoteOverload();
  /// Current adaptive-window size in bytes (its configured initial value
  /// when disabled) and the bytes currently in flight against it.
  size_t window_bytes() const { return window_.current(); }
  size_t outstanding_bytes() const { return bytes_in_flight_; }

 private:
  friend class Endpoint;

  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  Connection(Endpoint* endpoint, net::NodeId peer, uint64_t conn_id,
             bool initiator);

  void StartHandshake();
  void HandshakeTimeout();
  void OnFrame(uint8_t frame_type, uint64_t seq, uint64_t alloc,
               const SharedBytes& payload);
  void TryFlush();
  /// Folds a peer allocation into `peer_allocation_` and, when it
  /// advances, credits the adaptive window with the bytes the advance
  /// acknowledges.
  void NoteAllocation(uint64_t alloc);
  /// Remembers an injected payload's size against the adaptive window
  /// (no-op when disabled).
  void RecordInflight(uint64_t seq, size_t bytes);
  void GrantWindowIfNeeded(bool force);
  /// The allocation we are currently willing to grant the peer.
  uint64_t CurrentGrant() const;
  void Close();
  void ArmOverrideTimer();

  Endpoint* endpoint_;
  net::NodeId peer_;
  uint64_t conn_id_;
  bool initiator_;
  State state_;

  // Send side. Queued payloads keep their span identity so attribution
  // still works for packets that waited on allocation.
  struct Outgoing {
    Bytes payload;
    uint64_t trace = 0;
    uint64_t span = 0;
  };
  uint64_t next_send_seq_ = 1;
  uint64_t peer_allocation_ = 0;  // highest seq we may send
  std::deque<Outgoing> send_queue_;
  sim::EventId override_timer_ = 0;

  // Adaptive (AIMD) window over outstanding bytes. The peer's allocation
  // doubles as the acknowledgment signal: its grant is always
  // `highest seq seen + window_packets`, so an allocation advance to A
  // means every seq <= A - window_packets has been seen. `inflight_` maps
  // injected seq -> payload bytes until acknowledged that way; it stays
  // empty when the adaptive window is disabled.
  flow::AimdWindow window_;
  size_t bytes_in_flight_ = 0;
  std::map<uint64_t, size_t> inflight_;

  // Receive side: duplicate detection. Because the transport never
  // retransmits (loss recovery is end-to-end, Section 4.2), a lost DATA
  // sequence number leaves a permanent gap; the allocation therefore
  // follows the highest sequence seen, not the contiguous prefix.
  uint64_t recv_cumulative_ = 0;        // all seqs <= this count as seen
  uint64_t recv_highest_seen_ = 0;
  std::set<uint64_t> recv_out_of_order_;
  uint64_t last_advertised_grant_ = 0;

  // Handshake.
  int handshake_attempts_ = 0;
  sim::EventId handshake_timer_ = 0;

  MessageHandler message_handler_;
  CloseHandler close_handler_;

  sim::Counter duplicates_dropped_;
};

/// The per-node protocol endpoint: owns this node's connections,
/// demultiplexes arriving packets, charges the node CPU the per-packet
/// instruction budget, and spreads traffic across the node's (possibly
/// two) attached networks.
class Endpoint {
 public:
  using AcceptHandler = std::function<void(Connection*)>;

  Endpoint(sim::Scheduler* sim, sim::Cpu* cpu, net::NodeId id,
           const WireConfig& config);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Attaches a network/NIC pair. Call twice for the paper's dual-network
  /// configuration; outgoing packets round-robin across attached networks.
  void AttachNetwork(net::Network* network, net::Nic* nic);

  /// Initiates a connection to `peer` (three-way handshake). The returned
  /// pointer remains valid until Crash() or endpoint destruction.
  Connection* Connect(net::NodeId peer);

  /// Installs the upcall for inbound connections (server side).
  void SetAcceptHandler(AcceptHandler h) { accept_handler_ = std::move(h); }

  /// Connectionless datagrams — used for multicast record streams
  /// (Section 4.1's multicast option) and their acknowledgments. No
  /// sequence numbers or flow control: the logging protocol's own
  /// LSN-contiguity detection and per-record idempotence provide the
  /// end-to-end reliability.
  using DatagramHandler =
      std::function<void(net::NodeId, const SharedBytes&)>;
  void SetDatagramHandler(DatagramHandler h) {
    datagram_handler_ = std::move(h);
  }
  /// `dst` may be a unicast node id or a multicast group id. The payload
  /// is framed in place (taken by value) and, for multicast, one buffer
  /// is shared by every receiver. `trace`/`span` stamp the packet for the
  /// profiler (0 = untraced).
  void SendDatagram(net::NodeId dst, Bytes payload, uint64_t trace = 0,
                    uint64_t span = 0);

  /// Simulates a node crash: all connection state vanishes (it lives in
  /// volatile memory) and the incarnation number advances so that pre-
  /// crash packets can never be confused with new-connection traffic.
  void Crash();

  net::NodeId id() const { return id_; }
  /// Current incarnation (advanced by Crash()). A reconstructor that
  /// wants packets from this life rejected must seed the replacement
  /// endpoint's `WireConfig::initial_incarnation` past this value.
  uint64_t incarnation() const { return incarnation_; }
  const WireConfig& config() const { return config_; }
  sim::Scheduler* simulator() { return sim_; }

  sim::Counter& packets_sent() { return packets_sent_; }
  sim::Counter& packets_received() { return packets_received_; }

 private:
  friend class Connection;

  // Frame types of the low-level protocol.
  static constexpr uint8_t kSyn = 1;
  static constexpr uint8_t kSynAck = 2;
  static constexpr uint8_t kAck = 3;
  static constexpr uint8_t kData = 4;
  static constexpr uint8_t kWindow = 5;
  static constexpr uint8_t kReset = 6;
  static constexpr uint8_t kDatagram = 7;

  /// The transport frame is a fixed-size trailer appended to the payload
  /// (type, conn id, seq, alloc, payload length), so framing a message
  /// appends a few bytes in place instead of copying the payload into a
  /// fresh header-prefixed buffer. Same wire size as a header would be.
  static constexpr size_t kFrameTrailerBytes = 1 + 8 + 8 + 8 + 4;

  /// Sends a protocol frame, charging the CPU budget first. Takes the
  /// payload by value: the trailer is appended in place and the buffer
  /// becomes the packet's refcounted payload without a copy. `trace` and
  /// `span` ride along onto the Packet for the profiler.
  void SendFrame(net::NodeId dst, uint8_t frame_type, uint64_t conn_id,
                 uint64_t seq, uint64_t alloc, Bytes payload,
                 uint64_t trace = 0, uint64_t span = 0);

  void OnNicDeliver(const net::Packet& packet, net::Nic* nic);
  void ProcessPacket(const net::Packet& packet);
  uint64_t NewConnectionId();

  sim::Scheduler* sim_;
  sim::Cpu* cpu_;
  net::NodeId id_;
  WireConfig config_;
  uint64_t incarnation_;  // survives crash (kept in stable storage)
  uint64_t conn_counter_ = 0;
  size_t next_network_ = 0;
  std::vector<std::pair<net::Network*, net::Nic*>> networks_;
  /// Hash map, keyed by connection id: looked up once per received
  /// packet, and only ever iterated by Crash() (whose per-connection
  /// work is order-independent).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  AcceptHandler accept_handler_;
  DatagramHandler datagram_handler_;
  sim::Counter packets_sent_;
  sim::Counter packets_received_;
};

}  // namespace dlog::wire

#endif  // DLOG_WIRE_CONNECTION_H_
