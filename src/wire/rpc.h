#ifndef DLOG_WIRE_RPC_H_
#define DLOG_WIRE_RPC_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/scheduler.h"
#include "wire/connection.h"
#include "wire/messages.h"

namespace dlog::wire {

/// Client-side bookkeeping for the synchronous calls of Figure 4-1
/// (IntervalList, ReadLogForward/Backward, CopyLog, InstallCopies):
/// request-id assignment, timeout, and bounded retransmission. "Strict
/// RPCs for infrequently used operations" (Section 4.2).
///
/// The owner routes response envelopes (rpc_id != 0, *Resp types) to
/// HandleResponse(); anything this class does not recognize is left to
/// the owner.
class RpcClient {
 public:
  using ResponseCallback = std::function<void(Result<Envelope>)>;

  /// `encode` builds the request bytes for a given rpc id; retries reuse
  /// the id so the server's duplicate work is at worst recomputation.
  struct CallOptions {
    sim::Duration timeout = 500 * sim::kMillisecond;
    int max_attempts = 4;
  };

  /// The provider is consulted on every transmission (including
  /// retries), so a call started before a server restart is retried on
  /// the fresh connection. It may return nullptr when no transport is
  /// available right now (the retry timer keeps running).
  using ConnectionProvider = std::function<Connection*()>;

  RpcClient(sim::Scheduler* sim, ConnectionProvider provider)
      : sim_(sim), provider_(std::move(provider)) {}

  /// Convenience for a fixed connection (tests, short-lived use).
  RpcClient(sim::Scheduler* sim, Connection* connection)
      : RpcClient(sim, [connection]() { return connection; }) {}

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  ~RpcClient() { FailAll(Status::Aborted("rpc client destroyed")); }

  /// Issues a call; `cb` receives the response envelope or a TimedOut /
  /// Aborted status.
  void Call(std::function<Bytes(uint64_t)> encode, const CallOptions& opts,
            ResponseCallback cb);

  /// Returns true if the envelope completed a pending call.
  bool HandleResponse(const Envelope& envelope);

  /// Fails every pending call (e.g., connection reset).
  void FailAll(const Status& status);

  size_t pending() const { return pending_.size(); }

 private:
  struct PendingCall {
    std::function<Bytes(uint64_t)> encode;
    CallOptions opts;
    ResponseCallback cb;
    int attempts = 0;
    sim::EventId timer = 0;
  };

  void Transmit(uint64_t rpc_id);
  void OnTimeout(uint64_t rpc_id);

  sim::Scheduler* sim_;
  ConnectionProvider provider_;
  uint64_t next_rpc_id_ = 1;
  std::map<uint64_t, PendingCall> pending_;
};

}  // namespace dlog::wire

#endif  // DLOG_WIRE_RPC_H_
