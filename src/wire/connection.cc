#include "wire/connection.h"

#include <cassert>
#include <utility>

namespace dlog::wire {

// --- Connection ---

Connection::Connection(Endpoint* endpoint, net::NodeId peer,
                       uint64_t conn_id, bool initiator)
    : endpoint_(endpoint),
      peer_(peer),
      conn_id_(conn_id),
      initiator_(initiator),
      state_(initiator ? State::kSynSent : State::kSynReceived),
      window_(endpoint->config().adaptive_window) {}

uint64_t Connection::CurrentGrant() const {
  return recv_highest_seen_ + endpoint_->config().window_packets;
}

void Connection::StartHandshake() {
  assert(initiator_);
  ++handshake_attempts_;
  endpoint_->SendFrame(peer_, Endpoint::kSyn, conn_id_, 0, CurrentGrant(),
                       {});
  handshake_timer_ = endpoint_->simulator()->After(
      endpoint_->config().handshake_retry, [this]() { HandshakeTimeout(); });
}

void Connection::HandshakeTimeout() {
  handshake_timer_ = 0;
  if (state_ != State::kSynSent) return;
  if (handshake_attempts_ >= endpoint_->config().handshake_max_retries) {
    Close();
    return;
  }
  StartHandshake();
}

void Connection::Send(Bytes payload, uint64_t trace, uint64_t span) {
  if (state_ == State::kClosed) return;
  // Make room for the frame trailer now so framing at flush time appends
  // in place without reallocating (and so without copying the payload).
  payload.reserve(payload.size() + Endpoint::kFrameTrailerBytes);
  send_queue_.push_back({std::move(payload), trace, span});
  TryFlush();
}

void Connection::NoteAllocation(uint64_t alloc) {
  if (alloc <= peer_allocation_) return;
  peer_allocation_ = alloc;
  if (inflight_.empty()) return;
  const uint64_t window_packets = endpoint_->config().window_packets;
  if (alloc <= window_packets) return;
  // The peer grants `highest seq seen + window_packets`, so this advance
  // acknowledges every injected seq <= alloc - window_packets (including
  // seqs the network lost — they will never be acked any other way and
  // must not pin the adaptive window).
  const uint64_t acked = alloc - window_packets;
  size_t acked_bytes = 0;
  for (auto it = inflight_.begin();
       it != inflight_.end() && it->first <= acked;) {
    acked_bytes += it->second;
    it = inflight_.erase(it);
  }
  if (acked_bytes > 0) {
    bytes_in_flight_ -= acked_bytes;
    window_.OnAck(acked_bytes);
  }
}

void Connection::RecordInflight(uint64_t seq, size_t bytes) {
  if (!window_.enabled()) return;
  inflight_[seq] = bytes;
  bytes_in_flight_ += bytes;
}

void Connection::NoteOverload() {
  window_.OnCongestion(endpoint_->simulator()->Now());
}

void Connection::TryFlush() {
  if (state_ != State::kEstablished) return;
  while (!send_queue_.empty() && next_send_seq_ <= peer_allocation_ &&
         window_.Allows(bytes_in_flight_, send_queue_.front().payload.size())) {
    Outgoing out = std::move(send_queue_.front());
    send_queue_.pop_front();
    const uint64_t seq = next_send_seq_++;
    RecordInflight(seq, out.payload.size());
    endpoint_->SendFrame(peer_, Endpoint::kData, conn_id_, seq,
                         CurrentGrant(), std::move(out.payload), out.trace,
                         out.span);
    last_advertised_grant_ = CurrentGrant();
  }
  if (!send_queue_.empty()) {
    ArmOverrideTimer();
  } else if (override_timer_ != 0) {
    endpoint_->simulator()->Cancel(override_timer_);
    override_timer_ = 0;
  }
}

void Connection::ArmOverrideTimer() {
  if (override_timer_ != 0) return;
  override_timer_ = endpoint_->simulator()->After(
      endpoint_->config().allocation_override_delay, [this]() {
        override_timer_ = 0;
        if (state_ != State::kEstablished || send_queue_.empty()) return;
        // Going a full override delay without allocation progress is this
        // transport's timeout signal: shrink the adaptive window.
        window_.OnCongestion(endpoint_->simulator()->Now());
        // Exceed the allocation with a single packet after the mandated
        // pause; the receiver may drop it if genuinely overrun.
        Outgoing out = std::move(send_queue_.front());
        send_queue_.pop_front();
        const uint64_t seq = next_send_seq_++;
        RecordInflight(seq, out.payload.size());
        endpoint_->SendFrame(peer_, Endpoint::kData, conn_id_, seq,
                             CurrentGrant(), std::move(out.payload),
                             out.trace, out.span);
        last_advertised_grant_ = CurrentGrant();
        if (!send_queue_.empty()) ArmOverrideTimer();
      });
}

void Connection::GrantWindowIfNeeded(bool force) {
  const uint64_t grant = CurrentGrant();
  // Refresh the peer's allocation before it can run dry: at most half the
  // window may be un-advertised, whatever the configured threshold.
  const uint64_t threshold =
      std::max<uint64_t>(1, std::min(endpoint_->config().window_update_threshold,
                                     endpoint_->config().window_packets / 2));
  if (force || grant >= last_advertised_grant_ + threshold) {
    endpoint_->SendFrame(peer_, Endpoint::kWindow, conn_id_, 0, grant, {});
    last_advertised_grant_ = grant;
  }
}

void Connection::OnFrame(uint8_t frame_type, uint64_t seq, uint64_t alloc,
                         const SharedBytes& payload) {
  if (state_ == State::kClosed) return;
  switch (frame_type) {
    case Endpoint::kSynAck:
      if (!initiator_) return;
      NoteAllocation(alloc);
      if (state_ == State::kSynSent) {
        state_ = State::kEstablished;
        if (handshake_timer_ != 0) {
          endpoint_->simulator()->Cancel(handshake_timer_);
          handshake_timer_ = 0;
        }
        // Third leg of the handshake.
        endpoint_->SendFrame(peer_, Endpoint::kAck, conn_id_, 0,
                             CurrentGrant(), {});
        last_advertised_grant_ = CurrentGrant();
      } else {
        // Duplicate SYN_ACK: re-acknowledge.
        endpoint_->SendFrame(peer_, Endpoint::kAck, conn_id_, 0,
                             CurrentGrant(), {});
      }
      TryFlush();
      return;
    case Endpoint::kAck:
      if (initiator_) return;
      NoteAllocation(alloc);
      if (state_ == State::kSynReceived) state_ = State::kEstablished;
      TryFlush();
      return;
    case Endpoint::kWindow:
      NoteAllocation(alloc);
      // Data arriving implies the peer considers us established.
      if (state_ == State::kSynReceived) state_ = State::kEstablished;
      TryFlush();
      return;
    case Endpoint::kData: {
      NoteAllocation(alloc);
      if (state_ == State::kSynReceived) state_ = State::kEstablished;
      // Duplicate detection on permanently unique sequence numbers.
      bool duplicate = false;
      if (seq <= recv_cumulative_ || recv_out_of_order_.count(seq) > 0) {
        duplicate = true;
      } else if (seq == recv_cumulative_ + 1) {
        ++recv_cumulative_;
        while (recv_out_of_order_.erase(recv_cumulative_ + 1) > 0) {
          ++recv_cumulative_;
        }
      } else {
        recv_out_of_order_.insert(seq);
        // Bound the gap set: sequences the transport lost will never be
        // retransmitted (only re-sent as new payloads under new seqs), so
        // collapsing old gaps into the cumulative mark is safe.
        constexpr size_t kMaxGapSet = 1024;
        if (recv_out_of_order_.size() > kMaxGapSet) {
          recv_cumulative_ = *recv_out_of_order_.rbegin();
          recv_out_of_order_.clear();
        }
      }
      recv_highest_seen_ = std::max(recv_highest_seen_, seq);
      if (duplicate) {
        duplicates_dropped_.Increment();
        GrantWindowIfNeeded(/*force=*/false);
        return;
      }
      GrantWindowIfNeeded(/*force=*/false);
      if (message_handler_) message_handler_(payload);
      TryFlush();
      return;
    }
    default:
      return;
  }
}

void Connection::Close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (handshake_timer_ != 0) {
    endpoint_->simulator()->Cancel(handshake_timer_);
    handshake_timer_ = 0;
  }
  if (override_timer_ != 0) {
    endpoint_->simulator()->Cancel(override_timer_);
    override_timer_ = 0;
  }
  send_queue_.clear();
  if (close_handler_) close_handler_();
}

// --- Endpoint ---

Endpoint::Endpoint(sim::Scheduler* sim, sim::Cpu* cpu, net::NodeId id,
                   const WireConfig& config)
    : sim_(sim),
      cpu_(cpu),
      id_(id),
      config_(config),
      incarnation_(config.initial_incarnation) {}

void Endpoint::AttachNetwork(net::Network* network, net::Nic* nic) {
  networks_.emplace_back(network, nic);
  nic->SetHandler(
      [this, nic](const net::Packet& packet) { OnNicDeliver(packet, nic); });
}

uint64_t Endpoint::NewConnectionId() {
  ++conn_counter_;
  return (static_cast<uint64_t>(id_) << 48) | (incarnation_ << 32) |
         conn_counter_;
}

Connection* Endpoint::Connect(net::NodeId peer) {
  const uint64_t conn_id = NewConnectionId();
  auto conn = std::unique_ptr<Connection>(
      new Connection(this, peer, conn_id, /*initiator=*/true));
  Connection* raw = conn.get();
  connections_[conn_id] = std::move(conn);
  raw->StartHandshake();
  return raw;
}

void Endpoint::Crash() {
  // Volatile connection state is lost; the incarnation (modeling a tiny
  // stable counter) ensures packets from the previous life are rejected
  // as addressing unknown connections.
  for (auto& [id, conn] : connections_) {
    conn->state_ = Connection::State::kClosed;
    if (conn->handshake_timer_ != 0) sim_->Cancel(conn->handshake_timer_);
    if (conn->override_timer_ != 0) sim_->Cancel(conn->override_timer_);
  }
  connections_.clear();
  ++incarnation_;
  conn_counter_ = 0;
}

void Endpoint::SendFrame(net::NodeId dst, uint8_t frame_type,
                         uint64_t conn_id, uint64_t seq, uint64_t alloc,
                         Bytes payload, uint64_t trace, uint64_t span) {
  // Frame in place: append the trailer to the payload buffer (reserved
  // headroom makes this a plain append) and hand the buffer itself to
  // the packet. The payload length is stored explicitly so a truncated
  // or corrupt packet is detected before slicing.
  const uint32_t payload_len = static_cast<uint32_t>(payload.size());
  payload.reserve(payload.size() + kFrameTrailerBytes);
  Encoder enc(&payload);
  enc.PutU8(frame_type);
  enc.PutU64(conn_id);
  enc.PutU64(seq);
  enc.PutU64(alloc);
  enc.PutU32(payload_len);
  SharedBytes frame(std::move(payload));

  packets_sent_.Increment();
  // Charge the transmission path CPU cost, then hand to a network.
  cpu_->Execute(config_.instructions_per_packet,
                [this, dst, frame = std::move(frame), trace, span]() mutable {
                  if (networks_.empty()) return;
                  auto& [network, nic] = networks_[next_network_];
                  next_network_ = (next_network_ + 1) % networks_.size();
                  if (!nic->IsUp()) return;  // crashed node sends nothing
                  net::Packet packet;
                  packet.src = id_;
                  packet.dst = dst;
                  packet.payload = std::move(frame);
                  packet.trace = trace;
                  packet.span = span;
                  network->Send(packet);
                });
}

void Endpoint::SendDatagram(net::NodeId dst, Bytes payload, uint64_t trace,
                            uint64_t span) {
  SendFrame(dst, kDatagram, 0, 0, 0, std::move(payload), trace, span);
}

void Endpoint::OnNicDeliver(const net::Packet& packet, net::Nic* nic) {
  // Hold the ring slot until the CPU has processed the packet; this is
  // what makes back-to-back bursts overflow small NICs (Section 4.1).
  cpu_->Execute(config_.instructions_per_packet, [this, packet, nic]() {
    ProcessPacket(packet);
    nic->CompleteReceive();
  });
}

void Endpoint::ProcessPacket(const net::Packet& packet) {
  packets_received_.Increment();
  const SharedBytes& buf = packet.payload;
  if (buf.size() < kFrameTrailerBytes) {
    return;  // malformed packet; the medium is unreliable anyway
  }
  Decoder dec(buf.data() + buf.size() - kFrameTrailerBytes,
              kFrameTrailerBytes);
  auto frame_type = dec.GetU8();
  auto conn_id = dec.GetU64();
  auto seq = dec.GetU64();
  auto alloc = dec.GetU64();
  auto payload_len = dec.GetU32();
  if (!frame_type.ok() || !conn_id.ok() || !seq.ok() || !alloc.ok() ||
      !payload_len.ok() ||
      *payload_len != buf.size() - kFrameTrailerBytes) {
    return;  // malformed packet
  }
  // Zero-copy: the payload is a view into the arriving packet buffer,
  // shared up through envelope and record decoding.
  SharedBytes payload = buf.Slice(0, *payload_len);

  if (*frame_type == kDatagram) {
    if (datagram_handler_) datagram_handler_(packet.src, payload);
    return;
  }

  auto it = connections_.find(*conn_id);
  if (it == connections_.end()) {
    if (*frame_type == kSyn) {
      // Passive open.
      auto conn = std::unique_ptr<Connection>(
          new Connection(this, packet.src, *conn_id, /*initiator=*/false));
      Connection* raw = conn.get();
      raw->peer_allocation_ = *alloc;
      connections_[*conn_id] = std::move(conn);
      SendFrame(packet.src, kSynAck, *conn_id, 0, raw->CurrentGrant(), {});
      raw->last_advertised_grant_ = raw->CurrentGrant();
      if (accept_handler_) accept_handler_(raw);
    } else if (*frame_type != kReset) {
      // Unknown connection (e.g., we crashed): tell the peer.
      SendFrame(packet.src, kReset, *conn_id, 0, 0, {});
    }
    return;
  }

  Connection* conn = it->second.get();
  if (*frame_type == kReset) {
    conn->Close();
    return;
  }
  if (*frame_type == kSyn) {
    // Duplicate SYN for an existing connection: re-answer.
    SendFrame(packet.src, kSynAck, *conn_id, 0, conn->CurrentGrant(), {});
    return;
  }
  conn->OnFrame(*frame_type, *seq, *alloc, payload);
}

}  // namespace dlog::wire
