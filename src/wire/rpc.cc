#include "wire/rpc.h"

#include <utility>
#include <vector>

namespace dlog::wire {

void RpcClient::Call(std::function<Bytes(uint64_t)> encode,
                     const CallOptions& opts, ResponseCallback cb) {
  const uint64_t rpc_id = next_rpc_id_++;
  PendingCall call;
  call.encode = std::move(encode);
  call.opts = opts;
  call.cb = std::move(cb);
  pending_[rpc_id] = std::move(call);
  Transmit(rpc_id);
}

void RpcClient::Transmit(uint64_t rpc_id) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  ++call.attempts;
  Connection* conn = provider_();
  if (conn != nullptr && !conn->IsClosed()) {
    conn->Send(call.encode(rpc_id));
  }
  call.timer =
      sim_->After(call.opts.timeout, [this, rpc_id]() { OnTimeout(rpc_id); });
}

void RpcClient::OnTimeout(uint64_t rpc_id) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  call.timer = 0;
  if (call.attempts >= call.opts.max_attempts) {
    ResponseCallback cb = std::move(call.cb);
    pending_.erase(it);
    cb(Status::TimedOut("rpc retries exhausted"));
    return;
  }
  Transmit(rpc_id);
}

bool RpcClient::HandleResponse(const Envelope& envelope) {
  auto it = pending_.find(envelope.rpc_id);
  if (it == pending_.end()) return false;  // stale duplicate response
  if (it->second.timer != 0) sim_->Cancel(it->second.timer);
  ResponseCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(envelope);
  return true;
}

void RpcClient::FailAll(const Status& status) {
  std::vector<ResponseCallback> callbacks;
  for (auto& [id, call] : pending_) {
    if (call.timer != 0) sim_->Cancel(call.timer);
    callbacks.push_back(std::move(call.cb));
  }
  pending_.clear();
  for (auto& cb : callbacks) cb(status);
}

}  // namespace dlog::wire
