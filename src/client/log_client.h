#ifndef DLOG_CLIENT_LOG_CLIENT_H_
#define DLOG_CLIENT_LOG_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "flow/retry_policy.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cpu.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "wire/connection.h"
#include "wire/messages.h"
#include "wire/rpc.h"

namespace dlog::client {

/// How the client picks a replacement when it abandons an unresponsive
/// server (Section 5.4 leaves load assignment open; these are the
/// "simple decentralized strategies" experiment E9 compares).
enum class SelectionPolicy {
  kStickyFailover,  // keep current set; replace with lowest-id available
  kRoundRobin,      // rotate through the server list
  kRandom,          // uniform random replacement
  kLeastQueued,     // server with the least locally-queued traffic
};

/// Configuration of a replicated-log protocol client node.
struct LogClientConfig {
  ClientId client_id = 1;
  net::NodeId node_id = 1000;
  /// N — copies per record.
  int copies = 2;
  /// The M log server node ids.
  std::vector<net::NodeId> servers;
  /// Hosts of the generator state representatives (Appendix I). Empty
  /// means the first min(3, M) servers.
  std::vector<net::NodeId> generator_reps;
  double cpu_mips = 2.0;
  size_t nic_ring_slots = 16;
  /// Packing budget for a record batch ("as many log records as will fit
  /// in a network packet").
  size_t mtu_payload = 1400;
  /// δ — "the client must limit the number of records contained in
  /// unacknowledged WriteLog and ForceLog messages to ensure that no more
  /// than δ log records are partially written" (Section 4.2).
  size_t delta = 16;
  /// Force resend interval and how many resends before switching server.
  sim::Duration force_timeout = 300 * sim::kMillisecond;
  int force_retries = 3;
  /// How long to avoid a server after abandoning it as unresponsive.
  sim::Duration server_retry_backoff = 5 * sim::kSecond;
  /// Synchronous-call (Figure 4-1 RPC) parameters.
  sim::Duration rpc_timeout = 400 * sim::kMillisecond;
  int rpc_attempts = 4;
  SelectionPolicy policy = SelectionPolicy::kStickyFailover;
  /// Section 4.1's multicast option: stream record batches once to a
  /// multicast group containing the write set instead of N unicast
  /// copies ("With the use of multicast, this amount would be
  /// approximately halved"). Acknowledgments, gap repair, and all
  /// synchronous calls stay unicast.
  bool multicast_writes = false;
  uint64_t seed = 1;
  wire::WireConfig wire;
  /// Backoff-and-budget policy applied when a server sheds a batch with
  /// an Overloaded reply (src/flow). Jitter is drawn from this client's
  /// own Rng stream (seeded from `seed`), so runs stay byte-identical.
  flow::RetryPolicyConfig retry;

  /// OK iff the configuration can drive the protocol: at least one copy,
  /// `servers.size() >= copies`, nonzero δ and packing budget, positive
  /// timeouts/attempt counts, ...
  Status Validate() const;
};

/// The asynchronous replicated-log client (Sections 3.1.2 + 4.2): buffers
/// log records locally, streams them in packed WriteLog/ForceLog messages
/// to N of M log servers, tracks per-server acknowledgments, resends or
/// switches servers on silence, answers MissingInterval prompts, and
/// performs the full client-initialization procedure (interval-list
/// merge, new epoch via the replicated identifier generator, CopyLog /
/// InstallCopies recovery of the last δ records).
///
/// All operations are asynchronous: they return immediately and invoke
/// the supplied callback when the simulated protocol completes.
class LogClient {
 public:
  LogClient(sim::Scheduler* sim, const LogClientConfig& config);
  ~LogClient();

  LogClient(const LogClient&) = delete;
  LogClient& operator=(const LogClient&) = delete;

  /// Attaches to a network (twice for dual-network configurations).
  void AttachNetwork(net::Network* network);

  /// Client initialization (Section 3.1.2). `done` fires with OK once the
  /// log is usable, or with an error (retry later — the paper's client
  /// "can poll until it receives responses from enough servers").
  void Init(std::function<void(Status)> done);

  bool IsInitialized() const { return initialized_; }
  Epoch current_epoch() const { return epoch_; }
  /// The cached merged view of the replicated log (diagnostics/tests).
  const MergedLogView& view() const { return view_; }

  /// Appends a record to the local group buffer and returns its LSN
  /// immediately. The record reaches log servers when a ForceLog covers
  /// it or enough records accumulate to fill packets (grouping,
  /// Section 4.1).
  Result<Lsn> WriteLog(Bytes data);

  /// Requests that all records up to `upto` become stable on N servers;
  /// `done` fires when the last acknowledgment arrives.
  void ForceLog(Lsn upto, std::function<void(Status)> done);

  /// Reads a record via the cached merged view (one ServerReadLog in the
  /// common case). Errors: OutOfRange beyond end of log, NotFound for
  /// not-present records, Unavailable/TimedOut when no holder answers.
  void ReadLog(Lsn lsn, std::function<void(Result<Bytes>)> done);

  /// LSN of the most recently written (possibly still buffered) record.
  Lsn EndOfLog() const { return next_lsn_ - 1; }

  /// Log space management (Section 5.3): asks every server to discard
  /// this client's records below `below`. The point is clamped so the
  /// most recent δ records (needed by restart recovery) and anything not
  /// yet fully replicated always survive. Returns the clamped point.
  Lsn TruncateLog(Lsn below);

  /// Media-failure repair (Section 5.3: "the repair of a log when one
  /// redundant copy is lost"): re-gathers interval lists, finds records
  /// with fewer than N holders, and re-replicates them to additional
  /// servers via CopyLog/InstallCopies. `done` receives OK when every
  /// under-replicated record has N holders again, or an error if some
  /// could not be repaired (retry later).
  void RepairLog(std::function<void(Status)> done);

  /// Crashes the node: every volatile structure (buffers, view, epoch,
  /// connections) is lost. A crashed client is dead; construct a new
  /// LogClient with the same ids and Init() it to model the restart
  /// (harness::Cluster::RestartClient does exactly that).
  void Crash();

  /// False once Crash() has run: the node is powered off until replaced.
  bool IsUp() const { return !crashed_; }

  ClientId client_id() const { return config_.client_id; }

  /// The wire incarnation this node is running as. Survives crashes only
  /// via whoever rebuilds the node: a replacement LogClient must be given
  /// `config.wire.initial_incarnation > wire_incarnation()` or its
  /// connection ids collide with ones the servers still hold.
  uint64_t wire_incarnation() const { return endpoint_->incarnation(); }

  // --- Observability ---
  /// Attaches the shared causal tracer. Records opened while a context is
  /// current (see obs::Tracer::Scope) get "wal.group" spans; sends get
  /// "wire.send" spans whose ids travel inside the RecordBatch so the
  /// receiving server can close them.
  void SetTracer(obs::Tracer* tracer);
  /// Registers this client's counters/histograms under
  /// "client-<id>/log/...".
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  // --- Statistics ---
  sim::Cpu& cpu() { return *cpu_; }
  sim::Histogram& force_latency_ms() { return force_latency_ms_; }
  /// Streaming (bucketed, microseconds) twin of force_latency_ms: what
  /// windowed telemetry diffs for per-window quantiles.
  const sim::StreamingHistogram& force_latency_us() const {
    return force_latency_us_;
  }
  sim::Counter& records_sent() { return records_sent_; }
  sim::Counter& batches_sent() { return batches_sent_; }
  sim::Counter& forces_completed() { return forces_completed_; }
  sim::Counter& server_switches() { return server_switches_; }
  sim::Counter& resends() { return resends_; }
  sim::Counter& overloads_received() { return overloads_received_; }
  sim::Counter& backoffs() { return backoffs_; }
  sim::Counter& retries_suppressed() { return retries_suppressed_; }
  const flow::RetryPolicy& retry_policy() const { return retry_policy_; }
  uint64_t bytes_buffered() const { return bytes_buffered_; }
  /// Records written but not yet acknowledged by N servers: the backlog
  /// an application layer watches to apply end-to-end backpressure.
  size_t pending_records() const { return pending_.size(); }

 private:
  struct ServerLink {
    net::NodeId node = 0;
    wire::Connection* conn = nullptr;
    std::unique_ptr<wire::RpcClient> rpc;
    /// Highest LSN this server acknowledged via NewHighLsn.
    Lsn acked_high = 0;
    /// Highest LSN streamed to this server in the current epoch.
    Lsn sent_high = 0;
    /// True if this link is in the current write set.
    bool in_write_set = false;
    int silent_rounds = 0;  // force-timeout rounds without progress
    Lsn acked_at_last_round = 0;
    /// Highest force point already prodded with an empty ForceLog (so a
    /// force of already-streamed records elicits exactly one ack request;
    /// the retry timer covers losses).
    Lsn force_ping_high = 0;
    /// Consecutive Overloaded sheds from this server (resets on a real
    /// acknowledgment); drives the exponential backoff.
    int shed_rounds = 0;
    /// No new batches go to this server before this time (shed backoff).
    sim::Time shed_until = 0;
  };

  struct PendingRecord {
    LogRecord record;
    std::set<net::NodeId> sent_to;
    std::set<net::NodeId> acked_by;
    sim::Time first_sent = 0;
    bool forced = false;
    /// "wal.group" span: client-buffer residency, WriteLog to first send.
    obs::SpanContext group_span;
  };

  struct ForceWaiter {
    Lsn upto;
    std::function<void(Status)> done;
    sim::Time started;
    /// "ForceLog" span: force request to last acknowledgment.
    obs::SpanContext span;
  };

  // --- transport plumbing ---
  void ConnectAll();
  ServerLink* LinkOf(net::NodeId node);
  void EnsureConnected(ServerLink* link);
  void OnServerMessage(net::NodeId node, const SharedBytes& payload);
  void OnNewHighLsn(ServerLink* link, Lsn high);
  void OnMissingInterval(ServerLink* link, Lsn low, Lsn high);
  void OnOverloaded(ServerLink* link, const wire::OverloadedMsg& msg);
  /// True while `link` sits in a shed backoff and must not receive new
  /// record batches.
  bool InShedBackoff(const ServerLink& link) const;

  // --- write pipeline ---
  void ChooseWriteSet();
  /// The current write-set links in write_set_ order (a snapshot:
  /// nested re-entry into PumpSends must not invalidate the caller's
  /// iteration).
  std::vector<ServerLink*> WriteSet();
  net::NodeId PickReplacement(const std::set<net::NodeId>& exclude);
  void PumpSends();
  /// Sends every pending record in (from..] not yet sent to `link`,
  /// packed into batches; marks the final batch ForceLog if a force is
  /// outstanding.
  void StreamTo(ServerLink* link);
  /// Multicast mode: streams the common tail once to the write-set
  /// group.
  void StreamMulticast();
  /// The multicast group carrying this client's record stream.
  net::NodeId Group() const {
    return net::kMulticastBase + config_.client_id;
  }
  void JoinWriteSetMember(net::NodeId node);
  void LeaveWriteSetMember(net::NodeId node);
  void CheckForceCompletion();
  void ArmRetryTimer();
  void OnRetryTimer();
  void SwitchAwayFrom(ServerLink* link);
  size_t UnackedSentRecords() const;
  /// The span of the most recent outstanding force (for parenting sends
  /// that carry no fresh records).
  obs::SpanContext ForceContext() const;

  // --- init machinery ---
  struct InitState;
  struct RepairState;
  void StartIntervalGather(std::shared_ptr<InitState> st);
  void StartEpochAcquisition(std::shared_ptr<InitState> st);
  void StartRecoveryCopy(std::shared_ptr<InitState> st);
  void FinishInit(std::shared_ptr<InitState> st, Status status);

  wire::RpcClient::CallOptions RpcOpts() const;

  sim::Scheduler* sim_;
  LogClientConfig config_;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<wire::Endpoint> endpoint_;
  std::vector<std::unique_ptr<net::Nic>> nics_;
  std::vector<net::Network*> networks_;
  Rng rng_;

  bool crashed_ = false;
  bool initialized_ = false;
  uint64_t generation_ = 0;
  Epoch epoch_ = 0;
  Lsn next_lsn_ = 1;
  MergedLogView view_;
  std::map<net::NodeId, ServerLink> links_;
  std::vector<net::NodeId> write_set_;
  size_t round_robin_cursor_ = 0;
  /// Servers recently abandoned as unresponsive, with the time until
  /// which they should not be re-chosen.
  std::map<net::NodeId, sim::Time> avoid_until_;

  std::map<Lsn, PendingRecord> pending_;
  /// Count of pending_ entries with a non-empty sent_to set, maintained
  /// at the sent_to/erase transition points so the δ-bound check in the
  /// streaming hot path is O(1) instead of a pending_ sweep.
  size_t unacked_sent_records_ = 0;
  std::deque<ForceWaiter> force_waiters_;
  /// Cached ForceContext(): the span of the newest force_waiters_ entry
  /// with a valid span, plus the count of valid spans in the deque
  /// (waiters only ever push at the back and pop at the front, so the
  /// newest valid span changes only on push or on drain-to-zero).
  obs::SpanContext force_ctx_cache_;
  size_t force_ctx_valid_spans_ = 0;
  sim::EventId retry_timer_ = 0;
  /// Small cache of records brought back by ReadLogForward packing.
  std::map<Lsn, LogRecord> read_cache_;

  obs::Tracer* tracer_ = nullptr;
  std::string trace_node_;

  sim::Histogram force_latency_ms_;
  sim::StreamingHistogram force_latency_us_;
  sim::Counter records_sent_;
  sim::Counter batches_sent_;
  sim::Counter forces_completed_;
  sim::Counter server_switches_;
  sim::Counter resends_;
  flow::RetryPolicy retry_policy_;
  sim::Counter overloads_received_;
  sim::Counter backoffs_;
  sim::Counter retries_suppressed_;
  uint64_t bytes_buffered_ = 0;
};

}  // namespace dlog::client

#endif  // DLOG_CLIENT_LOG_CLIENT_H_
