#ifndef DLOG_CLIENT_REPLICATED_LOG_H_
#define DLOG_CLIENT_REPLICATED_LOG_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"
#include "client/log_server_stub.h"
#include "epoch/id_generator.h"

namespace dlog::client {

/// The synchronous reference implementation of the Section 3.1 replicated
/// log: "an instance of an abstract type that is an append only sequence
/// of records", used by exactly one client, with each record stored on N
/// of the M log servers.
///
/// This class follows the paper's algorithm text line by line and serves
/// two roles in the repository: the executable specification that the
/// property tests check crash interleavings against, and the oracle the
/// asynchronous protocol client (LogClient) is tested against.
class ReplicatedLog {
 public:
  struct Options {
    /// N: copies per record, "constrained by performance and cost
    /// considerations to having values of two or three".
    int copies = 2;
    /// How many times a write is re-offered to a server that rejected it
    /// with Overloaded (an explicit shed — the server is up, just
    /// refusing load) before substituting another server. Distinct from
    /// Unavailable, which substitutes immediately.
    int shed_retries = 2;
  };

  /// `servers` are the M log servers, `generator` issues epoch numbers
  /// (Appendix I). Neither is owned.
  ReplicatedLog(ClientId client, std::vector<LogServerStub*> servers,
                epoch::ReplicatedIdGenerator* generator, Options options);

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Client initialization (Section 3.1.2): gathers interval lists from
  /// at least M-N+1 servers, merges them keeping the highest epoch per
  /// LSN, obtains a new epoch number, and makes the possibly partially
  /// written final record atomic by copying it under the new epoch and
  /// appending a not-present record above it. Must be called (and
  /// succeed) before any other operation. Restartable: a crash during
  /// Init is recovered by a later Init.
  Status Init();

  /// Appends a record; returns its LSN. "Consecutive calls to WriteLog
  /// return increasing LSNs."
  Result<Lsn> WriteLog(const Bytes& data);

  /// Fault injection: performs ServerWriteLog on only
  /// `server_writes` (< N) servers and then stops, as a client crash
  /// mid-WriteLog would. Returns Aborted. The object must be discarded
  /// afterwards (a real crash destroys it).
  Status WriteLogCrashAfter(const Bytes& data, int server_writes);

  /// Reads the record at `lsn`. Errors: OutOfRange beyond the end of the
  /// log, NotFound for a record "marked not present" (the paper's
  /// signaled exception), Unavailable when no holder responds.
  Result<Bytes> ReadLog(Lsn lsn);

  /// "The LSN of the most recently written log record" (kNoLsn when the
  /// log is empty).
  Result<Lsn> EndOfLog() const;

  bool initialized() const { return initialized_; }
  Epoch current_epoch() const { return epoch_; }
  const MergedLogView& view() const { return view_; }
  int copies() const { return options_.copies; }

 private:
  /// Picks N available servers, preferring the current write set
  /// ("clients should attempt to perform consecutive writes to the same
  /// servers"). Unavailable if fewer than N are up.
  Result<std::vector<LogServerStub*>> ChooseWriteSet();

  /// Writes one record to the given servers, updating the cached view.
  Status WriteRecord(const LogRecord& record,
                     const std::vector<LogServerStub*>& targets);

  LogServerStub* FindServer(ServerId id) const;

  ClientId client_;
  std::vector<LogServerStub*> servers_;  // the M servers
  epoch::ReplicatedIdGenerator* generator_;
  Options options_;

  bool initialized_ = false;
  Epoch epoch_ = 0;
  Lsn next_lsn_ = 1;
  MergedLogView view_;
  std::vector<ServerId> write_set_;  // sticky server choice
};

}  // namespace dlog::client

#endif  // DLOG_CLIENT_REPLICATED_LOG_H_
