#include "client/log_client.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::client {

// Per-Init transient state, shared across the callback chain.
struct LogClient::InitState {
  std::function<void(Status)> done;
  uint64_t generation = 0;

  // Interval gather.
  int interval_ok = 0;
  int interval_fail = 0;
  bool intervals_done = false;
  std::vector<ServerInterval> intervals;

  // Epoch acquisition.
  int gen_read_ok = 0;
  int gen_read_fail = 0;
  bool gen_read_done = false;
  uint64_t gen_max = 0;
  int gen_write_ok = 0;
  int gen_write_fail = 0;
  bool gen_write_done = false;
  uint64_t gen_value = 0;

  // Recovery copy.
  Lsn high = kNoLsn;
  std::vector<Lsn> tail_lsns;
  size_t tail_cursor = 0;
  std::map<Lsn, LogRecord> tail_records;
  std::vector<net::NodeId> targets;
  size_t copy_acks = 0;
  size_t install_acks = 0;
  bool failed = false;
  bool finished = false;
};

Status LogClientConfig::Validate() const {
  if (copies < 1) return Status::InvalidArgument("copies must be >= 1");
  if (servers.size() < static_cast<size_t>(copies)) {
    return Status::InvalidArgument(
        "need at least `copies` servers (N <= M)");
  }
  if (cpu_mips <= 0) {
    return Status::InvalidArgument("cpu_mips must be > 0");
  }
  if (nic_ring_slots == 0) {
    return Status::InvalidArgument("nic_ring_slots must be > 0");
  }
  if (mtu_payload == 0) {
    return Status::InvalidArgument("mtu_payload must be > 0");
  }
  if (delta == 0) {
    return Status::InvalidArgument(
        "delta must be > 0 (no unacknowledged records means no grouping)");
  }
  if (force_timeout <= 0) {
    return Status::InvalidArgument("force_timeout must be > 0");
  }
  if (force_retries < 1) {
    return Status::InvalidArgument("force_retries must be >= 1");
  }
  if (rpc_timeout <= 0) {
    return Status::InvalidArgument("rpc_timeout must be > 0");
  }
  if (rpc_attempts < 1) {
    return Status::InvalidArgument("rpc_attempts must be >= 1");
  }
  DLOG_RETURN_IF_ERROR(retry.Validate());
  DLOG_RETURN_IF_ERROR(wire.adaptive_window.Validate());
  return Status::OK();
}

LogClient::LogClient(sim::Scheduler* sim, const LogClientConfig& config)
    : sim_(sim),
      config_(config),
      rng_(config.seed),
      retry_policy_(config.retry) {
  DLOG_CHECK_OK(config.Validate());
  if (config_.generator_reps.empty()) {
    const size_t reps = std::min<size_t>(3, config_.servers.size());
    config_.generator_reps.assign(config_.servers.begin(),
                                  config_.servers.begin() + reps);
  }
  // Decentralized spreading: each client starts its rotation at a
  // different point (Section 5.4's "simple decentralized strategies").
  round_robin_cursor_ = config_.client_id;
  cpu_ = std::make_unique<sim::Cpu>(sim, config_.cpu_mips, "client-cpu");
  endpoint_ = std::make_unique<wire::Endpoint>(sim, cpu_.get(),
                                               config_.node_id,
                                               config_.wire);
  // Multicast acknowledgments arrive as datagrams from server nodes.
  endpoint_->SetDatagramHandler(
      [this](net::NodeId src, const SharedBytes& payload) {
        if (!crashed_) OnServerMessage(src, payload);
      });
}

LogClient::~LogClient() {
  if (retry_timer_ != 0) sim_->Cancel(retry_timer_);
}

void LogClient::AttachNetwork(net::Network* network) {
  auto nic = std::make_unique<net::Nic>(sim_, config_.nic_ring_slots);
  network->Attach(config_.node_id, nic.get());
  endpoint_->AttachNetwork(network, nic.get());
  networks_.push_back(network);
  nics_.push_back(std::move(nic));
}

void LogClient::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  trace_node_ = "client-" + std::to_string(config_.client_id);
}

void LogClient::RegisterMetrics(obs::MetricsRegistry* registry) const {
  const std::string prefix =
      "client-" + std::to_string(config_.client_id) + "/log/";
  registry->RegisterHistogram(prefix + "force_latency_ms",
                              &force_latency_ms_);
  registry->RegisterStreamingHistogram(prefix + "force_latency_us",
                                       &force_latency_us_);
  registry->RegisterCounter(prefix + "records_sent", &records_sent_);
  registry->RegisterCounter(prefix + "batches_sent", &batches_sent_);
  registry->RegisterCounter(prefix + "forces_completed",
                            &forces_completed_);
  registry->RegisterCounter(prefix + "server_switches", &server_switches_);
  registry->RegisterCounter(prefix + "resends", &resends_);
  registry->RegisterCounter(prefix + "flow/overloads_received",
                            &overloads_received_);
  registry->RegisterCounter(prefix + "flow/backoffs", &backoffs_);
  registry->RegisterCounter(prefix + "flow/retries_suppressed",
                            &retries_suppressed_);
  // The starvation rule's input: unacknowledged records at the window
  // edge. Reads 0 while crashed — a dead node is down, not starving.
  registry->RegisterCallback(prefix + "pending_records", [this]() {
    return IsUp() ? static_cast<double>(pending_.size()) : 0.0;
  });
  registry->RegisterCallback(prefix + "flow/retry_budget_tokens",
                             [this]() { return retry_policy_.tokens(); });
  // The smallest adaptive window across currently-established links: the
  // sweep's view of how hard the AIMD loop is squeezing this client.
  registry->RegisterCallback(prefix + "flow/min_window_bytes", [this]() {
    double min_window = 0.0;
    for (const auto& [node, link] : links_) {
      if (link.conn == nullptr || !link.conn->IsEstablished()) continue;
      const double w = static_cast<double>(link.conn->window_bytes());
      if (min_window == 0.0 || w < min_window) min_window = w;
    }
    return min_window;
  });
}

obs::SpanContext LogClient::ForceContext() const {
  return force_ctx_cache_;
}

wire::RpcClient::CallOptions LogClient::RpcOpts() const {
  wire::RpcClient::CallOptions opts;
  opts.timeout = config_.rpc_timeout;
  opts.max_attempts = config_.rpc_attempts;
  return opts;
}

LogClient::ServerLink* LogClient::LinkOf(net::NodeId node) {
  auto it = links_.find(node);
  return it == links_.end() ? nullptr : &it->second;
}

void LogClient::ConnectAll() {
  for (net::NodeId node : config_.servers) {
    ServerLink& link = links_[node];
    link.node = node;
    EnsureConnected(&link);
  }
  for (net::NodeId node : config_.generator_reps) {
    ServerLink& link = links_[node];
    link.node = node;
    EnsureConnected(&link);
  }
}

void LogClient::EnsureConnected(ServerLink* link) {
  if (crashed_) return;
  if (link->conn != nullptr && !link->conn->IsClosed()) return;
  wire::Connection* conn = endpoint_->Connect(link->node);
  link->conn = conn;
  if (link->rpc == nullptr) {
    // The provider reconnects on demand, so an RPC started before a
    // server restart retries over the fresh connection.
    const net::NodeId rpc_node = link->node;
    link->rpc = std::make_unique<wire::RpcClient>(
        sim_, [this, rpc_node]() -> wire::Connection* {
          ServerLink* l = LinkOf(rpc_node);
          if (l == nullptr) return nullptr;
          EnsureConnected(l);
          return l->conn;
        });
  }
  const net::NodeId node = link->node;
  const uint64_t generation = generation_;
  conn->SetMessageHandler([this, node,
                           generation](const SharedBytes& payload) {
    if (generation != generation_) return;
    OnServerMessage(node, payload);
  });
  conn->SetCloseHandler([this, node, generation]() {
    if (generation != generation_) return;
    ServerLink* l = LinkOf(node);
    if (l != nullptr) l->conn = nullptr;  // reconnect lazily
  });
}

void LogClient::OnServerMessage(net::NodeId node,
                                const SharedBytes& payload) {
  ServerLink* link = LinkOf(node);
  if (link == nullptr) return;
  Result<wire::Envelope> env = wire::DecodeEnvelope(payload);
  if (!env.ok()) return;
  switch (env->type) {
    case wire::MessageType::kNewHighLsn: {
      Result<wire::NewHighLsnMsg> m = wire::DecodeNewHighLsn(env->body);
      if (m.ok()) {
        // A real acknowledgment means the server is admitting writes
        // again: clear any shed backoff.
        link->shed_rounds = 0;
        link->shed_until = 0;
        OnNewHighLsn(link, m->new_high_lsn);
      }
      return;
    }
    case wire::MessageType::kOverloaded: {
      Result<wire::OverloadedMsg> m = wire::DecodeOverloaded(env->body);
      if (m.ok()) OnOverloaded(link, *m);
      return;
    }
    case wire::MessageType::kMissingInterval: {
      Result<wire::MissingIntervalMsg> m =
          wire::DecodeMissingInterval(env->body);
      if (m.ok()) OnMissingInterval(link, m->low, m->high);
      return;
    }
    default:
      if (env->rpc_id != 0 && link->rpc != nullptr) {
        link->rpc->HandleResponse(*env);
      }
      return;
  }
}

// --- Write pipeline ---

Result<Lsn> LogClient::WriteLog(Bytes data) {
  if (crashed_) return Status::Aborted("client crashed");
  if (!initialized_) {
    return Status::FailedPrecondition("log client not initialized");
  }
  PendingRecord pr;
  pr.record.lsn = next_lsn_;
  pr.record.epoch = epoch_;
  pr.record.present = true;
  pr.record.data = std::move(data);
  bytes_buffered_ += pr.record.data.size();
  if (tracer_ != nullptr) {
    pr.group_span =
        tracer_->StartSpan("wal.group", trace_node_, tracer_->Current());
    tracer_->AddArg(pr.group_span, "lsn", next_lsn_);
  }
  pending_[next_lsn_] = std::move(pr);
  const Lsn lsn = next_lsn_++;
  PumpSends();
  return lsn;
}

void LogClient::ForceLog(Lsn upto, std::function<void(Status)> done) {
  if (crashed_ || !initialized_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::FailedPrecondition("log client not ready"));
    });
    return;
  }
  for (auto& [lsn, pr] : pending_) {
    if (lsn > upto) break;
    pr.forced = true;
  }
  ForceWaiter waiter{upto, std::move(done), sim_->Now(), {}};
  if (tracer_ != nullptr) {
    waiter.span =
        tracer_->StartSpan("ForceLog", trace_node_, tracer_->Current());
    tracer_->AddArg(waiter.span, "upto", upto);
  }
  if (waiter.span.valid()) {
    force_ctx_cache_ = waiter.span;
    ++force_ctx_valid_spans_;
  }
  force_waiters_.push_back(std::move(waiter));
  PumpSends();
  ArmRetryTimer();
  CheckForceCompletion();
}

std::vector<LogClient::ServerLink*> LogClient::WriteSet() {
  // Returned by value: callers iterate while nested sends can re-enter
  // PumpSends (inline-delivery configurations), so a shared buffer
  // would be mutated under the caller's feet.
  std::vector<ServerLink*> out;
  out.reserve(write_set_.size());
  for (net::NodeId node : write_set_) {
    ServerLink* link = LinkOf(node);
    if (link != nullptr) out.push_back(link);
  }
  return out;
}

net::NodeId LogClient::PickReplacement(
    const std::set<net::NodeId>& exclude) {
  std::vector<net::NodeId> candidates;
  for (net::NodeId node : config_.servers) {
    if (exclude.count(node) > 0) continue;
    auto avoided = avoid_until_.find(node);
    if (avoided != avoid_until_.end() && avoided->second > sim_->Now()) {
      continue;
    }
    candidates.push_back(node);
  }
  if (candidates.empty()) {
    // Everyone is either in use or in the penalty box; retry deserters.
    for (net::NodeId node : config_.servers) {
      if (exclude.count(node) == 0) candidates.push_back(node);
    }
  }
  if (candidates.empty()) return 0;
  switch (config_.policy) {
    case SelectionPolicy::kStickyFailover:
      // Sticky thereafter, but the starting point is spread by client id
      // so a population of clients does not pile onto the same servers.
      return candidates[config_.client_id % candidates.size()];
    case SelectionPolicy::kRoundRobin: {
      const net::NodeId pick =
          candidates[round_robin_cursor_ % candidates.size()];
      ++round_robin_cursor_;
      return pick;
    }
    case SelectionPolicy::kRandom:
      return candidates[rng_.NextBelow(candidates.size())];
    case SelectionPolicy::kLeastQueued: {
      net::NodeId best = candidates.front();
      size_t best_depth = ~size_t{0};
      for (net::NodeId node : candidates) {
        ServerLink* link = LinkOf(node);
        const size_t depth =
            (link != nullptr && link->conn != nullptr)
                ? link->conn->send_queue_depth()
                : 0;
        if (depth < best_depth) {
          best_depth = depth;
          best = node;
        }
      }
      return best;
    }
  }
  return candidates.front();
}

void LogClient::ChooseWriteSet() {
  // Full house (the common case, hit once per PumpSends): nothing to do,
  // and no exclusion set to build.
  if (write_set_.size() >= static_cast<size_t>(config_.copies)) return;
  std::set<net::NodeId> members(write_set_.begin(), write_set_.end());
  while (write_set_.size() < static_cast<size_t>(config_.copies)) {
    const net::NodeId pick = PickReplacement(members);
    if (pick == 0) break;
    members.insert(pick);
    write_set_.push_back(pick);
    ServerLink& link = links_[pick];
    link.node = pick;
    link.in_write_set = true;
    EnsureConnected(&link);
    JoinWriteSetMember(pick);
    // A server joining mid-stream needs a NewInterval announcement unless
    // its stream is already contiguous with what we will send next.
    const Lsn first =
        pending_.empty() ? next_lsn_ : pending_.begin()->first;
    if (link.sent_high != first - 1) {
      wire::NewIntervalMsg msg{config_.client_id, epoch_, first};
      if (link.conn != nullptr) link.conn->Send(wire::EncodeNewInterval(msg));
      link.sent_high = first - 1;
    }
  }
}

size_t LogClient::UnackedSentRecords() const {
  return unacked_sent_records_;
}

void LogClient::JoinWriteSetMember(net::NodeId node) {
  if (!config_.multicast_writes) return;
  for (net::Network* network : networks_) {
    network->JoinGroup(Group(), node);
  }
}

void LogClient::LeaveWriteSetMember(net::NodeId node) {
  if (!config_.multicast_writes) return;
  for (net::Network* network : networks_) {
    network->LeaveGroup(Group(), node);
  }
}

void LogClient::PumpSends() {
  if (crashed_ || !initialized_) return;
  ChooseWriteSet();
  if (config_.multicast_writes) {
    // The multicast stream restarts from the lowest per-server position,
    // so a server that just joined catches up from the group stream;
    // redelivery to servers already ahead is idempotent.
    for (ServerLink* link : WriteSet()) EnsureConnected(link);
    StreamMulticast();
    return;
  }
  for (ServerLink* link : WriteSet()) {
    EnsureConnected(link);
    StreamTo(link);
  }
}

void LogClient::StreamMulticast() {
  std::vector<ServerLink*> ws = WriteSet();
  if (ws.size() < static_cast<size_t>(config_.copies)) return;
  // The group stream reaches every member; while any of them is in a
  // shed backoff the whole stream waits (the backoff wakeup re-pumps).
  for (ServerLink* link : ws) {
    if (InShedBackoff(*link)) return;
  }

  Lsn frontier = ~Lsn{0};
  for (ServerLink* link : ws) frontier = std::min(frontier, link->sent_high);

  Lsn force_upto = kNoLsn;
  for (const ForceWaiter& w : force_waiters_) {
    force_upto = std::max(force_upto, w.upto);
  }

  std::vector<std::map<Lsn, PendingRecord>::iterator> batch;
  size_t batch_bytes = wire::RecordBatchOverhead();
  bool batch_forced = false;
  bool sent_forced_batch = false;
  size_t unacked_sent = UnackedSentRecords();

  auto commit_batch = [&]() {
    wire::RecordBatch msg;
    msg.client = config_.client_id;
    msg.epoch = epoch_;
    obs::SpanContext send_parent;
    for (auto it : batch) {
      PendingRecord& pr = it->second;
      if (pr.first_sent == 0) {
        pr.first_sent = sim_->Now();
        if (tracer_ != nullptr) tracer_->EndSpan(pr.group_span);
      }
      if (!send_parent.valid()) send_parent = pr.group_span;
      if (pr.sent_to.empty()) ++unacked_sent_records_;
      for (ServerLink* link : ws) {
        pr.sent_to.insert(link->node);
        link->sent_high = std::max(link->sent_high, it->first);
      }
      msg.records.push_back(pr.record);
      records_sent_.Increment();
    }
    batch.clear();
    const wire::MessageType type = batch_forced
                                       ? wire::MessageType::kForceLog
                                       : wire::MessageType::kWriteLog;
    if (batch_forced) sent_forced_batch = true;
    if (tracer_ != nullptr) {
      if (batch_forced && ForceContext().valid()) {
        send_parent = ForceContext();
      }
      obs::SpanContext send =
          tracer_->StartSpan("wire.send", trace_node_, send_parent);
      tracer_->AddArg(send, "group", Group());
      tracer_->AddArg(send, "records", msg.records.size());
      msg.trace = send.trace;
      msg.span = send.span;
    }
    endpoint_->SendDatagram(Group(), wire::EncodeRecordBatch(type, msg),
                            msg.trace, msg.span);
    batches_sent_.Increment();
    batch_bytes = wire::RecordBatchOverhead();
    batch_forced = false;
  };

  for (auto it = pending_.lower_bound(frontier + 1); it != pending_.end();
       ++it) {
    PendingRecord& pr = it->second;
    if (pr.sent_to.empty() && unacked_sent >= config_.delta) break;
    const size_t cost = wire::EncodedRecordSize(pr.record);
    if (batch_bytes + cost > config_.mtu_payload && !batch.empty()) {
      commit_batch();
    }
    if (pr.sent_to.empty()) ++unacked_sent;
    batch.push_back(it);
    batch_bytes += cost;
    batch_forced = batch_forced || pr.forced;
  }
  if (!batch.empty() &&
      (batch_forced || batch_bytes + 64 >= config_.mtu_payload)) {
    commit_batch();
  }

  if (sent_forced_batch) {
    for (ServerLink* link : ws) {
      link->force_ping_high = std::max(link->force_ping_high, force_upto);
    }
    return;
  }
  // A force of already-streamed records: one unicast ping per lagging
  // server (they ack individually anyway).
  for (ServerLink* link : ws) {
    if (force_upto != kNoLsn && link->acked_high < force_upto &&
        link->sent_high >= force_upto &&
        link->force_ping_high < force_upto && link->conn != nullptr) {
      link->force_ping_high = force_upto;
      wire::RecordBatch ping;
      ping.client = config_.client_id;
      ping.epoch = epoch_;
      if (tracer_ != nullptr) {
        obs::SpanContext send =
            tracer_->StartSpan("wire.send", trace_node_, ForceContext());
        tracer_->AddArg(send, "server", link->node);
        ping.trace = send.trace;
        ping.span = send.span;
      }
      link->conn->Send(
          wire::EncodeRecordBatch(wire::MessageType::kForceLog, ping),
          ping.trace, ping.span);
    }
  }
}

void LogClient::StreamTo(ServerLink* link) {
  if (link->conn == nullptr) return;
  // A shed server gets no new batches until its backoff expires (the
  // OnOverloaded wakeup re-pumps).
  if (InShedBackoff(*link)) return;

  // Is there an outstanding force this link has not yet acknowledged?
  Lsn force_upto = kNoLsn;
  for (const ForceWaiter& w : force_waiters_) {
    force_upto = std::max(force_upto, w.upto);
  }

  // Grouping (Section 4.1): records stay in the client buffer until a
  // force covers them or a full packet's worth has accumulated, so that
  // "log records [are] stored on a client node until they are explicitly
  // forced by the recovery manager".
  std::vector<std::map<Lsn, PendingRecord>::iterator> batch;
  size_t batch_bytes = wire::RecordBatchOverhead();
  bool batch_forced = false;
  size_t unacked_sent = UnackedSentRecords();

  bool sent_forced_batch = false;
  auto commit_batch = [&]() {
    wire::RecordBatch msg;
    msg.client = config_.client_id;
    msg.epoch = epoch_;
    obs::SpanContext send_parent;
    for (auto it : batch) {
      PendingRecord& pr = it->second;
      if (pr.first_sent == 0) {
        pr.first_sent = sim_->Now();
        if (tracer_ != nullptr) tracer_->EndSpan(pr.group_span);
      }
      if (!send_parent.valid()) send_parent = pr.group_span;
      if (pr.sent_to.empty()) ++unacked_sent_records_;
      pr.sent_to.insert(link->node);
      link->sent_high = std::max(link->sent_high, it->first);
      msg.records.push_back(pr.record);
      records_sent_.Increment();
    }
    batch.clear();
    const wire::MessageType type = batch_forced
                                       ? wire::MessageType::kForceLog
                                       : wire::MessageType::kWriteLog;
    if (batch_forced) sent_forced_batch = true;
    if (tracer_ != nullptr) {
      if (batch_forced && ForceContext().valid()) {
        send_parent = ForceContext();
      }
      obs::SpanContext send =
          tracer_->StartSpan("wire.send", trace_node_, send_parent);
      tracer_->AddArg(send, "server", link->node);
      tracer_->AddArg(send, "records", msg.records.size());
      msg.trace = send.trace;
      msg.span = send.span;
    }
    link->conn->Send(wire::EncodeRecordBatch(type, msg), msg.trace,
                     msg.span);
    batches_sent_.Increment();
    batch_bytes = wire::RecordBatchOverhead();
    batch_forced = false;
  };

  for (auto it = pending_.lower_bound(link->sent_high + 1);
       it != pending_.end(); ++it) {
    PendingRecord& pr = it->second;
    // δ bound: throttle first-time sends so that at most `delta` records
    // can ever be partially written.
    if (pr.sent_to.empty() && unacked_sent >= config_.delta) break;
    const size_t cost = wire::EncodedRecordSize(pr.record);
    if (batch_bytes + cost > config_.mtu_payload && !batch.empty()) {
      commit_batch();
    }
    if (pr.sent_to.empty()) ++unacked_sent;
    batch.push_back(it);
    batch_bytes += cost;
    batch_forced = batch_forced || pr.forced;
  }
  if (!batch.empty()) {
    // A trailing partial packet goes out only when a force needs it;
    // otherwise those records keep buffering.
    if (batch_forced) {
      commit_batch();
    } else if (batch_bytes + 64 >= config_.mtu_payload) {
      commit_batch();
    }
  }

  // A force of already-streamed records still needs an acknowledgment:
  // prod the server with one empty ForceLog per force point (the retry
  // timer re-prods if the ack is lost).
  if (sent_forced_batch) {
    // The forced data batch itself elicits the acknowledgment.
    link->force_ping_high = std::max(link->force_ping_high, force_upto);
    return;
  }
  if (force_upto != kNoLsn && link->acked_high < force_upto &&
      link->sent_high >= force_upto &&
      link->force_ping_high < force_upto) {
    link->force_ping_high = force_upto;
    wire::RecordBatch ping;
    ping.client = config_.client_id;
    ping.epoch = epoch_;
    if (tracer_ != nullptr) {
      obs::SpanContext send =
          tracer_->StartSpan("wire.send", trace_node_, ForceContext());
      tracer_->AddArg(send, "server", link->node);
      ping.trace = send.trace;
      ping.span = send.span;
    }
    link->conn->Send(
        wire::EncodeRecordBatch(wire::MessageType::kForceLog, ping),
        ping.trace, ping.span);
  }
}

void LogClient::OnNewHighLsn(ServerLink* link, Lsn high) {
  link->acked_high = std::max(link->acked_high, high);
  bool progressed = false;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first > high) break;
    PendingRecord& pr = it->second;
    if (pr.sent_to.count(link->node) > 0 &&
        pr.acked_by.insert(link->node).second) {
      progressed = true;
    }
  }
  if (progressed) {
    link->silent_rounds = 0;
    CheckForceCompletion();
    PumpSends();  // δ slots may have freed up
  }
}

bool LogClient::InShedBackoff(const ServerLink& link) const {
  return link.shed_until > sim_->Now();
}

void LogClient::OnOverloaded(ServerLink* link,
                             const wire::OverloadedMsg& msg) {
  if (crashed_ || !initialized_) return;
  overloads_received_.Increment();
  if (config_.retry.enabled) {
    // Squeeze the transport window too: stop injecting before the
    // server's queue grows, not after.
    if (link->conn != nullptr) link->conn->NoteOverload();
    const sim::Duration backoff =
        retry_policy_.BackoffFor(link->shed_rounds, &rng_);
    ++link->shed_rounds;
    const sim::Duration hint = msg.retry_after_us * sim::kMicrosecond;
    const sim::Duration wait = std::max(backoff, hint);
    link->shed_until = sim_->Now() + wait;
    backoffs_.Increment();
    if (tracer_ != nullptr) {
      // Root the instant when no force is being traced: backoffs usually
      // interrupt background streaming.
      const obs::SpanContext parent = ForceContext();
      obs::SpanContext instant =
          parent.valid()
              ? tracer_->Instant("flow.backoff", trace_node_, parent)
              : tracer_->StartTrace("flow.backoff", trace_node_);
      tracer_->AddArg(instant, "server", link->node);
      tracer_->AddArg(instant, "wait_us", wait / sim::kMicrosecond);
      tracer_->EndSpan(instant);
    }
    const uint64_t generation = generation_;
    sim_->After(wait, [this, generation]() {
      if (generation != generation_ || crashed_ || !initialized_) return;
      PumpSends();
    });
  }
  // The reply carries the server's stored high LSN: progress the shed
  // server *did* make keeps counting toward N copies while we back off
  // (shed != down — N-of-M accounting must not regress).
  if (msg.high_lsn != kNoLsn) OnNewHighLsn(link, msg.high_lsn);
}

void LogClient::CheckForceCompletion() {
  // Retire records acknowledged by N servers.
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingRecord& pr = it->second;
    if (pr.acked_by.size() >= static_cast<size_t>(config_.copies)) {
      std::vector<ServerId> holders(pr.acked_by.begin(), pr.acked_by.end());
      view_.NoteWrite(pr.record.lsn, pr.record.epoch, holders);
      bytes_buffered_ -= pr.record.data.size();
      if (!pr.sent_to.empty()) --unacked_sent_records_;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Complete force waiters whose range is fully durable.
  while (!force_waiters_.empty()) {
    ForceWaiter& w = force_waiters_.front();
    auto it = pending_.begin();
    if (it != pending_.end() && it->first <= w.upto) break;
    force_latency_ms_.Add(sim::DurationToSeconds(sim_->Now() - w.started) *
                          1e3);
    force_latency_us_.Record((sim_->Now() - w.started) / sim::kMicrosecond);
    forces_completed_.Increment();
    if (tracer_ != nullptr) tracer_->EndSpan(w.span);
    if (w.span.valid() && --force_ctx_valid_spans_ == 0) {
      force_ctx_cache_ = {};
    }
    auto done = std::move(w.done);
    force_waiters_.pop_front();
    done(Status::OK());
  }
  if (force_waiters_.empty() && retry_timer_ != 0) {
    sim_->Cancel(retry_timer_);
    retry_timer_ = 0;
  }
}

void LogClient::OnMissingInterval(ServerLink* link, Lsn low, Lsn high) {
  if (crashed_ || !initialized_ || link->conn == nullptr) return;
  // Records the server never saw: resend the ones still pending; announce
  // a new interval past anything already durable elsewhere.
  auto first_pending = pending_.lower_bound(low);
  if (first_pending == pending_.end() || first_pending->first > high) {
    // Everything missing is durable on other servers.
    wire::NewIntervalMsg msg{config_.client_id, epoch_, high + 1};
    link->conn->Send(wire::EncodeNewInterval(msg));
    link->sent_high = std::max(link->sent_high, high);
    StreamTo(link);
    return;
  }
  if (first_pending->first > low) {
    // The prefix of the gap is durable elsewhere; skip the server past it.
    wire::NewIntervalMsg msg{config_.client_id, epoch_,
                             first_pending->first};
    link->conn->Send(wire::EncodeNewInterval(msg));
  }
  // Resend the pending remainder of the gap as a force.
  wire::RecordBatch batch;
  batch.client = config_.client_id;
  batch.epoch = epoch_;
  for (auto it = first_pending; it != pending_.end() && it->first <= high;
       ++it) {
    if (it->second.sent_to.empty()) ++unacked_sent_records_;
    it->second.sent_to.insert(link->node);
    batch.records.push_back(it->second.record);
  }
  resends_.Increment();
  if (tracer_ != nullptr) {
    obs::SpanContext send =
        tracer_->StartSpan("wire.send", trace_node_, ForceContext());
    tracer_->AddArg(send, "server", link->node);
    tracer_->AddArg(send, "records", batch.records.size());
    batch.trace = send.trace;
    batch.span = send.span;
  }
  link->conn->Send(
      wire::EncodeRecordBatch(wire::MessageType::kForceLog, batch),
      batch.trace, batch.span);
}

void LogClient::ArmRetryTimer() {
  if (retry_timer_ != 0 || crashed_) return;
  const uint64_t generation = generation_;
  retry_timer_ = sim_->After(config_.force_timeout, [this, generation]() {
    if (generation != generation_) return;
    retry_timer_ = 0;
    OnRetryTimer();
  });
}

void LogClient::OnRetryTimer() {
  if (crashed_ || !initialized_ || force_waiters_.empty()) return;
  // Per write-set server: any forced record sent there but unacked?
  std::vector<ServerLink*> to_switch;
  for (ServerLink* link : WriteSet()) {
    if (InShedBackoff(*link)) {
      // Shed, not dead: the backoff wakeup resumes this link. Counting
      // these rounds as silence would churn write sets under overload.
      link->acked_at_last_round = link->acked_high;
      continue;
    }
    bool lagging = false;
    for (const auto& [lsn, pr] : pending_) {
      if (pr.forced && pr.sent_to.count(link->node) > 0 &&
          pr.acked_by.count(link->node) == 0) {
        lagging = true;
        break;
      }
    }
    if (!lagging) {
      link->silent_rounds = 0;
      link->acked_at_last_round = link->acked_high;
      continue;
    }
    if (link->acked_high > link->acked_at_last_round) {
      link->silent_rounds = 0;  // making progress, just slow
    } else {
      ++link->silent_rounds;
    }
    link->acked_at_last_round = link->acked_high;

    if (link->silent_rounds > config_.force_retries) {
      to_switch.push_back(link);
      continue;
    }
    // "If it uses the ForceLog message and does not get a response, it
    // retries a number of times before moving to a different server."
    EnsureConnected(link);
    if (link->conn == nullptr) continue;
    // The token bucket bounds the retry rate so resends cannot amplify
    // an overload; the next timer round tries again. (MissingInterval
    // gap repair is a correctness path and stays unbudgeted.)
    if (config_.retry.enabled &&
        !retry_policy_.TryAcquireRetryToken(sim_->Now())) {
      retries_suppressed_.Increment();
      continue;
    }
    wire::RecordBatch batch;
    batch.client = config_.client_id;
    batch.epoch = epoch_;
    size_t bytes = wire::RecordBatchOverhead();
    for (const auto& [lsn, pr] : pending_) {
      if (pr.sent_to.count(link->node) == 0) continue;
      if (pr.acked_by.count(link->node) > 0) continue;
      const size_t cost = wire::EncodedRecordSize(pr.record);
      if (bytes + cost > config_.mtu_payload) break;
      batch.records.push_back(pr.record);
      bytes += cost;
    }
    resends_.Increment();
    if (tracer_ != nullptr) {
      obs::SpanContext send =
          tracer_->StartSpan("wire.send", trace_node_, ForceContext());
      tracer_->AddArg(send, "server", link->node);
      tracer_->AddArg(send, "records", batch.records.size());
      batch.trace = send.trace;
      batch.span = send.span;
    }
    link->conn->Send(
        wire::EncodeRecordBatch(wire::MessageType::kForceLog, batch),
        batch.trace, batch.span);
  }
  for (ServerLink* link : to_switch) SwitchAwayFrom(link);
  PumpSends();
  ArmRetryTimer();
}

void LogClient::SwitchAwayFrom(ServerLink* link) {
  // "Clients will simply assume that the server has failed and will take
  // their logging elsewhere."
  link->in_write_set = false;
  link->silent_rounds = 0;
  write_set_.erase(
      std::remove(write_set_.begin(), write_set_.end(), link->node),
      write_set_.end());
  LeaveWriteSetMember(link->node);
  avoid_until_[link->node] = sim_->Now() + config_.server_retry_backoff;
  server_switches_.Increment();
  // Unacked records sent to the deserter still need N copies; make them
  // eligible for the replacement by dropping the deserter's claim. (Acks
  // it already gave still count.)
  ChooseWriteSet();  // fills the vacancy and announces NewInterval
}

Lsn LogClient::TruncateLog(Lsn below) {
  if (crashed_ || !initialized_) return kNoLsn;
  // Keep the most recent δ records (the restart recovery procedure reads
  // and re-copies them) and anything still awaiting replication.
  const Lsn durable_end =
      pending_.empty() ? next_lsn_ - 1 : pending_.begin()->first - 1;
  const Lsn keep_from =
      durable_end > config_.delta ? durable_end - config_.delta : kNoLsn;
  below = std::min(below, keep_from + 1);
  if (below <= 1) return kNoLsn;

  wire::TruncateLogMsg msg{config_.client_id, below};
  const Bytes encoded = wire::EncodeTruncateLog(msg);
  for (net::NodeId node : config_.servers) {
    ServerLink* link = LinkOf(node);
    if (link == nullptr) continue;
    EnsureConnected(link);
    if (link->conn != nullptr) link->conn->Send(encoded);
  }
  view_.TruncateBelow(below);
  read_cache_.erase(read_cache_.begin(), read_cache_.lower_bound(below));
  return below;
}

// --- Media repair ---

struct LogClient::RepairState {
  uint64_t generation = 0;
  std::function<void(Status)> done;
  bool finished = false;

  // Interval gather.
  int responses = 0;
  int failures = 0;
  bool gathered = false;
  std::vector<ServerInterval> intervals;

  // Segments needing repair, processed sequentially.
  struct Work {
    Lsn low = kNoLsn;
    Lsn high = kNoLsn;
    std::vector<ServerId> holders;
    int missing = 0;
  };
  std::deque<Work> queue;
  // Current segment progress.
  std::vector<LogRecord> records;
  Lsn cursor = kNoLsn;
  std::vector<net::NodeId> targets;
  size_t copy_acks = 0;
  size_t copy_calls_needed = 0;
  size_t install_acks = 0;
  bool partial = false;  // some segment could not be repaired
  /// A failure was an explicit server shed (RpcStatus::kOverloaded), not
  /// absence: report Overloaded so the caller backs off instead of
  /// treating the cluster as down.
  bool overloaded = false;
};

void LogClient::RepairLog(std::function<void(Status)> done) {
  if (crashed_ || !initialized_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::FailedPrecondition("log client not ready"));
    });
    return;
  }
  auto st = std::make_shared<RepairState>();
  st->generation = generation_;
  st->done = std::move(done);

  auto finish = [this, st](Status status) {
    if (st->finished) return;
    st->finished = true;
    st->done(status);
  };

  // Step 3 (declared first; steps chain backwards): process the queue.
  auto process = std::make_shared<std::function<void()>>();
  *process = [this, st, process, finish]() {
    if (st->generation != generation_ || st->finished) return;
    if (st->queue.empty()) {
      if (!st->partial) {
        finish(Status::OK());
      } else if (st->overloaded) {
        finish(Status::Overloaded(
            "repair shed by overloaded servers; retry after backoff"));
      } else {
        finish(Status::Unavailable(
            "some records could not be re-replicated"));
      }
      return;
    }
    RepairState::Work& work = st->queue.front();

    // Choose repair targets: servers that do not hold the segment.
    st->targets.clear();
    for (net::NodeId node : config_.servers) {
      if (static_cast<int>(st->targets.size()) >= work.missing) break;
      if (std::find(work.holders.begin(), work.holders.end(), node) !=
          work.holders.end()) {
        continue;
      }
      st->targets.push_back(node);
    }
    if (static_cast<int>(st->targets.size()) < work.missing) {
      st->partial = true;
      st->queue.pop_front();
      (*process)();
      return;
    }

    // Read the segment's records from holders, then copy to targets.
    st->records.clear();
    st->cursor = work.low;
    auto read_chunk = std::make_shared<std::function<void(size_t)>>();
    *read_chunk = [this, st, process, read_chunk,
                   finish](size_t holder_index) {
      if (st->generation != generation_ || st->finished) return;
      RepairState::Work& w = st->queue.front();
      if (st->cursor > w.high) {
        // All records read; stage the copies (re-stamped with the
        // current epoch) on every target, then install.
        std::vector<LogRecord> copies;
        for (const LogRecord& r : st->records) {
          LogRecord copy = r;
          copy.epoch = epoch_;
          copies.push_back(std::move(copy));
        }
        std::vector<std::vector<LogRecord>> chunks;
        std::vector<LogRecord> chunk;
        size_t bytes = wire::RecordBatchOverhead();
        for (const LogRecord& r : copies) {
          const size_t cost = wire::EncodedRecordSize(r);
          if (!chunk.empty() && bytes + cost > config_.mtu_payload) {
            chunks.push_back(std::move(chunk));
            chunk.clear();
            bytes = wire::RecordBatchOverhead();
          }
          chunk.push_back(r);
          bytes += cost;
        }
        if (!chunk.empty()) chunks.push_back(std::move(chunk));

        st->copy_acks = 0;
        st->install_acks = 0;
        st->copy_calls_needed = chunks.size() * st->targets.size();
        if (st->copy_calls_needed == 0) {
          st->queue.pop_front();
          (*process)();
          return;
        }
        for (net::NodeId node : st->targets) {
          ServerLink* link = LinkOf(node);
          if (link == nullptr) {
            ServerLink& fresh = links_[node];
            fresh.node = node;
            link = &fresh;
          }
          EnsureConnected(link);
          for (const std::vector<LogRecord>& c : chunks) {
            wire::CopyLogReq creq;
            creq.client = config_.client_id;
            creq.epoch = epoch_;
            creq.records = c;
            link->rpc->Call(
                [creq](uint64_t id) {
                  return wire::EncodeCopyLogReq(creq, id);
                },
                RpcOpts(),
                [this, st, process, finish,
                 copies](Result<wire::Envelope> env) {
                  if (st->generation != generation_ || st->finished) return;
                  bool ok = false;
                  if (env.ok()) {
                    auto resp = wire::DecodeCopyLogResp(env->body);
                    ok = resp.ok() &&
                         resp->status == wire::RpcStatus::kOk;
                    if (resp.ok() &&
                        resp->status == wire::RpcStatus::kOverloaded) {
                      st->overloaded = true;
                    }
                  }
                  if (!ok) {
                    st->partial = true;
                    st->queue.pop_front();
                    (*process)();
                    return;
                  }
                  if (++st->copy_acks < st->copy_calls_needed) return;
                  // Install on every target.
                  for (net::NodeId inode : st->targets) {
                    ServerLink* ilink = LinkOf(inode);
                    wire::InstallCopiesReq ireq{config_.client_id, epoch_};
                    ilink->rpc->Call(
                        [ireq](uint64_t id) {
                          return wire::EncodeInstallCopiesReq(ireq, id);
                        },
                        RpcOpts(),
                        [this, st, process, finish, inode,
                         copies](Result<wire::Envelope> ienv) {
                          if (st->generation != generation_ ||
                              st->finished) {
                            return;
                          }
                          bool iok = false;
                          if (ienv.ok()) {
                            auto iresp =
                                wire::DecodeInstallCopiesResp(ienv->body);
                            iok = iresp.ok() && iresp->status ==
                                                    wire::RpcStatus::kOk;
                            if (iresp.ok() &&
                                iresp->status ==
                                    wire::RpcStatus::kOverloaded) {
                              st->overloaded = true;
                            }
                          }
                          if (!iok) {
                            st->partial = true;
                            st->queue.pop_front();
                            (*process)();
                            return;
                          }
                          if (++st->install_acks < st->targets.size()) {
                            return;
                          }
                          // Segment repaired: note the new holders.
                          for (const LogRecord& r : copies) {
                            std::vector<ServerId> holders(
                                st->targets.begin(), st->targets.end());
                            view_.NoteWrite(r.lsn, r.epoch, holders);
                          }
                          st->queue.pop_front();
                          (*process)();
                        });
                  }
                });
          }
        }
        return;
      }

      // Read the next run of records starting at the cursor.
      if (holder_index >= w.holders.size()) {
        st->partial = true;
        st->queue.pop_front();
        (*process)();
        return;
      }
      ServerLink* link = LinkOf(w.holders[holder_index]);
      if (link == nullptr) {
        (*read_chunk)(holder_index + 1);
        return;
      }
      EnsureConnected(link);
      wire::ReadLogReq req{config_.client_id, st->cursor};
      link->rpc->Call(
          [req](uint64_t id) {
            return wire::EncodeReadLogReq(
                wire::MessageType::kReadLogForwardReq, req, id);
          },
          RpcOpts(),
          [this, st, read_chunk, holder_index](Result<wire::Envelope> env) {
            if (st->generation != generation_ || st->finished) return;
            RepairState::Work& w2 = st->queue.front();
            if (env.ok()) {
              auto resp = wire::DecodeReadLogResp(env->body);
              if (resp.ok() && resp->status == wire::RpcStatus::kOk &&
                  !resp->records.empty() &&
                  resp->records.front().lsn == st->cursor) {
                for (const LogRecord& r : resp->records) {
                  if (r.lsn < st->cursor || r.lsn > w2.high) continue;
                  st->records.push_back(r);
                  st->cursor = r.lsn + 1;
                }
                (*read_chunk)(0);
                return;
              }
            }
            (*read_chunk)(holder_index + 1);
          });
    };
    (*read_chunk)(0);
  };

  // Step 1: gather fresh interval lists from every server.
  const int m = static_cast<int>(config_.servers.size());
  for (net::NodeId node : config_.servers) {
    ServerLink* link = LinkOf(node);
    if (link == nullptr) {
      ServerLink& fresh = links_[node];
      fresh.node = node;
      link = &fresh;
    }
    EnsureConnected(link);
    wire::IntervalListReq req{config_.client_id};
    link->rpc->Call(
        [req](uint64_t id) { return wire::EncodeIntervalListReq(req, id); },
        RpcOpts(),
        [this, st, node, m, process, finish](Result<wire::Envelope> env) {
          if (st->generation != generation_ || st->finished ||
              st->gathered) {
            return;
          }
          bool ok = false;
          if (env.ok()) {
            auto resp = wire::DecodeIntervalListResp(env->body);
            if (resp.ok() && resp->status == wire::RpcStatus::kOk) {
              ok = true;
              for (const Interval& iv : resp->intervals) {
                st->intervals.push_back(ServerInterval{node, iv});
              }
            }
          }
          ok ? ++st->responses : ++st->failures;
          if (st->responses + st->failures < m) return;
          st->gathered = true;
          if (st->responses < m - config_.copies + 1) {
            finish(Status::Unavailable(
                "fewer than M-N+1 servers answered the repair survey"));
            return;
          }
          // Step 2: find under-replicated segments.
          MergedLogView survey = MergedLogView::Build(st->intervals);
          for (const MergedLogView::Segment& seg : survey.segments()) {
            if (static_cast<int>(seg.servers.size()) >= config_.copies) {
              continue;
            }
            RepairState::Work work;
            work.low = seg.low;
            work.high = seg.high;
            work.holders = seg.servers;
            work.missing =
                config_.copies - static_cast<int>(seg.servers.size());
            st->queue.push_back(std::move(work));
          }
          (*process)();
        });
  }
}

// --- Reads ---

void LogClient::ReadLog(Lsn lsn, std::function<void(Result<Bytes>)> done) {
  if (crashed_ || !initialized_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::FailedPrecondition("log client not ready"));
    });
    return;
  }
  if (lsn == kNoLsn || lsn >= next_lsn_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::OutOfRange("beyond end of log"));
    });
    return;
  }
  // Locally buffered or cached records need no server round trip (the
  // paper's Section 5.2 motivation: aborts read from the client cache).
  auto pit = pending_.find(lsn);
  if (pit != pending_.end()) {
    // User-facing materialization: reads hand back an owned copy.
    Bytes data = pit->second.record.data.ToBytes();
    sim_->After(0, [done = std::move(done), data = std::move(data)]() {
      done(data);
    });
    return;
  }
  auto cit = read_cache_.find(lsn);
  if (cit != read_cache_.end()) {
    const LogRecord& rec = cit->second;
    Result<Bytes> result =
        rec.present ? Result<Bytes>(rec.data.ToBytes())
                    : Result<Bytes>(
                          Status::NotFound("record marked not present"));
    sim_->After(0,
                [done = std::move(done), result = std::move(result)]() {
                  done(result);
                });
    return;
  }

  const MergedLogView::Segment* seg = view_.Find(lsn);
  if (seg == nullptr) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::NotFound("no server holds this record"));
    });
    return;
  }

  // Try holders one by one. The self-referencing chain clears itself at
  // every terminal outcome so the closure cycle cannot leak.
  auto holders = std::make_shared<std::vector<ServerId>>(seg->servers);
  auto attempt = std::make_shared<std::function<void(size_t)>>();
  auto shared_done =
      std::make_shared<std::function<void(Result<Bytes>)>>(std::move(done));
  const uint64_t generation = generation_;
  auto finish = [attempt, shared_done](Result<Bytes> result) {
    (*shared_done)(std::move(result));
    *attempt = nullptr;  // break the shared_ptr cycle
  };
  *attempt = [this, holders, attempt, lsn, generation,
              finish](size_t index) {
    if (generation != generation_) {
      finish(Status::Aborted("client crashed"));
      return;
    }
    if (index >= holders->size()) {
      finish(Status::Unavailable("no holder answered"));
      return;
    }
    ServerLink* link = LinkOf((*holders)[index]);
    if (link == nullptr) {
      if (*attempt) (*attempt)(index + 1);
      return;
    }
    EnsureConnected(link);
    wire::ReadLogReq req{config_.client_id, lsn};
    link->rpc->Call(
        [req](uint64_t id) {
          return wire::EncodeReadLogReq(
              wire::MessageType::kReadLogForwardReq, req, id);
        },
        RpcOpts(),
        [this, attempt, index, lsn, generation,
         finish](Result<wire::Envelope> env) {
          if (generation != generation_) {
            finish(Status::Aborted("client crashed"));
            return;
          }
          if (!env.ok()) {
            if (*attempt) (*attempt)(index + 1);
            return;
          }
          Result<wire::ReadLogResp> resp = wire::DecodeReadLogResp(env->body);
          if (!resp.ok() || resp->status != wire::RpcStatus::kOk ||
              resp->records.empty() || resp->records.front().lsn != lsn) {
            if (*attempt) (*attempt)(index + 1);
            return;
          }
          // Cache the packed extra records for future reads.
          for (const LogRecord& r : resp->records) {
            if (read_cache_.size() > 4096) break;
            read_cache_[r.lsn] = r;
          }
          const LogRecord& rec = resp->records.front();
          if (!rec.present) {
            finish(Status::NotFound("record marked not present"));
          } else {
            finish(rec.data.ToBytes());
          }
        });
  };
  (*attempt)(0);
}

// --- Initialization ---

void LogClient::Init(std::function<void(Status)> done) {
  if (crashed_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::Aborted("client crashed"));
    });
    return;
  }
  initialized_ = false;
  auto st = std::make_shared<InitState>();
  st->done = std::move(done);
  st->generation = generation_;
  ConnectAll();
  StartIntervalGather(st);
}

void LogClient::FinishInit(std::shared_ptr<InitState> st, Status status) {
  if (st->finished) return;
  st->finished = true;
  if (status.ok()) initialized_ = true;
  st->done(status);
}

void LogClient::StartIntervalGather(std::shared_ptr<InitState> st) {
  const int m = static_cast<int>(config_.servers.size());
  const int needed = m - config_.copies + 1;
  for (net::NodeId node : config_.servers) {
    ServerLink* link = LinkOf(node);
    wire::IntervalListReq req{config_.client_id};
    link->rpc->Call(
        [req](uint64_t id) { return wire::EncodeIntervalListReq(req, id); },
        RpcOpts(),
        [this, st, node, m, needed](Result<wire::Envelope> env) {
          if (st->generation != generation_ || st->finished ||
              st->intervals_done) {
            return;
          }
          bool ok = false;
          if (env.ok()) {
            Result<wire::IntervalListResp> resp =
                wire::DecodeIntervalListResp(env->body);
            if (resp.ok() && resp->status == wire::RpcStatus::kOk) {
              ok = true;
              for (const Interval& iv : resp->intervals) {
                st->intervals.push_back(ServerInterval{node, iv});
              }
            }
          }
          ok ? ++st->interval_ok : ++st->interval_fail;
          if (st->interval_ok >= needed) {
            st->intervals_done = true;
            StartEpochAcquisition(st);
          } else if (st->interval_fail > m - needed) {
            st->intervals_done = true;
            FinishInit(st, Status::Unavailable(
                               "fewer than M-N+1 interval lists gathered"));
          }
        });
  }
}

void LogClient::StartEpochAcquisition(std::shared_ptr<InitState> st) {
  const int reps = static_cast<int>(config_.generator_reps.size());
  const int read_quorum = (reps + 2) / 2;   // ceil((R+1)/2)
  const int write_quorum = (reps + 1) / 2;  // ceil(R/2)

  for (net::NodeId node : config_.generator_reps) {
    ServerLink* link = LinkOf(node);
    wire::GenReadReq req{config_.client_id};
    link->rpc->Call(
        [req](uint64_t id) { return wire::EncodeGenReadReq(req, id); },
        RpcOpts(),
        [this, st, reps, read_quorum, write_quorum](
            Result<wire::Envelope> env) {
          if (st->generation != generation_ || st->finished ||
              st->gen_read_done) {
            return;
          }
          bool ok = false;
          if (env.ok()) {
            Result<wire::GenReadResp> resp = wire::DecodeGenReadResp(env->body);
            if (resp.ok() && resp->status == wire::RpcStatus::kOk) {
              ok = true;
              st->gen_max = std::max(st->gen_max, resp->value);
            }
          }
          ok ? ++st->gen_read_ok : ++st->gen_read_fail;
          if (st->gen_read_ok >= read_quorum) {
            st->gen_read_done = true;
            st->gen_value = st->gen_max + 1;
            // Write phase.
            for (net::NodeId wnode : config_.generator_reps) {
              ServerLink* wlink = LinkOf(wnode);
              wire::GenWriteReq wreq{config_.client_id, st->gen_value};
              wlink->rpc->Call(
                  [wreq](uint64_t id) {
                    return wire::EncodeGenWriteReq(wreq, id);
                  },
                  RpcOpts(),
                  [this, st, reps, write_quorum](Result<wire::Envelope> wenv) {
                    if (st->generation != generation_ || st->finished ||
                        st->gen_write_done) {
                      return;
                    }
                    bool wok = false;
                    if (wenv.ok()) {
                      auto wresp = wire::DecodeGenWriteResp(wenv->body);
                      wok = wresp.ok() &&
                            wresp->status == wire::RpcStatus::kOk;
                    }
                    wok ? ++st->gen_write_ok : ++st->gen_write_fail;
                    if (st->gen_write_ok >= write_quorum) {
                      st->gen_write_done = true;
                      StartRecoveryCopy(st);
                    } else if (st->gen_write_fail > reps - write_quorum) {
                      st->gen_write_done = true;
                      FinishInit(st, Status::Unavailable(
                                         "generator write quorum failed"));
                    }
                  });
            }
          } else if (st->gen_read_fail > reps - read_quorum) {
            st->gen_read_done = true;
            FinishInit(st, Status::Unavailable(
                               "generator read quorum failed"));
          }
        });
  }
}

void LogClient::StartRecoveryCopy(std::shared_ptr<InitState> st) {
  view_ = MergedLogView::Build(st->intervals);
  epoch_ = st->gen_value;
  if (view_.MaxEpoch().has_value() && epoch_ <= *view_.MaxEpoch()) {
    FinishInit(st, Status::Internal("generator epoch not above log epochs"));
    return;
  }

  const std::optional<Lsn> high = view_.HighLsn();
  if (!high.has_value()) {
    next_lsn_ = 1;
    ChooseWriteSet();
    FinishInit(st, Status::OK());
    return;
  }
  st->high = *high;

  // The most recent δ records may each be partially written; read them
  // all back (Section 4.2's generalization of the single-record copy).
  const Lsn delta = std::min<Lsn>(config_.delta, st->high);
  for (Lsn lsn = st->high - delta + 1; lsn <= st->high; ++lsn) {
    st->tail_lsns.push_back(lsn);
  }

  // Sequential async read of each tail record.
  auto read_next = std::make_shared<std::function<void()>>();
  *read_next = [this, st, read_next]() {
    if (st->generation != generation_ || st->finished) return;
    if (st->tail_cursor >= st->tail_lsns.size()) {
      // All tail records read: choose targets and copy.
      ChooseWriteSet();
      for (net::NodeId node : write_set_) st->targets.push_back(node);
      if (st->targets.size() < static_cast<size_t>(config_.copies)) {
        FinishInit(st, Status::Unavailable("not enough copy targets"));
        return;
      }

      // Build the copy batch: δ tail records re-stamped with the new
      // epoch, then δ not-present records above the old end of log.
      std::vector<LogRecord> copies;
      for (const auto& [lsn, rec] : st->tail_records) {
        LogRecord copy = rec;
        copy.epoch = epoch_;
        copies.push_back(std::move(copy));
      }
      const Lsn delta2 = std::min<Lsn>(config_.delta, st->high);
      for (Lsn lsn = st->high + 1; lsn <= st->high + delta2; ++lsn) {
        LogRecord np;
        np.lsn = lsn;
        np.epoch = epoch_;
        np.present = false;
        copies.push_back(std::move(np));
      }
      next_lsn_ = st->high + delta2 + 1;

      // Chunk the copies so each CopyLog call fits in a network packet.
      std::vector<std::vector<LogRecord>> chunks;
      {
        std::vector<LogRecord> chunk;
        size_t bytes = wire::RecordBatchOverhead();
        for (const LogRecord& r : copies) {
          const size_t cost = wire::EncodedRecordSize(r);
          if (!chunk.empty() && bytes + cost > config_.mtu_payload) {
            chunks.push_back(std::move(chunk));
            chunk.clear();
            bytes = wire::RecordBatchOverhead();
          }
          chunk.push_back(r);
          bytes += cost;
        }
        if (!chunk.empty()) chunks.push_back(std::move(chunk));
      }
      const size_t copy_calls_needed =
          chunks.size() * st->targets.size();

      for (net::NodeId node : st->targets) {
        ServerLink* link = LinkOf(node);
        for (const std::vector<LogRecord>& chunk : chunks) {
          wire::CopyLogReq creq;
          creq.client = config_.client_id;
          creq.epoch = epoch_;
          creq.records = chunk;
          link->rpc->Call(
              [creq](uint64_t id) {
                return wire::EncodeCopyLogReq(creq, id);
              },
              RpcOpts(),
              [this, st, node, copies,
               copy_calls_needed](Result<wire::Envelope> env) {
                if (st->generation != generation_ || st->finished) return;
                bool ok = false;
                bool shed = false;
                if (env.ok()) {
                  auto resp = wire::DecodeCopyLogResp(env->body);
                  ok = resp.ok() && resp->status == wire::RpcStatus::kOk;
                  shed = resp.ok() &&
                         resp->status == wire::RpcStatus::kOverloaded;
                }
                if (!ok) {
                  // An explicit shed is not "server down": report
                  // Overloaded so the caller retries with backoff rather
                  // than treating the cluster as unavailable.
                  FinishInit(st, shed ? Status::Overloaded(
                                            "CopyLog shed by server")
                                      : Status::Unavailable(
                                            "CopyLog failed"));
                  return;
                }
                if (++st->copy_acks < copy_calls_needed) {
                  return;
                }
              // All copies staged: install everywhere.
              for (net::NodeId inode : st->targets) {
                ServerLink* ilink = LinkOf(inode);
                wire::InstallCopiesReq ireq{config_.client_id, epoch_};
                ilink->rpc->Call(
                    [ireq](uint64_t id) {
                      return wire::EncodeInstallCopiesReq(ireq, id);
                    },
                    RpcOpts(),
                    [this, st, inode, copies](Result<wire::Envelope> ienv) {
                      if (st->generation != generation_ || st->finished) {
                        return;
                      }
                      bool iok = false;
                      bool ished = false;
                      if (ienv.ok()) {
                        auto iresp = wire::DecodeInstallCopiesResp(ienv->body);
                        iok = iresp.ok() &&
                              iresp->status == wire::RpcStatus::kOk;
                        ished = iresp.ok() &&
                                iresp->status == wire::RpcStatus::kOverloaded;
                      }
                      if (!iok) {
                        FinishInit(st, ished ? Status::Overloaded(
                                                   "InstallCopies shed "
                                                   "by server")
                                             : Status::Unavailable(
                                                   "InstallCopies failed"));
                        return;
                      }
                      if (++st->install_acks <
                          static_cast<size_t>(config_.copies)) {
                        return;
                      }
                      // Recovery complete: update the cached view and the
                      // per-link stream positions.
                      for (const LogRecord& r : copies) {
                        std::vector<ServerId> holders(st->targets.begin(),
                                                      st->targets.end());
                        view_.NoteWrite(r.lsn, r.epoch, holders);
                      }
                      for (net::NodeId tnode : st->targets) {
                        ServerLink* tlink = LinkOf(tnode);
                        tlink->sent_high = next_lsn_ - 1;
                        tlink->acked_high =
                            std::max(tlink->acked_high, next_lsn_ - 1);
                      }
                      FinishInit(st, Status::OK());
                    });
              }
            });
        }
      }
      return;
    }

    // Read one tail record from any holder.
    const Lsn lsn = st->tail_lsns[st->tail_cursor];
    const MergedLogView::Segment* seg = view_.Find(lsn);
    if (seg == nullptr) {
      // A hole inside the last δ records means the record was partially
      // written and its holder did not answer IntervalList; it will be
      // superseded by a not-present record. Synthesize nothing.
      ++st->tail_cursor;
      (*read_next)();
      return;
    }
    auto holders = std::make_shared<std::vector<ServerId>>(seg->servers);
    auto attempt = std::make_shared<std::function<void(size_t)>>();
    *attempt = [this, st, read_next, attempt, holders, lsn](size_t index) {
      if (st->generation != generation_ || st->finished) return;
      if (index >= holders->size()) {
        FinishInit(st,
                   Status::Unavailable("no holder of a tail record answers"));
        return;
      }
      ServerLink* link = LinkOf((*holders)[index]);
      if (link == nullptr) {
        (*attempt)(index + 1);
        return;
      }
      EnsureConnected(link);
      wire::ReadLogReq req{config_.client_id, lsn};
      link->rpc->Call(
          [req](uint64_t id) {
            return wire::EncodeReadLogReq(
                wire::MessageType::kReadLogForwardReq, req, id);
          },
          RpcOpts(),
          [this, st, read_next, attempt, index,
           lsn](Result<wire::Envelope> env) {
            if (st->generation != generation_ || st->finished) return;
            if (env.ok()) {
              auto resp = wire::DecodeReadLogResp(env->body);
              if (resp.ok() && resp->status == wire::RpcStatus::kOk &&
                  !resp->records.empty() &&
                  resp->records.front().lsn == lsn) {
                st->tail_records[lsn] = resp->records.front();
                ++st->tail_cursor;
                (*read_next)();
                return;
              }
            }
            (*attempt)(index + 1);
          });
    };
    (*attempt)(0);
  };
  (*read_next)();
}

void LogClient::Crash() {
  if (crashed_) return;
  crashed_ = true;
  initialized_ = false;
  ++generation_;
  if (retry_timer_ != 0) {
    sim_->Cancel(retry_timer_);
    retry_timer_ = 0;
  }
  force_waiters_.clear();
  force_ctx_cache_ = {};
  force_ctx_valid_spans_ = 0;
  pending_.clear();
  unacked_sent_records_ = 0;
  read_cache_.clear();
  for (net::NodeId node : write_set_) LeaveWriteSetMember(node);
  write_set_.clear();
  links_.clear();  // RpcClient destructors fail pending calls (guarded)
  endpoint_->Crash();
  for (auto& nic : nics_) nic->SetUp(false);
  for (size_t i = 0; i < networks_.size(); ++i) {
    networks_[i]->Detach(config_.node_id);
  }
}

}  // namespace dlog::client
