#include "client/replicated_log.h"

#include <algorithm>
#include <cassert>

namespace dlog::client {

ReplicatedLog::ReplicatedLog(ClientId client,
                             std::vector<LogServerStub*> servers,
                             epoch::ReplicatedIdGenerator* generator,
                             Options options)
    : client_(client),
      servers_(std::move(servers)),
      generator_(generator),
      options_(options) {
  assert(options_.copies >= 1);
  assert(static_cast<size_t>(options_.copies) <= servers_.size());
}

LogServerStub* ReplicatedLog::FindServer(ServerId id) const {
  for (LogServerStub* s : servers_) {
    if (s->id() == id) return s;
  }
  return nullptr;
}

Result<std::vector<LogServerStub*>> ReplicatedLog::ChooseWriteSet() {
  std::vector<LogServerStub*> chosen;
  // Sticky preference: "clients should attempt to perform consecutive
  // writes to the same servers" to keep interval lists short.
  for (ServerId id : write_set_) {
    LogServerStub* s = FindServer(id);
    if (s != nullptr && s->IsAvailable()) chosen.push_back(s);
    if (chosen.size() == static_cast<size_t>(options_.copies)) return chosen;
  }
  for (LogServerStub* s : servers_) {
    if (!s->IsAvailable()) continue;
    if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) continue;
    chosen.push_back(s);
    if (chosen.size() == static_cast<size_t>(options_.copies)) return chosen;
  }
  return Status::Unavailable("fewer than N servers available for WriteLog");
}

Status ReplicatedLog::WriteRecord(const LogRecord& record,
                                  const std::vector<LogServerStub*>& targets) {
  std::vector<ServerId> succeeded;
  for (LogServerStub* s : targets) {
    // A shed (Overloaded) means the server is up but refusing load:
    // re-offer a bounded number of times before giving up on it. A down
    // server (Unavailable) is not retried at all.
    Status st = s->ServerWriteLog(client_, record);
    for (int retry = 0; st.IsOverloaded() && retry < options_.shed_retries;
         ++retry) {
      st = s->ServerWriteLog(client_, record);
    }
    if (st.ok()) {
      succeeded.push_back(s->id());
    }
  }
  // Substitute for servers that failed mid-operation ("a client can
  // switch servers when necessary").
  if (succeeded.size() < static_cast<size_t>(options_.copies)) {
    for (LogServerStub* s : servers_) {
      if (succeeded.size() >= static_cast<size_t>(options_.copies)) break;
      if (std::find(succeeded.begin(), succeeded.end(), s->id()) !=
          succeeded.end()) {
        continue;
      }
      if (s->ServerWriteLog(client_, record).ok()) {
        succeeded.push_back(s->id());
      }
    }
  }
  if (!succeeded.empty()) {
    view_.NoteWrite(record.lsn, record.epoch, succeeded);
  }
  if (succeeded.size() < static_cast<size_t>(options_.copies)) {
    // The record is now partially written; the client cannot claim the
    // operation happened and must re-initialize before continuing, which
    // will make the partial write atomic.
    initialized_ = false;
    return Status::Unavailable("record written to fewer than N servers");
  }
  write_set_ = succeeded;
  return Status::OK();
}

Status ReplicatedLog::Init() {
  initialized_ = false;
  const int m = static_cast<int>(servers_.size());
  const int n = options_.copies;

  // Gather interval lists from at least M-N+1 servers: "This number
  // guarantees that a merged set of interval lists will contain at least
  // one server storing each log record."
  std::vector<ServerInterval> intervals;
  int responded = 0;
  for (LogServerStub* s : servers_) {
    Result<IntervalList> r = s->ServerIntervalList(client_);
    if (!r.ok()) continue;
    ++responded;
    for (const Interval& iv : *r) {
      intervals.push_back(ServerInterval{s->id(), iv});
    }
  }
  if (responded < m - n + 1) {
    return Status::Unavailable(
        "fewer than M-N+1 servers responded to IntervalList");
  }
  view_ = MergedLogView::Build(intervals);

  // "It must also obtain a new epoch number ... higher than any other
  // epoch number used during the previous operation of this client."
  DLOG_ASSIGN_OR_RETURN(epoch_, generator_->NewId());
  if (view_.MaxEpoch().has_value() && epoch_ <= *view_.MaxEpoch()) {
    return Status::Internal(
        "generator issued an epoch not above the log's epochs");
  }

  const std::optional<Lsn> high = view_.HighLsn();
  if (!high.has_value()) {
    // Empty log: nothing can be partially written.
    next_lsn_ = 1;
    initialized_ = true;
    return Status::OK();
  }

  // "Since there is doubt concerning only the log record with the highest
  // LSN, it is copied from a log server storing it ... to N log servers
  // ... with the client node's new epoch number."
  const MergedLogView::Segment* seg = view_.Find(*high);
  assert(seg != nullptr);
  Result<LogRecord> tail = Status::Unavailable("no holder reachable");
  for (ServerId id : seg->servers) {
    LogServerStub* s = FindServer(id);
    if (s == nullptr) continue;
    tail = s->ServerReadLog(client_, *high);
    if (tail.ok()) break;
  }
  if (!tail.ok()) return tail.status();

  DLOG_ASSIGN_OR_RETURN(std::vector<LogServerStub*> targets,
                        ChooseWriteSet());

  LogRecord copy = *tail;
  copy.epoch = epoch_;
  DLOG_RETURN_IF_ERROR(WriteRecord(copy, targets));

  // "Finally, a log record marked as not present is written to N log
  // servers with an LSN one higher than that of the copied record."
  LogRecord not_present;
  not_present.lsn = *high + 1;
  not_present.epoch = epoch_;
  not_present.present = false;
  DLOG_RETURN_IF_ERROR(WriteRecord(not_present, targets));

  next_lsn_ = *high + 2;
  initialized_ = true;
  return Status::OK();
}

Result<Lsn> ReplicatedLog::WriteLog(const Bytes& data) {
  if (!initialized_) {
    return Status::FailedPrecondition("replicated log not initialized");
  }
  DLOG_ASSIGN_OR_RETURN(std::vector<LogServerStub*> targets,
                        ChooseWriteSet());
  LogRecord record;
  record.lsn = next_lsn_;
  record.epoch = epoch_;
  record.present = true;
  record.data = data;
  DLOG_RETURN_IF_ERROR(WriteRecord(record, targets));
  return next_lsn_++;
}

Status ReplicatedLog::WriteLogCrashAfter(const Bytes& data,
                                         int server_writes) {
  if (!initialized_) {
    return Status::FailedPrecondition("replicated log not initialized");
  }
  Result<std::vector<LogServerStub*>> targets = ChooseWriteSet();
  if (targets.ok()) {
    LogRecord record;
    record.lsn = next_lsn_;
    record.epoch = epoch_;
    record.present = true;
    record.data = data;
    int written = 0;
    for (LogServerStub* s : *targets) {
      if (written >= server_writes) break;
      if (s->ServerWriteLog(client_, record).ok()) ++written;
    }
  }
  initialized_ = false;  // the client is gone
  return Status::Aborted("crash injected during WriteLog");
}

Result<Bytes> ReplicatedLog::ReadLog(Lsn lsn) {
  if (!initialized_) {
    return Status::FailedPrecondition("replicated log not initialized");
  }
  if (lsn == kNoLsn) return Status::InvalidArgument("LSN 0 is reserved");
  const std::optional<Lsn> high = view_.HighLsn();
  if (!high.has_value() || lsn > *high) {
    // "If the requested record is beyond the end of the log ... an
    // exception is signaled."
    return Status::OutOfRange("beyond end of log");
  }
  const MergedLogView::Segment* seg = view_.Find(lsn);
  if (seg == nullptr) {
    return Status::Internal("merged view has an interior hole");
  }
  for (ServerId id : seg->servers) {
    LogServerStub* s = FindServer(id);
    if (s == nullptr) continue;
    Result<LogRecord> r = s->ServerReadLog(client_, lsn);
    if (!r.ok()) continue;
    if (!r->present) {
      // "If the log record returned ... is marked not present, an
      // exception is signaled."
      return Status::NotFound("record marked not present");
    }
    return r->data.ToBytes();
  }
  return Status::Unavailable("no server holding the record is reachable");
}

Result<Lsn> ReplicatedLog::EndOfLog() const {
  if (!initialized_) {
    return Status::FailedPrecondition("replicated log not initialized");
  }
  return view_.HighLsn().value_or(kNoLsn);
}

}  // namespace dlog::client
