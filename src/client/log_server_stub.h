#ifndef DLOG_CLIENT_LOG_SERVER_STUB_H_
#define DLOG_CLIENT_LOG_SERVER_STUB_H_

#include <map>

#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"
#include "server/client_log_store.h"

namespace dlog::client {

/// The abstract log-server interface the Section 3.1 replication
/// algorithm is written against: the three operations of Section 3.1.1
/// plus the recovery pair of Section 4.2. The synchronous reference model
/// (ReplicatedLog) uses this directly; tests plug in in-memory or fault-
/// injecting implementations.
class LogServerStub {
 public:
  virtual ~LogServerStub() = default;

  virtual ServerId id() const = 0;
  /// An unavailable server fails every operation with Unavailable.
  virtual bool IsAvailable() const = 0;

  /// ServerWriteLog: "takes the LSN, epoch number, and present flag for
  /// the record as arguments (along with the data)".
  virtual Status ServerWriteLog(ClientId client, const LogRecord& record) = 0;

  /// ServerReadLog: "returns the present flag and log record with highest
  /// epoch number and the requested LSN".
  virtual Result<LogRecord> ServerReadLog(ClientId client, Lsn lsn) = 0;

  /// IntervalList: "returns the epoch number, low LSN, and high LSN for
  /// each consecutive sequence of log records stored for a client node".
  virtual Result<IntervalList> ServerIntervalList(ClientId client) = 0;

  /// CopyLog/InstallCopies (Section 4.2) for the multi-record recovery.
  virtual Status ServerCopyLog(ClientId client, const LogRecord& record) = 0;
  virtual Status ServerInstallCopies(ClientId client, Epoch epoch) = 0;
};

/// In-memory stub backed by the real per-client store semantics; the
/// workhorse of the reference-model property tests.
class InMemoryLogServerStub : public LogServerStub {
 public:
  explicit InMemoryLogServerStub(ServerId id) : id_(id) {}

  ServerId id() const override { return id_; }
  bool IsAvailable() const override { return available_; }
  void SetAvailable(bool available) { available_ = available; }
  /// Load-shedding fault injection: an up-but-overloaded server rejects
  /// writes with Overloaded (distinct from down = Unavailable) until the
  /// flag clears — the reference-model analogue of admission control.
  void SetShedding(bool shedding) { shedding_ = shedding; }

  Status ServerWriteLog(ClientId client, const LogRecord& record) override {
    if (!available_) return Status::Unavailable("server down");
    if (shedding_) return Status::Overloaded("server shedding load");
    return store_[client].Write(record);
  }

  Result<LogRecord> ServerReadLog(ClientId client, Lsn lsn) override {
    if (!available_) return Status::Unavailable("server down");
    return store_[client].Read(lsn);
  }

  Result<IntervalList> ServerIntervalList(ClientId client) override {
    if (!available_) return Status::Unavailable("server down");
    return store_[client].Intervals();
  }

  Status ServerCopyLog(ClientId client, const LogRecord& record) override {
    if (!available_) return Status::Unavailable("server down");
    return store_[client].StageCopy(record);
  }

  Status ServerInstallCopies(ClientId client, Epoch epoch) override {
    if (!available_) return Status::Unavailable("server down");
    return store_[client].InstallCopies(epoch).status();
  }

  /// Test access to the underlying store.
  server::ClientLogStore& store(ClientId client) { return store_[client]; }

 private:
  ServerId id_;
  bool available_ = true;
  bool shedding_ = false;
  std::map<ClientId, server::ClientLogStore> store_;
};

}  // namespace dlog::client

#endif  // DLOG_CLIENT_LOG_SERVER_STUB_H_
