#include "server/client_log_store.h"

#include <algorithm>
#include <cassert>

namespace dlog::server {

void ClientLogStore::AppendToStream(const LogRecord& record) {
  // Callers only append keys not yet indexed, and the stream's keys grow
  // monotonically, so the end() hint makes the insert amortized O(1)
  // (and degrades to an ordinary insert if a recovery path ever doesn't).
  index_.emplace_hint(index_.end(), std::make_pair(record.lsn, record.epoch),
                      stream_.size());
  stream_.push_back(record);
  if (!sequences_.empty()) {
    Interval& tail = sequences_.back();
    if (tail.epoch == record.epoch && record.lsn == tail.high + 1) {
      tail.high = record.lsn;
      return;
    }
  }
  sequences_.push_back(Interval{record.epoch, record.lsn, record.lsn});
}

Status ClientLogStore::Write(const LogRecord& record) {
  if (record.lsn == kNoLsn) {
    return Status::InvalidArgument("LSN 0 is reserved");
  }
  auto it = index_.find({record.lsn, record.epoch});
  if (it != index_.end()) {
    if (stream_[it->second] == record) return Status::OK();  // redelivery
    return Status::Corruption(
        "different contents for an existing <LSN, Epoch>");
  }
  if (!sequences_.empty()) {
    const Interval& tail = sequences_.back();
    // Keep both LSN and epoch non-decreasing along the stream. A repeat
    // of the tail LSN is legal only with a higher epoch (the recovery
    // re-copy of the highest record, e.g. <9,4> after <9,3> in Fig 3-3).
    if (record.epoch < tail.epoch) {
      return Status::FailedPrecondition("epoch lower than tail sequence");
    }
    if (record.lsn <= tail.high &&
        !(record.lsn == tail.high && record.epoch > tail.epoch)) {
      return Status::FailedPrecondition("LSN not beyond the stream tail");
    }
  }
  AppendToStream(record);
  return Status::OK();
}

Result<LogRecord> ClientLogStore::Read(Lsn lsn) const {
  // Highest epoch stored for this LSN: one before the first key > <lsn, max>.
  auto it = index_.upper_bound({lsn, ~Epoch{0}});
  if (it == index_.begin()) return Status::NotFound("LSN not stored");
  --it;
  if (it->first.first != lsn) return Status::NotFound("LSN not stored");
  return stream_[it->second];
}

IntervalList ClientLogStore::Intervals() const { return sequences_; }

Status ClientLogStore::StageCopy(const LogRecord& record) {
  if (record.lsn == kNoLsn) {
    return Status::InvalidArgument("LSN 0 is reserved");
  }
  staged_[record.epoch].push_back(record);
  return Status::OK();
}

Result<std::vector<LogRecord>> ClientLogStore::InstallCopies(Epoch epoch) {
  auto it = staged_.find(epoch);
  if (it == staged_.end()) return std::vector<LogRecord>{};
  std::vector<LogRecord> copies = std::move(it->second);
  staged_.erase(it);
  std::stable_sort(copies.begin(), copies.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.lsn < b.lsn;
                   });
  std::vector<LogRecord> installed;
  for (const LogRecord& r : copies) {
    auto existing = index_.find({r.lsn, r.epoch});
    if (existing != index_.end()) {
      // A retried recovery may re-install the same copy.
      if (stream_[existing->second] == r) continue;
      return Status::Corruption("conflicting copy for <LSN, Epoch>");
    }
    AppendToStream(r);
    installed.push_back(r);
  }
  return installed;
}

size_t ClientLogStore::StagedBytes(Epoch epoch) const {
  auto it = staged_.find(epoch);
  if (it == staged_.end()) return 0;
  size_t n = 0;
  for (const LogRecord& r : it->second) n += r.data.size() + 32;
  return n;
}

size_t ClientLogStore::staged_count() const {
  size_t n = 0;
  for (const auto& [epoch, records] : staged_) n += records.size();
  return n;
}

size_t ClientLogStore::TruncateBelow(Lsn below) {
  std::vector<LogRecord> retained;
  size_t removed = 0;
  for (const LogRecord& r : stream_) {
    if (r.lsn >= below) {
      retained.push_back(r);
    } else {
      ++removed;
    }
  }
  if (removed == 0) return 0;
  stream_.clear();
  index_.clear();
  sequences_.clear();
  for (const LogRecord& r : retained) AppendToStream(r);
  return removed;
}

Lsn ClientLogStore::HighestLsn() const {
  if (index_.empty()) return kNoLsn;
  return index_.rbegin()->first.first;
}

Epoch ClientLogStore::TailEpoch() const {
  if (sequences_.empty()) return 0;
  return sequences_.back().epoch;
}

ClientLogStore ClientLogStore::FromRecords(
    const std::vector<LogRecord>& records) {
  ClientLogStore store;
  for (const LogRecord& r : records) {
    // Skip exact duplicates (a record can appear in both a checkpoint
    // and the scanned tail).
    auto it = store.index_.find({r.lsn, r.epoch});
    if (it != store.index_.end()) continue;
    store.AppendToStream(r);
  }
  return store;
}

}  // namespace dlog::server
