#ifndef DLOG_SERVER_LOG_SERVER_H_
#define DLOG_SERVER_LOG_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log_types.h"
#include "flow/admission.h"
#include "forest/append_forest.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client_log_store.h"
#include "server/track_format.h"
#include "sim/cpu.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "storage/disk.h"
#include "storage/nvram.h"
#include "wire/connection.h"
#include "wire/messages.h"

namespace dlog::server {

/// Configuration of a log server node (Section 4).
struct LogServerConfig {
  net::NodeId node_id = 0;
  double cpu_mips = 4.0;
  size_t nic_ring_slots = 32;
  storage::DiskConfig disk;
  /// Battery-backed CMOS buffer size (group buffer + interval checkpoint).
  size_t nvram_bytes = 512 * 1024;
  /// Section 4.1: "two thousand instructions ... to process the log
  /// records in each message and to copy them to low latency non volatile
  /// memory", and "writing a track to disk requires an additional two
  /// thousand instructions".
  uint64_t instr_per_message = 2000;
  uint64_t instr_per_track_write = 2000;
  /// A partially filled track is flushed after this long, bounding NVRAM
  /// occupancy (records are already stable in NVRAM, so this is a
  /// capacity matter, not a durability one).
  sim::Duration flush_interval = 100 * sim::kMillisecond;
  /// Load shedding / admission control (Section 4.2: servers "are free to
  /// ignore ForceLog and WriteLog messages if they become too heavily
  /// loaded"). When `admission.enabled`, overload produces an explicit
  /// Overloaded reply with a retry-after hint; when disabled, writes are
  /// silently ignored above `admission.nvram_shed_fraction` (the legacy
  /// behavior).
  flow::AdmissionConfig admission;
  /// Reorder buffer cap per client (records held past a gap while waiting
  /// for a resend or NewInterval).
  size_t max_pending_per_client = 128;
  /// Ablation (experiment E10): when true the server behaves as if it had
  /// no battery-backed buffer — ForceLog is acknowledged only after the
  /// records reach the disk, so every force pays rotational latency.
  bool ack_after_disk = false;
  /// Max payload bytes packed into a ReadLogForward/Backward response.
  size_t read_reply_budget_bytes = 1200;
  wire::WireConfig wire;

  /// OK iff the configuration describes a runnable server (positive CPU,
  /// nonzero NIC ring, NVRAM at least one track, valid disk geometry,
  /// shed fraction in (0, 1], ...).
  Status Validate() const;
};

/// A log server node: NICs, CPU, NVRAM group buffer, one logging disk,
/// and the protocol engine implementing every operation of Figure 4-1.
///
/// Durability model (what survives Crash()):
///   * the disk contents (torn in-flight writes are lost whole);
///   * the NVRAM group buffer and interval checkpoint;
///   * the hosted generator state representatives (Appendix I).
/// Volatile and rebuilt on Restart() from NVRAM + a disk scan:
///   * per-client stores, reorder buffers, append-forest indexes,
///   * all connection state (clients see resets and reconnect).
class LogServer {
 public:
  LogServer(sim::Scheduler* sim, const LogServerConfig& config);
  ~LogServer();

  LogServer(const LogServer&) = delete;
  LogServer& operator=(const LogServer&) = delete;

  /// Attaches this server to a network (twice for dual-network setups).
  /// Must be called before traffic flows.
  void AttachNetwork(net::Network* network);

  /// Crashes the node: connections and volatile state vanish; NVRAM,
  /// disk, and generator representatives survive.
  void Crash();

  /// Restarts after a crash: replays the disk stream and the NVRAM group
  /// buffer to rebuild the per-client stores, then resumes service.
  void Restart();

  /// Media failure: the node crashes and loses its disk contents and
  /// NVRAM (e.g., a head crash plus battery drain). Clients repair the
  /// lost redundancy with LogClient::RepairLog (Section 5.3: "the repair
  /// of a log when one redundant copy is lost"). Call Restart() after.
  void WipeStorage();

  /// Media failure of the disk alone (a head crash): the node crashes and
  /// its disk contents are destroyed, but the battery-backed NVRAM — a
  /// separate device — keeps the group buffer, truncation marks, and
  /// generator representatives. The Section 5.3 repair trigger.
  void FailDisk();

  /// NVRAM battery loss: the node crashes and the group buffer, stable
  /// truncation marks, and hosted generator representatives are gone;
  /// disk-resident tracks survive. Records that were only in the buffer
  /// lose this copy (clients still hold them on N-1 other servers or in
  /// their own δ-bounded resend window).
  void LoseNvram();

  bool IsUp() const { return up_; }
  net::NodeId id() const { return config_.node_id; }

  /// Hosted generator state representative for `client` (Appendix I:
  /// "representatives of a replicated identifier generator's state will
  /// normally be implemented on log server nodes").
  storage::StableCell* generator_cell(ClientId client);

  /// Forces any buffered records to disk now (test/shutdown helper).
  void FlushNow();

  // --- Observability ---
  /// Attaches the shared causal tracer: incoming record batches close
  /// their sender's "wire.send" span, buffered records emit
  /// "nvram.buffer" instants, disk flushes emit "track.write" spans, and
  /// force acknowledgments emit "force.ack" instants.
  void SetTracer(obs::Tracer* tracer);
  /// Registers this server's counters and the NVRAM occupancy gauge
  /// under "server-<id>/...".
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  // --- Introspection for tests, figures, and experiments ---

  /// Interval list currently stored for `client` (empty if unknown).
  IntervalList IntervalsOf(ClientId client) const;
  /// All records stored for `client`, in stream write order.
  std::vector<LogRecord> RecordsOf(ClientId client) const;
  /// The append-forest indexing `client`'s disk-resident records.
  const forest::AppendForest* ForestOf(ClientId client) const;

  sim::Cpu& cpu() { return *cpu_; }
  storage::SimDisk& disk() { return *disk_; }
  storage::NvramQueue& nvram_buffer() { return *nvram_buffer_; }
  /// The NIC attached to network `i` (AttachNetwork order).
  net::Nic& nic(int i = 0) { return *nics_[i]; }
  sim::Counter& records_written() { return records_written_; }
  sim::Counter& forces_acked() { return forces_acked_; }
  sim::Counter& tracks_written() { return tracks_written_; }
  sim::Counter& missing_interval_sent() { return missing_interval_sent_; }
  sim::Counter& writes_shed() { return writes_shed_; }
  flow::AdmissionController& admission() { return admission_; }
  sim::Counter& read_rpcs() { return read_rpcs_; }
  sim::Counter& records_truncated() { return records_truncated_; }
  /// Records currently stored (online log) for `client`.
  size_t LiveRecordsOf(ClientId client) const;
  uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  struct ClientState {
    ClientLogStore store;
    /// Records received past a gap, awaiting resend or NewInterval.
    std::map<Lsn, LogRecord> pending;
    /// A NewInterval announcement: the next sequence may start here even
    /// though it does not extend the tail.
    std::optional<std::pair<Epoch, Lsn>> allowed_start;
    /// Disk locations: <LSN, Epoch> -> track number. Records not present
    /// here still sit in the NVRAM buffer.
    std::map<std::pair<Lsn, Epoch>, uint64_t> disk_location;
    /// The Section 4.3 index over this client's disk-resident records.
    forest::AppendForest forest;
  };

  /// How to send a reply for the message being handled: over the
  /// originating connection, or as a datagram to the sender (multicast
  /// record streams).
  using ReplyFn = std::function<void(Bytes)>;

  void OnAccept(wire::Connection* conn);
  void OnMessage(wire::Connection* conn, const SharedBytes& payload);
  void OnDatagram(net::NodeId src, const SharedBytes& payload);
  void HandleRecords(const ReplyFn& reply, const wire::Envelope& env,
                     bool force);
  void HandleNewInterval(const wire::Envelope& env);
  void HandleTruncate(const wire::Envelope& env);
  void HandleIntervalList(wire::Connection* conn, const wire::Envelope& env);
  void HandleReadLog(wire::Connection* conn, const wire::Envelope& env,
                     bool forward);
  void HandleCopyLog(wire::Connection* conn, const wire::Envelope& env);
  void HandleInstallCopies(wire::Connection* conn,
                           const wire::Envelope& env);
  void HandleGenRead(wire::Connection* conn, const wire::Envelope& env);
  void HandleGenWrite(wire::Connection* conn, const wire::Envelope& env);

  /// Applies one in-order record: store + NVRAM group buffer.
  /// Returns false (and sheds) if NVRAM is too full.
  bool ApplyRecord(ClientState* state, ClientId client,
                   const LogRecord& record);
  /// Drains contiguous pending records after a gap closes.
  void DrainPending(ClientState* state, ClientId client);
  /// Writes full tracks from the NVRAM buffer to disk.
  void MaybeFlush();
  void ScheduleFlushTimer();
  /// Replies on `conn` (no-op when down).
  void Reply(wire::Connection* conn, Bytes message);
  /// Serves `fn` after charging the disk read needed for `lsn` (free when
  /// the record still sits in NVRAM).
  void WithReadLatency(ClientId client, Lsn lsn, std::function<void()> fn);

  ClientState& StateOf(ClientId client);
  double NvramFraction() const;
  /// The flush backlog the buffered bytes imply, in track-sized disk
  /// writes — the admission controller's disk-queue-depth signal (SimDisk
  /// serves one write at a time, so queued tracks are delay).
  size_t FlushBacklogTracks() const;
  void RebuildFromStableStorage();
  /// Samples the NVRAM occupancy gauge after any buffer change.
  void NoteNvramLevel();

  sim::Scheduler* sim_;
  LogServerConfig config_;
  flow::AdmissionController admission_;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<wire::Endpoint> endpoint_;
  std::vector<std::unique_ptr<net::Nic>> nics_;
  std::vector<net::Network*> networks_;
  std::unique_ptr<storage::SimDisk> disk_;
  std::unique_ptr<storage::NvramQueue> nvram_buffer_;
  /// Hosted generator representatives, keyed by client (stable).
  std::map<ClientId, storage::StableCell> generator_cells_;
  /// Per-client truncation marks (records below are discarded). Stable:
  /// a few bytes in NVRAM, reapplied after the restart scan.
  std::map<ClientId, Lsn> truncate_marks_;

  /// Deferred force acknowledgments for the ack_after_disk ablation.
  struct PendingAck {
    ReplyFn reply;
    ClientId client;
    obs::SpanContext ctx;
  };
  std::vector<PendingAck> pending_acks_;

  bool up_ = true;
  /// Bumped on every Crash(); queued callbacks from a previous life check
  /// it and abandon themselves (their state died with the node).
  uint64_t generation_ = 0;
  uint64_t next_track_ = 0;       // volatile; rebuilt by scan
  bool flush_in_progress_ = false;
  /// FlushNow() sets this; cleared once the buffer drains.
  bool force_partial_flush_ = false;
  sim::EventId flush_timer_ = 0;
  // Volatile. Hash map: looked up per record batch on the hot path and
  // never iterated (deterministic order is not needed here).
  std::unordered_map<ClientId, ClientState> clients_;

  obs::Tracer* tracer_ = nullptr;
  std::string trace_node_;
  /// Context of the record batch currently being applied (parents the
  /// per-record "nvram.buffer" instants).
  obs::SpanContext current_batch_ctx_;
  /// (client, lsn, epoch) -> originating wire.send context, recorded at
  /// buffering time and consumed when the record's track flushes, so each
  /// "track.write" span is attributed to the transactions it made
  /// disk-resident. Volatile (traces of lost records stay open).
  std::map<std::tuple<ClientId, Lsn, Epoch>, obs::SpanContext> record_ctx_;

  sim::Counter records_written_;
  sim::Counter forces_acked_;
  sim::Counter tracks_written_;
  sim::Counter missing_interval_sent_;
  sim::Counter writes_shed_;
  sim::Counter read_rpcs_;
  sim::Counter records_truncated_;
  sim::TimeWeightedGauge nvram_occupancy_;
  uint64_t bytes_logged_ = 0;
};

}  // namespace dlog::server

#endif  // DLOG_SERVER_LOG_SERVER_H_
