#ifndef DLOG_SERVER_TRACK_FORMAT_H_
#define DLOG_SERVER_TRACK_FORMAT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"

namespace dlog::server {

/// One element of the merged log data stream: a log record tagged with
/// the client that owns it. "Records from different logs must be
/// interleaved in a data stream that is written sequentially to disk"
/// (Section 4.1).
struct StreamEntry {
  ClientId client = 0;
  LogRecord record;

  friend bool operator==(const StreamEntry& a, const StreamEntry& b) {
    return a.client == b.client && a.record == b.record;
  }
};

/// Encodes a single stream entry (also the NVRAM group-buffer format).
Bytes EncodeStreamEntry(const StreamEntry& entry);
Result<StreamEntry> DecodeStreamEntry(const Bytes& bytes);

/// The fixed fields of an encoded stream entry, decodable without
/// materializing the record payload — the flush path's bookkeeping
/// (disk locations, forest ranges) needs only these.
struct StreamEntryHeader {
  ClientId client = 0;
  Lsn lsn = 0;
  Epoch epoch = 0;
};
Result<StreamEntryHeader> DecodeStreamEntryHeader(const Bytes& bytes);

/// Fixed (non-payload) bytes of an encoded stream entry:
/// client(4) + lsn(8) + epoch(8) + present(1) + data length(4).
constexpr size_t kStreamEntryFixedBytes = 25;

/// Encoded size of an entry, used when packing a track.
size_t StreamEntrySize(const StreamEntry& entry);

/// Encodes a full track: CRC32C, entry count, then the entries. The
/// decoded side verifies the checksum so torn/corrupt tracks surface as
/// Corruption instead of bad data.
Bytes EncodeTrack(const std::vector<StreamEntry>& entries);
Result<std::vector<StreamEntry>> DecodeTrack(const Bytes& track);

/// Builds a track directly from already-encoded entries. The NVRAM
/// group-buffer format is exactly the track's per-entry format, so the
/// flush path concatenates the buffered bytes instead of decoding and
/// re-encoding every record. Byte-identical to EncodeTrack() over the
/// decoded equivalents.
Bytes EncodeTrackFromEncoded(const std::vector<const Bytes*>& entries);

/// Fixed per-track overhead bytes (CRC + count).
constexpr size_t kTrackOverhead = 8;

}  // namespace dlog::server

#endif  // DLOG_SERVER_TRACK_FORMAT_H_
