#ifndef DLOG_SERVER_CLIENT_LOG_STORE_H_
#define DLOG_SERVER_CLIENT_LOG_STORE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"

namespace dlog::server {

/// One client's portion of a log server's state (Section 3.1.1): the
/// records themselves (keyed <LSN, Epoch>, each with a present flag), the
/// derived interval list, and the staging area for recovery-time copies.
///
/// Semantics enforced here:
///  * stream writes: "Successive records on a log server are written with
///    non decreasing LSNs and non decreasing epoch numbers" — a Write
///    either extends the tail sequence or starts a new one at an LSN and
///    epoch that keep both monotone (gaps are allowed: the skipped
///    records live on other servers);
///  * CopyLog records may have lower LSNs but are invisible until
///    InstallCopies atomically installs every copy staged with the same
///    epoch number;
///  * duplicates (same <LSN, Epoch>, same contents) are accepted
///    idempotently — the transport may redeliver.
class ClientLogStore {
 public:
  ClientLogStore() = default;

  /// Appends `record` to the stream, subject to the monotonicity rules
  /// above. Returns FailedPrecondition for out-of-order writes and
  /// Corruption for a <LSN, Epoch> duplicate with different contents.
  Status Write(const LogRecord& record);

  /// ServerReadLog: "returns the present flag and log record with highest
  /// epoch number and the requested LSN". NotFound if the LSN is not
  /// stored at any epoch.
  Result<LogRecord> Read(Lsn lsn) const;

  /// True if a record with this exact <LSN, Epoch> is stored.
  bool Contains(Lsn lsn, Epoch epoch) const {
    return index_.count({lsn, epoch}) > 0;
  }

  /// The IntervalList operation: maximal runs of consecutive LSNs with
  /// equal epochs, in stream order.
  IntervalList Intervals() const;

  /// Stages a recovery-time copy tagged with `record.epoch` (the client's
  /// new epoch). Staged records are not readable and not in Intervals().
  /// Copies may target any LSN ("log servers accept CopyLog calls for
  /// records with LSNs that are lower than the highest...").
  Status StageCopy(const LogRecord& record);

  /// Atomically installs every record staged with `epoch` (appending them
  /// to the stream in LSN order) and returns the records actually
  /// appended (so the caller can persist them). OK and empty if none are
  /// staged.
  Result<std::vector<LogRecord>> InstallCopies(Epoch epoch);

  /// Total encoded payload bytes staged under `epoch` (capacity checks).
  size_t StagedBytes(Epoch epoch) const;

  /// Log space management (Section 5.3): discards every record with
  /// LSN < `below`, clipping intervals accordingly. Returns the number
  /// of records discarded.
  size_t TruncateBelow(Lsn below);

  /// Highest LSN in the stream (kNoLsn when empty).
  Lsn HighestLsn() const;
  /// Epoch of the tail sequence (0 when empty).
  Epoch TailEpoch() const;
  /// The LSN that would extend the tail sequence.
  Lsn ExpectedNextLsn() const { return HighestLsn() + 1; }

  size_t record_count() const { return stream_.size(); }
  size_t staged_count() const;

  /// Rebuilds state from records in original stream write order (the
  /// disk-scan recovery path). Trusts the input: no validation.
  static ClientLogStore FromRecords(const std::vector<LogRecord>& records);

  /// All stored records in stream write order (checkpoint/scan helper).
  const std::vector<LogRecord>& stream() const { return stream_; }

 private:
  /// Appends without validation and maintains the sequence list.
  void AppendToStream(const LogRecord& record);

  std::vector<LogRecord> stream_;  // write order, including installed copies
  // Index: <LSN, Epoch> -> position in stream_.
  std::map<std::pair<Lsn, Epoch>, size_t> index_;
  // Derived interval list in write order; the last element is the tail.
  std::vector<Interval> sequences_;
  // Copies staged by epoch, in arrival order.
  std::map<Epoch, std::vector<LogRecord>> staged_;
};

}  // namespace dlog::server

#endif  // DLOG_SERVER_CLIENT_LOG_STORE_H_
