#include "server/track_format.h"

#include "common/crc32c.h"

namespace dlog::server {
namespace {

void PutEntry(Encoder* enc, const StreamEntry& entry) {
  enc->PutU32(entry.client);
  enc->PutU64(entry.record.lsn);
  enc->PutU64(entry.record.epoch);
  enc->PutBool(entry.record.present);
  // Persistence is where a record's bytes leave the shared wire buffer
  // for a stable-storage image — the one copy the zero-copy path keeps.
  AddBytesCopied(entry.record.data.size());
  enc->PutBlob(entry.record.data);
}

Result<StreamEntry> GetEntry(Decoder* dec) {
  StreamEntry entry;
  DLOG_ASSIGN_OR_RETURN(entry.client, dec->GetU32());
  DLOG_ASSIGN_OR_RETURN(entry.record.lsn, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(entry.record.epoch, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(entry.record.present, dec->GetBool());
  DLOG_ASSIGN_OR_RETURN(entry.record.data, dec->GetBlob());
  return entry;
}

}  // namespace

Bytes EncodeStreamEntry(const StreamEntry& entry) {
  Bytes out;
  Encoder enc(&out);
  PutEntry(&enc, entry);
  return out;
}

Result<StreamEntry> DecodeStreamEntry(const Bytes& bytes) {
  Decoder dec(bytes);
  DLOG_ASSIGN_OR_RETURN(StreamEntry entry, GetEntry(&dec));
  if (!dec.Done()) return Status::Corruption("trailing bytes after entry");
  return entry;
}

size_t StreamEntrySize(const StreamEntry& entry) {
  // client(4) + lsn(8) + epoch(8) + present(1) + len(4) + data
  return 4 + 8 + 8 + 1 + 4 + entry.record.data.size();
}

Bytes EncodeTrack(const std::vector<StreamEntry>& entries) {
  Bytes body;
  Encoder body_enc(&body);
  body_enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const StreamEntry& e : entries) PutEntry(&body_enc, e);

  Bytes out;
  Encoder enc(&out);
  enc.PutU32(crc32c::Value(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<std::vector<StreamEntry>> DecodeTrack(const Bytes& track) {
  Decoder dec(track);
  DLOG_ASSIGN_OR_RETURN(uint32_t crc, dec.GetU32());
  const Bytes body(track.begin() + 4, track.end());
  if (crc32c::Value(body) != crc) {
    return Status::Corruption("track checksum mismatch");
  }
  DLOG_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  std::vector<StreamEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DLOG_ASSIGN_OR_RETURN(StreamEntry entry, GetEntry(&dec));
    entries.push_back(std::move(entry));
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes after track");
  return entries;
}

}  // namespace dlog::server
