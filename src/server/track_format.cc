#include "server/track_format.h"

#include "common/crc32c.h"

namespace dlog::server {
namespace {

void PutEntry(Encoder* enc, const StreamEntry& entry) {
  enc->PutU32(entry.client);
  enc->PutU64(entry.record.lsn);
  enc->PutU64(entry.record.epoch);
  enc->PutBool(entry.record.present);
  // Persistence is where a record's bytes leave the shared wire buffer
  // for a stable-storage image — the one copy the zero-copy path keeps.
  AddBytesCopied(entry.record.data.size());
  enc->PutBlob(entry.record.data);
}

Result<StreamEntry> GetEntry(Decoder* dec) {
  StreamEntry entry;
  DLOG_ASSIGN_OR_RETURN(entry.client, dec->GetU32());
  DLOG_ASSIGN_OR_RETURN(entry.record.lsn, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(entry.record.epoch, dec->GetU64());
  DLOG_ASSIGN_OR_RETURN(entry.record.present, dec->GetBool());
  DLOG_ASSIGN_OR_RETURN(entry.record.data, dec->GetBlob());
  return entry;
}

}  // namespace

Bytes EncodeStreamEntry(const StreamEntry& entry) {
  Bytes out;
  out.reserve(StreamEntrySize(entry));
  Encoder enc(&out);
  PutEntry(&enc, entry);
  return out;
}

Result<StreamEntry> DecodeStreamEntry(const Bytes& bytes) {
  Decoder dec(bytes);
  DLOG_ASSIGN_OR_RETURN(StreamEntry entry, GetEntry(&dec));
  if (!dec.Done()) return Status::Corruption("trailing bytes after entry");
  return entry;
}

Result<StreamEntryHeader> DecodeStreamEntryHeader(const Bytes& bytes) {
  Decoder dec(bytes);
  StreamEntryHeader header;
  DLOG_ASSIGN_OR_RETURN(header.client, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(header.lsn, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(header.epoch, dec.GetU64());
  return header;
}

size_t StreamEntrySize(const StreamEntry& entry) {
  return kStreamEntryFixedBytes + entry.record.data.size();
}

Bytes EncodeTrack(const std::vector<StreamEntry>& entries) {
  size_t body_size = 4;
  for (const StreamEntry& e : entries) body_size += StreamEntrySize(e);
  Bytes body;
  body.reserve(body_size);
  Encoder body_enc(&body);
  body_enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const StreamEntry& e : entries) PutEntry(&body_enc, e);

  Bytes out;
  out.reserve(4 + body.size());
  Encoder enc(&out);
  enc.PutU32(crc32c::Value(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes EncodeTrackFromEncoded(const std::vector<const Bytes*>& entries) {
  size_t total = 4 + 4;  // checksum + count
  for (const Bytes* e : entries) total += e->size();
  Bytes out;
  out.reserve(total);
  Encoder enc(&out);
  enc.PutU32(0);  // checksum placeholder, patched once the body is built
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const Bytes* e : entries) {
    // The same stable-storage copy EncodeTrack's PutEntry would count.
    AddBytesCopied(e->size() - kStreamEntryFixedBytes);
    out.insert(out.end(), e->begin(), e->end());
  }
  const uint32_t crc = crc32c::Value(out.data() + 4, out.size() - 4);
  out[0] = static_cast<uint8_t>(crc);
  out[1] = static_cast<uint8_t>(crc >> 8);
  out[2] = static_cast<uint8_t>(crc >> 16);
  out[3] = static_cast<uint8_t>(crc >> 24);
  return out;
}

Result<std::vector<StreamEntry>> DecodeTrack(const Bytes& track) {
  Decoder dec(track);
  DLOG_ASSIGN_OR_RETURN(uint32_t crc, dec.GetU32());
  if (crc32c::Value(track.data() + 4, track.size() - 4) != crc) {
    return Status::Corruption("track checksum mismatch");
  }
  DLOG_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  std::vector<StreamEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DLOG_ASSIGN_OR_RETURN(StreamEntry entry, GetEntry(&dec));
    entries.push_back(std::move(entry));
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes after track");
  return entries;
}

}  // namespace dlog::server
