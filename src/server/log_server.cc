#include "server/log_server.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::server {

Status LogServerConfig::Validate() const {
  if (cpu_mips <= 0) {
    return Status::InvalidArgument("cpu_mips must be > 0");
  }
  if (nic_ring_slots == 0) {
    return Status::InvalidArgument("nic_ring_slots must be > 0");
  }
  DLOG_RETURN_IF_ERROR(disk.Validate());
  if (nvram_bytes == 0) {
    return Status::InvalidArgument("nvram_bytes must be > 0");
  }
  if (flush_interval <= 0) {
    return Status::InvalidArgument("flush_interval must be > 0");
  }
  DLOG_RETURN_IF_ERROR(admission.Validate());
  if (max_pending_per_client == 0) {
    return Status::InvalidArgument("max_pending_per_client must be > 0");
  }
  if (read_reply_budget_bytes == 0) {
    return Status::InvalidArgument("read_reply_budget_bytes must be > 0");
  }
  return Status::OK();
}

LogServer::LogServer(sim::Scheduler* sim, const LogServerConfig& config)
    : sim_(sim), config_(config), admission_(config.admission) {
  DLOG_CHECK_OK(config.Validate());
  cpu_ = std::make_unique<sim::Cpu>(sim, config.cpu_mips, "server-cpu");
  endpoint_ = std::make_unique<wire::Endpoint>(sim, cpu_.get(),
                                               config.node_id, config.wire);
  disk_ = std::make_unique<storage::SimDisk>(sim, config.disk, "log-disk");
  nvram_buffer_ = std::make_unique<storage::NvramQueue>(config.nvram_bytes);
  endpoint_->SetAcceptHandler(
      [this](wire::Connection* conn) { OnAccept(conn); });
  endpoint_->SetDatagramHandler(
      [this](net::NodeId src, const SharedBytes& payload) {
        OnDatagram(src, payload);
      });
}

LogServer::~LogServer() {
  if (flush_timer_ != 0) sim_->Cancel(flush_timer_);
}

void LogServer::AttachNetwork(net::Network* network) {
  auto nic = std::make_unique<net::Nic>(sim_, config_.nic_ring_slots);
  network->Attach(config_.node_id, nic.get());
  endpoint_->AttachNetwork(network, nic.get());
  networks_.push_back(network);
  nics_.push_back(std::move(nic));
}

storage::StableCell* LogServer::generator_cell(ClientId client) {
  return &generator_cells_[client];
}

void LogServer::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  trace_node_ = "server-" + std::to_string(config_.node_id);
}

void LogServer::RegisterMetrics(obs::MetricsRegistry* registry) const {
  const std::string node = "server-" + std::to_string(config_.node_id);
  const std::string prefix = node + "/log/";
  registry->RegisterCounter(prefix + "records_written", &records_written_);
  registry->RegisterCounter(prefix + "forces_acked", &forces_acked_);
  registry->RegisterCounter(prefix + "tracks_written", &tracks_written_);
  registry->RegisterCounter(prefix + "missing_interval_sent",
                            &missing_interval_sent_);
  registry->RegisterCounter(prefix + "writes_shed", &writes_shed_);
  registry->RegisterCounter(prefix + "read_rpcs", &read_rpcs_);
  registry->RegisterCounter(prefix + "records_truncated",
                            &records_truncated_);
  // Cumulative CPU busy time: windowed telemetry diffs this per sampling
  // window into a per-server utilization series — the online imbalance
  // signal (deterministic on any engine, unlike the profiler's probes).
  registry->RegisterCounter(node + "/cpu/busy_ns", &cpu_->busy_ns());
  registry->RegisterTimeWeightedGauge(node + "/nvram/occupancy_bytes",
                                      &nvram_occupancy_);
  admission_.RegisterMetrics(registry, node + "/flow/");
}

void LogServer::NoteNvramLevel() {
  nvram_occupancy_.Set(sim_->Now(),
                       static_cast<double>(nvram_buffer_->used_bytes()));
}

LogServer::ClientState& LogServer::StateOf(ClientId client) {
  return clients_[client];
}

double LogServer::NvramFraction() const {
  return static_cast<double>(nvram_buffer_->used_bytes()) /
         static_cast<double>(nvram_buffer_->capacity());
}

size_t LogServer::FlushBacklogTracks() const {
  const size_t capacity = config_.disk.track_bytes - kTrackOverhead;
  if (capacity == 0) return 0;
  return nvram_buffer_->used_bytes() / capacity;
}

void LogServer::OnAccept(wire::Connection* conn) {
  conn->SetMessageHandler(
      [this, conn](const SharedBytes& payload) { OnMessage(conn, payload); });
}

void LogServer::Reply(wire::Connection* conn, Bytes message) {
  if (!up_ || conn == nullptr || conn->IsClosed()) return;
  conn->Send(std::move(message));
}

void LogServer::OnMessage(wire::Connection* conn,
                          const SharedBytes& payload) {
  if (!up_) return;
  Result<wire::Envelope> env = wire::DecodeEnvelope(payload);
  if (!env.ok()) return;  // garbled packet: the medium is lossy anyway

  // Record-bearing messages cost the Section 4.1 processing budget; the
  // per-packet budget was already charged by the endpoint.
  uint64_t extra_instr = 0;
  switch (env->type) {
    case wire::MessageType::kWriteLog:
    case wire::MessageType::kForceLog:
    case wire::MessageType::kCopyLogReq:
      extra_instr = config_.instr_per_message;
      break;
    default:
      break;
  }

  const uint64_t generation = generation_;
  auto dispatch = [this, conn, env = *std::move(env), generation]() {
    if (generation != generation_ || !up_) return;
    const ReplyFn reply = [this, conn](Bytes message) {
      Reply(conn, std::move(message));
    };
    switch (env.type) {
      case wire::MessageType::kWriteLog:
        HandleRecords(reply, env, /*force=*/false);
        break;
      case wire::MessageType::kForceLog:
        HandleRecords(reply, env, /*force=*/true);
        break;
      case wire::MessageType::kNewInterval:
        HandleNewInterval(env);
        break;
      case wire::MessageType::kTruncateLog:
        HandleTruncate(env);
        break;
      case wire::MessageType::kIntervalListReq:
        HandleIntervalList(conn, env);
        break;
      case wire::MessageType::kReadLogForwardReq:
        HandleReadLog(conn, env, /*forward=*/true);
        break;
      case wire::MessageType::kReadLogBackwardReq:
        HandleReadLog(conn, env, /*forward=*/false);
        break;
      case wire::MessageType::kCopyLogReq:
        HandleCopyLog(conn, env);
        break;
      case wire::MessageType::kInstallCopiesReq:
        HandleInstallCopies(conn, env);
        break;
      case wire::MessageType::kGenReadReq:
        HandleGenRead(conn, env);
        break;
      case wire::MessageType::kGenWriteReq:
        HandleGenWrite(conn, env);
        break;
      default:
        break;  // responses and client-bound messages: not for us
    }
  };
  if (extra_instr > 0) {
    cpu_->Execute(extra_instr, std::move(dispatch));
  } else {
    dispatch();
  }
}

bool LogServer::ApplyRecord(ClientState* state, ClientId client,
                            const LogRecord& record) {
  if (state->store.Contains(record.lsn, record.epoch)) {
    // Transport-level redelivery: already stored (and already in NVRAM
    // or on disk) — acknowledge progress without double-writing.
    return true;
  }
  const StreamEntry entry{client, record};
  Bytes encoded = EncodeStreamEntry(entry);
  if (nvram_buffer_->used_bytes() + encoded.size() >
      nvram_buffer_->capacity()) {
    writes_shed_.Increment();
    return false;
  }
  Status st = state->store.Write(record);
  if (!st.ok()) {
    // Out-of-order or conflicting record: drop it. The client's own
    // end-to-end acknowledgment discipline recovers.
    return false;
  }
  Status nv = nvram_buffer_->Append(std::move(encoded));
  assert(nv.ok());
  (void)nv;
  records_written_.Increment();
  bytes_logged_ += record.data.size();
  NoteNvramLevel();
  if (tracer_ != nullptr && current_batch_ctx_.valid()) {
    obs::SpanContext instant =
        tracer_->Instant("nvram.buffer", trace_node_, current_batch_ctx_);
    tracer_->AddArg(instant, "client", client);
    tracer_->AddArg(instant, "lsn", record.lsn);
    tracer_->AddArg(instant, "epoch", record.epoch);
    record_ctx_[{client, record.lsn, record.epoch}] = current_batch_ctx_;
  }
  ScheduleFlushTimer();
  return true;
}

void LogServer::DrainPending(ClientState* state, ClientId client) {
  while (!state->pending.empty()) {
    auto it = state->pending.begin();
    if (it->first <= state->store.HighestLsn()) {
      // Arrived via another path meanwhile.
      state->pending.erase(it);
      continue;
    }
    if (it->first != state->store.ExpectedNextLsn()) break;
    const LogRecord record = it->second;
    state->pending.erase(it);
    if (!ApplyRecord(state, client, record)) break;
  }
}

void LogServer::OnDatagram(net::NodeId src, const SharedBytes& payload) {
  if (!up_) return;
  Result<wire::Envelope> env = wire::DecodeEnvelope(payload);
  if (!env.ok()) return;
  // Only the asynchronous record-stream messages may travel as
  // datagrams; everything else needs a connection.
  if (env->type != wire::MessageType::kWriteLog &&
      env->type != wire::MessageType::kForceLog &&
      env->type != wire::MessageType::kNewInterval) {
    return;
  }
  const uint64_t generation = generation_;
  cpu_->Execute(config_.instr_per_message, [this, src,
                                            env = *std::move(env),
                                            generation]() {
    if (generation != generation_ || !up_) return;
    if (env.type == wire::MessageType::kNewInterval) {
      HandleNewInterval(env);
      return;
    }
    const ReplyFn reply = [this, src](Bytes message) {
      if (up_) endpoint_->SendDatagram(src, message);
    };
    HandleRecords(reply, env,
                  /*force=*/env.type == wire::MessageType::kForceLog);
  });
}

void LogServer::HandleRecords(const ReplyFn& reply,
                              const wire::Envelope& env, bool force) {
  Result<wire::RecordBatch> batch = wire::DecodeRecordBatch(env.body);
  if (!batch.ok()) return;

  // The batch arrived: close the sender's wire.send span (the shared
  // tracer makes the client-minted id resolvable here).
  const obs::SpanContext batch_ctx{batch->trace, batch->span};
  if (tracer_ != nullptr) tracer_->EndSpan(batch_ctx);

  // "They are free to ignore ForceLog and WriteLog messages if they
  // become too heavily loaded." With admission control enabled the
  // refusal is explicit: an Overloaded reply carrying a retry-after hint
  // and this client's stored high LSN, so the client backs off without
  // miscounting the server's progress. Disabled, the batch is shed
  // silently (the legacy behavior).
  const flow::AdmissionController::Decision decision =
      admission_.Admit(NvramFraction(), FlushBacklogTracks());
  if (!decision.admit) {
    writes_shed_.Increment();
    if (config_.admission.enabled) {
      wire::OverloadedMsg shed;
      shed.client = batch->client;
      shed.shed_type = static_cast<uint8_t>(
          force ? wire::MessageType::kForceLog : wire::MessageType::kWriteLog);
      auto it = clients_.find(batch->client);
      shed.high_lsn =
          it == clients_.end() ? kNoLsn : it->second.store.HighestLsn();
      shed.retry_after_us = decision.retry_after / sim::kMicrosecond;
      admission_.overload_replies().Increment();
      if (tracer_ != nullptr) {
        // Root the instant when the batch carried no trace context (sheds
        // mostly hit background streaming, which is untraced).
        obs::SpanContext instant =
            batch_ctx.valid()
                ? tracer_->Instant("flow.shed", trace_node_, batch_ctx)
                : tracer_->StartTrace("flow.shed", trace_node_);
        tracer_->AddArg(instant, "client", shed.client);
        tracer_->AddArg(instant, "retry_after_us", shed.retry_after_us);
        tracer_->EndSpan(instant);
      }
      reply(wire::EncodeOverloaded(shed));
    }
    MaybeFlush();
    return;
  }

  current_batch_ctx_ = batch_ctx;
  ClientState& state = StateOf(batch->client);
  std::vector<LogRecord> records = batch->records;
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              if (a.lsn != b.lsn) return a.lsn < b.lsn;
              return a.epoch < b.epoch;
            });

  for (const LogRecord& record : records) {
    const Lsn high = state.store.HighestLsn();
    if (state.store.record_count() == 0) {
      // First contact: anything starts the stream.
      ApplyRecord(&state, batch->client, record);
      continue;
    }
    if (record.lsn <= high) {
      // Redelivery or a recovery-style overwrite of the tail record;
      // ClientLogStore accepts the legal cases idempotently.
      if (record.lsn == high) ApplyRecord(&state, batch->client, record);
      continue;
    }
    const bool contiguous = record.lsn == state.store.ExpectedNextLsn();
    const bool new_epoch = record.epoch > state.store.TailEpoch();
    bool announced = false;
    if (state.allowed_start.has_value() &&
        state.allowed_start->first == record.epoch &&
        state.allowed_start->second == record.lsn) {
      announced = true;
      state.allowed_start.reset();
    }
    if (contiguous || new_epoch || announced) {
      ApplyRecord(&state, batch->client, record);
      DrainPending(&state, batch->client);
    } else {
      // Same-epoch gap: hold the record and prompt the client.
      if (state.pending.size() < config_.max_pending_per_client) {
        state.pending[record.lsn] = record;
      }
    }
  }

  if (!state.pending.empty()) {
    // "It notifies the client of the missing interval immediately."
    wire::MissingIntervalMsg miss;
    miss.low = state.store.ExpectedNextLsn();
    miss.high = state.pending.begin()->first - 1;
    if (miss.low <= miss.high) {
      missing_interval_sent_.Increment();
      reply(wire::EncodeMissingInterval(miss));
    }
  }

  if (force) {
    if (config_.ack_after_disk) {
      // No-NVRAM ablation: the acknowledgment waits for the disk.
      pending_acks_.push_back(PendingAck{reply, batch->client, batch_ctx});
      FlushNow();
    } else {
      // Records are stable the moment they reach NVRAM, so the force is
      // acknowledged without waiting for the disk.
      wire::NewHighLsnMsg ack;
      ack.new_high_lsn = state.store.HighestLsn();
      forces_acked_.Increment();
      if (tracer_ != nullptr) {
        obs::SpanContext instant =
            tracer_->Instant("force.ack", trace_node_, batch_ctx);
        tracer_->AddArg(instant, "lsn", ack.new_high_lsn);
      }
      reply(wire::EncodeNewHighLsn(ack));
    }
  }

  current_batch_ctx_ = {};
  MaybeFlush();
}

void LogServer::HandleNewInterval(const wire::Envelope& env) {
  Result<wire::NewIntervalMsg> msg = wire::DecodeNewInterval(env.body);
  if (!msg.ok()) return;
  ClientState& state = StateOf(msg->client);
  // The skipped records live elsewhere; forget anything below the new
  // start and accept the new sequence.
  state.pending.erase(state.pending.begin(),
                      state.pending.lower_bound(msg->starting_lsn));
  state.allowed_start = {msg->epoch, msg->starting_lsn};
  // The announced record may already be waiting in the reorder buffer.
  auto it = state.pending.find(msg->starting_lsn);
  if (it != state.pending.end() && it->second.epoch == msg->epoch) {
    const LogRecord record = it->second;
    state.pending.erase(it);
    state.allowed_start.reset();
    if (ApplyRecord(&state, msg->client, record)) {
      DrainPending(&state, msg->client);
    }
  }
  MaybeFlush();
}

void LogServer::HandleTruncate(const wire::Envelope& env) {
  Result<wire::TruncateLogMsg> msg = wire::DecodeTruncateLog(env.body);
  if (!msg.ok()) return;
  Lsn& mark = truncate_marks_[msg->client];
  mark = std::max(mark, msg->below);
  auto it = clients_.find(msg->client);
  if (it == clients_.end()) return;
  ClientState& state = it->second;
  records_truncated_.Increment(state.store.TruncateBelow(msg->below));
  // Forget disk locations of discarded records (the stream itself is
  // append-only; space reclamation would be a compaction/offline-spool
  // pass outside this model).
  for (auto loc = state.disk_location.begin();
       loc != state.disk_location.end();) {
    if (loc->first.first < msg->below) {
      loc = state.disk_location.erase(loc);
    } else {
      ++loc;
    }
  }
}

size_t LogServer::LiveRecordsOf(ClientId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  return it->second.store.record_count();
}

void LogServer::HandleIntervalList(wire::Connection* conn,
                                   const wire::Envelope& env) {
  Result<wire::IntervalListReq> req = wire::DecodeIntervalListReq(env.body);
  if (!req.ok()) return;
  wire::IntervalListResp resp;
  auto it = clients_.find(req->client);
  if (it != clients_.end()) resp.intervals = it->second.store.Intervals();
  Reply(conn, wire::EncodeIntervalListResp(resp, env.rpc_id));
}

void LogServer::WithReadLatency(ClientId client, Lsn lsn,
                                std::function<void()> fn) {
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    Result<LogRecord> rec = it->second.store.Read(lsn);
    if (rec.ok()) {
      auto loc = it->second.disk_location.find({rec->lsn, rec->epoch});
      if (loc != it->second.disk_location.end()) {
        const uint64_t generation = generation_;
        disk_->ReadTrack(loc->second,
                         [this, generation, fn = std::move(fn)](
                             const Result<Bytes>& r) {
                           (void)r;
                           if (generation != generation_ || !up_) return;
                           fn();
                         });
        return;
      }
    }
  }
  fn();  // in NVRAM (or absent): no disk motion
}

void LogServer::HandleReadLog(wire::Connection* conn,
                              const wire::Envelope& env, bool forward) {
  Result<wire::ReadLogReq> req = wire::DecodeReadLogReq(env.body);
  if (!req.ok()) return;
  read_rpcs_.Increment();

  const ClientId client = req->client;
  const Lsn start = req->lsn;
  const uint64_t rpc_id = env.rpc_id;

  WithReadLatency(client, start, [this, conn, client, start, forward,
                                  rpc_id]() {
    wire::ReadLogResp resp;
    auto it = clients_.find(client);
    const ClientLogStore* store =
        it != clients_.end() ? &it->second.store : nullptr;

    size_t budget = config_.read_reply_budget_bytes;
    Lsn lsn = start;
    while (store != nullptr) {
      Result<LogRecord> rec = store->Read(lsn);
      if (!rec.ok()) break;
      const size_t cost = wire::EncodedRecordSize(*rec);
      if (!resp.records.empty() && cost > budget) break;
      resp.records.push_back(*std::move(rec));
      budget = cost > budget ? 0 : budget - cost;
      if (forward) {
        ++lsn;
      } else {
        if (lsn == 1) break;
        --lsn;
      }
    }
    if (resp.records.empty()) {
      // The paper's server "does not respond to ServerReadLog requests
      // for records that it does not store"; we respond with a NotFound
      // status instead so the client can distinguish a missing record
      // from a dead server. (Documented deviation.)
      resp.status = wire::RpcStatus::kNotFound;
    }
    Reply(conn, wire::EncodeReadLogResp(resp, rpc_id));
  });
}

void LogServer::HandleCopyLog(wire::Connection* conn,
                              const wire::Envelope& env) {
  Result<wire::CopyLogReq> req = wire::DecodeCopyLogReq(env.body);
  if (!req.ok()) return;
  wire::CopyLogResp resp;
  ClientState& state = StateOf(req->client);
  for (const LogRecord& r : req->records) {
    if (r.epoch != req->epoch) {
      resp.status = wire::RpcStatus::kError;
      break;
    }
    if (!state.store.StageCopy(r).ok()) {
      resp.status = wire::RpcStatus::kError;
      break;
    }
  }
  Reply(conn, wire::EncodeCopyLogResp(resp, env.rpc_id));
}

void LogServer::HandleInstallCopies(wire::Connection* conn,
                                    const wire::Envelope& env) {
  Result<wire::InstallCopiesReq> req =
      wire::DecodeInstallCopiesReq(env.body);
  if (!req.ok()) return;
  wire::InstallCopiesResp resp;
  ClientState& state = StateOf(req->client);

  if (nvram_buffer_->used_bytes() + state.store.StagedBytes(req->epoch) >
      nvram_buffer_->capacity()) {
    resp.status = wire::RpcStatus::kOverloaded;
    Reply(conn, wire::EncodeInstallCopiesResp(resp, env.rpc_id));
    return;
  }

  Result<std::vector<LogRecord>> installed =
      state.store.InstallCopies(req->epoch);
  if (!installed.ok()) {
    resp.status = wire::RpcStatus::kError;
  } else {
    for (const LogRecord& r : *installed) {
      Status nv = nvram_buffer_->Append(EncodeStreamEntry({req->client, r}));
      assert(nv.ok());
      (void)nv;
      records_written_.Increment();
      bytes_logged_ += r.data.size();
    }
    NoteNvramLevel();
    ScheduleFlushTimer();
  }
  Reply(conn, wire::EncodeInstallCopiesResp(resp, env.rpc_id));
  MaybeFlush();
}

void LogServer::HandleGenRead(wire::Connection* conn,
                              const wire::Envelope& env) {
  Result<wire::GenReadReq> req = wire::DecodeGenReadReq(env.body);
  if (!req.ok()) return;
  wire::GenReadResp resp;
  resp.value = generator_cells_[req->client].Read();
  Reply(conn, wire::EncodeGenReadResp(resp, env.rpc_id));
}

void LogServer::HandleGenWrite(wire::Connection* conn,
                               const wire::Envelope& env) {
  Result<wire::GenWriteReq> req = wire::DecodeGenWriteReq(env.body);
  if (!req.ok()) return;
  generator_cells_[req->client].Write(req->value);
  wire::GenWriteResp resp;
  Reply(conn, wire::EncodeGenWriteResp(resp, env.rpc_id));
}

void LogServer::ScheduleFlushTimer() {
  // The timer runs only while records are buffered, so an idle server
  // leaves the event queue empty (and simulations can run to quiescence).
  if (flush_timer_ != 0 || !up_ || nvram_buffer_->empty()) return;
  flush_timer_ = sim_->After(config_.flush_interval, [this]() {
    flush_timer_ = 0;
    if (up_) {
      MaybeFlush();
      ScheduleFlushTimer();
    }
  });
}

void LogServer::MaybeFlush() {
  if (nvram_buffer_->empty()) force_partial_flush_ = false;
  if (!up_ || flush_in_progress_ || nvram_buffer_->empty()) return;

  // Pack entries into one track's payload. The packing decision needs
  // only encoded sizes — MaybeFlush runs after every record batch, and
  // most calls return right here, so the prefix must not be decoded
  // until the flush is known to proceed.
  const size_t capacity = config_.disk.track_bytes - kTrackOverhead;
  size_t bytes = 0;
  size_t count = 0;
  for (const Bytes& encoded : nvram_buffer_->entries()) {
    if (bytes + encoded.size() > capacity) break;
    bytes += encoded.size();
    ++count;
  }
  if (count == 0) return;
  // Only a full track goes out eagerly; the periodic timer
  // (flush_timer_ == 0 while its callback runs) and FlushNow() flush
  // partial tracks. "Full" means the packing stopped because the next
  // buffered entry did not fit — a byte-count threshold would leave the
  // front of the queue permanently under it whenever the packed prefix
  // happens to end just short (appends never change the front packing),
  // stalling the drain at one timer flush per interval.
  const bool track_full = count < nvram_buffer_->size();
  const bool timer_due = flush_timer_ == 0;
  if (!track_full && !timer_due && !force_partial_flush_) return;

  // The buffered bytes ARE the track's per-entry format: collect
  // pointers for a raw concatenation and decode only the fixed header
  // fields the flush bookkeeping needs — no payload is materialized.
  std::vector<const Bytes*> packed;
  std::vector<StreamEntryHeader> entries;
  packed.reserve(count);
  entries.reserve(count);
  for (const Bytes& encoded : nvram_buffer_->entries()) {
    if (packed.size() == count) break;
    Result<StreamEntryHeader> header = DecodeStreamEntryHeader(encoded);
    assert(header.ok());
    packed.push_back(&encoded);
    entries.push_back(*header);
  }

  flush_in_progress_ = true;
  const uint64_t track = next_track_++;
  const uint64_t generation = generation_;

  // One "track.write" span per distinct trace whose records this track
  // makes disk-resident; the buffering-time contexts are consumed here.
  std::vector<obs::SpanContext> track_spans;
  if (tracer_ != nullptr) {
    std::map<obs::TraceId, bool> seen;
    for (const StreamEntryHeader& e : entries) {
      auto it = record_ctx_.find({e.client, e.lsn, e.epoch});
      if (it == record_ctx_.end()) continue;
      const obs::SpanContext ctx = it->second;
      record_ctx_.erase(it);
      if (!seen.insert({ctx.trace, true}).second) continue;
      obs::SpanContext span =
          tracer_->StartSpan("track.write", trace_node_, ctx);
      tracer_->AddArg(span, "track", track);
      track_spans.push_back(span);
    }
  }

  Bytes track_bytes = EncodeTrackFromEncoded(packed);
  cpu_->Execute(config_.instr_per_track_write, [this, generation, track,
                                                track_bytes =
                                                    std::move(track_bytes),
                                                entries =
                                                    std::move(entries),
                                                track_spans =
                                                    std::move(track_spans),
                                                count]() mutable {
    if (generation != generation_ || !up_) return;
    disk_->WriteTrack(
        track, std::move(track_bytes),
        [this, generation, track, entries = std::move(entries),
         track_spans = std::move(track_spans), count](Status st) {
          if (generation != generation_ || !up_) return;
          flush_in_progress_ = false;
          if (tracer_ != nullptr) {
            for (const obs::SpanContext& span : track_spans) {
              tracer_->EndSpan(span);
            }
          }
          if (!st.ok()) return;  // write-once conflict etc.: keep in NVRAM
          tracks_written_.Increment();
          nvram_buffer_->PopFront(count);
          NoteNvramLevel();
          // Record disk locations and extend the append-forest indexes.
          std::map<ClientId, std::pair<Lsn, Lsn>> ranges;
          // Entries arrive in per-batch runs of one client; reuse the
          // looked-up state across a run (node handles are stable).
          ClientState* run_state = nullptr;
          ClientId run_client = 0;
          for (const StreamEntryHeader& e : entries) {
            if (run_state == nullptr || e.client != run_client) {
              run_state = &StateOf(e.client);
              run_client = e.client;
            }
            ClientState& state = *run_state;
            // LSNs within a run ascend, so the insert lands at the map's
            // tail: the end() hint makes the append amortized O(1).
            state.disk_location.insert_or_assign(
                state.disk_location.end(), std::make_pair(e.lsn, e.epoch),
                track);
            auto [it, inserted] = ranges.try_emplace(
                e.client, std::make_pair(e.lsn, e.lsn));
            if (!inserted) {
              it->second.first = std::min(it->second.first, e.lsn);
              it->second.second = std::max(it->second.second, e.lsn);
            }
          }
          if (config_.ack_after_disk && nvram_buffer_->empty()) {
            std::vector<PendingAck> acks = std::move(pending_acks_);
            pending_acks_.clear();
            for (const PendingAck& pa : acks) {
              wire::NewHighLsnMsg ack;
              ack.new_high_lsn = StateOf(pa.client).store.HighestLsn();
              forces_acked_.Increment();
              if (tracer_ != nullptr) {
                obs::SpanContext instant =
                    tracer_->Instant("force.ack", trace_node_, pa.ctx);
                tracer_->AddArg(instant, "lsn", ack.new_high_lsn);
              }
              pa.reply(wire::EncodeNewHighLsn(ack));
            }
          }
          for (const auto& [client, range] : ranges) {
            ClientState& state = StateOf(client);
            forest::AppendForest& forest = state.forest;
            Lsn low = range.first;
            const Lsn high = range.second;
            if (!forest.empty()) {
              const Lsn prev_high =
                  forest.node(forest.size() - 1).key_high;
              if (high <= prev_high) continue;  // recovery copies only
              low = prev_high + 1;
            }
            (void)forest.Append(low, high, track);
          }
          MaybeFlush();       // more may have accumulated
          ScheduleFlushTimer();  // partial remainder flushes on the timer
        });
  });
}

void LogServer::FlushNow() {
  force_partial_flush_ = true;
  MaybeFlush();
}

void LogServer::Crash() {
  if (!up_) return;
  up_ = false;
  ++generation_;
  endpoint_->Crash();
  for (auto& nic : nics_) nic->SetUp(false);
  disk_->Crash();
  clients_.clear();
  pending_acks_.clear();
  record_ctx_.clear();
  current_batch_ctx_ = {};
  flush_in_progress_ = false;
  if (flush_timer_ != 0) {
    sim_->Cancel(flush_timer_);
    flush_timer_ = 0;
  }
}

void LogServer::WipeStorage() {
  // The whole node is lost: both stable media fail together. Quorum
  // intersection tolerates a minority of generator representatives
  // losing state.
  FailDisk();
  LoseNvram();
}

void LogServer::FailDisk() {
  Crash();
  disk_->WipeMedia();
}

void LogServer::LoseNvram() {
  Crash();
  nvram_buffer_ = std::make_unique<storage::NvramQueue>(config_.nvram_bytes);
  NoteNvramLevel();
  truncate_marks_.clear();
  generator_cells_.clear();
}

void LogServer::Restart() {
  if (up_) return;
  up_ = true;
  ++generation_;
  for (auto& nic : nics_) nic->SetUp(true);
  RebuildFromStableStorage();
  ScheduleFlushTimer();
  MaybeFlush();
}

void LogServer::RebuildFromStableStorage() {
  clients_.clear();
  next_track_ = 0;

  // Scan the log data stream from the start ("a server must scan the end
  // of the log data stream to find the ends of active intervals"; we keep
  // the whole-volume scan, which also rebuilds the record index this
  // simulation keeps in memory in place of on-demand disk reads).
  std::map<ClientId, std::vector<LogRecord>> per_client;
  uint64_t track = 0;
  while (disk_->IsWritten(track)) {
    Result<Bytes> raw = disk_->Peek(track);
    assert(raw.ok());
    Result<std::vector<StreamEntry>> entries = DecodeTrack(*raw);
    if (!entries.ok()) break;  // torn/corrupt track terminates the stream
    for (const StreamEntry& e : *entries) {
      per_client[e.client].push_back(e.record);
      ClientState& state = clients_[e.client];
      state.disk_location[{e.record.lsn, e.record.epoch}] = track;
    }
    ++track;
  }
  next_track_ = track;

  // The NVRAM group buffer survived; replay it after the disk contents.
  for (const Bytes& encoded : nvram_buffer_->entries()) {
    Result<StreamEntry> entry = DecodeStreamEntry(encoded);
    if (!entry.ok()) continue;
    per_client[entry->client].push_back(entry->record);
  }

  for (auto& [client, records] : per_client) {
    ClientState& state = clients_[client];
    state.store = ClientLogStore::FromRecords(records);
    // Reapply the stable truncation mark: the append-only stream scan
    // resurrects discarded records otherwise.
    auto mark = truncate_marks_.find(client);
    if (mark != truncate_marks_.end()) {
      (void)state.store.TruncateBelow(mark->second);
      for (auto loc = state.disk_location.begin();
           loc != state.disk_location.end();) {
        if (loc->first.first < mark->second) {
          loc = state.disk_location.erase(loc);
        } else {
          ++loc;
        }
      }
    }
    // Rebuild the forest from disk locations in track order.
    std::map<uint64_t, std::pair<Lsn, Lsn>> track_ranges;
    for (const auto& [key, trk] : state.disk_location) {
      auto [it, inserted] =
          track_ranges.try_emplace(trk, std::make_pair(key.first, key.first));
      if (!inserted) {
        it->second.first = std::min(it->second.first, key.first);
        it->second.second = std::max(it->second.second, key.first);
      }
    }
    for (const auto& [trk, range] : track_ranges) {
      Lsn low = range.first;
      const Lsn high = range.second;
      if (!state.forest.empty()) {
        const Lsn prev_high =
            state.forest.node(state.forest.size() - 1).key_high;
        if (high <= prev_high) continue;
        low = prev_high + 1;
      }
      (void)state.forest.Append(low, high, trk);
    }
  }
}

IntervalList LogServer::IntervalsOf(ClientId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return {};
  return it->second.store.Intervals();
}

std::vector<LogRecord> LogServer::RecordsOf(ClientId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return {};
  return it->second.store.stream();
}

const forest::AppendForest* LogServer::ForestOf(ClientId client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return nullptr;
  return &it->second.forest;
}

}  // namespace dlog::server
