#ifndef DLOG_COMMON_LOG_TYPES_H_
#define DLOG_COMMON_LOG_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace dlog {

/// Log Sequence Number: records in a replicated log are identified by
/// LSNs, "which are increasing integers" (Section 3.1). LSN 0 is reserved
/// to mean "no record"; the first record of a log has LSN 1.
using Lsn = uint64_t;

/// Epoch numbers are "non decreasing integers and all log records written
/// between two client restarts have the same epoch number" (Section
/// 3.1.1). A log record is uniquely identified by a <LSN, Epoch> pair.
using Epoch = uint64_t;

/// Identifies a replicated-log client node. Log servers "may store
/// portions of the replicated logs from many clients" keyed by this id.
using ClientId = uint32_t;

/// Identifies a log server node within a replicated-log configuration.
using ServerId = uint32_t;

constexpr Lsn kNoLsn = 0;

/// A log record as stored on a log server: "log records stored on log
/// servers contain an epoch number and a boolean present flag ... If the
/// present flag is false, no log data need be stored" (Section 3.1.1).
///
/// The payload is a refcounted immutable SharedBytes: a record decoded
/// from an arriving packet is a view into that packet's buffer, and
/// copying records between reorder buffers, stores, and read replies
/// shares the bytes. The payload is materialized (copied) only when it
/// is serialized into stable storage or handed back to a caller as an
/// owned Bytes.
struct LogRecord {
  Lsn lsn = kNoLsn;
  Epoch epoch = 0;
  bool present = true;
  SharedBytes data;

  friend bool operator==(const LogRecord& a, const LogRecord& b) {
    return a.lsn == b.lsn && a.epoch == b.epoch && a.present == b.present &&
           a.data == b.data;
  }
};

/// A maximal run of log records on one server with the same epoch and
/// consecutive LSNs (Section 3.1.1). Bounds are inclusive.
struct Interval {
  Epoch epoch = 0;
  Lsn low = kNoLsn;
  Lsn high = kNoLsn;

  bool Contains(Lsn lsn) const { return lsn >= low && lsn <= high; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.epoch == b.epoch && a.low == b.low && a.high == b.high;
  }
};

/// The result of an IntervalList server operation: "the epoch number, low
/// LSN, and high LSN for each consecutive sequence of log records stored
/// for a client node".
using IntervalList = std::vector<Interval>;

/// Renders "(<low,epoch> <high,epoch>)" lists for diagnostics and the
/// Figure 3-x reproductions.
std::string IntervalListToString(const IntervalList& list);

/// An interval tagged with the server that reported it, the unit of the
/// client-initialization merge.
struct ServerInterval {
  ServerId server = 0;
  Interval interval;
};

/// The merged view of interval lists gathered from M-N+1 (or more) log
/// servers at client initialization (Section 3.1.2): "In merging the
/// interval lists, only the entries with the highest epoch number for a
/// particular LSN are kept." The merge "performs the voting needed to
/// achieve quorum consensus for all ReadLog operations" once, so that each
/// subsequent ReadLog needs a single ServerReadLog.
class MergedLogView {
 public:
  /// A run of LSNs all winning with the same epoch, together with every
  /// server that stores those records at that epoch.
  struct Segment {
    Lsn low = kNoLsn;
    Lsn high = kNoLsn;
    Epoch epoch = 0;
    std::vector<ServerId> servers;

    friend bool operator==(const Segment& a, const Segment& b) {
      return a.low == b.low && a.high == b.high && a.epoch == b.epoch &&
             a.servers == b.servers;
    }
  };

  /// Builds the merged view from per-server interval lists.
  static MergedLogView Build(const std::vector<ServerInterval>& intervals);

  const std::vector<Segment>& segments() const { return segments_; }

  /// The LSN of the most recently written record (EndOfLog), or nullopt
  /// for an empty log.
  std::optional<Lsn> HighLsn() const;

  /// The epoch of the record at HighLsn().
  std::optional<Epoch> HighEpoch() const;

  /// The highest epoch appearing anywhere in the merged view.
  std::optional<Epoch> MaxEpoch() const;

  /// Finds the segment containing `lsn` (the winning-epoch holder set),
  /// or nullptr if no server reported it.
  const Segment* Find(Lsn lsn) const;

  /// Appends/extends coverage after a successful write of <lsn, epoch> to
  /// `servers` so the cached view stays current during normal operation.
  void NoteWrite(Lsn lsn, Epoch epoch, const std::vector<ServerId>& servers);

  /// Drops coverage of LSNs below `below` (log truncation, Section 5.3).
  void TruncateBelow(Lsn below);

 private:
  std::vector<Segment> segments_;  // sorted by low, non-overlapping
};

}  // namespace dlog

#endif  // DLOG_COMMON_LOG_TYPES_H_
