#include "common/rng.h"

#include <cmath>

namespace dlog {

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

}  // namespace dlog
