#ifndef DLOG_COMMON_RESULT_H_
#define DLOG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dlog {

/// Result<T> carries either a value of type T or a non-OK Status.
/// The OK state always holds a value; the error state never does.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: `return Status::NotFound(...)`.
  /// Must not be called with an OK status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define DLOG_ASSIGN_OR_RETURN(lhs, expr)              \
  auto DLOG_CONCAT_(_res_, __LINE__) = (expr);        \
  if (!DLOG_CONCAT_(_res_, __LINE__).ok())            \
    return DLOG_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(DLOG_CONCAT_(_res_, __LINE__)).value()

#define DLOG_CONCAT_(a, b) DLOG_CONCAT_IMPL_(a, b)
#define DLOG_CONCAT_IMPL_(a, b) a##b

}  // namespace dlog

#endif  // DLOG_COMMON_RESULT_H_
