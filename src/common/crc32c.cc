#include "common/crc32c.h"

#include <array>

namespace dlog::crc32c {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] extends b's contribution through k additional zero bytes,
// so eight input bytes fold into the running CRC with eight independent
// table loads per iteration instead of an eight-deep dependency chain.
// Identical output to the byte-wise algorithm for every input.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const Tables& AllTables() {
  static const Tables tables = MakeTables();
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init, const uint8_t* data, size_t n) {
  const auto& t = AllTables().t;
  uint32_t crc = init ^ 0xFFFFFFFFu;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][crc >> 24] ^ t[3][data[4]] ^
          t[2][data[5]] ^ t[1][data[6]] ^ t[0][data[7]];
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dlog::crc32c
