#include "common/crc32c.h"

#include <array>

namespace dlog::crc32c {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init, const uint8_t* data, size_t n) {
  const auto& table = Table();
  uint32_t crc = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dlog::crc32c
