#ifndef DLOG_COMMON_STATUS_H_
#define DLOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dlog {

/// Error categories used across the dlog library. The set is deliberately
/// small; detail goes in the message.
enum class StatusCode {
  kOk = 0,
  kNotFound,         // e.g., ReadLog of an LSN never written
  kInvalidArgument,  // caller error
  kOutOfRange,       // LSN beyond end of log, disk address out of bounds
  kUnavailable,      // not enough servers up
  kOverloaded,       // server explicitly shed the request; back off, retry
  kCorruption,       // checksum mismatch, malformed record
  kFailedPrecondition,  // operation illegal in current state
  kAborted,          // operation abandoned (e.g., crash injected)
  kTimedOut,         // no reply within the retry budget
  kResourceExhausted,   // buffer/disk full
  kInternal,         // invariant violation inside dlog
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Status is the error-handling currency of dlog (no exceptions cross any
/// dlog API boundary). It is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define DLOG_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::dlog::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

namespace internal {
/// Prints `st` with source context and aborts when it is not OK. Backs
/// DLOG_CHECK_OK; out of line so the header stays light.
void CheckOkOrDie(const Status& st, const char* expr, const char* file,
                  int line);
}  // namespace internal

/// Aborts (with the status message) when `expr` is not OK. dlog has no
/// exceptions, so constructors use this to enforce Validate()d configs:
/// a bad config is a programming error, not a runtime condition.
#define DLOG_CHECK_OK(expr) \
  ::dlog::internal::CheckOkOrDie((expr), #expr, __FILE__, __LINE__)

}  // namespace dlog

#endif  // DLOG_COMMON_STATUS_H_
