#include "common/log_types.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>

namespace dlog {

std::string IntervalListToString(const IntervalList& list) {
  std::string out = "[";
  for (size_t i = 0; i < list.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "(<%llu,%llu> <%llu,%llu>)",
                  static_cast<unsigned long long>(list[i].low),
                  static_cast<unsigned long long>(list[i].epoch),
                  static_cast<unsigned long long>(list[i].high),
                  static_cast<unsigned long long>(list[i].epoch));
    if (i > 0) out += " ";
    out += buf;
  }
  out += "]";
  return out;
}

MergedLogView MergedLogView::Build(
    const std::vector<ServerInterval>& intervals) {
  MergedLogView view;
  if (intervals.empty()) return view;

  // Boundary sweep: between two consecutive boundaries the covering set of
  // intervals is constant, so the winning epoch and its holders are too.
  std::set<Lsn> boundaries;
  for (const ServerInterval& si : intervals) {
    assert(si.interval.low != kNoLsn && si.interval.low <= si.interval.high);
    boundaries.insert(si.interval.low);
    boundaries.insert(si.interval.high + 1);
  }

  std::vector<Lsn> bounds(boundaries.begin(), boundaries.end());
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const Lsn low = bounds[i];
    const Lsn high = bounds[i + 1] - 1;
    // Winning epoch over this elementary range.
    Epoch best = 0;
    bool covered = false;
    for (const ServerInterval& si : intervals) {
      if (si.interval.Contains(low)) {
        covered = true;
        best = std::max(best, si.interval.epoch);
      }
    }
    if (!covered) continue;
    Segment seg{low, high, best, {}};
    for (const ServerInterval& si : intervals) {
      if (si.interval.Contains(low) && si.interval.epoch == best) {
        seg.servers.push_back(si.server);
      }
    }
    std::sort(seg.servers.begin(), seg.servers.end());
    seg.servers.erase(std::unique(seg.servers.begin(), seg.servers.end()),
                      seg.servers.end());
    // Coalesce with the previous segment when nothing distinguishes them.
    if (!view.segments_.empty()) {
      Segment& prev = view.segments_.back();
      if (prev.high + 1 == seg.low && prev.epoch == seg.epoch &&
          prev.servers == seg.servers) {
        prev.high = seg.high;
        continue;
      }
    }
    view.segments_.push_back(std::move(seg));
  }
  return view;
}

std::optional<Lsn> MergedLogView::HighLsn() const {
  if (segments_.empty()) return std::nullopt;
  return segments_.back().high;
}

std::optional<Epoch> MergedLogView::HighEpoch() const {
  if (segments_.empty()) return std::nullopt;
  return segments_.back().epoch;
}

std::optional<Epoch> MergedLogView::MaxEpoch() const {
  if (segments_.empty()) return std::nullopt;
  Epoch best = 0;
  for (const Segment& s : segments_) best = std::max(best, s.epoch);
  return best;
}

const MergedLogView::Segment* MergedLogView::Find(Lsn lsn) const {
  // Binary search on segment lows.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), lsn,
      [](Lsn value, const Segment& s) { return value < s.low; });
  if (it == segments_.begin()) return nullptr;
  --it;
  if (lsn >= it->low && lsn <= it->high) return &*it;
  return nullptr;
}

void MergedLogView::NoteWrite(Lsn lsn, Epoch epoch,
                              const std::vector<ServerId>& servers) {
  std::vector<ServerId> holders = servers;
  std::sort(holders.begin(), holders.end());
  holders.erase(std::unique(holders.begin(), holders.end()), holders.end());

  // Fast path: extending the tail of the log, the normal WriteLog case.
  if (segments_.empty() || lsn > segments_.back().high) {
    if (!segments_.empty()) {
      Segment& last = segments_.back();
      if (last.high + 1 == lsn && last.epoch == epoch &&
          last.servers == holders) {
        last.high = lsn;
        return;
      }
    }
    segments_.push_back(Segment{lsn, lsn, epoch, std::move(holders)});
    return;
  }

  // General path (used by recovery's CopyLog): the LSN may fall inside
  // existing coverage, which must be split around it.
  std::vector<Segment> rebuilt;
  rebuilt.reserve(segments_.size() + 2);
  bool placed = false;
  for (const Segment& s : segments_) {
    if (lsn < s.low || lsn > s.high) {
      if (!placed && lsn < s.low) {
        rebuilt.push_back(Segment{lsn, lsn, epoch, holders});
        placed = true;
      }
      rebuilt.push_back(s);
      continue;
    }
    // Split s around lsn.
    if (s.low < lsn) {
      rebuilt.push_back(Segment{s.low, lsn - 1, s.epoch, s.servers});
    }
    if (s.epoch > epoch) {
      // Existing coverage wins; keep it and drop the note.
      rebuilt.push_back(Segment{lsn, lsn, s.epoch, s.servers});
    } else if (s.epoch == epoch) {
      Segment merged{lsn, lsn, epoch, s.servers};
      for (ServerId sv : holders) merged.servers.push_back(sv);
      std::sort(merged.servers.begin(), merged.servers.end());
      merged.servers.erase(
          std::unique(merged.servers.begin(), merged.servers.end()),
          merged.servers.end());
      rebuilt.push_back(std::move(merged));
    } else {
      rebuilt.push_back(Segment{lsn, lsn, epoch, holders});
    }
    placed = true;
    if (s.high > lsn) {
      rebuilt.push_back(Segment{lsn + 1, s.high, s.epoch, s.servers});
    }
  }
  if (!placed) {
    rebuilt.push_back(Segment{lsn, lsn, epoch, holders});
  }
  // Re-coalesce.
  segments_.clear();
  for (Segment& s : rebuilt) {
    if (!segments_.empty()) {
      Segment& prev = segments_.back();
      if (prev.high + 1 == s.low && prev.epoch == s.epoch &&
          prev.servers == s.servers) {
        prev.high = s.high;
        continue;
      }
    }
    segments_.push_back(std::move(s));
  }
}

void MergedLogView::TruncateBelow(Lsn below) {
  std::vector<Segment> retained;
  for (Segment& s : segments_) {
    if (s.high < below) continue;
    if (s.low < below) s.low = below;
    retained.push_back(std::move(s));
  }
  segments_ = std::move(retained);
}

}  // namespace dlog
