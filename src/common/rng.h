#ifndef DLOG_COMMON_RNG_H_
#define DLOG_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace dlog {

/// Deterministic 64-bit PRNG (splitmix64-seeded xorshift128+). Every
/// stochastic component in dlog owns one of these, seeded from the
/// experiment seed, so that runs are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 to spread the seed into two non-zero words.
    uint64_t x = seed + 0x9E3779B97F4A7C15ull;
    s0_ = Mix(&x);
    s1_ = Mix(&x);
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    assert(n > 0);
    return NextU64() % n;
  }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Forks an independent deterministic stream (e.g., one per node).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Mix(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace dlog

#endif  // DLOG_COMMON_RNG_H_
