#ifndef DLOG_COMMON_CRC32C_H_
#define DLOG_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace dlog::crc32c {

/// Computes the CRC-32C (Castagnoli) checksum of `data[0,n)` continuing
/// from `init` (pass 0 to start). Used to detect corruption in simulated
/// disk blocks and network packets.
uint32_t Extend(uint32_t init, const uint8_t* data, size_t n);

inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}
inline uint32_t Value(const Bytes& b) { return Value(b.data(), b.size()); }

}  // namespace dlog::crc32c

#endif  // DLOG_COMMON_CRC32C_H_
