#ifndef DLOG_COMMON_BYTES_H_
#define DLOG_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dlog {

/// A byte buffer used for message and disk-record encoding.
using Bytes = std::vector<uint8_t>;

/// Appends fixed-width little-endian integers and length-prefixed blobs to
/// a Bytes buffer. All dlog on-wire and on-disk encodings go through this.
class Encoder {
 public:
  explicit Encoder(Bytes* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void PutBlob(const uint8_t* data, size_t n) {
    PutU32(static_cast<uint32_t>(n));
    out_->insert(out_->end(), data, data + n);
  }
  void PutBlob(const Bytes& b) { PutBlob(b.data(), b.size()); }
  void PutString(std::string_view s) {
    PutBlob(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void PutLE(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes* out_;
};

/// Consumes values previously written by Encoder. All getters return a
/// Status error (never crash) on truncated input so that corrupt packets
/// and disk blocks are survivable.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit Decoder(const Bytes& b) : Decoder(b.data(), b.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated();
    return data_[pos_++];
  }
  Result<uint16_t> GetU16() { return GetLE<uint16_t>(2); }
  Result<uint32_t> GetU32() { return GetLE<uint32_t>(4); }
  Result<uint64_t> GetU64() { return GetLE<uint64_t>(8); }
  Result<bool> GetBool() {
    DLOG_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }

  Result<Bytes> GetBlob() {
    DLOG_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (remaining() < n) return Truncated();
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  Result<std::string> GetString() {
    DLOG_ASSIGN_OR_RETURN(Bytes b, GetBlob());
    return std::string(b.begin(), b.end());
  }

 private:
  static Status Truncated() {
    return Status::Corruption("decode past end of buffer");
  }

  template <typename T>
  Result<T> GetLE(int width) {
    if (remaining() < static_cast<size_t>(width)) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return static_cast<T>(v);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Convenience: builds a Bytes from a string literal/payload.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace dlog

#endif  // DLOG_COMMON_BYTES_H_
