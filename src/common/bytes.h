#ifndef DLOG_COMMON_BYTES_H_
#define DLOG_COMMON_BYTES_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dlog {

/// A byte buffer used for message and disk-record encoding.
using Bytes = std::vector<uint8_t>;

/// Process-wide tally of payload bytes memcpy'd across ownership
/// boundaries after their initial serialization — the copies the
/// zero-copy wire path exists to eliminate. Counted: Decoder blob/string
/// materialization, SharedBytes materialization, and the explicit
/// persistence copy into stable storage. Not counted: the one
/// unavoidable serialization pass that first builds a message or disk
/// image (Encoder appends). Benchmarks reset and diff this around a
/// workload; the counter is atomic so parallel trial runners can share
/// it without races.
uint64_t BytesCopied();
void AddBytesCopied(uint64_t n);
void ResetBytesCopied();

namespace internal {
inline std::atomic<uint64_t>& bytes_copied_counter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}
}  // namespace internal

inline uint64_t BytesCopied() {
  return internal::bytes_copied_counter().load(std::memory_order_relaxed);
}
inline void AddBytesCopied(uint64_t n) {
  internal::bytes_copied_counter().fetch_add(n, std::memory_order_relaxed);
}
inline void ResetBytesCopied() {
  internal::bytes_copied_counter().store(0, std::memory_order_relaxed);
}

/// A refcounted immutable byte buffer, plus a view (offset/length) into
/// it. Copying a SharedBytes — or slicing sub-ranges out of it — shares
/// the underlying storage instead of duplicating bytes, which is what
/// lets one encoded message flow from the sender through Network
/// fan-out, every receiver's NIC, and envelope/record decoding without a
/// single payload copy. The refcount is atomic (std::shared_ptr), so
/// buffers may be handed across the parallel trial runner's threads.
class SharedBytes {
 public:
  SharedBytes() = default;

  /// Takes ownership of `b` (move in; no copy when called with an
  /// rvalue). Implicit so the many call sites that build a Bytes and
  /// hand it off keep reading naturally.
  SharedBytes(Bytes b)  // NOLINT: implicit by design
      : owner_(std::make_shared<const Bytes>(std::move(b))),
        data_(owner_->data()),
        size_(owner_->size()) {}

  /// Copies `n` bytes into a fresh buffer (counted as a payload copy).
  static SharedBytes Copy(const uint8_t* data, size_t n) {
    AddBytesCopied(n);
    return SharedBytes(Bytes(data, data + n));
  }
  static SharedBytes Copy(std::string_view s) {
    return Copy(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// A view of [offset, offset+length) sharing ownership of the buffer.
  SharedBytes Slice(size_t offset, size_t length) const {
    SharedBytes out;
    out.owner_ = owner_;
    out.data_ = data_ + offset;
    out.size_ = length;
    return out;
  }

  /// Materializes an owned mutable copy (counted as a payload copy).
  Bytes ToBytes() const {
    AddBytesCopied(size_);
    return Bytes(data_, data_ + size_);
  }

  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// Content equality (used by LogRecord comparison and tests).
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const SharedBytes& a, const SharedBytes& b) {
    return !(a == b);
  }

 private:
  std::shared_ptr<const Bytes> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Appends fixed-width little-endian integers and length-prefixed blobs to
/// a Bytes buffer. All dlog on-wire and on-disk encodings go through this.
class Encoder {
 public:
  explicit Encoder(Bytes* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void PutBlob(const uint8_t* data, size_t n) {
    PutU32(static_cast<uint32_t>(n));
    out_->insert(out_->end(), data, data + n);
  }
  void PutBlob(const Bytes& b) { PutBlob(b.data(), b.size()); }
  void PutBlob(const SharedBytes& b) { PutBlob(b.data(), b.size()); }
  void PutString(std::string_view s) {
    PutBlob(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void PutLE(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes* out_;
};

/// Consumes values previously written by Encoder. All getters return a
/// Status error (never crash) on truncated input so that corrupt packets
/// and disk blocks are survivable.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit Decoder(const Bytes& b) : Decoder(b.data(), b.size()) {}
  /// Decoding a SharedBytes remembers the owning buffer, so GetBlobView()
  /// can return zero-copy views that share its ownership.
  explicit Decoder(const SharedBytes& b)
      : owner_(b), data_(b.data()), size_(b.size()), pos_(0) {}

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated();
    return data_[pos_++];
  }
  Result<uint16_t> GetU16() { return GetLE<uint16_t>(2); }
  Result<uint32_t> GetU32() { return GetLE<uint32_t>(4); }
  Result<uint64_t> GetU64() { return GetLE<uint64_t>(8); }
  Result<bool> GetBool() {
    DLOG_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }

  /// Materializes a length-prefixed blob into an owned buffer (a counted
  /// payload copy — prefer GetBlobView() on hot paths).
  Result<Bytes> GetBlob() {
    DLOG_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (remaining() < n) return Truncated();
    AddBytesCopied(n);
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Zero-copy blob access: when the Decoder was constructed from a
  /// SharedBytes the result is a view sharing that buffer; otherwise the
  /// bytes are copied (the input's lifetime is unknown).
  Result<SharedBytes> GetBlobView() {
    DLOG_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (remaining() < n) return Truncated();
    SharedBytes out;
    if (n > 0) {
      out = owner_.data() != nullptr ? owner_.Slice(pos_, n)
                                     : SharedBytes::Copy(data_ + pos_, n);
    }
    pos_ += n;
    return out;
  }

  Result<std::string> GetString() {
    DLOG_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (remaining() < n) return Truncated();
    AddBytesCopied(n);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

 private:
  static Status Truncated() {
    return Status::Corruption("decode past end of buffer");
  }

  template <typename T>
  Result<T> GetLE(int width) {
    if (remaining() < static_cast<size_t>(width)) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return static_cast<T>(v);
  }

  SharedBytes owner_;  // set only for the SharedBytes constructor
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Convenience: builds a Bytes from a string literal/payload.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}
inline std::string ToString(const SharedBytes& b) {
  return std::string(b.view());
}

}  // namespace dlog

#endif  // DLOG_COMMON_BYTES_H_
