#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dlog {

namespace internal {

void CheckOkOrDie(const Status& st, const char* expr, const char* file,
                  int line) {
  if (st.ok()) return;
  std::fprintf(stderr, "%s:%d: DLOG_CHECK_OK(%s) failed: %s\n", file, line,
               expr, st.ToString().c_str());
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace dlog
