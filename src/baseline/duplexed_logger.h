#ifndef DLOG_BASELINE_DUPLEXED_LOGGER_H_
#define DLOG_BASELINE_DUPLEXED_LOGGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/log_types.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "storage/disk.h"
#include "tp/logger.h"

namespace dlog::baseline {

/// Configuration of the conventional local logging baseline.
struct DuplexedLogConfig {
  /// 1 = the paper's Section 5.6 comparison point ("local logging to a
  /// single disk"); 2 = the classic duplexed-disk design of [Gray 78].
  int num_disks = 2;
  storage::DiskConfig disk;
};

/// The design the paper argues against: recovery logging to disks
/// attached to the transaction processing node itself. Forces pay the
/// local disk's rotational latency (there is no battery-backed buffer on
/// a workstation); concurrent forces group-commit into shared track
/// writes.
///
/// Implements tp::TxnLogger so the same TransactionEngine/BankDb run
/// unmodified on either logging design (experiment E5).
class DuplexedDiskLogger : public tp::TxnLogger {
 public:
  DuplexedDiskLogger(sim::Scheduler* sim, const DuplexedLogConfig& config);

  Result<Lsn> Append(Bytes payload) override;
  void Force(Lsn upto, std::function<void(Status)> done) override;
  void Read(Lsn lsn, std::function<void(Result<Bytes>)> done) override;
  Lsn End() const override {
    return static_cast<Lsn>(records_.size());
  }

  /// Node crash: buffered (unforced) records are lost; disks survive.
  void Crash();

  Lsn stable_high() const { return stable_high_; }
  sim::Histogram& force_latency_ms() { return force_latency_ms_; }
  storage::SimDisk& disk(int i) { return *disks_[i]; }
  sim::Counter& tracks_written() { return tracks_written_; }

 private:
  struct Waiter {
    Lsn upto;
    std::function<void(Status)> done;
    sim::Time started;
  };

  void MaybeFlush();
  void CompleteWaiters();

  sim::Scheduler* sim_;
  DuplexedLogConfig config_;
  std::vector<std::unique_ptr<storage::SimDisk>> disks_;

  std::vector<Bytes> records_;   // all appended records (1-based LSNs)
  Lsn stable_high_ = 0;          // durable on all disks
  uint64_t next_track_ = 0;
  bool flush_in_progress_ = false;
  uint64_t generation_ = 0;
  std::deque<Waiter> waiters_;

  sim::Histogram force_latency_ms_;
  sim::Counter tracks_written_;
};

}  // namespace dlog::baseline

#endif  // DLOG_BASELINE_DUPLEXED_LOGGER_H_
