#include "baseline/duplexed_logger.h"

#include <algorithm>
#include <cassert>

namespace dlog::baseline {

DuplexedDiskLogger::DuplexedDiskLogger(sim::Scheduler* sim,
                                       const DuplexedLogConfig& config)
    : sim_(sim), config_(config) {
  assert(config.num_disks >= 1);
  for (int i = 0; i < config.num_disks; ++i) {
    disks_.push_back(std::make_unique<storage::SimDisk>(
        sim, config.disk, "local-log-disk-" + std::to_string(i)));
  }
}

Result<Lsn> DuplexedDiskLogger::Append(Bytes payload) {
  records_.push_back(std::move(payload));
  return static_cast<Lsn>(records_.size());
}

void DuplexedDiskLogger::Force(Lsn upto, std::function<void(Status)> done) {
  upto = std::min<Lsn>(upto, records_.size());
  if (upto <= stable_high_) {
    sim_->After(0, [done = std::move(done)]() { done(Status::OK()); });
    return;
  }
  waiters_.push_back(Waiter{upto, std::move(done), sim_->Now()});
  MaybeFlush();
}

void DuplexedDiskLogger::MaybeFlush() {
  if (flush_in_progress_ || waiters_.empty()) return;

  // Group commit: one track write covers every record any current waiter
  // needs (and anything else already buffered behind them).
  Lsn flush_upto = stable_high_;
  for (const Waiter& w : waiters_) flush_upto = std::max(flush_upto, w.upto);
  if (flush_upto <= stable_high_) {
    CompleteWaiters();
    return;
  }

  // Pack records into as many tracks as needed.
  std::vector<Bytes> tracks;
  Bytes current;
  for (Lsn lsn = stable_high_ + 1; lsn <= flush_upto; ++lsn) {
    const Bytes& rec = records_[lsn - 1];
    if (!current.empty() &&
        current.size() + rec.size() + 8 > config_.disk.track_bytes) {
      tracks.push_back(std::move(current));
      current.clear();
    }
    // Record boundary: 4-byte length prefix (a simple on-disk framing).
    Encoder enc(&current);
    enc.PutBlob(rec);
  }
  if (!current.empty()) tracks.push_back(std::move(current));

  flush_in_progress_ = true;
  const uint64_t generation = generation_;
  auto remaining =
      std::make_shared<size_t>(tracks.size() * disks_.size());
  for (const Bytes& track : tracks) {
    const uint64_t track_no = next_track_++;
    for (auto& disk : disks_) {
      tracks_written_.Increment();
      disk->WriteTrack(track_no, track,
                       [this, generation, remaining, flush_upto](Status st) {
                         if (generation != generation_) return;
                         (void)st;
                         if (--*remaining > 0) return;
                         // All tracks on all disks are down.
                         flush_in_progress_ = false;
                         stable_high_ = std::max(stable_high_, flush_upto);
                         CompleteWaiters();
                         MaybeFlush();  // forces queued meanwhile
                       });
    }
  }
}

void DuplexedDiskLogger::CompleteWaiters() {
  // Forces usually arrive in LSN order, but complete any satisfied
  // waiter wherever it sits in the queue.
  std::deque<Waiter> still_waiting;
  std::vector<Waiter> ready;
  for (Waiter& w : waiters_) {
    if (w.upto <= stable_high_) {
      ready.push_back(std::move(w));
    } else {
      still_waiting.push_back(std::move(w));
    }
  }
  waiters_ = std::move(still_waiting);
  for (Waiter& w : ready) {
    force_latency_ms_.Add(sim::DurationToSeconds(sim_->Now() - w.started) *
                          1e3);
    w.done(Status::OK());
  }
}

void DuplexedDiskLogger::Read(Lsn lsn,
                              std::function<void(Result<Bytes>)> done) {
  if (lsn == kNoLsn || lsn > records_.size()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::OutOfRange("beyond end of log"));
    });
    return;
  }
  Bytes payload = records_[lsn - 1];
  if (lsn > stable_high_) {
    // Still buffered: memory-speed read.
    sim_->After(0, [done = std::move(done), payload = std::move(payload)]() {
      done(payload);
    });
    return;
  }
  // Stable records pay one disk read (conservatively the first disk).
  const uint64_t generation = generation_;
  disks_[0]->ReadTrack(0, [this, generation, done = std::move(done),
                           payload = std::move(payload)](Result<Bytes> r) {
    (void)r;
    if (generation != generation_) return;
    done(payload);
  });
}

void DuplexedDiskLogger::Crash() {
  ++generation_;
  records_.resize(stable_high_);
  waiters_.clear();
  flush_in_progress_ = false;
  for (auto& disk : disks_) disk->Crash();
}

}  // namespace dlog::baseline
