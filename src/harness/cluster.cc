#include "harness/cluster.h"

#include <string>
#include <utility>

namespace dlog::harness {

Status ClusterConfig::Validate() const {
  if (num_servers < 1) {
    return Status::InvalidArgument("num_servers must be >= 1");
  }
  if (num_networks < 1) {
    return Status::InvalidArgument("num_networks must be >= 1");
  }
  DLOG_RETURN_IF_ERROR(network.Validate());
  // The per-server template is validated with its node_id already
  // overwritten, so a zero id in the template is fine.
  DLOG_RETURN_IF_ERROR(server.Validate());
  return Status::OK();
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), tracer_(&sim_) {
  DLOG_CHECK_OK(config.Validate());
  tracer_.set_enabled(config.tracing);
  for (int i = 0; i < config.num_networks; ++i) {
    net::NetworkConfig net_cfg = config.network;
    net_cfg.seed = config.seed * 1000 + i;
    networks_.push_back(std::make_unique<net::Network>(&sim_, net_cfg));
  }
  for (int i = 0; i < config.num_servers; ++i) {
    server::LogServerConfig server_cfg = config.server;
    server_cfg.node_id = static_cast<net::NodeId>(i + 1);
    auto server = std::make_unique<server::LogServer>(&sim_, server_cfg);
    for (auto& network : networks_) server->AttachNetwork(network.get());
    server->SetTracer(&tracer_);
    server->RegisterMetrics(&metrics_);
    servers_.push_back(std::move(server));
  }
  chaos_ = std::make_unique<chaos::ChaosController>(&sim_, this);
  chaos_->SetTracer(&tracer_);
  chaos_->RegisterMetrics(&metrics_);
}

std::vector<net::NodeId> Cluster::server_ids() const {
  std::vector<net::NodeId> ids;
  for (int i = 0; i < static_cast<int>(servers_.size()); ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  return ids;
}

std::unique_ptr<client::LogClient> Cluster::BuildClient(
    const client::LogClientConfig& config) {
  auto node = std::make_unique<client::LogClient>(&sim_, config);
  for (auto& network : networks_) node->AttachNetwork(network.get());
  node->SetTracer(&tracer_);
  node->RegisterMetrics(&metrics_);
  return node;
}

ClientHandle Cluster::AddClient(client::LogClientConfig config) {
  if (config.servers.empty()) config.servers = server_ids();
  if (config.node_id == 1000 || config.node_id == 0) {
    config.node_id = next_client_node_;
  }
  ++next_client_node_;
  DLOG_CHECK_OK(config.Validate());
  ClientSlot slot;
  slot.config = config;
  slot.node = BuildClient(config);
  clients_.push_back(std::move(slot));
  return ClientHandle(this, static_cast<int>(clients_.size()) - 1);
}

void Cluster::CrashClient(int index) {
  clients_[index].node->Crash();
}

void Cluster::RestartClient(int index) {
  ClientSlot& slot = clients_[index];
  // Crash() detaches the NICs; without it the node_id would still be
  // claimed on every network when the replacement attaches.
  if (slot.node->IsUp()) slot.node->Crash();
  // The cluster plays the role of the client's stable-storage incarnation
  // cell (Section 2's per-node stable counter): the replacement must run
  // as a strictly higher incarnation, or its connection ids would collide
  // with connections the servers still hold from the previous life and
  // its handshakes would be answered with stale state.
  slot.config.wire.initial_incarnation = slot.node->wire_incarnation() + 1;
  // The registry holds pointers into the old incarnation's counters;
  // drop them before the node dies, then let the replacement re-register
  // under the same names (its identity is unchanged).
  metrics_.UnregisterPrefix(
      "client-" + std::to_string(slot.config.client_id) + "/log/");
  slot.node.reset();
  slot.node = BuildClient(slot.config);
}

bool Cluster::RunUntil(std::function<bool()> fn, sim::Duration timeout) {
  const sim::Time deadline = sim_.Now() + timeout;
  while (!fn()) {
    if (sim_.Now() >= deadline) return false;
    if (!sim_.Step()) {
      // Queue drained: advance in small hops so timers parked beyond the
      // horizon don't stall the predicate.
      return fn();
    }
  }
  return true;
}

}  // namespace dlog::harness
