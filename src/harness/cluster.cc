#include "harness/cluster.h"

namespace dlog::harness {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), tracer_(&sim_) {
  tracer_.set_enabled(config.tracing);
  for (int i = 0; i < config.num_networks; ++i) {
    net::NetworkConfig net_cfg = config.network;
    net_cfg.seed = config.seed * 1000 + i;
    networks_.push_back(std::make_unique<net::Network>(&sim_, net_cfg));
  }
  for (int i = 0; i < config.num_servers; ++i) {
    server::LogServerConfig server_cfg = config.server;
    server_cfg.node_id = static_cast<net::NodeId>(i + 1);
    auto server = std::make_unique<server::LogServer>(&sim_, server_cfg);
    for (auto& network : networks_) server->AttachNetwork(network.get());
    server->SetTracer(&tracer_);
    server->RegisterMetrics(&metrics_);
    servers_.push_back(std::move(server));
  }
}

std::vector<net::NodeId> Cluster::server_ids() const {
  std::vector<net::NodeId> ids;
  for (int i = 0; i < static_cast<int>(servers_.size()); ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  return ids;
}

std::unique_ptr<client::LogClient> Cluster::MakeClient(
    client::LogClientConfig config) {
  if (config.servers.empty()) config.servers = server_ids();
  if (config.node_id == 1000 || config.node_id == 0) {
    config.node_id = next_client_node_;
  }
  ++next_client_node_;
  auto log_client = std::make_unique<client::LogClient>(&sim_, config);
  for (auto& network : networks_) log_client->AttachNetwork(network.get());
  log_client->SetTracer(&tracer_);
  log_client->RegisterMetrics(&metrics_);
  return log_client;
}

bool Cluster::RunUntil(std::function<bool()> fn, sim::Duration timeout) {
  const sim::Time deadline = sim_.Now() + timeout;
  while (!fn()) {
    if (sim_.Now() >= deadline) return false;
    if (!sim_.Step()) {
      // Queue drained: advance in small hops so timers parked beyond the
      // horizon don't stall the predicate.
      return fn();
    }
  }
  return true;
}

}  // namespace dlog::harness
