#include "harness/cluster.h"

#include <string>
#include <utility>

#include "common/bytes.h"

namespace dlog::harness {

namespace {

sim::ParallelConfig MakeParallelConfig(const ClusterConfig& config) {
  sim::ParallelConfig pc;
  pc.num_workers = config.shard_workers;
  // Per-link lookahead: nothing a node does at time T reaches another
  // node before T + propagation_delay + the time the header alone spends
  // on the wire. Network::SendNow computes arrival as
  // max(enqueue, medium_free) + tx_time + propagation, and tx_time >=
  // header_bytes * 8 / bandwidth for any packet, so this is still a
  // conservative bound — but a meaningfully larger window than the bare
  // propagation floor on slow LANs, which directly divides barrier
  // frequency. Barrier-scheduled deliveries (drained at the window edge)
  // are posted onto shard cores sitting exactly at the window end, so
  // they can never land inside a closed window regardless of lookahead.
  pc.lookahead =
      config.network.propagation_delay +
      sim::SecondsToDuration(
          static_cast<double>(config.network.header_bytes) * 8.0 /
          config.network.bandwidth_bits_per_sec);
  return pc;
}

}  // namespace

Status ClusterConfig::Validate() const {
  if (num_servers < 1) {
    return Status::InvalidArgument("num_servers must be >= 1");
  }
  if (num_networks < 1) {
    return Status::InvalidArgument("num_networks must be >= 1");
  }
  if (shard_workers < 0) {
    return Status::InvalidArgument("shard_workers must be >= 0");
  }
  if (nodes_per_shard < 1) {
    return Status::InvalidArgument("nodes_per_shard must be >= 1");
  }
  if (shard_workers > 0) {
    if (tracing || profiling) {
      return Status::InvalidArgument(
          "the parallel engine does not support tracing/profiling "
          "(span ids and probe streams are interleaving-dependent)");
    }
    if (flight_recorder) {
      return Status::InvalidArgument(
          "the flight recorder is serial-engine only (span routing is "
          "interleaving-dependent)");
    }
    if (network.propagation_delay == 0) {
      return Status::InvalidArgument(
          "the parallel engine needs propagation_delay > 0 as lookahead");
    }
  }
  DLOG_RETURN_IF_ERROR(telemetry.Validate());
  DLOG_RETURN_IF_ERROR(health.Validate());
  if (health.enabled && !telemetry.enabled) {
    return Status::InvalidArgument(
        "health monitoring reads telemetry windows: set telemetry.enabled");
  }
  DLOG_RETURN_IF_ERROR(network.Validate());
  // The per-server template is validated with its node_id already
  // overwritten, so a zero id in the template is fine.
  DLOG_RETURN_IF_ERROR(server.Validate());
  return Status::OK();
}

sim::Scheduler* Cluster::InfraScheduler() {
  if (serial_ != nullptr) return serial_.get();
  // Shared actors are called from whatever shard is executing; the
  // ambient facade binds their clock to the calling shard.
  return parallel_->ambient();
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      serial_(config.shard_workers == 0 ? std::make_unique<sim::Simulator>()
                                        : nullptr),
      parallel_(config.shard_workers > 0
                    ? std::make_unique<sim::ParallelSimulator>(
                          MakeParallelConfig(config))
                    : nullptr),
      tracer_(InfraScheduler()) {
  DLOG_CHECK_OK(config.Validate());
  tracer_.set_enabled(config.tracing);
  if (serial_ != nullptr) {
    serial_->EnableTimerWheel(config.timer_wheel);
    tick_seq_ = std::make_unique<sim::TickSequencer>(serial_.get());
  }
  for (int i = 0; i < config.num_networks; ++i) {
    net::NetworkConfig net_cfg = config.network;
    net_cfg.seed = config.seed * 1000 + i;
    networks_.push_back(
        std::make_unique<net::Network>(InfraScheduler(), net_cfg));
    if (parallel_ != nullptr) {
      networks_.back()->SetSequencing(
          {parallel_.get(), [this](net::NodeId id) {
             return node_schedulers_[id];
           }});
    } else {
      // The serial engine sequences network mutations too: same-tick
      // sends then arbitrate in (src node, post order) — the identical
      // order the parallel barrier replays — instead of in heap-insertion
      // order, which no sharded execution could reproduce.
      networks_.back()->SetSequencing({tick_seq_.get(), nullptr});
    }
    if (config.profiling) {
      net::Network* network = networks_.back().get();
      const std::string name = "net-" + std::to_string(i);
      network->SetBusyProbe([this, name](sim::Time s, sim::Time e) {
        profiler_.RecordBusy(name, s, e);
      });
      network->SetPacketProbe([this](const net::Network::PacketTiming& t) {
        profiler_.RecordPacket({t.trace, t.span, t.src, t.dst,
                                t.wire_bytes, t.enqueue, t.tx_start,
                                t.tx_end, t.arrival, t.delivered});
      });
    }
  }
  for (int i = 0; i < config.num_servers; ++i) {
    server::LogServerConfig server_cfg = config.server;
    server_cfg.node_id = static_cast<net::NodeId>(i + 1);
    sim::Scheduler* sched;
    if (serial_ != nullptr) {
      sched = serial_.get();
      server_shards_.push_back(0);
    } else {
      const int shard = AssignShard();
      server_shards_.push_back(shard);
      sched = parallel_->shard(shard);
    }
    SetNodeScheduler(server_cfg.node_id, sched);
    auto server = std::make_unique<server::LogServer>(sched, server_cfg);
    for (auto& network : networks_) server->AttachNetwork(network.get());
    server->SetTracer(&tracer_);
    server->RegisterMetrics(&metrics_);
    if (config.profiling) {
      // A server's CPU/disk/NVRAM objects survive Crash()/Restart(), so
      // attaching once here covers the node's whole lifetime.
      const std::string name = "server-" + std::to_string(i + 1);
      profiler_.SetNodeName(server_cfg.node_id, name);
      server->cpu().SetBusyProbe([this, name](sim::Time s, sim::Time e) {
        profiler_.RecordBusy(name + "/cpu", s, e);
      });
      server->disk().SetRequestProbe(
          [this, name](const storage::SimDisk::RequestTiming& t) {
            profiler_.RecordDisk(name + "/disk",
                                 {t.track, t.is_write, t.submitted,
                                  t.start, t.seek, t.rotation, t.transfer,
                                  t.end});
          });
      server->nvram_buffer().SetOccupancyProbe([this, name](size_t used) {
        profiler_.RecordLevel(name + "/nvram", serial_->Now(),
                              static_cast<double>(used));
      });
    }
    servers_.push_back(std::move(server));
  }
  chaos_ = std::make_unique<chaos::ChaosController>(InfraScheduler(), this);
  if (parallel_ != nullptr) {
    chaos_->SetSchedulerRouter([this](const chaos::FaultEvent& event) {
      switch (event.type) {
        case chaos::FaultType::kServerCrash:
        case chaos::FaultType::kServerRestart:
        case chaos::FaultType::kDiskFail:
        case chaos::FaultType::kNvramLoss:
          return &server_scheduler(event.target);
        case chaos::FaultType::kClientCrash:
        case chaos::FaultType::kClientRestart:
          return &client_scheduler(event.target);
        case chaos::FaultType::kPartition:
        case chaos::FaultType::kHealPartition:
        case chaos::FaultType::kLinkDegrade:
        case chaos::FaultType::kLinkRestore:
          break;  // network faults defer through the barrier anyway
      }
      return &scheduler();
    });
  }
  chaos_->SetTracer(&tracer_);
  chaos_->RegisterMetrics(&metrics_);
  // The process-wide copy counter, visible in every snapshot/diff instead
  // of needing bespoke plumbing in each bench. Reported relative to
  // cluster construction so identical runs in one process (determinism
  // tests re-running a config) snapshot identical values.
  const uint64_t bytes_copied_base = dlog::BytesCopied();
  metrics_.RegisterCallback("process/bytes_copied", [bytes_copied_base]() {
    return static_cast<double>(dlog::BytesCopied() - bytes_copied_base);
  });
  if (config.flight_recorder) {
    obs::FlightRecorderConfig flight_cfg;
    flight_cfg.ring_spans = config.flight_ring_spans;
    flight_ = std::make_unique<obs::FlightRecorder>(flight_cfg);
    // Ring mode: with tracing off the tracer still routes every
    // completed span into the recorder's bounded rings; with tracing on
    // it feeds both the full span log and the rings.
    tracer_.SetFlightRecorder(flight_.get());
    chaos_->SetFlightRecorder(flight_.get());
  }
  if (config.telemetry.enabled) {
    collector_ =
        std::make_unique<obs::TimeSeriesCollector>(config.telemetry,
                                                   &metrics_);
    if (config.profiling) collector_->AttachProfiler(&profiler_);
    next_sample_ = config.telemetry.interval;
    if (config.health.enabled) {
      health_ = std::make_unique<obs::HealthMonitor>(config.health,
                                                     collector_.get());
      health_->SetTracer(&tracer_);
      for (int i = 1; i <= config.num_servers; ++i) {
        health_->AddServerNode("server-" + std::to_string(i));
      }
      health_->RegisterMetrics(&metrics_);
    }
  }
}

std::vector<net::NodeId> Cluster::server_ids() const {
  std::vector<net::NodeId> ids;
  for (int i = 0; i < static_cast<int>(servers_.size()); ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  return ids;
}

std::unique_ptr<client::LogClient> Cluster::BuildClient(
    const client::LogClientConfig& config, sim::Scheduler* sched) {
  auto node = std::make_unique<client::LogClient>(sched, config);
  for (auto& network : networks_) node->AttachNetwork(network.get());
  node->SetTracer(&tracer_);
  node->RegisterMetrics(&metrics_);
  if (config_.profiling) {
    // Re-attached on every (re)build: a restarted client is a new object
    // with a new CPU, feeding the same per-identity timeline.
    const std::string name =
        "client-" + std::to_string(config.client_id);
    profiler_.SetNodeName(config.node_id, name);
    node->cpu().SetBusyProbe([this, name](sim::Time s, sim::Time e) {
      profiler_.RecordBusy(name + "/cpu", s, e);
    });
  }
  return node;
}

ClientHandle Cluster::AddClient(client::LogClientConfig config) {
  if (config.servers.empty()) config.servers = server_ids();
  if (config.node_id == 1000 || config.node_id == 0) {
    config.node_id = next_client_node_;
  }
  ++next_client_node_;
  DLOG_CHECK_OK(config.Validate());
  ClientSlot slot;
  slot.config = config;
  if (parallel_ != nullptr) {
    slot.shard = AssignShard();
    SetNodeScheduler(config.node_id, parallel_->shard(slot.shard));
  }
  sim::Scheduler* sched = serial_ != nullptr
                              ? static_cast<sim::Scheduler*>(serial_.get())
                              : parallel_->shard(slot.shard);
  slot.node = BuildClient(config, sched);
  clients_.push_back(std::move(slot));
  if (health_ != nullptr) {
    health_->AddClientNode("client-" + std::to_string(config.client_id));
  }
  return ClientHandle(this, static_cast<int>(clients_.size()) - 1);
}

void Cluster::CrashClient(int index) {
  clients_[index].node->Crash();
}

void Cluster::RestartClient(int index) {
  ClientSlot& slot = clients_[index];
  // Crash() detaches the NICs; without it the node_id would still be
  // claimed on every network when the replacement attaches.
  if (slot.node->IsUp()) slot.node->Crash();
  // The cluster plays the role of the client's stable-storage incarnation
  // cell (Section 2's per-node stable counter): the replacement must run
  // as a strictly higher incarnation, or its connection ids would collide
  // with connections the servers still hold from the previous life and
  // its handshakes would be answered with stale state.
  slot.config.wire.initial_incarnation = slot.node->wire_incarnation() + 1;
  // The registry holds pointers into the old incarnation's counters;
  // drop them before the node dies, then let the replacement re-register
  // under the same names (its identity is unchanged).
  metrics_.UnregisterPrefix(
      "client-" + std::to_string(slot.config.client_id) + "/log/");
  slot.node.reset();
  slot.node = BuildClient(slot.config, &client_scheduler(index));
}

int Cluster::AssignShard() {
  if (nodes_assigned_ % config_.nodes_per_shard == 0) {
    current_shard_ = parallel_->AddShard();
  }
  ++nodes_assigned_;
  return current_shard_;
}

sim::Time Cluster::NextEventTime() {
  return serial_ ? serial_->PeekNextTime() : parallel_->NextEventTime();
}

void Cluster::RawRunUntil(sim::Time t) {
  serial_ ? serial_->RunUntil(t) : parallel_->RunUntil(t);
}

void Cluster::SampleWindow() {
  collector_->Sample(next_sample_);
  if (health_ != nullptr) health_->Evaluate(next_sample_);
  next_sample_ += config_.telemetry.interval;
}

void Cluster::EngineRunUntil(sim::Time t) {
  if (collector_ != nullptr) {
    // Stop at every window edge on the way: RunUntil(edge) runs all
    // events <= edge and leaves the engine quiescent exactly there, so
    // the sampled values are a pure function of the simulated schedule
    // — identical on either engine at any worker count.
    while (next_sample_ <= t) {
      RawRunUntil(next_sample_);
      SampleWindow();
    }
  }
  RawRunUntil(t);
}

void Cluster::SampleWindowsBeforeStep() {
  if (collector_ == nullptr) return;
  // Keep the per-event Step() loops window-consistent with RunUntil: a
  // window ending at W closes after every event at time <= W has run,
  // so sample only once the next pending event is strictly past W.
  const sim::Time next = serial_->PeekNextTime();
  if (next == sim::Simulator::kNoEvent) return;
  while (next_sample_ < next) {
    RawRunUntil(next_sample_);
    SampleWindow();
  }
}

void Cluster::RunFor(sim::Duration d) { EngineRunUntil(Now() + d); }

void Cluster::Run() {
  if (collector_ == nullptr) {
    serial_ ? serial_->Run() : parallel_->Run();
    return;
  }
  // Run to exhaustion, window by window. Sampling stops with the last
  // event: trailing empty windows carry nothing.
  for (;;) {
    const sim::Time next = NextEventTime();
    if (next == sim::Simulator::kNoEvent) return;
    EngineRunUntil(std::max(next, next_sample_));
  }
}

bool Cluster::RunUntil(std::function<bool()> fn, sim::Duration timeout) {
  const sim::Time deadline = Now() + timeout;
  if (config_.run_until_quantum <= 0) {
    assert(serial_ != nullptr &&
           "parallel RunUntil(predicate) needs run_until_quantum > 0");
    while (!fn()) {
      if (serial_->Now() >= deadline) return false;
      SampleWindowsBeforeStep();
      if (!serial_->Step()) {
        // Queue drained: the predicate can no longer change.
        return fn();
      }
    }
    return true;
  }
  // Quantized: the predicate is checked at times that are a pure
  // function of the simulated schedule (grid points and event times),
  // never of engine internals — so both engines stop identically.
  while (!fn()) {
    if (Now() >= deadline) return false;
    const sim::Time next = NextEventTime();
    if (next == sim::Simulator::kNoEvent) return fn();
    EngineRunUntil(std::max(Now() + config_.run_until_quantum, next));
  }
  return true;
}

bool Cluster::RunUntil(const StopLatch& latch, sim::Duration timeout) {
  const sim::Time deadline = Now() + timeout;
  if (config_.run_until_quantum <= 0) {
    assert(serial_ != nullptr &&
           "parallel RunUntil(latch) needs run_until_quantum > 0");
    while (!latch.Done()) {
      if (serial_->Now() >= deadline) return false;
      SampleWindowsBeforeStep();
      if (!serial_->Step()) return latch.Done();
    }
    return true;
  }
  // Same quantized grid as the predicate form: the polling times depend
  // only on the simulated schedule, so the stop point is engine- and
  // worker-count-independent.
  while (!latch.Done()) {
    if (Now() >= deadline) return false;
    const sim::Time next = NextEventTime();
    if (next == sim::Simulator::kNoEvent) return latch.Done();
    EngineRunUntil(std::max(Now() + config_.run_until_quantum, next));
  }
  return true;
}

}  // namespace dlog::harness
