#ifndef DLOG_HARNESS_STOP_LATCH_H_
#define DLOG_HARNESS_STOP_LATCH_H_

#include <atomic>
#include <cstdint>

namespace dlog::harness {

/// A shard-local stop condition for Cluster::RunUntil at scale. A
/// predicate closure is re-evaluated by the coordinator at every polling
/// point; when the predicate itself is O(nodes) ("are all 5000 drivers
/// initialized?"), the coordinator pays nodes x polls. With a latch,
/// each node counts down once from wherever it runs (its own shard
/// thread under the parallel engine — the counter is atomic), and the
/// coordinator's check is a single flag load.
///
/// The latch carries no engine state: whether the count reaches zero —
/// and at which polling point RunUntil observes it — is a pure function
/// of the simulated schedule, so latch-stopped runs remain byte-identical
/// across engines and worker counts on the run_until_quantum grid.
class StopLatch {
 public:
  explicit StopLatch(uint64_t count = 0) : remaining_(count) {}

  StopLatch(const StopLatch&) = delete;
  StopLatch& operator=(const StopLatch&) = delete;

  /// Raises the count (before the run starts, or from the node that will
  /// later count the addition down).
  void Add(uint64_t n = 1) {
    remaining_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Signals one unit of completion. The final count-down publishes
  /// Done() with release semantics, so state written by the signalling
  /// node before CountDown() is visible to whoever observes Done().
  void CountDown() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_.store(true, std::memory_order_release);
    }
  }

  bool Done() const { return done_.load(std::memory_order_acquire); }

  uint64_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> remaining_;
  std::atomic<bool> done_{false};
};

}  // namespace dlog::harness

#endif  // DLOG_HARNESS_STOP_LATCH_H_
