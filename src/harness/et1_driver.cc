#include "harness/et1_driver.h"

#include <string>

namespace dlog::harness {

Et1Driver::Et1Driver(Cluster* cluster, client::LogClientConfig log_config,
                     const Et1DriverConfig& config)
    : cluster_(cluster), config_(config), rng_(config.seed) {
  log_ = cluster->AddClient(log_config);
  sched_ = &cluster->scheduler(log_);
  logger_ = std::make_unique<tp::ReplicatedTxnLogger>(log_.get());
  page_disk_ = std::make_unique<tp::PageDisk>(config.engine.page_bytes);
  engine_ = std::make_unique<tp::TransactionEngine>(
      sched_, logger_.get(), page_disk_.get(), config.engine);
  bank_ = std::make_unique<tp::BankDb>(engine_.get(), config.bank);
  // Same node name as the LogClient so the engine's "txn" roots and the
  // client's "wal.group"/"ForceLog" spans share a timeline row.
  trace_node_ = "client-" + std::to_string(log_->client_id());
  engine_->SetTracer(&cluster->tracer(), trace_node_);
  engine_->RegisterMetrics(&cluster->metrics(), trace_node_);
  cluster->metrics().RegisterHistogram(
      trace_node_ + "/driver/txn_latency_ms", &txn_latency_ms_);
}

Et1Driver::~Et1Driver() {
  stopped_ = true;
  // The registry outlives this driver; drop its pointers into the engine
  // and histogram before they die. The log client is cluster-owned and
  // keeps its "client-<id>/log/" metrics registered.
  cluster_->metrics().UnregisterPrefix(trace_node_ + "/tp/");
  cluster_->metrics().UnregisterPrefix(trace_node_ + "/driver/");
}

void Et1Driver::Start() {
  log_->Init([this](Status st) {
    if (!st.ok()) {
      // Keep polling: "the client process can poll until it receives
      // responses from enough servers."
      sched_->After(500 * sim::kMillisecond,
                    [this]() { if (!stopped_) Start(); });
      return;
    }
    started_ = true;
    if (config_.start_latch != nullptr) config_.start_latch->CountDown();
    ScheduleNext();
  });
}

void Et1Driver::Stop() { stopped_ = true; }

void Et1Driver::ScheduleNext() {
  if (stopped_) return;
  const double mean_gap_s = 1.0 / config_.tps;
  const double gap_s =
      config_.poisson ? rng_.NextExponential(mean_gap_s) : mean_gap_s;
  sched_->After(sim::SecondsToDuration(gap_s), [this]() {
    if (stopped_) return;
    RunOne();
    ScheduleNext();
  });
}

void Et1Driver::RunOne() {
  if (config_.max_log_backlog > 0 &&
      log_->pending_records() > config_.max_log_backlog) {
    ++txns_shed_;
    return;
  }
  const int account =
      static_cast<int>(rng_.NextBelow(config_.bank.accounts));
  const int teller = static_cast<int>(rng_.NextBelow(config_.bank.tellers));
  const int branch =
      static_cast<int>(rng_.NextBelow(config_.bank.branches));
  const int64_t delta = static_cast<int64_t>(rng_.NextBelow(200)) - 100;
  const sim::Time start = sched_->Now();
  bank_->RunEt1(account, teller, branch, delta, [this, start](Status st) {
    if (st.ok()) {
      ++committed_;
      txn_latency_ms_.Add(
          sim::DurationToSeconds(sched_->Now() - start) * 1e3);
    } else {
      ++failed_;
    }
  });
}

}  // namespace dlog::harness
