#ifndef DLOG_HARNESS_TRIAL_RUNNER_H_
#define DLOG_HARNESS_TRIAL_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dlog::harness {

/// Fans independent simulation trials across a thread pool.
///
/// Each trial is a self-contained deterministic simulation (its own
/// Simulator, Cluster, RNG seeds); the only shared state between trials
/// is process-wide atomics (the bytes-copied counter) and the results
/// vector, written at disjoint indices. Results come back in trial-index
/// order regardless of completion order or thread count, so any report
/// aggregated from them is byte-identical to a serial run — parallelism
/// changes wall-clock time and nothing else.
///
/// The per-thread event-callback slab pool (sim/callback.cc) is
/// thread_local; a trial runs start-to-finish on the worker that claimed
/// it, so its allocations stay on one list. (Trials may themselves run
/// the parallel engine — shard workers are nested inside the trial and
/// the pool handles their cross-thread frees; see callback.cc.)
class TrialRunner {
 public:
  /// `threads` <= 1 means run trials inline on the calling thread.
  explicit TrialRunner(size_t threads) : threads_(threads) {}

  size_t threads() const { return threads_; }

  /// Runs `fn(trial)` for every trial in [0, n) and returns the results
  /// indexed by trial. `fn` must not touch shared mutable state other
  /// than atomics; the result type must be default-constructible and
  /// movable.
  template <typename Fn>
  auto Run(size_t n, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, size_t>> {
    using R = std::invoke_result_t<Fn&, size_t>;
    std::vector<R> results(n);
    if (threads_ <= 1 || n <= 1) {
      for (size_t i = 0; i < n; ++i) results[i] = fn(i);
      return results;
    }
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        results[i] = fn(i);
      }
    };
    std::vector<std::thread> pool;
    const size_t spawn = threads_ < n ? threads_ : n;
    pool.reserve(spawn);
    for (size_t t = 0; t < spawn; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    return results;
  }

 private:
  size_t threads_;
};

}  // namespace dlog::harness

#endif  // DLOG_HARNESS_TRIAL_RUNNER_H_
