#ifndef DLOG_HARNESS_CLUSTER_H_
#define DLOG_HARNESS_CLUSTER_H_

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "chaos/controller.h"
#include "chaos/targets.h"
#include "client/log_client.h"
#include "common/status.h"
#include "net/network.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "server/log_server.h"
#include "harness/stop_latch.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace dlog::harness {

class Cluster;

/// A stable reference to a Cluster-owned client. Copyable and cheap; it
/// resolves through the Cluster on every use, so it stays valid across
/// CrashClient/RestartClient (which replace the underlying LogClient
/// object while preserving its identity). Dereferencing a handle whose
/// client is crashed returns the dead node: calls on it fail the way
/// calls into a powered-off machine do.
class ClientHandle {
 public:
  ClientHandle() = default;

  client::LogClient& operator*() const;
  client::LogClient* operator->() const;
  client::LogClient* get() const;
  explicit operator bool() const { return cluster_ != nullptr; }

  /// AddClient order, 0-based: the id chaos::FaultPlan client events use.
  int index() const { return index_; }

 private:
  friend class Cluster;
  ClientHandle(Cluster* cluster, int index)
      : cluster_(cluster), index_(index) {}

  Cluster* cluster_ = nullptr;
  int index_ = 0;
};

/// Configuration for a simulated deployment: M log servers on one or two
/// local networks, plus any number of client nodes created afterwards.
struct ClusterConfig {
  int num_servers = 3;
  /// Two networks reproduce the paper's dual-LAN availability setup.
  int num_networks = 1;
  net::NetworkConfig network;
  /// Template applied to every server (node_id is overwritten).
  server::LogServerConfig server;
  /// When true the cluster-wide tracer records causal spans (txn →
  /// wal.group → wire.send → nvram.buffer/track.write/force.ack) for
  /// every traced operation; export with obs::ChromeTraceJson. Off by
  /// default: bulk experiments should not accumulate span memory.
  bool tracing = false;
  /// When true the cluster wires every resource's probe hooks (CPUs,
  /// LANs, disk arms, NVRAM buffers, per-packet timing) into an owned
  /// obs::Profiler: exact utilization timelines plus — combined with
  /// `tracing` — per-component ForceLog latency attribution and
  /// critical-path extraction. Off by default for the same reason as
  /// tracing.
  bool profiling = false;
  uint64_t seed = 1;
  /// Simulation engine. 0 (default) runs the serial sim::Simulator —
  /// byte-compatible with every existing experiment. >= 1 runs the
  /// sharded sim::ParallelSimulator with this many worker threads, one
  /// shard per node, and NetworkConfig::propagation_delay as the
  /// conservative lookahead. A run's output is identical for every
  /// worker count; matching the serial engine additionally requires
  /// predicate waits to be quantized (run_until_quantum) in both modes.
  /// Parallel clusters reject tracing/profiling: span ids and profiler
  /// streams are interleaving-dependent.
  int shard_workers = 0;
  /// Shard grouping (parallel engine only): how many nodes share one
  /// shard. 1 (default) keeps the original node-per-shard layout. Larger
  /// groups cut the coordinator's per-window work — the barrier scans
  /// every shard once per lookahead window, so at thousands of clients
  /// the shard count itself becomes the bottleneck. Nodes are grouped in
  /// creation order (servers first, then clients). Chaos-free runs are
  /// byte-identical across group sizes: everything crossing a node
  /// boundary goes through the Network, whose barrier merge is keyed by
  /// source node id, not shard — grouping only changes which events
  /// execute contiguously, never their order.
  int nodes_per_shard = 1;
  /// Serial engine only: route eligible coarse-deadline timers through
  /// the Simulator's hierarchical timer wheel (see sim::Simulator).
  /// Schedule-invisible either way — this knob exists so identity tests
  /// and benches can compare the wheel against the heap-only build.
  bool timer_wheel = true;
  /// RunUntil(predicate) polling grid. 0 (default) checks the predicate
  /// after every event — exact, serial engine only. > 0 checks it every
  /// this much simulated time; the stopping times then depend only on
  /// the simulated schedule, so serial and parallel runs stop
  /// identically. Engine-comparing benches set it in both modes.
  sim::Duration run_until_quantum = 0;
  /// Live windowed telemetry (obs::TimeSeriesCollector). When enabled
  /// the cluster samples every registered metric on the telemetry
  /// interval grid, at quiescent points, so the series are a pure
  /// function of the simulated schedule — byte-identical on the serial
  /// engine and on the parallel engine at any worker count.
  obs::TimeSeriesConfig telemetry;
  /// Online health rules evaluated over the telemetry windows (requires
  /// `telemetry.enabled`).
  obs::HealthConfig health;
  /// Crash flight recorder: the tracer routes every completed span into
  /// bounded per-node rings (even with `tracing` off — ring mode keeps
  /// no unbounded state), and chaos crash faults dump the victim's ring
  /// for post-mortem. Serial engine only: span routing is
  /// interleaving-dependent under the parallel engine.
  bool flight_recorder = false;
  /// Spans retained per node ring when `flight_recorder` is set.
  size_t flight_ring_spans = 256;

  /// OK iff the deployment is constructible (at least one server and
  /// network, valid server/network templates, consistent engine
  /// options).
  Status Validate() const;
};

/// Owns a Simulator, the networks, the log server nodes, the client
/// nodes, and a chaos::ChaosController for one experiment. Server node
/// ids are 1..M; client node ids start at 1000.
///
/// Clients are owned by the cluster: AddClient returns a ClientHandle,
/// and CrashClient/RestartClient cycle the node while preserving its
/// client_id, node_id, and metric registrations — the lifecycle
/// chaos::FaultPlan client events drive.
class Cluster : public chaos::FaultTargets {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The serial engine. Only valid when shard_workers == 0 (the
  /// default); engine-agnostic callers use Now()/RunFor()/Run()/
  /// RunUntil() and the per-node scheduler accessors instead.
  sim::Simulator& sim() {
    assert(serial_ != nullptr && "cluster is running the parallel engine");
    return *serial_;
  }
  bool parallel() const { return parallel_ != nullptr; }
  sim::ParallelSimulator& parallel_sim() { return *parallel_; }

  /// Engine-agnostic clock and run controls. With telemetry enabled,
  /// RunFor/Run/RunUntil all stop at every telemetry window edge to
  /// sample, so series and alerts accumulate live however the
  /// experiment drives the clock.
  sim::Time Now() const {
    return serial_ ? serial_->Now() : parallel_->Now();
  }
  void RunFor(sim::Duration d);
  void Run();

  /// Per-node schedulers: the serial engine for every node, or the
  /// node's shard handle under the parallel engine. Components built
  /// outside the cluster (drivers, probes) must schedule on the
  /// scheduler of the node they belong to.
  sim::Scheduler& server_scheduler(int id) {
    return serial_ ? static_cast<sim::Scheduler&>(*serial_)
                   : *parallel_->shard(server_shards_[id - 1]);
  }
  sim::Scheduler& client_scheduler(int index) {
    return serial_ ? static_cast<sim::Scheduler&>(*serial_)
                   : *parallel_->shard(clients_[index].shard);
  }
  sim::Scheduler& scheduler(const ClientHandle& handle) {
    return client_scheduler(handle.index());
  }
  /// The control-plane scheduler (cluster-wide timers, shard 0).
  sim::Scheduler& scheduler() {
    return serial_ ? static_cast<sim::Scheduler&>(*serial_)
                   : *parallel_->shard(0);
  }

  net::Network& network(int i = 0) override { return *networks_[i]; }
  int num_networks() const override {
    return static_cast<int>(networks_.size());
  }

  /// The cluster-wide causal tracer (recording only when
  /// ClusterConfig::tracing is set) and the unified metrics registry.
  /// Servers, clients, and the chaos controller register their metrics
  /// here for their whole lifetime.
  obs::Tracer& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// The resource profiler (collecting only when ClusterConfig::profiling
  /// is set; empty otherwise).
  obs::Profiler& profiler() { return profiler_; }

  /// The live telemetry collector, health monitor, and flight recorder.
  /// Null unless the matching ClusterConfig knob is enabled.
  obs::TimeSeriesCollector* telemetry() { return collector_.get(); }
  obs::HealthMonitor* health() { return health_.get(); }
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Injects scheduled or Markov-sampled faults into this cluster.
  chaos::ChaosController& chaos() { return *chaos_; }

  /// 1-based server access matching the paper's figures.
  server::LogServer& server(int id) { return *servers_[id - 1]; }
  int num_servers() const override {
    return static_cast<int>(servers_.size());
  }
  std::vector<net::NodeId> server_ids() const;

  /// Creates a cluster-owned client attached to every network.
  /// `config.servers` and `config.node_id` are filled in automatically
  /// (node ids 1000, 1001, ... in creation order) unless already set.
  ClientHandle AddClient(client::LogClientConfig config = {});

  /// The client behind a handle / at an AddClient index.
  client::LogClient& client(const ClientHandle& handle) {
    return client(handle.index());
  }
  client::LogClient& client(int index) { return *clients_[index].node; }
  int num_clients() const override {
    return static_cast<int>(clients_.size());
  }

  /// Crashes the client: volatile state is lost, its NICs detach. The
  /// handle stays valid but the node is dead until RestartClient.
  void CrashClient(int index) override;
  void CrashClient(const ClientHandle& handle) {
    CrashClient(handle.index());
  }

  /// Reconstructs a crashed client with its original configuration
  /// (same client_id, node_id, seed) and re-registers its metrics.
  /// Callers run Init() on it to re-enter the log (Section 3.1.2).
  void RestartClient(int index) override;
  void RestartClient(const ClientHandle& handle) {
    RestartClient(handle.index());
  }

  // --- chaos::FaultTargets (server/client state for the controller) ---
  bool ServerUp(int server) const override {
    return servers_[server - 1]->IsUp();
  }
  void CrashServer(int server) override { servers_[server - 1]->Crash(); }
  void RestartServer(int server) override {
    servers_[server - 1]->Restart();
  }
  void FailServerDisk(int server) override {
    servers_[server - 1]->FailDisk();
  }
  void LoseServerNvram(int server) override {
    servers_[server - 1]->LoseNvram();
  }
  bool ClientUp(int index) const override {
    return clients_[index].node != nullptr && clients_[index].node->IsUp();
  }
  std::string ClientNodeName(int index) const override {
    return "client-" + std::to_string(clients_[index].config.client_id);
  }

  /// Runs the engine until `fn` returns true or `timeout` elapses;
  /// returns whether the predicate held. With run_until_quantum == 0
  /// (serial only) the predicate is checked after every event; with a
  /// quantum it is checked on the engine-independent time grid.
  bool RunUntil(std::function<bool()> fn,
                sim::Duration timeout = 30 * sim::kSecond);

  /// Runs the engine until the latch is done or `timeout` elapses;
  /// returns whether it completed. Equivalent to RunUntil with a
  /// `latch.Done()` predicate, but the per-poll cost is a single atomic
  /// flag load — the right stop condition when "done" is an aggregate
  /// over thousands of nodes. Requires run_until_quantum > 0 under the
  /// parallel engine (same rule as the predicate form).
  bool RunUntil(const StopLatch& latch,
                sim::Duration timeout = 30 * sim::kSecond);

 private:
  struct ClientSlot {
    /// The fully resolved configuration (servers + node_id filled), kept
    /// so RestartClient reconstructs an identical node.
    client::LogClientConfig config;
    std::unique_ptr<client::LogClient> node;
    /// The node's shard under the parallel engine (fixed for the
    /// client's whole identity, across crash/restart cycles).
    int shard = 0;
  };

  /// Builds, wires, and registers a LogClient from a resolved config on
  /// the given scheduler (the client's shard).
  std::unique_ptr<client::LogClient> BuildClient(
      const client::LogClientConfig& config, sim::Scheduler* sched);
  /// Earliest pending event across the engine (quiescent).
  sim::Time NextEventTime();
  /// Advances the engine to `t`, sampling every telemetry window whose
  /// edge is <= t at its exact edge (quiescent) on the way.
  void EngineRunUntil(sim::Time t);
  /// The raw engine RunUntil, no telemetry stops.
  void RawRunUntil(sim::Time t);
  /// Samples the telemetry window ending at next_sample_ and evaluates
  /// the health rules over it. Pre: the engine is quiescent at
  /// Now() == next_sample_.
  void SampleWindow();
  /// Per-event Step() loops (serial, run_until_quantum == 0): closes
  /// every window strictly before the next pending event.
  void SampleWindowsBeforeStep();
  /// Places the next node (creation order) on a shard: a fresh shard
  /// every `nodes_per_shard` assignments, the current one otherwise.
  int AssignShard();
  /// The scheduler shared infrastructure (networks, tracer) is built
  /// on: the serial engine, or the parallel engine's ambient facade.
  sim::Scheduler* InfraScheduler();

  ClusterConfig config_;
  /// Exactly one engine exists, chosen by ClusterConfig::shard_workers.
  /// Declared before everything that schedules on it.
  std::unique_ptr<sim::Simulator> serial_;
  std::unique_ptr<sim::ParallelSimulator> parallel_;
  /// Serial-engine sequencer for shared-actor mutations (the networks):
  /// drains same-tick posts in (key, seq) order, the exact per-tick slice
  /// of the parallel engine's window-barrier merge, so tie arbitration —
  /// and therefore the whole run — is engine-independent.
  std::unique_ptr<sim::TickSequencer> tick_seq_;
  /// Declared before the nodes that hold pointers into them.
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::Profiler profiler_;
  std::vector<std::unique_ptr<net::Network>> networks_;
  std::vector<std::unique_ptr<server::LogServer>> servers_;
  std::vector<ClientSlot> clients_;
  std::unique_ptr<chaos::ChaosController> chaos_;
  /// Telemetry stack (see the matching ClusterConfig knobs). The
  /// recorder is declared before the collector/monitor: spans flow into
  /// it from the tracer for the cluster's whole lifetime.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::TimeSeriesCollector> collector_;
  std::unique_ptr<obs::HealthMonitor> health_;
  /// End of the next unsampled telemetry window.
  sim::Time next_sample_ = 0;
  /// NodeId -> shard scheduler, for the networks' delivery routing
  /// (parallel engine only). Dense-indexed by node id (ids are small and
  /// contiguous): the router runs once per delivery, so the lookup must
  /// be O(1). Mutated only while quiescent.
  std::vector<sim::Scheduler*> node_schedulers_;
  void SetNodeScheduler(net::NodeId id, sim::Scheduler* sched) {
    if (id >= node_schedulers_.size()) {
      node_schedulers_.resize(id + 1, nullptr);
    }
    node_schedulers_[id] = sched;
  }
  /// Server id - 1 -> shard index (parallel engine only).
  std::vector<int> server_shards_;
  /// Shard-group assignment state (see ClusterConfig::nodes_per_shard).
  int nodes_assigned_ = 0;
  int current_shard_ = -1;
  net::NodeId next_client_node_ = 1000;
};

inline client::LogClient& ClientHandle::operator*() const {
  return cluster_->client(index_);
}
inline client::LogClient* ClientHandle::operator->() const {
  return &cluster_->client(index_);
}
inline client::LogClient* ClientHandle::get() const {
  return &cluster_->client(index_);
}

}  // namespace dlog::harness

#endif  // DLOG_HARNESS_CLUSTER_H_
