#ifndef DLOG_HARNESS_CLUSTER_H_
#define DLOG_HARNESS_CLUSTER_H_

#include <memory>
#include <vector>

#include "client/log_client.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/log_server.h"
#include "sim/simulator.h"

namespace dlog::harness {

/// Configuration for a simulated deployment: M log servers on one or two
/// local networks, plus any number of client nodes created afterwards.
struct ClusterConfig {
  int num_servers = 3;
  /// Two networks reproduce the paper's dual-LAN availability setup.
  int num_networks = 1;
  net::NetworkConfig network;
  /// Template applied to every server (node_id is overwritten).
  server::LogServerConfig server;
  /// When true the cluster-wide tracer records causal spans (txn →
  /// wal.group → wire.send → nvram.buffer/track.write/force.ack) for
  /// every traced operation; export with obs::ChromeTraceJson. Off by
  /// default: bulk experiments should not accumulate span memory.
  bool tracing = false;
  uint64_t seed = 1;
};

/// Owns a Simulator, the networks, and the log server nodes of one
/// experiment. Client nodes are created on demand and wired to every
/// network. Server node ids are 1..M; client node ids start at 1000.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::Network& network(int i = 0) { return *networks_[i]; }
  int num_networks() const { return static_cast<int>(networks_.size()); }

  /// The cluster-wide causal tracer (recording only when
  /// ClusterConfig::tracing is set) and the unified metrics registry.
  /// Every server registers its metrics here at construction; clients
  /// made by MakeClient register theirs too and must either outlive any
  /// snapshotting or be removed with metrics().UnregisterPrefix.
  obs::Tracer& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// 1-based server access matching the paper's figures.
  server::LogServer& server(int id) { return *servers_[id - 1]; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  std::vector<net::NodeId> server_ids() const;

  /// Creates a client attached to every network. `config.servers` and
  /// `config.node_id` are filled in automatically (node ids 1000, 1001,
  /// ... in creation order) unless already set.
  std::unique_ptr<client::LogClient> MakeClient(
      client::LogClientConfig config = {});

  /// Runs the simulator until `fn` returns true or `timeout` elapses;
  /// returns whether the predicate held.
  bool RunUntil(std::function<bool()> fn,
                sim::Duration timeout = 30 * sim::kSecond);

 private:
  sim::Simulator sim_;
  ClusterConfig config_;
  /// Declared before the nodes that hold pointers into them.
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<net::Network>> networks_;
  std::vector<std::unique_ptr<server::LogServer>> servers_;
  net::NodeId next_client_node_ = 1000;
};

}  // namespace dlog::harness

#endif  // DLOG_HARNESS_CLUSTER_H_
