#ifndef DLOG_HARNESS_ET1_DRIVER_H_
#define DLOG_HARNESS_ET1_DRIVER_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "harness/cluster.h"
#include "sim/stats.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"

namespace dlog::harness {

/// Workload parameters for one transaction-processing node.
struct Et1DriverConfig {
  /// Target local transaction rate (the paper's clients "execute ten
  /// local ET1 transactions per second").
  double tps = 10.0;
  /// Poisson arrivals when true; fixed spacing otherwise.
  bool poisson = true;
  tp::BankConfig bank;
  tp::EngineConfig engine;
  uint64_t seed = 1;
  /// End-to-end backpressure: when nonzero, a new transaction is refused
  /// (counted in txns_shed()) while the log client holds more than this
  /// many unacknowledged records — the application-level response to
  /// server overload, closing the loop the servers' Overloaded replies
  /// start. 0 keeps the legacy open-loop arrivals.
  size_t max_log_backlog = 0;
  /// Counted down once when Init succeeds and the driver starts issuing
  /// transactions. Lets a scale bench wait for thousands of drivers with
  /// Cluster::RunUntil(latch) instead of an O(drivers) predicate.
  StopLatch* start_latch = nullptr;
};

/// One simulated transaction-processing node: a replicated-log client, a
/// WAL engine, an ET1 bank, and an open-loop arrival process. Used by the
/// capacity (E4), remote-vs-local (E5), and load-assignment (E9)
/// experiments and the workstation_cluster example.
class Et1Driver {
 public:
  Et1Driver(Cluster* cluster, client::LogClientConfig log_config,
            const Et1DriverConfig& config);
  ~Et1Driver();

  Et1Driver(const Et1Driver&) = delete;
  Et1Driver& operator=(const Et1Driver&) = delete;

  /// Initializes the replicated log, then begins issuing transactions.
  void Start();
  /// Stops issuing new transactions (in-flight ones complete).
  void Stop();

  bool started() const { return started_; }
  uint64_t committed() const { return committed_; }
  uint64_t failed() const { return failed_; }
  /// Transactions refused at arrival because the log backlog exceeded
  /// Et1DriverConfig::max_log_backlog.
  uint64_t txns_shed() const { return txns_shed_; }
  sim::Histogram& txn_latency_ms() { return txn_latency_ms_; }
  client::LogClient& log() { return *log_; }
  tp::TransactionEngine& engine() { return *engine_; }
  tp::BankDb& bank() { return *bank_; }

 private:
  void ScheduleNext();
  void RunOne();

  Cluster* cluster_;
  /// The scheduler of the node this driver simulates (its client's
  /// shard under the parallel engine): arrivals and latency stamps are
  /// node-local events.
  sim::Scheduler* sched_;
  Et1DriverConfig config_;
  /// "client-<id>": names this node in traces and metric paths.
  std::string trace_node_;
  Rng rng_;
  /// The cluster-owned replicated-log client this node drives.
  ClientHandle log_;
  std::unique_ptr<tp::ReplicatedTxnLogger> logger_;
  std::unique_ptr<tp::PageDisk> page_disk_;
  std::unique_ptr<tp::TransactionEngine> engine_;
  std::unique_ptr<tp::BankDb> bank_;

  bool started_ = false;
  bool stopped_ = false;
  uint64_t committed_ = 0;
  uint64_t failed_ = 0;
  uint64_t txns_shed_ = 0;
  sim::Histogram txn_latency_ms_;
};

}  // namespace dlog::harness

#endif  // DLOG_HARNESS_ET1_DRIVER_H_
