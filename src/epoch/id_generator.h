#ifndef DLOG_EPOCH_ID_GENERATOR_H_
#define DLOG_EPOCH_ID_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/nvram.h"

namespace dlog::epoch {

/// A generator state representative (Appendix I): a node holding one
/// integer in non-volatile storage with Read and Write operations that
/// are "atomic at individual representatives". Availability can be
/// toggled to model node failures.
class GeneratorStateRep {
 public:
  explicit GeneratorStateRep(uint64_t initial = 0) : cell_(initial) {}

  /// Marks the representative up or down; a down representative fails
  /// Read and Write with Unavailable.
  void SetAvailable(bool available) { available_ = available; }
  bool IsAvailable() const { return available_; }

  Result<uint64_t> Read() const {
    if (!available_) return Status::Unavailable("representative down");
    return cell_.Read();
  }

  Status Write(uint64_t value) {
    if (!available_) return Status::Unavailable("representative down");
    cell_.Write(value);
    return Status::OK();
  }

  /// Direct inspection for tests (bypasses availability).
  uint64_t PeekValue() const { return cell_.Read(); }

 private:
  storage::StableCell cell_;
  bool available_ = true;
};

/// The replicated increasing unique identifier generator of Appendix I,
/// used by replicated-log clients to obtain epoch numbers at restart.
///
/// NewID "first reads the generator state from ceil((N+1)/2)
/// representatives. Then, NewID writes a value higher than any read to
/// ceil(N/2) representatives. ... Finally, the value written is returned
/// as a new identifier." Because every read quorum intersects every
/// preceding write quorum, identifiers strictly increase; a crash between
/// the read and enough writes merely skips values.
class ReplicatedIdGenerator {
 public:
  /// The generator does not own the representatives (in a deployment they
  /// live on log server nodes).
  explicit ReplicatedIdGenerator(std::vector<GeneratorStateRep*> reps);

  /// Returns a new identifier strictly greater than any identifier
  /// returned by a completed earlier call, or Unavailable when a read or
  /// write quorum cannot be assembled.
  Result<uint64_t> NewId();

  /// Fault-injection variant: performs the read quorum and then crashes
  /// after `writes_before_crash` successful representative writes,
  /// returning Aborted. Used to verify that interrupted NewId calls only
  /// skip values, never repeat them.
  Status NewIdCrashAfterWrites(int writes_before_crash);

  size_t num_reps() const { return reps_.size(); }
  /// ceil((N+1)/2): representatives a read quorum needs.
  size_t ReadQuorum() const { return (reps_.size() + 2) / 2; }
  /// ceil(N/2): representatives a write quorum needs.
  size_t WriteQuorum() const { return (reps_.size() + 1) / 2; }

 private:
  /// Reads from up to all representatives, stopping once `quorum`
  /// responded; returns the max value read.
  Result<uint64_t> ReadMax(size_t quorum) const;

  std::vector<GeneratorStateRep*> reps_;
};

}  // namespace dlog::epoch

#endif  // DLOG_EPOCH_ID_GENERATOR_H_
