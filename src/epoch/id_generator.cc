#include "epoch/id_generator.h"

#include <algorithm>
#include <cassert>

namespace dlog::epoch {

ReplicatedIdGenerator::ReplicatedIdGenerator(
    std::vector<GeneratorStateRep*> reps)
    : reps_(std::move(reps)) {
  assert(!reps_.empty());
}

Result<uint64_t> ReplicatedIdGenerator::ReadMax(size_t quorum) const {
  uint64_t max_value = 0;
  size_t responded = 0;
  for (const GeneratorStateRep* rep : reps_) {
    Result<uint64_t> r = rep->Read();
    if (!r.ok()) continue;
    max_value = std::max(max_value, *r);
    if (++responded >= quorum) return max_value;
  }
  return Status::Unavailable("cannot assemble read quorum");
}

Result<uint64_t> ReplicatedIdGenerator::NewId() {
  DLOG_ASSIGN_OR_RETURN(uint64_t max_read, ReadMax(ReadQuorum()));
  const uint64_t value = max_read + 1;
  // "Any overlapping assignment of reads and writes can be used": we
  // simply try representatives in order until a write quorum acks.
  size_t written = 0;
  for (GeneratorStateRep* rep : reps_) {
    if (rep->Write(value).ok()) {
      if (++written >= WriteQuorum()) return value;
    }
  }
  return Status::Unavailable("cannot assemble write quorum");
}

Status ReplicatedIdGenerator::NewIdCrashAfterWrites(int writes_before_crash) {
  DLOG_ASSIGN_OR_RETURN(uint64_t max_read, ReadMax(ReadQuorum()));
  const uint64_t value = max_read + 1;
  int written = 0;
  for (GeneratorStateRep* rep : reps_) {
    if (written >= writes_before_crash) break;
    if (rep->Write(value).ok()) ++written;
  }
  return Status::Aborted("crash injected during NewId");
}

}  // namespace dlog::epoch
