#ifndef DLOG_SIM_PARALLEL_H_
#define DLOG_SIM_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace dlog::sim {

class ParallelSimulator;

/// The Scheduler handle bound to one shard of a ParallelSimulator. Every
/// component on a simulated node holds its node's handle; scheduling on
/// it lands in that shard's private event queue. Calls made while the
/// calling thread is executing a *different* shard's window are mailboxed
/// to the window barrier instead (see ParallelSimulator).
class ShardScheduler final : public Scheduler {
 public:
  Time Now() const override;
  EventId At(Time t, Callback fn) override;
  bool Cancel(EventId id) override;

  int shard() const { return shard_; }

 private:
  friend class ParallelSimulator;
  ShardScheduler(ParallelSimulator* engine, int shard)
      : engine_(engine), shard_(shard) {}

  ParallelSimulator* engine_;
  int shard_;
};

struct ParallelConfig {
  /// Threads executing shard windows, including the caller (so 1 runs
  /// everything inline with zero pool overhead). Only wall-clock speed
  /// depends on this; the simulated schedule is byte-identical for every
  /// value, because shard contents and barrier merge keys never consult
  /// the worker count.
  int num_workers = 1;
  /// Conservative lookahead: the minimum latency of anything crossing a
  /// shard boundary (in practice NetworkConfig::propagation_delay). An
  /// event executing at time T can only affect another shard at >= T +
  /// lookahead, so all shards may run [W, W + lookahead) concurrently.
  Duration lookahead = 0;

  /// OK iff the engine is constructible (>= 1 worker, > 0 lookahead).
  Status Validate() const;
};

/// Conservative time-window parallel discrete-event engine. The event
/// queue is sharded per simulated node: each shard is a private serial
/// Simulator, and the coordinator repeatedly (1) picks the next window
/// [W, W + lookahead) starting at the globally earliest pending event,
/// (2) lets a worker pool execute every shard's events in that window
/// concurrently, (3) at the window barrier, single-threaded, replays the
/// buffered cross-shard traffic in a deterministic merge order.
///
/// Two kinds of traffic cross the barrier:
///  - Sequenced posts (SequencedExecutor::Post): closures mutating
///    actors shared by all nodes (the Network's medium arbitration and
///    topology). Replayed in (time, key, src shard, seq) order with
///    key = source node id; the closures then schedule deliveries onto
///    destination shards. Posts from a quiescent caller (no window
///    executing) run immediately, preserving setup-time program order —
///    which is also exactly the serial engine's behavior.
///  - Injections: ShardScheduler::At calls that target a shard other
///    than the one the calling thread is executing. Buffered in the
///    source shard's mailbox, transferred at the barrier in (time, src
///    shard, seq) order, and cancellable (from the source shard) until
///    transferred. Injection times must respect the lookahead: t >=
///    window end, asserted at transfer.
///
/// Determinism: shard assignment is fixed by the harness (per node),
/// per-shard execution is serial, and both merge orders are pure
/// functions of simulated state — so a run is byte-identical at any
/// worker count. It is byte-identical to the serial engine as well,
/// because the harness gives the serial engine the same tie discipline:
/// same-tick sequenced posts drain through sim::TickSequencer in the
/// identical (time, key, seq) order this barrier replays, instead of in
/// heap-insertion order (an engine artifact no sharded execution could
/// reproduce — see TickSequencer in sim/simulator.h).
class ParallelSimulator final : public SequencedExecutor {
 public:
  explicit ParallelSimulator(const ParallelConfig& config);
  ~ParallelSimulator() override;

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Adds one shard (its clock starts at Now()) and returns its index.
  /// Quiescent only: the harness shards per node at construction and on
  /// AddClient, never from inside a window.
  int AddShard();
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The handle components on shard `index` hold.
  Scheduler* shard(int index) { return &shards_[index]->handle; }

  /// Ambient scheduler for shared actors invoked from many shards (the
  /// Network): Now()/At()/Cancel() bind to whatever shard the calling
  /// thread is currently executing, or to shard 0 / the global clock
  /// when quiescent.
  Scheduler* ambient() { return &ambient_; }

  /// Global clock: the time every shard has reached while quiescent.
  Time Now() const { return now_; }
  /// Earliest pending event across all shards, or Simulator::kNoEvent
  /// (non-const: peeking may garbage-collect tombstoned queue heads).
  Time NextEventTime();

  /// Runs until every queue is empty.
  void Run();
  /// Runs events with time <= `t`, then advances every clock to `t`.
  void RunUntil(Time t);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Aggregates over shards (quiescent only).
  uint64_t events_executed() const;
  size_t pending_events() const;

  /// SequencedExecutor: see class comment.
  void Post(Time t, uint64_t key, Callback fn) override;

  /// True while the calling thread is executing one of this engine's
  /// shard windows.
  bool InWindow() const;

 private:
  friend class ShardScheduler;

  /// A cross-shard ShardScheduler::At buffered until the barrier.
  struct Injection {
    int src;
    int target;
    Time t;
    uint64_t seq;
    bool cancelled;
    Callback fn;
  };
  /// A SequencedExecutor::Post buffered until the barrier.
  struct SequencedPost {
    Time t;
    uint64_t key;
    int src_shard;
    uint64_t seq;
    Callback fn;
  };

  struct Shard {
    Shard(ParallelSimulator* engine, int index) : handle(engine, index) {}
    Simulator core;
    ShardScheduler handle;
    /// Mailboxes of traffic *from* this shard, drained at the barrier.
    std::vector<Injection> inject_outbox;
    std::vector<SequencedPost> post_outbox;
    uint64_t next_inject_seq = 1;
  };

  // Injected EventIds: tag bit 63 (serial ids never set it: slot+1 <=
  // 2^24 shifted left 32 tops out at bit 56), source shard in bits
  // 40..62, per-shard seq below — so an id resolves back to the mailbox
  // entry it names until the barrier retires it.
  static constexpr EventId kInjectTag = EventId{1} << 63;
  static constexpr int kInjectShardShift = 40;
  static constexpr uint64_t kInjectSeqMask =
      (uint64_t{1} << kInjectShardShift) - 1;

  // ShardScheduler forwards here with its shard index.
  Time ShardNow(int shard) const;
  EventId ShardAt(int shard, Time t, Callback fn);
  bool ShardCancel(int shard, EventId id);

  /// Executes one window: every shard runs its events with time <= upto.
  void ExecuteWindow(Time upto);
  void RunShardWindow(size_t index, Time upto);
  /// Replays sequenced posts, then transfers injections (merge orders in
  /// the class comment). Single-threaded, between windows.
  void DrainOutboxes();
  void WorkerMain();
  void ClaimShards();

  /// Ambient facade, see ambient().
  class AmbientScheduler final : public Scheduler {
   public:
    explicit AmbientScheduler(ParallelSimulator* engine) : engine_(engine) {}
    Time Now() const override;
    EventId At(Time t, Callback fn) override;
    bool Cancel(EventId id) override;

   private:
    ParallelSimulator* engine_;
  };

  ParallelConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  AmbientScheduler ambient_{this};
  Time now_ = 0;
  /// First time not covered by the executing/just-executed window;
  /// injection times must be >= this.
  Time window_end_ = 0;
  /// Scratch for the barrier merge, reused across windows.
  std::vector<SequencedPost> posts_scratch_;
  std::vector<Injection> injects_scratch_;

  // Worker pool (only spawned when num_workers > 1). A window is one
  // "generation": workers wake on the bump, claim shard indices from
  // next_shard_, and the last completion notifies the coordinator. The
  // generation handshake runs under mu_, which also carries the
  // happens-before edges between a shard's executions on different
  // threads across windows.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  /// Workers parked at the top of their loop. The coordinator waits for
  /// all of them before resetting per-window state, so a laggard from
  /// the previous window can never claim a shard of the next one.
  std::condition_variable cv_idle_;
  int idle_workers_ = 0;
  uint64_t window_generation_ = 0;
  bool stop_ = false;
  Time window_upto_ = 0;
  std::atomic<size_t> next_shard_{0};
  std::atomic<size_t> shards_done_{0};
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_PARALLEL_H_
