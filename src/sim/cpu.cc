#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::sim {

Cpu::Cpu(Scheduler* sim, double mips, std::string name)
    : sim_(sim), mips_(mips), name_(std::move(name)) {
  assert(mips > 0);
}

Duration Cpu::InstructionsToTime(uint64_t instructions) const {
  // instructions / (mips * 1e6 instr/s) seconds.
  return SecondsToDuration(static_cast<double>(instructions) /
                           (mips_ * 1e6));
}

void Cpu::Execute(uint64_t instructions, Callback done) {
  const Duration service = InstructionsToTime(instructions);
  const Time start = std::max(sim_->Now(), free_at_);
  free_at_ = start + service;
  busy_time_ += service;
  busy_ns_.Increment(service);
  if (busy_probe_ && service > 0) busy_probe_(start, free_at_);
  if (done) {
    sim_->At(free_at_, std::move(done));
  }
}

double Cpu::Utilization() const {
  const Time now = std::max(sim_->Now(), free_at_);
  const Duration window = now - window_start_;
  if (window == 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(window);
}

void Cpu::ResetStats() {
  window_start_ = sim_->Now();
  busy_time_ = 0;
  // Work already queued past Now() still counts as busy time in the new
  // window; approximate by carrying the in-flight tail.
  if (free_at_ > window_start_) {
    busy_time_ = free_at_ - window_start_;
  }
}

}  // namespace dlog::sim
