#include "sim/parallel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::sim {

namespace {

/// Which shard (of which engine) the calling thread is currently
/// executing. Set only for the duration of RunShardWindow; everything
/// else — construction, the coordinator between windows, test code — is
/// "quiescent" and schedules directly.
struct ExecContext {
  ParallelSimulator* engine = nullptr;
  int shard = -1;
};
thread_local ExecContext g_ctx;

}  // namespace

Status ParallelConfig::Validate() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (lookahead <= 0) {
    return Status::InvalidArgument(
        "lookahead must be > 0 (the minimum cross-shard latency)");
  }
  return Status::OK();
}

Time ShardScheduler::Now() const { return engine_->ShardNow(shard_); }
EventId ShardScheduler::At(Time t, Callback fn) {
  return engine_->ShardAt(shard_, t, std::move(fn));
}
bool ShardScheduler::Cancel(EventId id) {
  return engine_->ShardCancel(shard_, id);
}

ParallelSimulator::ParallelSimulator(const ParallelConfig& config)
    : config_(config) {
  DLOG_CHECK_OK(config.Validate());
  workers_.reserve(static_cast<size_t>(config.num_workers - 1));
  for (int i = 1; i < config.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ParallelSimulator::~ParallelSimulator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ParallelSimulator::AddShard() {
  assert(!InWindow() && "AddShard must be called while quiescent");
  const int index = num_shards();
  shards_.push_back(std::make_unique<Shard>(this, index));
  // A late shard (a client added mid-experiment) starts at the global
  // clock, not zero, or its first timers would precede every other node.
  shards_.back()->core.RunUntil(now_);
  return index;
}

bool ParallelSimulator::InWindow() const { return g_ctx.engine == this; }

Time ParallelSimulator::ShardNow(int shard) const {
  return shards_[static_cast<size_t>(shard)]->core.Now();
}

EventId ParallelSimulator::ShardAt(int shard, Time t, Callback fn) {
  if (g_ctx.engine == this && g_ctx.shard != shard) {
    // Cross-shard call from inside a window: mailbox it to the barrier.
    Shard& src = *shards_[static_cast<size_t>(g_ctx.shard)];
    const uint64_t seq = src.next_inject_seq++;
    assert(seq <= kInjectSeqMask && "injection seqs exhausted");
    src.inject_outbox.push_back(
        Injection{g_ctx.shard, shard, t, seq, false, std::move(fn)});
    return kInjectTag |
           (static_cast<EventId>(g_ctx.shard) << kInjectShardShift) | seq;
  }
  // Own shard (executing it now) or quiescent: straight into the core.
  return shards_[static_cast<size_t>(shard)]->core.At(t, std::move(fn));
}

bool ParallelSimulator::ShardCancel(int shard, EventId id) {
  if (id & kInjectTag) {
    const int src = static_cast<int>((id & ~kInjectTag) >> kInjectShardShift);
    const uint64_t seq = id & kInjectSeqMask;
    // Only the mailbox still knows this id; once the barrier transfers
    // the injection it becomes an anonymous core event, so Cancel is
    // best-effort cross-shard (returns false after the transfer).
    assert((g_ctx.engine != this || g_ctx.shard == src) &&
           "cross-shard Cancel must run on the shard that scheduled it");
    for (Injection& inj : shards_[static_cast<size_t>(src)]->inject_outbox) {
      if (inj.seq == seq && !inj.cancelled) {
        inj.cancelled = true;
        return true;
      }
    }
    return false;
  }
  assert((g_ctx.engine != this || g_ctx.shard == shard) &&
         "Cancel of another shard's event while its window may be running");
  return shards_[static_cast<size_t>(shard)]->core.Cancel(id);
}

void ParallelSimulator::Post(Time t, uint64_t key, Callback fn) {
  if (g_ctx.engine == this) {
    Shard& src = *shards_[static_cast<size_t>(g_ctx.shard)];
    src.post_outbox.push_back(
        SequencedPost{t, key, g_ctx.shard,
                      static_cast<uint64_t>(src.post_outbox.size()),
                      std::move(fn)});
    return;
  }
  // Quiescent (serial setup, coordinator replay): program order is the
  // deterministic order — run it now, exactly like the serial engine.
  fn();
}

Time ParallelSimulator::NextEventTime() {
  Time next = Simulator::kNoEvent;
  for (auto& sp : shards_) {
    next = std::min(next, sp->core.PeekNextTime());
  }
  return next;
}

uint64_t ParallelSimulator::events_executed() const {
  uint64_t total = 0;
  for (const auto& sp : shards_) total += sp->core.events_executed();
  return total;
}

size_t ParallelSimulator::pending_events() const {
  size_t total = 0;
  for (const auto& sp : shards_) {
    total += sp->core.pending_events();
    for (const Injection& inj : sp->inject_outbox) {
      if (!inj.cancelled) ++total;
    }
  }
  return total;
}

void ParallelSimulator::RunShardWindow(size_t index, Time upto) {
  g_ctx = ExecContext{this, static_cast<int>(index)};
  shards_[index]->core.RunUntil(upto);
  g_ctx = ExecContext{};
}

void ParallelSimulator::ClaimShards() {
  const size_t n = shards_.size();
  for (;;) {
    const size_t i = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    RunShardWindow(i, window_upto_);
    // Release pairs with the coordinator's acquire: every shard's state
    // is visible to the barrier drain.
    if (shards_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ParallelSimulator::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      cv_idle_.notify_all();
      cv_start_.wait(lock,
                     [&] { return stop_ || window_generation_ != seen; });
      if (stop_) return;
      seen = window_generation_;
      --idle_workers_;
    }
    ClaimShards();
  }
}

void ParallelSimulator::ExecuteWindow(Time upto) {
  window_end_ = upto + 1;
  const size_t n = shards_.size();
  if (workers_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) RunShardWindow(i, upto);
    return;
  }
  {
    // Wait out laggards from the previous window before resetting the
    // claim counter, then open the new generation.
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] {
      return idle_workers_ == static_cast<int>(workers_.size());
    });
    window_upto_ = upto;
    next_shard_.store(0, std::memory_order_relaxed);
    shards_done_.store(0, std::memory_order_relaxed);
    ++window_generation_;
  }
  cv_start_.notify_all();
  ClaimShards();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] {
    return shards_done_.load(std::memory_order_acquire) == n;
  });
}

void ParallelSimulator::DrainOutboxes() {
  posts_scratch_.clear();
  injects_scratch_.clear();
  for (auto& sp : shards_) {
    for (SequencedPost& p : sp->post_outbox) {
      posts_scratch_.push_back(std::move(p));
    }
    sp->post_outbox.clear();
    for (Injection& inj : sp->inject_outbox) {
      if (!inj.cancelled) injects_scratch_.push_back(std::move(inj));
    }
    sp->inject_outbox.clear();
  }
  // Shared-medium mutations first: (time, src node key, src shard, seq).
  // Replaying through the unchanged serial arbitration code, in this
  // order, is what keeps parallel runs byte-identical to serial ones.
  std::stable_sort(posts_scratch_.begin(), posts_scratch_.end(),
                   [](const SequencedPost& a, const SequencedPost& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.key != b.key) return a.key < b.key;
                     if (a.src_shard != b.src_shard) {
                       return a.src_shard < b.src_shard;
                     }
                     return a.seq < b.seq;
                   });
  for (SequencedPost& p : posts_scratch_) p.fn();
  posts_scratch_.clear();

  std::stable_sort(injects_scratch_.begin(), injects_scratch_.end(),
                   [](const Injection& a, const Injection& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.src != b.src) return a.src < b.src;
                     return a.seq < b.seq;
                   });
  for (Injection& inj : injects_scratch_) {
    assert(inj.t >= window_end_ &&
           "cross-shard injection inside the lookahead window");
    shards_[static_cast<size_t>(inj.target)]->core.At(inj.t,
                                                      std::move(inj.fn));
  }
  injects_scratch_.clear();
}

void ParallelSimulator::RunUntil(Time t) {
  assert(!InWindow() && "RunUntil is not reentrant from events");
  for (;;) {
    const Time next = NextEventTime();
    if (next > t) break;
    // Window [next, next + lookahead), clipped to the horizon. Cores run
    // events <= upto; anything the window generates for another shard
    // lands at >= next + lookahead = upto + 1, i.e. after the barrier.
    const Time upto = std::min(next + config_.lookahead - 1, t);
    ExecuteWindow(upto);
    DrainOutboxes();
  }
  for (auto& sp : shards_) sp->core.RunUntil(t);
  now_ = t;
}

void ParallelSimulator::Run() {
  assert(!InWindow() && "Run is not reentrant from events");
  for (;;) {
    const Time next = NextEventTime();
    if (next == Simulator::kNoEvent) break;
    ExecuteWindow(next + config_.lookahead - 1);
    DrainOutboxes();
  }
  for (const auto& sp : shards_) now_ = std::max(now_, sp->core.Now());
}

Time ParallelSimulator::AmbientScheduler::Now() const {
  if (g_ctx.engine == engine_) return engine_->ShardNow(g_ctx.shard);
  return engine_->Now();
}

EventId ParallelSimulator::AmbientScheduler::At(Time t, Callback fn) {
  const int shard = g_ctx.engine == engine_ ? g_ctx.shard : 0;
  return engine_->ShardAt(shard, t, std::move(fn));
}

bool ParallelSimulator::AmbientScheduler::Cancel(EventId id) {
  const int shard = g_ctx.engine == engine_ ? g_ctx.shard : 0;
  return engine_->ShardCancel(shard, id);
}

}  // namespace dlog::sim
