#ifndef DLOG_SIM_CALLBACK_H_
#define DLOG_SIM_CALLBACK_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace dlog::sim {

/// Allocation statistics for Callback, per thread. The simulator schedules
/// millions of events per run; these counters let benchmarks prove that
/// the common captures stay inline (no heap traffic at all) and that the
/// rest are served from the slab free list instead of the allocator.
struct CallbackAllocStats {
  uint64_t inline_constructed = 0;
  uint64_t pooled_constructed = 0;  // oversize, served from the slab pool
  uint64_t heap_constructed = 0;    // oversize, slab pool missed (cold)
};

namespace internal {

CallbackAllocStats& callback_alloc_stats();

/// Thread-local slab pool for callback captures that do not fit inline.
/// Blocks are a fixed size; anything larger falls back to operator new.
/// Per-thread (not global) so concurrent simulations — trial-runner
/// workers, parallel-engine shard workers — never contend. A block freed
/// on a different thread than it was allocated (a shard window executing
/// on another worker) simply joins the freeing thread's cache; see
/// callback.cc for why that is safe.
void* PoolAllocate(size_t bytes);
void PoolFree(void* p, size_t bytes);
constexpr size_t kPoolBlockBytes = 256;

}  // namespace internal

/// A move-only `void()` callable with small-buffer optimization, the
/// event-callback type of the simulator. Captures up to kInlineBytes are
/// stored inline in the object — scheduling such an event performs no
/// heap allocation. Larger captures are moved to a block from a
/// thread-local slab pool (see internal::PoolAllocate).
///
/// Unlike std::function it is move-only (so captures can hold unique_ptr
/// and friends) and never throws bad_function_call: invoking an empty
/// Callback is a no-op.
class Callback {
 public:
  /// Chosen to cover the engine's hot captures (a couple of pointers plus
  /// a packet/payload handle) while keeping queue slots compact.
  static constexpr size_t kInlineBytes = 48;

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT: implicit, like std::function
    using Fn = std::decay_t<F>;
    auto& stats = internal::callback_alloc_stats();
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
      ++stats.inline_constructed;
    } else {
      void* block;
      if (sizeof(Fn) <= internal::kPoolBlockBytes) {
        block = internal::PoolAllocate(sizeof(Fn));
      } else {
        block = ::operator new(sizeof(Fn));
        ++stats.heap_constructed;
      }
      ::new (block) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(storage_) = block;
      ops_ = &HeapOps<Fn>::ops;
      ++stats.pooled_constructed;
    }
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { Reset(); }

  /// Invokes the target; empty callbacks are a no-op.
  void operator()() {
    if (ops_ != nullptr) ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// This thread's allocation tally (benchmarks reset/inspect it).
  static CallbackAllocStats& alloc_stats() {
    return internal::callback_alloc_stats();
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Moves the target from one storage slot to another and destroys the
    /// source. For heap/pool targets this just moves the block pointer.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); }
    static void Relocate(void* from, void* to) {
      Fn* src = std::launder(reinterpret_cast<Fn*>(from));
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void Destroy(void* s) {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Target(void* s) {
      return static_cast<Fn*>(*reinterpret_cast<void**>(s));
    }
    static void Invoke(void* s) { (*Target(s))(); }
    static void Relocate(void* from, void* to) {
      *reinterpret_cast<void**>(to) = *reinterpret_cast<void**>(from);
    }
    static void Destroy(void* s) {
      Fn* target = Target(s);
      target->~Fn();
      if constexpr (sizeof(Fn) <= internal::kPoolBlockBytes) {
        internal::PoolFree(target, sizeof(Fn));
      } else {
        ::operator delete(target);
      }
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_CALLBACK_H_
