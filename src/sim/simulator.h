#ifndef DLOG_SIM_SIMULATOR_H_
#define DLOG_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/callback.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace dlog::sim {

/// A deterministic discrete-event simulator: the serial Scheduler
/// implementation, and the per-shard core of the ParallelSimulator.
/// Components schedule callbacks at absolute or relative times; Run()
/// executes them in (time, schedule order) sequence. Single-threaded by
/// design: a run is a pure function of the initial configuration and RNG
/// seeds. The parallel engine honors that by giving each shard its own
/// private Simulator and only ever driving it from one thread at a time.
///
/// Engine layout (the hot path of every experiment): callbacks live in a
/// slot table with small-buffer storage (sim::Callback — no heap
/// allocation for captures up to 48 bytes), and the priority queue is an
/// inline 4-ary min-heap of 16-byte plain-data entries — half the levels
/// of a binary heap, and each level's four children share a cache line,
/// so sifts are short and branch-predictable. Cancellation is a
/// tombstone bit in the slot plus a per-slot generation that invalidates
/// stale EventIds in O(1) — no hashing, and Cancel() of an event that
/// already ran is detected exactly (the generation has advanced) instead
/// of poisoning a cancelled-set forever.
///
/// Coarse-deadline timers (client retry/force timers, RPC timeouts,
/// chaos repair events — anything >= ~1 ms out) take a hierarchical
/// timer-wheel tier instead of the heap: O(1) insertion into a bucketed
/// calendar, with each bucket flushed wholesale into the heap when the
/// clock reaches its start. Entries keep their original (time, seq)
/// keys, so the executed schedule is bit-for-bit the same as a heap-only
/// build — the wheel only changes *where* a far-out timer waits. The
/// point is the churn: at thousands of clients most of these timers are
/// cancelled long before they fire (acks beat timeouts), and a wheeled
/// timer that dies in its bucket never pays heap sifts at all.
class Simulator final : public Scheduler {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// "No pending event": the sentinel PeekNextTime() returns for an
  /// empty queue, ordered after every real time.
  static constexpr Time kNoEvent = std::numeric_limits<Time>::max();

  /// Current simulated time.
  Time Now() const override { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= Now()). Events with
  /// equal time run in scheduling order.
  EventId At(Time t, Callback fn) override;

  /// Cancels a pending event. Returns false if it already ran or was
  /// already cancelled.
  bool Cancel(EventId id) override;

  /// Runs until the event queue is empty.
  void Run();

  /// Runs events with time <= `t`, then sets Now() to `t`.
  void RunUntil(Time t);

  /// Runs for `d` simulated time from Now().
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Executes a single event; returns false if the queue was empty.
  bool Step();

  /// Time of the earliest pending live event, or kNoEvent when the queue
  /// is empty. May garbage-collect tombstoned entries at the queue head
  /// as a side effect — invisible on the executed schedule. The parallel
  /// engine's window coordinator uses this to pick each window's start.
  Time PeekNextTime();

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of live pending events (cancelled events no longer count,
  /// even while their queue entry awaits garbage collection).
  size_t pending_events() const { return live_events_; }

  /// True while an event callback is running — i.e., the caller is code
  /// executing *inside* the simulation rather than setup/teardown code
  /// between runs. TickSequencer uses this to tell deferrable in-run
  /// posts from quiescent ones that must apply inline.
  bool Executing() const { return executing_; }

  /// Toggles the timer-wheel tier (on by default). Disabling while
  /// timers are wheeled flushes them into the heap — legal at any time,
  /// and invisible on the executed schedule either way; the toggle
  /// exists so tests and benches can compare wheel vs heap-only builds.
  void EnableTimerWheel(bool on);
  bool timer_wheel_enabled() const { return wheel_enabled_; }
  /// Entries currently waiting in wheel buckets (live + cancelled).
  size_t wheel_pending() const { return wheel_ ? wheel_->size : 0; }

 private:
  /// A queued event: plain data only — the callback stays in its slot.
  /// `key` packs the schedule-order tie-break (`seq`, the role the public
  /// EventId used to play; the id itself now carries a generation and so
  /// is no longer monotonic) above the slot index, so an Entry is 16
  /// bytes and the four children of a heap node share one cache line.
  /// Limits implied by the packing: 2^40 (~10^12) events per Simulator
  /// lifetime, 2^24 (~16M) simultaneously queued — both far beyond any
  /// experiment, and asserted in At().
  ///
  /// Per-shard seq rule (parallel engine): each shard owns a private
  /// Simulator, so `seq` counts that shard's schedule order only and two
  /// shards freely issue equal seqs. Global determinism does not depend
  /// on comparing seqs across shards: within a shard, (time, seq) orders
  /// exactly as here; across shards, anything crossing a boundary is
  /// re-keyed at the window barrier by (time, src node key, src shard,
  /// outbox seq) before being re-scheduled — see sim/parallel.h.
  struct Entry {
    Time time;
    uint64_t key;  // (seq << kSlotBits) | slot
  };
  static constexpr int kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static uint32_t SlotOfEntry(const Entry& e) {
    return static_cast<uint32_t>(e.key) & kSlotMask;
  }
  /// Execution order: earlier time first, then schedule order. `seq` is
  /// unique, so comparing the packed key is exactly comparing seq.
  static bool Before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  /// Callback storage plus the tombstone/generation cancellation state.
  struct Slot {
    Callback fn;
    uint32_t generation = 0;
    bool cancelled = false;
    /// Entry waits in a wheel bucket, not the heap: its cancellation is
    /// counted against the wheel, and PurgeCancelled must not expect to
    /// find it.
    bool in_wheel = false;
  };

  /// The timer-wheel calendar: kLevels levels of kBuckets buckets, level
  /// l bucketing time in widths of 2^(kShift + l*kBucketBits) ns. An
  /// event at delta >= its level's bucket width lands in a bucket whose
  /// start is strictly in the future, so flushing buckets as the clock
  /// reaches their starts never moves time backwards. Deltas under ~1 ms
  /// or beyond the top level's span stay in the heap. Lazily allocated:
  /// shard cores that never see coarse timers pay one null check.
  struct Wheel {
    static constexpr int kShift = 20;      // level-0 bucket ~1.05 ms
    static constexpr int kBucketBits = 6;  // 64 buckets per level
    static constexpr int kLevels = 4;      // top span ~4.9 simulated hours
    static constexpr int kBuckets = 1 << kBucketBits;
    /// Bit b set iff bucket[l][b] is non-empty.
    uint64_t occupied[kLevels] = {};
    std::vector<Entry> bucket[kLevels][kBuckets];
    size_t size = 0;        // entries across all buckets (incl. cancelled)
    size_t tombstones = 0;  // cancelled entries still in buckets
    /// Earliest occupied bucket start (kNoEvent when empty). Always
    /// > now_: due buckets are flushed before the clock passes them.
    Time next = std::numeric_limits<Time>::max();
  };

  /// Wheel level for an event `delta` ahead of now, or -1 for the heap.
  static int WheelLevel(Duration delta);
  /// Absolute start of occupied bucket (level, b) — the unique boundary
  /// with that index in (now_, now_ + span].
  Time WheelBucketStart(int level, int b) const;
  /// Moves every bucket starting exactly at wheel_->next into the heap
  /// (frees cancelled entries) and advances wheel_->next.
  void FlushDueWheelBuckets();
  /// Recomputes wheel_->next by scanning the occupancy bitmaps.
  void RecomputeWheelNext();
  /// Drops cancelled wheel entries (the wheel-side PurgeCancelled).
  void PurgeWheel();
  /// Raw earliest heap time (tombstones included) — a conservative
  /// horizon for deciding whether a wheel bucket is due.
  Time HeapTopTime() const {
    return heap_.empty() ? kNoEvent : heap_.front().time;
  }

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    // slot+1 keeps id 0 unissued.
    return (static_cast<uint64_t>(slot + 1) << 32) | generation;
  }
  static uint32_t SlotOf(EventId id) {
    return static_cast<uint32_t>(id >> 32) - 1;
  }
  static uint32_t GenerationOf(EventId id) {
    return static_cast<uint32_t>(id);
  }

  /// Pops the queue head, frees its slot, and runs it unless tombstoned.
  /// Returns true if a live event ran. Shared by Step() and RunUntil().
  bool PopAndMaybeRun();
  /// Returns the slot to the free list and invalidates outstanding ids.
  void FreeSlot(uint32_t slot);

  // 4-ary min-heap over Entry (root at index 0, children of i at
  // 4i+1..4i+4).
  void HeapPush(const Entry& e);
  void HeapPop();
  /// Sifts the element at `i` down to its heap position (hole-based: one
  /// move per level).
  void SiftDown(size_t i);
  /// Rebuilds the heap without its cancelled entries (O(n) Floyd
  /// build), freeing their slots. Triggered from Cancel() once
  /// tombstones outnumber live entries, so the heap tracks the live
  /// population instead of the cancellation history: timer-heavy
  /// workloads (arm, cancel on ack) would otherwise sift through a
  /// queue that is mostly dead weight. Amortized O(1) per cancel.
  /// Removal order is irrelevant to determinism — only live events
  /// execute, and their relative (time, seq) order is preserved.
  void PurgeCancelled();

  Time now_ = 0;
  bool executing_ = false;
  bool wheel_enabled_ = true;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  size_t live_events_ = 0;
  size_t tombstones_ = 0;  // cancelled entries still in heap_
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::unique_ptr<Wheel> wheel_;
};

/// Replays sequenced posts at the end of their tick in (key, post order)
/// order: the serial engine's counterpart of the parallel engine's
/// window-barrier drain (sim/parallel.h). Actors shared across nodes
/// (the Network) Post their mutations here instead of applying them
/// inline, so same-tick posts from different nodes apply in ascending
/// node-key order — a pure function of simulated state — rather than in
/// heap-insertion order, which is an engine artifact no parallel
/// execution can reproduce. With both engines draining the same posts in
/// the same (time, key, seq) order, a cluster run is byte-identical on
/// the serial engine and on the parallel engine at any worker count.
///
/// Mechanics: the first Post in a tick schedules one drain event at the
/// current time; since every event of tick T is already queued when T
/// begins (components never schedule at zero delay into the running
/// tick), the drain pops after all of them and replays the sorted batch.
/// Posts while quiescent (setup/teardown between runs) apply inline,
/// exactly as the parallel engine applies quiescent posts.
class TickSequencer final : public SequencedExecutor {
 public:
  explicit TickSequencer(Simulator* sim) : sim_(sim) {}

  TickSequencer(const TickSequencer&) = delete;
  TickSequencer& operator=(const TickSequencer&) = delete;

  /// `t` must be the caller's current clock (posts carry no lookahead on
  /// the serial engine — the drain runs within the same tick).
  void Post(Time t, uint64_t key, Callback fn) override;

 private:
  void Drain();

  struct Item {
    uint64_t key;
    uint64_t seq;
    Callback fn;
  };

  Simulator* sim_;
  uint64_t next_seq_ = 0;
  std::vector<Item> buffer_;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_SIMULATOR_H_
