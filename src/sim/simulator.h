#ifndef DLOG_SIM_SIMULATOR_H_
#define DLOG_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace dlog::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one Simulator.
using EventId = uint64_t;

/// A deterministic discrete-event simulator. Components schedule callbacks
/// at absolute or relative times; Run() executes them in (time, schedule
/// order) sequence. Single-threaded by design: a run is a pure function of
/// the initial configuration and RNG seeds.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= Now()). Events with
  /// equal time run in scheduling order.
  EventId At(Time t, std::function<void()> fn);

  /// Schedules `fn` to run `d` after Now().
  EventId After(Duration d, std::function<void()> fn) {
    return At(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// already cancelled.
  bool Cancel(EventId id);

  /// Runs until the event queue is empty.
  void Run();

  /// Runs events with time <= `t`, then sets Now() to `t`.
  void RunUntil(Time t);

  /// Runs for `d` simulated time from Now().
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Executes a single event; returns false if the queue was empty.
  bool Step();

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending (including cancelled ones not yet
  /// popped).
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time time;
    EventId id;  // also the tie-break: lower id scheduled earlier
    std::function<void()> fn;
  };
  struct EventGreater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventGreater> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_SIMULATOR_H_
