#include "sim/callback.h"

#include <cstdlib>
#include <vector>

namespace dlog::sim::internal {
namespace {

/// Free list of fixed-size blocks for oversize callback captures. One per
/// thread, so no locking: each call touches only the calling thread's
/// list. Blocks themselves may migrate lists — under the parallel engine
/// a shard window can execute (and free) on a different worker than the
/// one that allocated — which is safe because every block is a plain
/// ::operator new allocation and the engine's window barrier orders the
/// allocating write before the freeing read. Migration just means a
/// block drains into the freeing thread's cache.
struct Slab {
  std::vector<void*> free_blocks;
  /// Cap the cached blocks so a burst does not pin memory forever.
  static constexpr size_t kMaxCached = 4096;

  ~Slab() {
    for (void* p : free_blocks) ::operator delete(p);
  }
};

Slab& slab() {
  thread_local Slab s;
  return s;
}

}  // namespace

CallbackAllocStats& callback_alloc_stats() {
  thread_local CallbackAllocStats stats;
  return stats;
}

void* PoolAllocate(size_t bytes) {
  (void)bytes;  // every pooled block has kPoolBlockBytes capacity
  Slab& s = slab();
  if (!s.free_blocks.empty()) {
    void* p = s.free_blocks.back();
    s.free_blocks.pop_back();
    return p;
  }
  return ::operator new(kPoolBlockBytes);
}

void PoolFree(void* p, size_t bytes) {
  (void)bytes;
  Slab& s = slab();
  if (s.free_blocks.size() < Slab::kMaxCached) {
    s.free_blocks.push_back(p);
  } else {
    ::operator delete(p);
  }
}

}  // namespace dlog::sim::internal
