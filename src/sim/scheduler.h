#ifndef DLOG_SIM_SCHEDULER_H_
#define DLOG_SIM_SCHEDULER_H_

#include <cstdint>

#include "sim/callback.h"
#include "sim/time.h"

namespace dlog::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one engine; id 0 is never issued (callers use it as
/// "no event").
using EventId = uint64_t;

/// The narrow scheduling surface every component programs against: a
/// clock plus one-shot timers. Two implementations exist — the serial
/// Simulator (one global event queue) and the ParallelSimulator's
/// per-shard ShardScheduler handles (one queue per simulated node,
/// executed concurrently inside conservative lookahead windows). A
/// component written against Scheduler runs unchanged on either engine;
/// nothing wider (Run, Step, queue introspection) is exposed here, so
/// the engine choice stays a harness decision.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current simulated time at the caller's node. Under the parallel
  /// engine, different nodes' clocks may transiently differ by up to the
  /// lookahead while a window executes; within one node time is exact.
  virtual Time Now() const = 0;

  /// Schedules `fn` to run at absolute time `t` (>= Now()). Events with
  /// equal time on one scheduler run in scheduling order.
  virtual EventId At(Time t, Callback fn) = 0;

  /// Cancels a pending event. Returns false if it already ran or was
  /// already cancelled. Cross-shard injections (parallel engine) are
  /// cancellable only until the window barrier hands them to the target
  /// shard; afterwards Cancel returns false.
  virtual bool Cancel(EventId id) = 0;

  /// Schedules `fn` to run `d` after Now().
  EventId After(Duration d, Callback fn) { return At(Now() + d, std::move(fn)); }
};

/// Deterministic replay point for shared-state mutations. Actors shared
/// by every node (the Network's medium arbitration, its topology maps)
/// cannot be touched from concurrently executing shards; instead they
/// Post a closure tagged with (time, key). The serial engine — and any
/// quiescent caller — runs the closure immediately, preserving program
/// order. The parallel engine buffers posts per source shard and replays
/// them single-threaded at the window barrier in (time, key, src shard,
/// submission seq) order; with key = source node id, equal-time posts
/// replay in ascending node order, the same order the serial engine's
/// std::set-driven fan-outs produce. Key 0 is reserved for control-plane
/// mutations (attach/detach, partitions, link faults).
class SequencedExecutor {
 public:
  virtual ~SequencedExecutor() = default;
  virtual void Post(Time t, uint64_t key, Callback fn) = 0;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_SCHEDULER_H_
