#ifndef DLOG_SIM_TIME_H_
#define DLOG_SIM_TIME_H_

#include <cstdint>

namespace dlog::sim {

/// Simulated time, in integer nanoseconds since the start of the run.
/// Integer time keeps event ordering exactly reproducible.
using Time = uint64_t;
/// A span of simulated time, in nanoseconds.
using Duration = uint64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/// Converts a duration in (fractional) seconds to nanoseconds, rounding to
/// nearest. Negative inputs clamp to zero.
inline Duration SecondsToDuration(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<Duration>(seconds * 1e9 + 0.5);
}

/// Converts nanoseconds to fractional seconds.
inline double DurationToSeconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}

}  // namespace dlog::sim

#endif  // DLOG_SIM_TIME_H_
