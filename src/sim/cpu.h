#ifndef DLOG_SIM_CPU_H_
#define DLOG_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/callback.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::sim {

/// Models a node's processor as a single FIFO-served resource with a fixed
/// instruction rate (Section 2 anticipates "at least a few MIPS").
///
/// Work is expressed in instruction counts, matching the paper's Section
/// 4.1 accounting (1000 instructions per packet, 2000 instructions to
/// process the log records in a message, 2000 instructions per track
/// write). Execute() queues the work and invokes the completion callback
/// when the simulated processor has gotten to and finished it.
class Cpu {
 public:
  /// `mips` is millions of instructions per second; must be > 0.
  Cpu(Scheduler* sim, double mips, std::string name = "cpu");

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Schedules `instructions` of work; calls `done` (may be null) at the
  /// simulated completion time. Work is served FIFO after all previously
  /// submitted work.
  void Execute(uint64_t instructions, Callback done);

  /// Time the CPU has spent busy since construction (or last ResetStats).
  Duration busy_time() const { return busy_time_; }

  /// Cumulative busy nanoseconds since construction as a registrable
  /// counter: never reset, bumped at submission time by the full service
  /// time of the queued work. Increments happen while the submitting
  /// event executes, so reading it at a quiescent point is deterministic
  /// under any engine — the utilization signal windowed telemetry diffs
  /// per sampling window (unlike the profiler's probe stream, which the
  /// parallel engine rejects).
  const Counter& busy_ns() const { return busy_ns_; }

  /// Busy fraction over the window since the last ResetStats() call.
  double Utilization() const;

  /// Resets the utilization accounting window to start at Now().
  void ResetStats();

  double mips() const { return mips_; }
  const std::string& name() const { return name_; }

  /// Converts an instruction count to execution time on this CPU.
  Duration InstructionsToTime(uint64_t instructions) const;

  /// Busy-interval probe: invoked once per Execute() with the simulated
  /// interval [start, end) the processor is busy on that work. Intervals
  /// are reported in submission order with non-decreasing start times
  /// (FIFO service), which lets a profiler build an exact utilization
  /// timeline without sampling. Null (the default) costs nothing.
  using BusyProbe = std::function<void(Time start, Time end)>;
  void SetBusyProbe(BusyProbe probe) { busy_probe_ = std::move(probe); }

 private:
  Scheduler* sim_;
  double mips_;
  std::string name_;
  Time free_at_ = 0;        // when previously queued work completes
  Duration busy_time_ = 0;  // total busy time in the current window
  Counter busy_ns_;         // total busy time ever (see busy_ns())
  Time window_start_ = 0;
  BusyProbe busy_probe_;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_CPU_H_
