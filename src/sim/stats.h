#ifndef DLOG_SIM_STATS_H_
#define DLOG_SIM_STATS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dlog::sim {

/// Accumulates scalar samples (latencies, sizes, queue depths) and reports
/// mean / min / max / percentiles. Stores all samples; experiment scales
/// in this repo are small enough that this is simplest and exact.
class Histogram {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; e.g. Percentile(0.5) is the median. Linearly
  /// interpolates between adjacent ranks (so the p50 of {1, 2} is 1.5,
  /// not a nearest-rank pick). Returns 0 when empty.
  double Percentile(double q) const;

  /// Folds `other`'s samples into this histogram (per-node -> cluster
  /// aggregation). Merging a histogram into itself doubles every sample.
  void Merge(const Histogram& other);

  /// "n=… mean=… p50=… p95=… max=…" one-line summary.
  std::string Summary() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// A log-linear bucketed histogram (HDR style): each power-of-two major
/// bucket is split into 2^kSubBits linear sub-buckets, bounding relative
/// quantile error at 1/2^kSubBits (6.25%) while storing counts only —
/// no samples are retained, so a long run's latency distribution costs a
/// few KB however many values it records. This is what lets windowed
/// telemetry carry per-window quantiles: a window's distribution is the
/// bucket-count delta between two readings, something the exact
/// (sample-retaining) Histogram cannot provide without unbounded memory.
///
/// Values are non-negative integers (callers pick the unit, e.g.
/// microseconds); values above kMaxValue saturate into the top bucket
/// (the exact min/max are tracked separately and quantile readouts clamp
/// to them). Deterministic: bucket counts and quantiles are pure
/// functions of the recorded multiset.
class StreamingHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBits;  // 16
  /// ~18 minutes in nanoseconds / ~13 days in microseconds: anything
  /// larger is "off the chart" and saturates.
  static constexpr uint64_t kMaxValue = uint64_t{1} << 40;
  static constexpr size_t kNumBuckets = 593;  // BucketIndex(kMaxValue) + 1

  void Record(uint64_t value, uint64_t count = 1);

  uint64_t count() const { return count_; }
  /// Exact extremes of everything recorded (0 when empty). max() is the
  /// unclamped value even when it saturated the top bucket.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// q in [0,1]. Linearly interpolates inside the landing bucket and
  /// clamps to the exact [min, max], so single-sample and saturated-top
  /// readouts are exact. Returns 0 when empty.
  double Percentile(double q) const;

  /// Adds `other`'s counts into this histogram. Self-merge doubles every
  /// count.
  void Merge(const StreamingHistogram& other);

  void Clear();

  /// Bucket counts, dense-indexed; empty until the first Record. The
  /// telemetry collector snapshots these and diffs snapshots to get
  /// per-window distributions.
  const std::vector<uint32_t>& buckets() const { return buckets_; }

  /// Dense-index bounds of the occupied buckets, [bucket_lo, bucket_hi]
  /// inclusive; bucket_lo > bucket_hi when empty. Latency streams occupy
  /// a few dozen of the 593 buckets, so per-window consumers (the
  /// telemetry collector diffs every stream every window) iterate this
  /// range instead of the whole array.
  size_t bucket_lo() const { return bucket_lo_; }
  size_t bucket_hi() const { return bucket_hi_; }

  static size_t BucketIndex(uint64_t value);
  /// Smallest / largest (inclusive) value mapping to bucket `index`.
  static uint64_t BucketLow(size_t index);
  static uint64_t BucketHigh(size_t index);
  /// Quantile over a raw bucket-count vector (e.g. a window delta the
  /// collector computed); `total` must be the sum of counts[0..n).
  /// `start` is a scan hint: counts[0..start) must be all zero.
  static double PercentileFromCounts(const uint32_t* counts, size_t n,
                                     uint64_t total, double q,
                                     size_t start = 0);

 private:
  std::vector<uint32_t> buckets_;  // lazily sized to kNumBuckets
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  size_t bucket_lo_ = kNumBuckets;  // empty: lo > hi
  size_t bucket_hi_ = 0;
};

/// A monotonically increasing event counter with a named meaning
/// (messages sent, records written, ...). Increments are relaxed
/// atomics: under the parallel engine some counters (chaos fault
/// counts, shared-network drops) are bumped from concurrently executing
/// shards, and addition commutes, so the quiescent value is still
/// deterministic. Reads are meaningful while the engine is quiescent.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// An instantaneous level that moves both ways (queue depth, buffered
/// bytes, ring slots in use). Unlike Counter it is signed and settable,
/// and it tracks the high-water mark.
class Gauge {
 public:
  void Set(int64_t value) {
    value_ = value;
    max_ = std::max(max_, value);
  }
  void Add(int64_t delta) { Set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }
  void Reset() {
    value_ = 0;
    max_ = 0;
  }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

/// A gauge whose mean is weighted by how long each level was held —
/// the right average for occupancies and utilizations (a buffer that sat
/// 99% full for 9 s and empty for 1 s averages 0.891, not the 0.495 a
/// plain sample mean of the two levels would report). Callers pass the
/// simulated clock explicitly so the stats layer stays time-source
/// agnostic.
class TimeWeightedGauge {
 public:
  /// Records a level change at time `now` (must be >= the previous call's
  /// time; equal times simply replace the level).
  void Set(Time now, double value) {
    if (started_) {
      weighted_sum_ += value_ * static_cast<double>(now - last_change_);
    } else {
      started_ = true;
      start_ = now;
    }
    last_change_ = now;
    value_ = value;
    max_ = std::max(max_, value);
  }

  double value() const { return value_; }
  double max() const { return max_; }

  /// Time-weighted mean level over [first Set, now]. Returns the current
  /// level when no time has elapsed, 0 before any Set.
  double Average(Time now) const {
    if (!started_) return 0.0;
    const double elapsed = static_cast<double>(now - start_);
    if (elapsed <= 0) return value_;
    const double sum =
        weighted_sum_ + value_ * static_cast<double>(now - last_change_);
    return sum / elapsed;
  }

  void Reset(Time now) {
    started_ = true;
    start_ = now;
    last_change_ = now;
    weighted_sum_ = 0;
    max_ = value_;
  }

 private:
  bool started_ = false;
  Time start_ = 0;
  Time last_change_ = 0;
  double value_ = 0;
  double max_ = 0;
  double weighted_sum_ = 0;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_STATS_H_
