#ifndef DLOG_SIM_STATS_H_
#define DLOG_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace dlog::sim {

/// Accumulates scalar samples (latencies, sizes, queue depths) and reports
/// mean / min / max / percentiles. Stores all samples; experiment scales
/// in this repo are small enough that this is simplest and exact.
class Histogram {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; e.g. Percentile(0.5) is the median. Returns 0 when empty.
  double Percentile(double q) const;

  /// "n=… mean=… p50=… p95=… max=…" one-line summary.
  std::string Summary() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// A monotonically increasing event counter with a named meaning
/// (messages sent, records written, ...).
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

}  // namespace dlog::sim

#endif  // DLOG_SIM_STATS_H_
