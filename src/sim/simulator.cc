#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::sim {

void Simulator::HeapPush(const Entry& e) {
  // Hole insertion: bubble an empty slot up and place `e` once, one move
  // per level instead of a three-move swap.
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::SiftDown(size_t i) {
  // Sift a hole at `i` down, moving the smallest child up one move per
  // level, until the displaced element fits.
  const Entry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    // Smallest of the (up to four) children.
    size_t best = first_child;
    const size_t last_child =
        first_child + 4 <= n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::HeapPop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void Simulator::PurgeCancelled() {
  size_t w = 0;
  for (size_t r = 0; r < heap_.size(); ++r) {
    const uint32_t slot = SlotOfEntry(heap_[r]);
    if (slots_[slot].cancelled) {
      FreeSlot(slot);
    } else {
      heap_[w++] = heap_[r];
    }
  }
  heap_.resize(w);
  // Floyd bottom-up heapify: leaves are already heaps.
  if (w > 1) {
    for (size_t i = (w - 2) / 4 + 1; i-- > 0;) SiftDown(i);
  }
  tombstones_ = 0;
}

int Simulator::WheelLevel(Duration delta) {
  if (delta < (Duration{1} << Wheel::kShift)) return -1;
  // Level l holds deltas whose most significant bit lies in its bucket-
  // width band [kShift + l*kBucketBits, kShift + (l+1)*kBucketBits):
  // small enough to land within the level's 64-bucket span, and at least
  // one bucket width out, so the bucket's start is strictly future.
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(delta));
  const int level = (msb - Wheel::kShift) / Wheel::kBucketBits;
  return level < Wheel::kLevels ? level : -1;
}

Time Simulator::WheelBucketStart(int level, int b) const {
  const int shift = Wheel::kShift + Wheel::kBucketBits * level;
  const uint64_t cur = static_cast<uint64_t>(now_) >> shift;
  // The unique boundary with index b in (now_, now_ + span]: occupied
  // buckets are always strictly ahead of the clock (due ones are flushed
  // before the clock passes them), so index b at distance 0 means a full
  // lap ahead.
  uint64_t steps = (static_cast<uint64_t>(b) - cur) & (Wheel::kBuckets - 1);
  if (steps == 0) steps = Wheel::kBuckets;
  return static_cast<Time>((cur + steps) << shift);
}

void Simulator::RecomputeWheelNext() {
  Time next = kNoEvent;
  for (int l = 0; l < Wheel::kLevels; ++l) {
    for (uint64_t m = wheel_->occupied[l]; m != 0; m &= m - 1) {
      const int b = __builtin_ctzll(m);
      const Time start = WheelBucketStart(l, b);
      if (start < next) next = start;
    }
  }
  wheel_->next = next;
}

void Simulator::FlushDueWheelBuckets() {
  const Time due = wheel_->next;
  for (int l = 0; l < Wheel::kLevels; ++l) {
    const int shift = Wheel::kShift + Wheel::kBucketBits * l;
    const int b =
        static_cast<int>((static_cast<uint64_t>(due) >> shift) &
                         (Wheel::kBuckets - 1));
    if ((wheel_->occupied[l] & (uint64_t{1} << b)) == 0) continue;
    if (WheelBucketStart(l, b) != due) continue;  // a later lap
    std::vector<Entry>& bucket = wheel_->bucket[l][b];
    for (const Entry& e : bucket) {
      const uint32_t slot = SlotOfEntry(e);
      Slot& s = slots_[slot];
      s.in_wheel = false;
      if (s.cancelled) {
        // Dies here: a wheeled-then-cancelled timer never touches the
        // heap at all.
        --wheel_->tombstones;
        FreeSlot(slot);
      } else {
        // The entry keeps its original (time, seq) key, so once
        // heap-resident it orders exactly as if it had never wheeled.
        HeapPush(e);
      }
    }
    wheel_->size -= bucket.size();
    bucket.clear();  // keeps capacity: buckets are reused every lap
    wheel_->occupied[l] &= ~(uint64_t{1} << b);
  }
  RecomputeWheelNext();
}

void Simulator::PurgeWheel() {
  for (int l = 0; l < Wheel::kLevels; ++l) {
    for (uint64_t m = wheel_->occupied[l]; m != 0; m &= m - 1) {
      const int b = __builtin_ctzll(m);
      std::vector<Entry>& bucket = wheel_->bucket[l][b];
      size_t w = 0;
      for (size_t r = 0; r < bucket.size(); ++r) {
        const uint32_t slot = SlotOfEntry(bucket[r]);
        if (slots_[slot].cancelled) {
          slots_[slot].in_wheel = false;
          FreeSlot(slot);
        } else {
          bucket[w++] = bucket[r];
        }
      }
      wheel_->size -= bucket.size() - w;
      bucket.resize(w);
      if (w == 0) wheel_->occupied[l] &= ~(uint64_t{1} << b);
    }
  }
  wheel_->tombstones = 0;
  RecomputeWheelNext();
}

void Simulator::EnableTimerWheel(bool on) {
  wheel_enabled_ = on;
  if (!on && wheel_ != nullptr && wheel_->size > 0) {
    // Flush everything into the heap: every wheeled entry's time is
    // ahead of now_, so this is legal mid-run and schedule-invisible.
    while (wheel_->size > 0) FlushDueWheelBuckets();
  }
}

EventId Simulator::At(Time t, Callback fn) {
  assert(t >= now_ && "cannot schedule in the past");
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  assert(slot <= kSlotMask && "too many simultaneously queued events");
  assert(next_seq_ < (uint64_t{1} << (64 - kSlotBits)) &&
         "event sequence numbers exhausted");
  const Entry entry{t, (next_seq_++ << kSlotBits) | slot};
  const int level = wheel_enabled_ ? WheelLevel(t - now_) : -1;
  if (level >= 0) {
    if (wheel_ == nullptr) wheel_ = std::make_unique<Wheel>();
    const int shift = Wheel::kShift + Wheel::kBucketBits * level;
    const int b =
        static_cast<int>((static_cast<uint64_t>(t) >> shift) &
                         (Wheel::kBuckets - 1));
    wheel_->bucket[level][b].push_back(entry);
    wheel_->occupied[level] |= uint64_t{1} << b;
    ++wheel_->size;
    const Time start =
        static_cast<Time>((static_cast<uint64_t>(t) >> shift) << shift);
    if (start < wheel_->next) wheel_->next = start;
    s.in_wheel = true;
  } else {
    HeapPush(entry);
  }
  ++live_events_;
  return MakeId(slot, s.generation);
}

bool Simulator::Cancel(EventId id) {
  if (id == 0) return false;
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A generation mismatch means the event already ran (its slot was freed
  // and possibly reissued); a set tombstone means it was already
  // cancelled. Either way there is nothing to cancel.
  if (s.generation != GenerationOf(id) || s.cancelled) return false;
  s.cancelled = true;
  --live_events_;
  if (s.in_wheel) {
    // Wheel-side tombstone: reclaimed when its bucket flushes, or by
    // PurgeWheel if the wheel fills with dead entries first. It must not
    // count against the heap's purge trigger — PurgeCancelled scans only
    // the heap and would never find it.
    if (++wheel_->tombstones > wheel_->size / 2 && wheel_->size >= 64) {
      PurgeWheel();
    }
    return true;
  }
  // Keep the queue dominated by live entries (see PurgeCancelled). The
  // floor avoids churn on tiny heaps, where sifts are cheap anyway.
  if (++tombstones_ > heap_.size() / 2 && heap_.size() >= 64) {
    PurgeCancelled();
  }
  return true;
}

void Simulator::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = Callback();
  s.in_wheel = false;
  ++s.generation;  // invalidates every EventId issued for this slot
  free_slots_.push_back(slot);
}

bool Simulator::PopAndMaybeRun() {
  const Entry entry = heap_.front();
  HeapPop();
  const uint32_t slot = SlotOfEntry(entry);
  Slot& s = slots_[slot];
  if (s.cancelled) {
    --tombstones_;
    FreeSlot(slot);
    return false;
  }
  // Move the callback out before freeing: running it may schedule new
  // events, which can reuse this slot or grow the slot table.
  Callback fn = std::move(s.fn);
  FreeSlot(slot);
  --live_events_;
  now_ = entry.time;
  ++events_executed_;
  executing_ = true;
  fn();
  executing_ = false;
  return true;
}

Time Simulator::PeekNextTime() {
  for (;;) {
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      const uint32_t slot = SlotOfEntry(top);
      if (!slots_[slot].cancelled) break;
      --tombstones_;
      HeapPop();
      FreeSlot(slot);
    }
    const Time h = HeapTopTime();
    if (wheel_ == nullptr || wheel_->size == 0 || wheel_->next > h) {
      return h;
    }
    // A wheel bucket may hold the earliest event; make it heap-resident
    // (invisible on the executed schedule, like the tombstone GC above).
    FlushDueWheelBuckets();
  }
}

bool Simulator::Step() {
  for (;;) {
    if (wheel_ != nullptr && wheel_->size > 0 &&
        wheel_->next <= HeapTopTime()) {
      FlushDueWheelBuckets();
      continue;
    }
    if (heap_.empty()) return false;
    if (PopAndMaybeRun()) return true;
  }
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  for (;;) {
    if (wheel_ != nullptr && wheel_->size > 0 && wheel_->next <= t &&
        wheel_->next <= HeapTopTime()) {
      // Due on this run: a bucket starting at or before `t` may hold
      // events with time <= t. Buckets starting after `t` hold only
      // later events and stay wheeled across the final clock advance.
      FlushDueWheelBuckets();
      continue;
    }
    if (heap_.empty()) break;
    const Entry& top = heap_.front();
    if (slots_[SlotOfEntry(top)].cancelled) {
      // Collect tombstones eagerly even past `t`: their slots free up and
      // the queue shrinks without a hash probe per pop.
      const uint32_t slot = SlotOfEntry(top);
      --tombstones_;
      HeapPop();
      FreeSlot(slot);
      continue;
    }
    if (top.time > t) break;
    PopAndMaybeRun();
  }
  if (t > now_) now_ = t;
}

void TickSequencer::Post(Time t, uint64_t key, Callback fn) {
  if (!sim_->Executing()) {
    // Quiescent: setup/teardown code observes its effects synchronously,
    // and there is no same-tick contention to arbitrate.
    fn();
    return;
  }
  assert(t == sim_->Now() && "sequenced posts carry the caller's clock");
  if (buffer_.empty()) {
    sim_->At(t, [this] { Drain(); });
  }
  buffer_.push_back({key, next_seq_++, std::move(fn)});
}

void TickSequencer::Drain() {
  // Sort, not stable_sort: seq is unique, so (key, seq) is a total order.
  std::sort(buffer_.begin(), buffer_.end(), [](const Item& a, const Item& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  });
  // Swap out before running: a replayed callback may Post again (at this
  // same tick only via a zero-delay chain, which schedules a fresh drain
  // that pops later in the tick).
  std::vector<Item> batch;
  batch.swap(buffer_);
  for (Item& item : batch) item.fn();
}

}  // namespace dlog::sim
