#include "sim/simulator.h"

#include <cassert>

namespace dlog::sim {

EventId Simulator::At(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: the event stays queued but is skipped when popped.
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    Step();
  }
  if (t > now_) now_ = t;
}

}  // namespace dlog::sim
