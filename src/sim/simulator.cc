#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::sim {

void Simulator::HeapPush(const Entry& e) {
  // Hole insertion: bubble an empty slot up and place `e` once, one move
  // per level instead of a three-move swap.
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::SiftDown(size_t i) {
  // Sift a hole at `i` down, moving the smallest child up one move per
  // level, until the displaced element fits.
  const Entry e = heap_[i];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    // Smallest of the (up to four) children.
    size_t best = first_child;
    const size_t last_child =
        first_child + 4 <= n ? first_child + 4 : n;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::HeapPop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void Simulator::PurgeCancelled() {
  size_t w = 0;
  for (size_t r = 0; r < heap_.size(); ++r) {
    const uint32_t slot = SlotOfEntry(heap_[r]);
    if (slots_[slot].cancelled) {
      FreeSlot(slot);
    } else {
      heap_[w++] = heap_[r];
    }
  }
  heap_.resize(w);
  // Floyd bottom-up heapify: leaves are already heaps.
  if (w > 1) {
    for (size_t i = (w - 2) / 4 + 1; i-- > 0;) SiftDown(i);
  }
  tombstones_ = 0;
}

EventId Simulator::At(Time t, Callback fn) {
  assert(t >= now_ && "cannot schedule in the past");
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  assert(slot <= kSlotMask && "too many simultaneously queued events");
  assert(next_seq_ < (uint64_t{1} << (64 - kSlotBits)) &&
         "event sequence numbers exhausted");
  HeapPush(Entry{t, (next_seq_++ << kSlotBits) | slot});
  ++live_events_;
  return MakeId(slot, s.generation);
}

bool Simulator::Cancel(EventId id) {
  if (id == 0) return false;
  const uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A generation mismatch means the event already ran (its slot was freed
  // and possibly reissued); a set tombstone means it was already
  // cancelled. Either way there is nothing to cancel.
  if (s.generation != GenerationOf(id) || s.cancelled) return false;
  s.cancelled = true;
  --live_events_;
  // Keep the queue dominated by live entries (see PurgeCancelled). The
  // floor avoids churn on tiny heaps, where sifts are cheap anyway.
  if (++tombstones_ > heap_.size() / 2 && heap_.size() >= 64) {
    PurgeCancelled();
  }
  return true;
}

void Simulator::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = Callback();
  ++s.generation;  // invalidates every EventId issued for this slot
  free_slots_.push_back(slot);
}

bool Simulator::PopAndMaybeRun() {
  const Entry entry = heap_.front();
  HeapPop();
  const uint32_t slot = SlotOfEntry(entry);
  Slot& s = slots_[slot];
  if (s.cancelled) {
    --tombstones_;
    FreeSlot(slot);
    return false;
  }
  // Move the callback out before freeing: running it may schedule new
  // events, which can reuse this slot or grow the slot table.
  Callback fn = std::move(s.fn);
  FreeSlot(slot);
  --live_events_;
  now_ = entry.time;
  ++events_executed_;
  executing_ = true;
  fn();
  executing_ = false;
  return true;
}

Time Simulator::PeekNextTime() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    const uint32_t slot = SlotOfEntry(top);
    if (!slots_[slot].cancelled) return top.time;
    --tombstones_;
    HeapPop();
    FreeSlot(slot);
  }
  return kNoEvent;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    if (PopAndMaybeRun()) return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[SlotOfEntry(top)].cancelled) {
      // Collect tombstones eagerly even past `t`: their slots free up and
      // the queue shrinks without a hash probe per pop.
      const uint32_t slot = SlotOfEntry(top);
      --tombstones_;
      HeapPop();
      FreeSlot(slot);
      continue;
    }
    if (top.time > t) break;
    PopAndMaybeRun();
  }
  if (t > now_) now_ = t;
}

void TickSequencer::Post(Time t, uint64_t key, Callback fn) {
  if (!sim_->Executing()) {
    // Quiescent: setup/teardown code observes its effects synchronously,
    // and there is no same-tick contention to arbitrate.
    fn();
    return;
  }
  assert(t == sim_->Now() && "sequenced posts carry the caller's clock");
  if (buffer_.empty()) {
    sim_->At(t, [this] { Drain(); });
  }
  buffer_.push_back({key, next_seq_++, std::move(fn)});
}

void TickSequencer::Drain() {
  // Sort, not stable_sort: seq is unique, so (key, seq) is a total order.
  std::sort(buffer_.begin(), buffer_.end(), [](const Item& a, const Item& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  });
  // Swap out before running: a replayed callback may Post again (at this
  // same tick only via a zero-delay chain, which schedules a fresh drain
  // that pops later in the tick).
  std::vector<Item> batch;
  batch.swap(buffer_);
  for (Item& item : batch) item.fn();
}

}  // namespace dlog::sim
