#include "sim/stats.h"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace dlog::sim {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.back();
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  Sort();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void Histogram::Merge(const Histogram& other) {
  if (&other == this) {
    // Appending a vector's own range can reallocate out from under the
    // source iterators; copy first so self-merge is well-defined.
    std::vector<double> copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
    sorted_ = false;
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

size_t StreamingHistogram::BucketIndex(uint64_t value) {
  if (value >= kMaxValue) return kNumBuckets - 1;
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // Highest set bit picks the major (power-of-two) bucket; the next
  // kSubBits bits pick the linear sub-bucket inside it.
  int msb = 63;
  while ((value >> msb) == 0) --msb;
  const int shift = msb - kSubBits;
  return (static_cast<size_t>(msb - kSubBits + 1) << kSubBits) +
         static_cast<size_t>((value >> shift) - kSubBuckets);
}

uint64_t StreamingHistogram::BucketLow(size_t index) {
  if (index < kSubBuckets) return index;
  const int msb = static_cast<int>(index >> kSubBits) + kSubBits - 1;
  const int shift = msb - kSubBits;
  const uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << shift;
}

uint64_t StreamingHistogram::BucketHigh(size_t index) {
  if (index < kSubBuckets) return index;
  const int msb = static_cast<int>(index >> kSubBits) + kSubBits - 1;
  const int shift = msb - kSubBits;
  return BucketLow(index) + (uint64_t{1} << shift) - 1;
}

void StreamingHistogram::Record(uint64_t value, uint64_t count) {
  if (count == 0) return;
  if (buckets_.empty()) buckets_.resize(kNumBuckets, 0);
  const size_t index = BucketIndex(value);
  if (index < bucket_lo_) bucket_lo_ = index;
  if (index > bucket_hi_) bucket_hi_ = index;
  uint32_t& slot = buckets_[index];
  const uint64_t room = UINT32_MAX - slot;
  slot += static_cast<uint32_t>(count < room ? count : room);
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
}

double StreamingHistogram::PercentileFromCounts(const uint32_t* counts,
                                                size_t n, uint64_t total,
                                                double q, size_t start) {
  if (total == 0 || n == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank target, then linear interpolation inside the bucket.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t cum = 0;
  for (size_t i = start; i < n; ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] >= target) {
      const double low = static_cast<double>(BucketLow(i));
      const double width = static_cast<double>(BucketHigh(i)) - low;
      const double frac = static_cast<double>(target - cum) /
                          static_cast<double>(counts[i]);
      return low + width * frac;
    }
    cum += counts[i];
  }
  return static_cast<double>(BucketHigh(n - 1));
}

double StreamingHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double raw = PercentileFromCounts(buckets_.data(), buckets_.size(),
                                          count_, q, bucket_lo_);
  // The exact extremes are known; interpolation never needs to report
  // outside them (this makes single-sample and saturated-top readouts
  // exact).
  const double lo = static_cast<double>(min_);
  const double hi = static_cast<double>(max_);
  return raw < lo ? lo : (raw > hi ? hi : raw);
}

void StreamingHistogram::Merge(const StreamingHistogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.resize(kNumBuckets, 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    const uint64_t sum =
        static_cast<uint64_t>(buckets_[i]) + other.buckets_[i];
    buckets_[i] = sum > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(sum);
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  if (other.bucket_lo_ < bucket_lo_) bucket_lo_ = other.bucket_lo_;
  if (other.bucket_hi_ > bucket_hi_) bucket_hi_ = other.bucket_hi_;
  count_ += other.count_;
}

void StreamingHistogram::Clear() {
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
  bucket_lo_ = kNumBuckets;
  bucket_hi_ = 0;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(0.5), Percentile(0.95),
                Percentile(0.99), Max());
  return buf;
}

}  // namespace dlog::sim
