#include "sim/stats.h"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace dlog::sim {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.back();
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  Sort();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(0.5), Percentile(0.95),
                Percentile(0.99), Max());
  return buf;
}

}  // namespace dlog::sim
