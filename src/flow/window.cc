#include "flow/window.h"

#include <algorithm>

namespace dlog::flow {

Status AimdConfig::Validate() const {
  if (min_window_bytes == 0) {
    return Status::InvalidArgument("min_window_bytes must be positive");
  }
  if (initial_window_bytes < min_window_bytes ||
      initial_window_bytes > max_window_bytes) {
    return Status::InvalidArgument(
        "initial_window_bytes outside [min, max] window bounds");
  }
  if (decrease_factor <= 0.0 || decrease_factor >= 1.0) {
    return Status::InvalidArgument("decrease_factor must be in (0, 1)");
  }
  return Status::OK();
}

AimdWindow::AimdWindow(const AimdConfig& config)
    : config_(config), window_(config.initial_window_bytes) {}

bool AimdWindow::Allows(size_t outstanding_bytes,
                        size_t payload_bytes) const {
  if (!config_.enabled) return true;
  if (outstanding_bytes == 0) return true;
  return outstanding_bytes + payload_bytes <= window_;
}

void AimdWindow::OnAck(size_t acked_bytes) {
  if (!config_.enabled || acked_bytes == 0) return;
  window_ = std::min(config_.max_window_bytes,
                     window_ + config_.increase_bytes);
}

void AimdWindow::OnCongestion(sim::Time now) {
  if (!config_.enabled) return;
  if (decreased_once_ && now < last_decrease_ + config_.congestion_guard) {
    return;
  }
  window_ = std::max(
      config_.min_window_bytes,
      static_cast<size_t>(static_cast<double>(window_) *
                          config_.decrease_factor));
  last_decrease_ = now;
  decreased_once_ = true;
}

}  // namespace dlog::flow
