#ifndef DLOG_FLOW_RETRY_POLICY_H_
#define DLOG_FLOW_RETRY_POLICY_H_

#include "common/rng.h"
#include "common/status.h"
#include "sim/time.h"

namespace dlog::flow {

/// Client-side backoff-and-budget policy applied when a server sheds a
/// request (explicit Overloaded reply) or a retry is about to be resent.
/// Backoff is capped jittered exponential; the jitter is drawn from the
/// caller's deterministic per-client Rng stream so simulation runs stay
/// byte-identical. The token bucket bounds the *rate* of retries so that
/// retries cannot amplify an overload into congestion collapse.
struct RetryPolicyConfig {
  bool enabled = true;
  /// Backoff after the first shed; doubles (by `multiplier`) per
  /// consecutive shed up to `max_backoff`.
  sim::Duration initial_backoff = 50 * sim::kMillisecond;
  double multiplier = 2.0;
  sim::Duration max_backoff = 2 * sim::kSecond;
  /// Fraction of the backoff randomized: the wait is drawn uniformly from
  /// [b * (1 - jitter), b]. 0 disables jitter.
  double jitter = 0.5;
  /// Token-bucket retry budget: a retry spends one token; the bucket
  /// holds at most `budget_tokens` and refills at `budget_refill_per_sec`
  /// tokens per simulated second.
  double budget_tokens = 10.0;
  double budget_refill_per_sec = 2.0;

  Status Validate() const;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryPolicyConfig& config);

  /// Backoff before retry number `attempt` (0-based: attempt 0 is the
  /// first backoff). Jitter comes from `rng`, the owner's deterministic
  /// stream; the result is in [b * (1 - jitter), b] for the capped
  /// exponential b.
  sim::Duration BackoffFor(int attempt, Rng* rng) const;

  /// Spends one retry token if the bucket (lazily refilled from sim
  /// time) has one; returns false when the budget is exhausted and the
  /// retry should be suppressed this round.
  bool TryAcquireRetryToken(sim::Time now);

  /// Current token balance (for metrics).
  double tokens() const { return tokens_; }

  const RetryPolicyConfig& config() const { return config_; }

 private:
  void Refill(sim::Time now);

  RetryPolicyConfig config_;
  double tokens_;
  sim::Time last_refill_ = 0;
};

}  // namespace dlog::flow

#endif  // DLOG_FLOW_RETRY_POLICY_H_
