#ifndef DLOG_FLOW_WINDOW_H_
#define DLOG_FLOW_WINDOW_H_

#include <cstddef>

#include "common/status.h"
#include "sim/time.h"

namespace dlog::flow {

/// AIMD congestion window over outstanding (sent but unacknowledged)
/// bytes on one wire connection. The transport's receiver-granted packet
/// window bounds buffer usage; this window bounds *injection rate* under
/// overload: it shrinks multiplicatively when the peer sheds (Overloaded
/// reply) or starves the sender (allocation-override timeout) and grows
/// additively as acknowledgements advance. Disabled by default so the
/// transport's seed behavior is unchanged unless a client opts in.
struct AimdConfig {
  bool enabled = false;
  size_t min_window_bytes = 4 * 1024;
  size_t initial_window_bytes = 64 * 1024;
  size_t max_window_bytes = 256 * 1024;
  /// Additive increase applied per acknowledgement event.
  size_t increase_bytes = 1400;
  /// Multiplicative decrease factor applied on a congestion signal.
  double decrease_factor = 0.5;
  /// Congestion signals closer together than this are coalesced into one
  /// decrease, so a burst of Overloaded replies for packets of the same
  /// flight does not collapse the window to the floor.
  sim::Duration congestion_guard = 50 * sim::kMillisecond;

  Status Validate() const;
};

class AimdWindow {
 public:
  explicit AimdWindow(const AimdConfig& config);

  bool enabled() const { return config_.enabled; }
  size_t current() const { return window_; }

  /// Whether one more payload of `payload_bytes` may be injected with
  /// `outstanding_bytes` already in flight. Always true when disabled,
  /// and always true at zero outstanding so the window can never
  /// deadlock a connection.
  bool Allows(size_t outstanding_bytes, size_t payload_bytes) const;

  /// Acknowledgement progress: additive increase.
  void OnAck(size_t acked_bytes);

  /// Congestion signal (Overloaded reply or send-starvation timeout):
  /// multiplicative decrease, coalesced within `congestion_guard`.
  void OnCongestion(sim::Time now);

 private:
  AimdConfig config_;
  size_t window_;
  sim::Time last_decrease_ = 0;
  bool decreased_once_ = false;
};

}  // namespace dlog::flow

#endif  // DLOG_FLOW_WINDOW_H_
