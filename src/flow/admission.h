#ifndef DLOG_FLOW_ADMISSION_H_
#define DLOG_FLOW_ADMISSION_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::flow {

/// Admission-control policy for one log server. Section 4.2 of the paper
/// licenses servers to "ignore ForceLog and WriteLog messages if they
/// become too heavily loaded"; with `enabled` the refusal is explicit (an
/// Overloaded wire reply carrying an advisory retry-after hint) so clients
/// back off instead of resending into the collapse. With `enabled` false
/// the controller reproduces the legacy vestigial behavior: shed silently
/// on the NVRAM-occupancy threshold alone.
struct AdmissionConfig {
  bool enabled = true;
  /// NVRAM group-buffer occupancy fraction above which new WriteLog /
  /// ForceLog batches are rejected.
  double nvram_shed_fraction = 0.95;
  /// Flush backlog, measured in track-sized disk writes implied by the
  /// buffered bytes, above which batches are rejected even below the
  /// NVRAM threshold (the disk, not the buffer, is the bottleneck then).
  /// 0 disables the disk-queue signal.
  size_t disk_queue_shed_tracks = 0;
  /// Bounds for the advisory retry-after hint. The hint scales linearly
  /// with how far past its threshold the strongest overload signal sits,
  /// so deeper overload pushes clients further away. Deterministic: any
  /// jitter is the client's job (per-client Rng streams).
  sim::Duration min_retry_after = 20 * sim::kMillisecond;
  sim::Duration max_retry_after = 1 * sim::kSecond;

  Status Validate() const;
};

class AdmissionController {
 public:
  struct Decision {
    bool admit = true;
    /// Advisory backoff hint carried in the Overloaded reply; zero when
    /// the batch is admitted.
    sim::Duration retry_after = 0;
  };

  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Decides one arriving record batch given the current overload
  /// signals: NVRAM occupancy in [0, 1] and the flush backlog in track
  /// writes. Counts the outcome.
  Decision Admit(double nvram_fraction, size_t disk_queue_tracks);

  /// Registers admitted/shed/overload-reply counters under `prefix`
  /// (e.g. "server-3/flow/").
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

  const AdmissionConfig& config() const { return config_; }
  sim::Counter& admitted() { return admitted_; }
  sim::Counter& shed() { return shed_; }
  /// Incremented by the owner when an Overloaded reply is actually sent
  /// (sheds with admission disabled stay silent).
  sim::Counter& overload_replies() { return overload_replies_; }

 private:
  AdmissionConfig config_;
  sim::Counter admitted_;
  sim::Counter shed_;
  sim::Counter overload_replies_;
};

}  // namespace dlog::flow

#endif  // DLOG_FLOW_ADMISSION_H_
