#include "flow/admission.h"

#include <algorithm>

namespace dlog::flow {

Status AdmissionConfig::Validate() const {
  if (nvram_shed_fraction <= 0.0 || nvram_shed_fraction > 1.0) {
    return Status::InvalidArgument("nvram_shed_fraction must be in (0, 1]");
  }
  if (min_retry_after > max_retry_after) {
    return Status::InvalidArgument("min_retry_after > max_retry_after");
  }
  return Status::OK();
}

namespace {

// How far past `threshold` the signal sits, normalized to [0, 1].
double Severity(double value, double threshold, double full_scale) {
  if (value <= threshold) return 0.0;
  if (full_scale <= threshold) return 1.0;
  return std::min(1.0, (value - threshold) / (full_scale - threshold));
}

}  // namespace

AdmissionController::Decision AdmissionController::Admit(
    double nvram_fraction, size_t disk_queue_tracks) {
  bool over = nvram_fraction > config_.nvram_shed_fraction;
  double severity =
      Severity(nvram_fraction, config_.nvram_shed_fraction, 1.0);
  if (config_.enabled && config_.disk_queue_shed_tracks > 0 &&
      disk_queue_tracks > config_.disk_queue_shed_tracks) {
    over = true;
    severity = std::max(
        severity,
        Severity(static_cast<double>(disk_queue_tracks),
                 static_cast<double>(config_.disk_queue_shed_tracks),
                 2.0 * static_cast<double>(config_.disk_queue_shed_tracks)));
  }
  Decision decision;
  if (!over) {
    decision.admit = true;
    admitted_.Increment();
    return decision;
  }
  decision.admit = false;
  decision.retry_after =
      config_.min_retry_after +
      static_cast<sim::Duration>(
          severity * static_cast<double>(config_.max_retry_after -
                                         config_.min_retry_after));
  shed_.Increment();
  return decision;
}

void AdmissionController::RegisterMetrics(obs::MetricsRegistry* registry,
                                          const std::string& prefix) const {
  registry->RegisterCounter(prefix + "admitted", &admitted_);
  registry->RegisterCounter(prefix + "shed", &shed_);
  registry->RegisterCounter(prefix + "overload_replies", &overload_replies_);
}

}  // namespace dlog::flow
