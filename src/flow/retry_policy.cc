#include "flow/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace dlog::flow {

Status RetryPolicyConfig::Validate() const {
  if (initial_backoff == 0) {
    return Status::InvalidArgument("initial_backoff must be positive");
  }
  if (multiplier < 1.0) {
    return Status::InvalidArgument("multiplier must be >= 1");
  }
  if (max_backoff < initial_backoff) {
    return Status::InvalidArgument("max_backoff < initial_backoff");
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return Status::InvalidArgument("jitter must be in [0, 1]");
  }
  if (budget_tokens < 0.0 || budget_refill_per_sec < 0.0) {
    return Status::InvalidArgument("retry budget must be non-negative");
  }
  return Status::OK();
}

RetryPolicy::RetryPolicy(const RetryPolicyConfig& config)
    : config_(config), tokens_(config.budget_tokens) {}

sim::Duration RetryPolicy::BackoffFor(int attempt, Rng* rng) const {
  // Compute in double so large attempt counts saturate at the cap
  // instead of overflowing.
  const double cap = static_cast<double>(config_.max_backoff);
  double b = static_cast<double>(config_.initial_backoff) *
             std::pow(config_.multiplier, std::max(0, attempt));
  b = std::min(b, cap);
  if (config_.jitter > 0.0 && rng != nullptr) {
    b *= 1.0 - config_.jitter * rng->NextDouble();
  }
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(b));
}

void RetryPolicy::Refill(sim::Time now) {
  if (now <= last_refill_) return;
  const double elapsed = sim::DurationToSeconds(now - last_refill_);
  tokens_ = std::min(config_.budget_tokens,
                     tokens_ + elapsed * config_.budget_refill_per_sec);
  last_refill_ = now;
}

bool RetryPolicy::TryAcquireRetryToken(sim::Time now) {
  Refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace dlog::flow
