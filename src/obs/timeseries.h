#ifndef DLOG_OBS_TIMESERIES_H_
#define DLOG_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::obs {

struct TimeSeriesConfig {
  bool enabled = false;
  /// Sampling cadence in simulated time. Window k covers
  /// ((k-1)*interval, k*interval]; the harness samples with the engine
  /// quiescent at exactly k*interval, so every event at or before the
  /// window edge — and nothing after it — is reflected, on any engine.
  sim::Duration interval = 250 * sim::kMillisecond;
  /// Windows retained per series (bounded ring; older values evicted).
  int retention_windows = 512;
  /// Streaming-histogram name *suffixes* additionally merged across all
  /// matching nodes into "cluster/<suffix>/{p50,p99,count}" each window
  /// — the cluster-wide ForceLog quantiles the SLO-burn rule watches.
  /// At most 32 suffixes (slots track membership in a bitmask).
  std::vector<std::string> aggregate_streaming = {"log/force_latency_us"};
  /// Registered names with these prefixes are not sampled. Default:
  /// "process/" — process-wide tallies (dlog::BytesCopied) are shared
  /// by every cluster in the process, so concurrent TrialRunner trials
  /// would bleed into each other's windows and break the byte-identity
  /// guarantee. They remain visible in end-of-run snapshots, which are
  /// taken when the process is quiescent.
  std::vector<std::string> exclude_prefixes = {"process/"};

  Status Validate() const;
};

/// How a series' per-window value was produced.
enum class SeriesKind {
  kRate,      // counter delta over the window (delta-encoded)
  kLevel,     // instantaneous reading at the window edge
  kQuantile,  // quantile of a streaming histogram's window delta
};

/// Samples every registered metric into bounded per-series rings on a
/// fixed simulated-time cadence — the *online* view of a run, where
/// MetricsRegistry::Snapshot is the post-hoc one. Counters are stored as
/// per-window deltas, gauges/callbacks as window-edge levels, streaming
/// histograms as per-window quantiles of their bucket-count deltas
/// (exact sample-retaining histograms are end-of-run artifacts and are
/// skipped). Cross-node aggregation and the health rules read these
/// series, and the exporters serialize them.
///
/// Series are sparse: a window where a counter didn't move, a level
/// didn't change, or a stream recorded nothing stores no value. Rate
/// and quantile series gap-fill with zeros (readers see the implicit
/// zero via At()'s fallback); level series are sample-and-hold — a
/// skipped window means "still the previous level", gap-fills repeat
/// it, and At() holds the last sampled level forward. Most of a large
/// fleet's metrics are idle in any given window (error and repair
/// counters, steady levels), and not materializing those values is
/// what keeps the per-window sampling cost proportional to activity,
/// not to registry size.
///
/// Determinism: Sample() must run with the engine quiescent at the
/// window edge. Every value is then a pure function of the executed
/// event set {e : time(e) <= edge} — identical serial vs any
/// shard_workers count — so the exported series are byte-identical
/// across engines. The registry is re-enumerated only when its version
/// moves (a restart re-registering metrics); the steady-state sampling
/// cost is a pointer read per metric, no string maps.
class TimeSeriesCollector {
 public:
  TimeSeriesCollector(const TimeSeriesConfig& config,
                      MetricsRegistry* registry);

  TimeSeriesCollector(const TimeSeriesCollector&) = delete;
  TimeSeriesCollector& operator=(const TimeSeriesCollector&) = delete;

  /// Serial profiled runs only: additionally samples every profiler
  /// utilization timeline into "<resource>/util_exact" level series.
  void AttachProfiler(const Profiler* profiler) { profiler_ = profiler; }

  const TimeSeriesConfig& config() const { return config_; }
  sim::Duration interval() const { return config_.interval; }

  /// Closes window `windows() + 1` at simulated time `window_end`. The
  /// harness calls this with the engine quiescent at the window edge.
  void Sample(sim::Time window_end);

  /// Windows sampled so far; the current window index is windows().
  uint64_t windows() const { return windows_; }

  struct SeriesData {
    SeriesKind kind = SeriesKind::kLevel;
    /// Window index (1-based) of the first sampled value.
    uint64_t first_window = 0;
    /// Total values sampled; only the last min(count, retention) are
    /// retained.
    uint64_t count = 0;
    /// Circular: the value for absolute position p (0-based from
    /// first_window) lives at values[p % retention].
    std::vector<double> values;
  };

  /// Name -> index into series_at(), in deterministic (sorted) order.
  /// Series storage is index-addressed (contiguous chunks, allocated in
  /// sampling order) with this side map only for named lookups, so the
  /// per-window push loops never touch scattered map nodes.
  const std::map<std::string, size_t, std::less<>>& series_index() const {
    return series_index_;
  }
  const SeriesData& series_at(size_t index) const {
    return series_store_[index];
  }
  size_t series_count() const { return series_store_.size(); }

  /// The value of `key` at window `window`. Level series hold: a
  /// window past the last sampled change reads the held level. Rate and
  /// quantile series read the implicit zero as `fallback` (callers pass
  /// 0 or keep the default). `fallback` also covers series that do not
  /// exist, windows before the first sample, and evicted windows.
  double At(std::string_view key, uint64_t window,
            double fallback = 0.0) const;

  /// The most recent explicitly sampled value of `key`.
  double Latest(std::string_view key, double fallback = 0.0) const;

 private:
  struct StreamPrev {
    std::vector<uint32_t> buckets;
    uint64_t count = 0;
  };
  struct Aggregate {
    std::string suffix;
    std::vector<uint32_t> buckets;
    uint64_t count = 0;
    /// Occupied range this window (union of contributing stream ranges).
    size_t lo = 0;
    size_t hi = 0;
    SeriesData* p50 = nullptr;
    SeriesData* p99 = nullptr;
    SeriesData* cnt = nullptr;
  };
  /// Hot slots, partitioned by metric kind at Rebuild so each
  /// per-window loop is tight and branch-free and streams the minimum
  /// of metadata (Sample is memory-bound at fleet scale: thousands of
  /// slots are walked every window against a cold cache). All pointers
  /// stay valid across rebuilds: sources live in components, outputs
  /// and prev state in index-stable deques.
  struct CounterSlot {
    const sim::Counter* src;
    double* prev;  // previous reading, for delta encoding
    SeriesData* out;
  };
  struct GaugeSlot {
    const sim::Gauge* src;
    double* prev;  // last pushed level, for the unchanged-skip
    SeriesData* out;
  };
  struct TwGaugeSlot {
    const sim::TimeWeightedGauge* src;
    double* prev;
    SeriesData* out;
  };
  struct CallbackSlot {
    const std::function<double()>* fn;  // into refs_, rebuilt together
    double* prev;
    SeriesData* out;
  };
  struct StreamSlot {
    const sim::StreamingHistogram* src;
    StreamPrev* prev;
    SeriesData* p50;
    SeriesData* p99;
    SeriesData* cnt;
    uint32_t agg_mask;  // bit a: contributes to aggregates_[a]
  };

  void Rebuild();
  SeriesData* EnsureSeries(const std::string& key, SeriesKind kind);
  double* EnsurePrevValue(const std::string& key);
  StreamPrev* EnsurePrevStream(const std::string& key);
  void Push(const std::string& key, SeriesKind kind, double value);
  void PushTo(SeriesData* s, double value);
  void Append(SeriesData* s, double value);

  TimeSeriesConfig config_;
  MetricsRegistry* registry_;
  const Profiler* profiler_ = nullptr;

  /// Cached registry enumeration (owns the callback functors the
  /// callback slots point into), rebuilt when the version moves.
  std::vector<MetricRef> refs_;
  std::vector<CounterSlot> counter_slots_;
  std::vector<GaugeSlot> gauge_slots_;
  std::vector<TwGaugeSlot> tw_slots_;
  std::vector<CallbackSlot> callback_slots_;
  std::vector<StreamSlot> stream_slots_;
  uint64_t synced_version_ = UINT64_MAX;

  uint64_t windows_ = 0;
  sim::Time last_sample_time_ = 0;

  /// Series and per-source prev state live in deques (stable addresses,
  /// contiguous chunks, allocated in sampling order) with name->index
  /// maps alongside. The names are what survive re-enumeration: a
  /// restarted component's fresh counter resolves to the same prev slot,
  /// so the reset (value below the previous reading) is detected and
  /// the window delta clamps to the new counter's absolute value
  /// instead of a huge unsigned wraparound.
  std::map<std::string, size_t, std::less<>> series_index_;
  std::deque<SeriesData> series_store_;
  std::map<std::string, size_t, std::less<>> prev_value_index_;
  std::deque<double> prev_value_store_;
  std::map<std::string, size_t, std::less<>> prev_stream_index_;
  std::deque<StreamPrev> prev_stream_store_;

  /// Per-sample scratch (sized once): window bucket deltas. Invariant:
  /// all-zero between streams — each stream writes only its occupied
  /// bucket range and zeroes it back after use, so the per-window cost
  /// scales with occupied buckets, not the full bucket array.
  std::vector<uint32_t> delta_scratch_;
  std::vector<Aggregate> aggregates_;
};

/// Deterministic serializations of every series, for artifacts and the
/// byte-identity gates. JSON: {"interval_ns":..., "windows":...,
/// "series":{name:{"kind":...,"first_window":...,"values":[...]}}}.
/// CSV: "window,key,value" rows, keys sorted, retained windows only.
std::string TimeSeriesJson(const TimeSeriesCollector& collector);
std::string TimeSeriesCsv(const TimeSeriesCollector& collector);

}  // namespace dlog::obs

#endif  // DLOG_OBS_TIMESERIES_H_
