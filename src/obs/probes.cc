#include "obs/probes.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <tuple>

namespace dlog::obs {
namespace {

bool GetArg(const Span& span, const std::string& key, uint64_t* out) {
  for (const auto& [k, v] : span.args) {
    if (k == key) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

std::vector<std::string> CheckForceAckQuorum(const Tracer& tracer,
                                             int quorum) {
  std::vector<std::string> violations;
  // Per trace: force.ack instants from distinct server nodes, in time
  // order (creation order == time order in a DES).
  std::map<TraceId, std::vector<const Span*>> acks;
  for (const Span& span : tracer.spans()) {
    if (span.name == "force.ack") acks[span.trace].push_back(&span);
  }
  for (const Span& span : tracer.spans()) {
    if (span.name != "ForceLog" || span.open) continue;
    int acked = 0;
    std::map<std::string, bool> seen_node;
    auto it = acks.find(span.trace);
    if (it != acks.end()) {
      for (const Span* ack : it->second) {
        if (ack->start <= span.end && !seen_node[ack->node]) {
          seen_node[ack->node] = true;
          ++acked;
        }
      }
    }
    if (acked < quorum) {
      violations.push_back(Format(
          "trace %" PRIu64 ": ForceLog (span %" PRIu64
          ") completed at %" PRIu64 "ns with %d/%d server force acks",
          span.trace, span.id, span.end, acked, quorum));
    }
  }
  return violations;
}

std::vector<std::string> CheckLsnMonotonic(const Tracer& tracer) {
  std::vector<std::string> violations;
  struct Last {
    uint64_t epoch;
    uint64_t lsn;
  };
  std::map<std::pair<std::string, uint64_t>, Last> last;
  for (const Span& span : tracer.spans()) {
    if (span.name != "nvram.buffer") continue;
    uint64_t client = 0, lsn = 0, epoch = 0;
    if (!GetArg(span, "client", &client) || !GetArg(span, "lsn", &lsn) ||
        !GetArg(span, "epoch", &epoch)) {
      violations.push_back(Format("span %" PRIu64
                                  ": nvram.buffer missing "
                                  "client/lsn/epoch args",
                                  span.id));
      continue;
    }
    auto key = std::make_pair(span.node, client);
    auto it = last.find(key);
    if (it != last.end()) {
      const Last& prev = it->second;
      const bool ok = epoch > prev.epoch ||
                      (epoch == prev.epoch && lsn > prev.lsn);
      if (!ok) {
        violations.push_back(Format(
            "%s client %" PRIu64 ": lsn %" PRIu64 " (epoch %" PRIu64
            ") buffered after lsn %" PRIu64 " (epoch %" PRIu64 ")",
            span.node.c_str(), client, lsn, epoch, prev.lsn, prev.epoch));
      }
    }
    last[key] = {epoch, lsn};
  }
  return violations;
}

std::vector<std::string> CheckSpanTreeConnected(const Tracer& tracer) {
  std::vector<std::string> violations;
  const auto& spans = tracer.spans();
  for (const Span& span : spans) {
    if (span.parent == kNoSpan) continue;
    // Ids are dense creation-order sequence numbers.
    if (span.parent >= span.id) {
      violations.push_back(Format("span %" PRIu64 " (%s) parent %" PRIu64
                                  " not recorded earlier",
                                  span.id, span.name.c_str(), span.parent));
      continue;
    }
    const Span& parent = spans[span.parent - 1];
    if (parent.trace != span.trace) {
      violations.push_back(Format(
          "span %" PRIu64 " (%s, trace %" PRIu64 ") has parent %" PRIu64
          " from trace %" PRIu64,
          span.id, span.name.c_str(), span.trace, span.parent, parent.trace));
    }
  }
  return violations;
}

std::vector<std::string> RunAllProbes(const Tracer& tracer, int quorum) {
  std::vector<std::string> violations = CheckForceAckQuorum(tracer, quorum);
  for (auto& v : CheckLsnMonotonic(tracer)) violations.push_back(std::move(v));
  for (auto& v : CheckSpanTreeConnected(tracer)) {
    violations.push_back(std::move(v));
  }
  return violations;
}

}  // namespace dlog::obs
