#ifndef DLOG_OBS_PROFILER_H_
#define DLOG_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::obs {

/// One busy interval of a serially-served resource.
struct BusyInterval {
  sim::Time start = 0;
  sim::Time end = 0;
};

/// Exact busy/idle timeline of one resource (a node CPU, a LAN medium, a
/// disk arm). Fed from the components' busy probes, which report
/// non-overlapping intervals in non-decreasing start order — so this is
/// bookkeeping, not sampling: Utilization() is exact over any window.
class UtilizationTimeline {
 public:
  /// Appends a busy interval; contiguous intervals are merged.
  void AddBusy(sim::Time start, sim::Time end);

  const std::vector<BusyInterval>& intervals() const { return intervals_; }

  /// Busy fraction over [from, to), clipping intervals at the window
  /// edges. Returns 0 for an empty window.
  double Utilization(sim::Time from, sim::Time to) const;

  /// Total busy time inside [from, to).
  sim::Duration BusyTime(sim::Time from, sim::Time to) const;

 private:
  std::vector<BusyInterval> intervals_;
};

/// Step timeline of an instantaneous level (NVRAM buffer occupancy in
/// bytes): the level holds from each point until the next.
class LevelTimeline {
 public:
  void Set(sim::Time now, double level);

  const std::vector<std::pair<sim::Time, double>>& points() const {
    return points_;
  }

  /// Time-weighted mean level over [from, to).
  double Average(sim::Time from, sim::Time to) const;
  double Max() const { return max_; }

 private:
  std::vector<std::pair<sim::Time, double>> points_;
  double max_ = 0;
};

/// Per-delivery packet timing, as reported by the network's packet probe
/// (mirrors net::Network::PacketTiming without the net dependency —
/// obs stays a leaf layer over sim).
struct PacketEvent {
  uint64_t trace = 0;
  uint64_t span = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  size_t wire_bytes = 0;
  sim::Time enqueue = 0;
  sim::Time tx_start = 0;
  sim::Time tx_end = 0;
  sim::Time arrival = 0;
  bool delivered = false;
};

/// Per-request disk timing, as reported by the disk's request probe
/// (mirrors storage::SimDisk::RequestTiming).
struct DiskEvent {
  uint64_t track = 0;
  bool is_write = false;
  sim::Time submitted = 0;
  sim::Time start = 0;
  sim::Duration seek = 0;
  sim::Duration rotation = 0;
  sim::Duration transfer = 0;
  sim::Time end = 0;
};

/// The named latency components a ForceLog decomposes into, in causal
/// order. Components always sum exactly to the end-to-end duration.
inline const std::vector<std::string>& AttributionComponents() {
  static const std::vector<std::string> kComponents = {
      "client.cpu",  "net.queue",     "net.transmit", "server.cpu",
      "buffer.wait", "rotation.wait", "media.write",  "ack.return"};
  return kComponents;
}

/// The resource-attribution layer: collects probe feeds from the
/// simulated hardware (CPUs, LANs, disk arms, NVRAM buffers) during a
/// run, then — against the causal span forest — decomposes each traced
/// ForceLog into named latency components and reports exact per-resource
/// utilizations. All inputs arrive in deterministic simulator order, so
/// every derived artifact is byte-identical per (config, seed).
///
/// Wiring (done by harness::Cluster when `profiling` is on):
///   cpu.SetBusyProbe      -> RecordBusy("server-2/cpu", ...)
///   network.SetBusyProbe  -> RecordBusy("net-0", ...)
///   network.SetPacketProbe-> RecordPacket(...)
///   disk.SetRequestProbe  -> RecordDisk("server-2/disk", ...)
///   nvram.SetOccupancyProbe -> RecordLevel("server-2/nvram", bytes)
class Profiler {
 public:
  Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // --- probe feeds ---
  void RecordBusy(const std::string& resource, sim::Time start,
                  sim::Time end);
  void RecordLevel(const std::string& resource, sim::Time now,
                   double level);
  void RecordPacket(const PacketEvent& event) {
    packets_.push_back(event);
  }
  /// Records one disk request; also feeds `resource`'s busy timeline
  /// (the arm is serially busy over [event.start, event.end)).
  void RecordDisk(const std::string& resource, const DiskEvent& event);

  /// Maps a network node id to its span-node name ("server-2"), so packet
  /// deliveries can be matched to the force.ack instants they produced.
  void SetNodeName(uint32_t id, const std::string& name) {
    node_names_[id] = name;
  }

  // --- timelines ---
  const std::map<std::string, UtilizationTimeline>& timelines() const {
    return timelines_;
  }
  const std::map<std::string, LevelTimeline>& levels() const {
    return levels_;
  }
  /// Busy fraction of `resource` over [from, to); 0 if unknown.
  double Utilization(const std::string& resource, sim::Time from,
                     sim::Time to) const;

  /// Text table of every resource's utilization (and NVRAM mean/max
  /// occupancy) over [from, to). Deterministic.
  std::string UtilizationText(sim::Time from, sim::Time to) const;

  // --- latency attribution ---
  struct Attribution {
    TraceId trace = kNoTrace;
    SpanId span = kNoSpan;  // the decomposed ForceLog span
    std::string node;       // issuing client
    sim::Time start = 0;
    sim::Time end = 0;
    /// One entry per AttributionComponents() name, in that order; values
    /// sum exactly to end - start.
    std::vector<std::pair<std::string, sim::Duration>> components;
  };

  /// Decomposes every closed "ForceLog" span in the trace into the named
  /// components by walking its subtree: the critical force.ack instant
  /// identifies the wire.send span and packet delivery that carried the
  /// deciding copy, whose checkpoints (enqueue, tx start, arrival,
  /// processing end, ack) cut [start, end] into ordered segments; the
  /// buffered segment is further split against the server's disk request
  /// timeline (rotation wait / media write) when the ack waited for the
  /// disk. Checkpoints are clamped monotonically, so the pieces always
  /// sum exactly to the span duration.
  std::vector<Attribution> AttributeForces(const Tracer& tracer) const;

  /// Runs AttributeForces and fills per-component latency histograms
  /// (milliseconds), retrievable below or via RegisterMetrics.
  void UpdateAttributionMetrics(const Tracer& tracer);

  /// Per-component histogram ("client.cpu", ...); created on first use.
  sim::Histogram& ComponentHistogram(const std::string& component) {
    return attr_ms_[component];
  }

  /// Registers the per-component histograms under
  /// "profiler/attr/<component>" (ms, filled by
  /// UpdateAttributionMetrics), a callback utilization metric
  /// "profiler/util/<resource>" per busy timeline, and
  /// "profiler/occupancy/<resource>" per level timeline. Resources first
  /// seen after this call register themselves on arrival, so call order
  /// does not matter. `now_fn` supplies the snapshot-window end
  /// (normally the simulator clock).
  void RegisterMetrics(MetricsRegistry* registry,
                       std::function<sim::Time()> now_fn);

  const std::vector<PacketEvent>& packets() const { return packets_; }
  const std::map<std::string, std::vector<DiskEvent>>& disk_events()
      const {
    return disk_events_;
  }

 private:
  void RegisterUtilization(const std::string& resource);
  void RegisterOccupancy(const std::string& resource);

  std::map<std::string, UtilizationTimeline> timelines_;
  std::map<std::string, LevelTimeline> levels_;
  std::map<std::string, std::vector<DiskEvent>> disk_events_;
  std::vector<PacketEvent> packets_;
  std::map<uint32_t, std::string> node_names_;
  std::map<std::string, sim::Histogram> attr_ms_;
  MetricsRegistry* registry_ = nullptr;
  std::function<sim::Time()> now_fn_;
};

}  // namespace dlog::obs

#endif  // DLOG_OBS_PROFILER_H_
