#include "obs/flight.h"

#include <cstdio>
#include <utility>

namespace dlog::obs {

void FlightRecorder::Record(Span span) {
  auto it = rings_.find(std::string_view(span.node));
  if (it == rings_.end()) {
    it = rings_.emplace(span.node, Ring{}).first;
  }
  Ring& ring = it->second;
  ++ring.recorded;
  if (config_.ring_spans == 0) return;
  if (ring.slots.size() < config_.ring_spans) {
    ring.slots.push_back(std::move(span));
    ring.next = ring.slots.size() % config_.ring_spans;
    return;
  }
  ring.slots[ring.next] = std::move(span);
  ring.next = (ring.next + 1) % config_.ring_spans;
}

void FlightRecorder::Dump(std::string_view node, sim::Time at,
                          std::string_view reason) {
  DumpRecord dump;
  dump.at = at;
  dump.node = std::string(node);
  dump.reason = std::string(reason);
  auto it = rings_.find(node);
  if (it != rings_.end()) {
    const Ring& ring = it->second;
    dump.spans_recorded = ring.recorded;
    dump.spans.reserve(ring.slots.size());
    // Chronological replay of the circular buffer: the slot at `next` is
    // the oldest once the ring has wrapped.
    const size_t n = ring.slots.size();
    const size_t start = n < config_.ring_spans ? 0 : ring.next;
    for (size_t i = 0; i < n; ++i) {
      dump.spans.push_back(ring.slots[(start + i) % n]);
    }
  }
  dumps_.push_back(std::move(dump));
}

size_t FlightRecorder::RingSize(std::string_view node) const {
  auto it = rings_.find(node);
  return it == rings_.end() ? 0 : it->second.slots.size();
}

void FlightRecorder::Clear() {
  rings_.clear();
  dumps_.clear();
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendSpanJson(std::string* out, const Span& span) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"trace\":%llu,\"id\":%llu,\"parent\":%llu,\"name\":\"",
                static_cast<unsigned long long>(span.trace),
                static_cast<unsigned long long>(span.id),
                static_cast<unsigned long long>(span.parent));
  *out += buf;
  AppendEscaped(out, span.name);
  *out += "\",\"node\":\"";
  AppendEscaped(out, span.node);
  std::snprintf(buf, sizeof(buf),
                "\",\"start\":%llu,\"end\":%llu,\"open\":%s,\"args\":[",
                static_cast<unsigned long long>(span.start),
                static_cast<unsigned long long>(span.end),
                span.open ? "true" : "false");
  *out += buf;
  for (size_t i = 0; i < span.args.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += "[\"";
    AppendEscaped(out, span.args[i].first);
    std::snprintf(buf, sizeof(buf), "\",%llu]",
                  static_cast<unsigned long long>(span.args[i].second));
    *out += buf;
  }
  *out += "]}";
}

}  // namespace

std::string FlightDumpsJson(const FlightRecorder& recorder) {
  std::string out = "{\"dumps\":[";
  char buf[96];
  bool first_dump = true;
  for (const FlightRecorder::DumpRecord& dump : recorder.dumps()) {
    if (!first_dump) out.push_back(',');
    first_dump = false;
    out += "{\"at\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(dump.at));
    out += buf;
    out += ",\"node\":\"";
    AppendEscaped(&out, dump.node);
    out += "\",\"reason\":\"";
    AppendEscaped(&out, dump.reason);
    std::snprintf(buf, sizeof(buf), "\",\"spans_recorded\":%llu,\"spans\":[",
                  static_cast<unsigned long long>(dump.spans_recorded));
    out += buf;
    for (size_t i = 0; i < dump.spans.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendSpanJson(&out, dump.spans[i]);
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string FlightDumpsText(const FlightRecorder& recorder) {
  std::string out;
  char buf[192];
  for (const FlightRecorder::DumpRecord& dump : recorder.dumps()) {
    std::snprintf(buf, sizeof(buf),
                  "=== flight dump %s at %.6fs (%s): %zu of %llu spans\n",
                  dump.node.c_str(), sim::DurationToSeconds(dump.at),
                  dump.reason.c_str(), dump.spans.size(),
                  static_cast<unsigned long long>(dump.spans_recorded));
    out += buf;
    for (const Span& span : dump.spans) {
      std::snprintf(buf, sizeof(buf),
                    "  [%.6fs +%.3fms] %s trace=%llu span=%llu\n",
                    sim::DurationToSeconds(span.start),
                    sim::DurationToSeconds(span.end - span.start) * 1e3,
                    span.name.c_str(),
                    static_cast<unsigned long long>(span.trace),
                    static_cast<unsigned long long>(span.id));
      out += buf;
    }
  }
  return out;
}

}  // namespace dlog::obs
