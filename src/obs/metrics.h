#ifndef DLOG_OBS_METRICS_H_
#define DLOG_OBS_METRICS_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::obs {

/// A point-in-time reading of every registered metric, flattened to
/// `name -> double` (histograms contribute `name/count`, `/mean`, `/p50`,
/// `/p95`, `/p99`, `/max` sub-keys). Snapshots are value types: diff two of them
/// to get per-interval rates.
struct MetricsSnapshot {
  sim::Time at = 0;
  std::map<std::string, double> values;

  /// this - earlier, per key (keys only in one side pass through
  /// unchanged / negated respectively).
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;

  double Get(const std::string& name, double fallback = 0.0) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }

  /// "name value" lines, sorted by name (deterministic).
  std::string ToText() const;
};

/// What a registered metric is, for consumers (the telemetry collector)
/// that enumerate the registry once and then read values through typed
/// pointers instead of re-snapshotting string maps every window.
enum class MetricKind {
  kCounter,
  kGauge,
  kTimeWeightedGauge,
  kHistogram,
  kStreamingHistogram,
  kCallback,
};

/// One enumerated registry entry. Exactly the pointer matching `kind` is
/// set (callbacks are copied). The pointee is owned by the registered
/// component; an entry is invalidated by any registration change, which
/// bumps MetricsRegistry::version() — consumers cache entries per
/// version.
struct MetricRef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  const sim::Counter* counter = nullptr;
  const sim::Gauge* gauge = nullptr;
  const sim::TimeWeightedGauge* tw_gauge = nullptr;
  const sim::Histogram* histogram = nullptr;
  const sim::StreamingHistogram* streaming = nullptr;
  std::function<double()> callback;
};

/// One registry per experiment run, holding *references* to the metrics
/// that live inside components, under hierarchical `node/component/name`
/// keys (e.g. "server-2/log/records_written"). Components keep their
/// counters as members (hot-path increments stay a plain add); the
/// registry provides the unified cross-layer view: enumeration,
/// snapshotting, and diffing between simulated timestamps.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration. Names must be unique; re-registering a name replaces
  /// the old entry (a restarted component re-registers its counters).
  /// Re-registering the identical (name, pointer) pair is an idempotent
  /// no-op — it neither mutates the maps nor bumps version() — so a
  /// component registering twice in one window (e.g. a client restarted
  /// twice before the next telemetry sample) cannot churn consumers.
  /// The registry does not own the metric: the component must outlive it
  /// or call Unregister* first. Names pass as string_views (the key is
  /// materialized only on actual insertion; lookups and erasures are
  /// transparent) so callers can hand over literals or stack-composed
  /// names without an extra temporary per call.
  void RegisterCounter(std::string_view name, const sim::Counter* c);
  void RegisterGauge(std::string_view name, const sim::Gauge* g);
  void RegisterTimeWeightedGauge(std::string_view name,
                                 const sim::TimeWeightedGauge* g);
  void RegisterHistogram(std::string_view name, const sim::Histogram* h);
  void RegisterStreamingHistogram(std::string_view name,
                                  const sim::StreamingHistogram* h);
  /// Registers a pull-style metric: `fn` is invoked at Snapshot time.
  /// For values with no component object to point at — e.g. the
  /// process-wide dlog::BytesCopied() copy counter.
  void RegisterCallback(std::string_view name, std::function<double()> fn);

  /// Drops every metric whose name starts with `prefix` (component
  /// teardown).
  void UnregisterPrefix(std::string_view prefix);

  /// Reads every registered metric at simulated time `now` (needed for
  /// time-weighted averages).
  MetricsSnapshot Snapshot(sim::Time now) const;

  /// Registered metric names, sorted.
  std::vector<std::string> Names() const;

  /// Every registered metric as a typed reference, sorted by name.
  /// Valid until the next registration change (watch version()).
  std::vector<MetricRef> Enumerate() const;

  /// Bumped by every registration change (registering a new name,
  /// replacing an entry with a different pointer/kind, unregistering).
  /// Idempotent re-registration of the identical entry does not bump it.
  /// Consumers re-Enumerate when the version moves; reading it at a
  /// quiescent engine point is deterministic (the count of changes is a
  /// pure function of the executed event set).
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + tw_gauges_.size() +
           histograms_.size() + streaming_.size() + callbacks_.size();
  }

 private:
  /// (Un)registration can race under the parallel engine: two clients
  /// restarting in the same window re-register from different shard
  /// threads. The mutex serializes the map mutations, map order keeps
  /// enumeration deterministic regardless of arrival order, and
  /// idempotent re-registration (see Register*) keeps version() a pure
  /// function of the set of (name, pointer) changes rather than of the
  /// interleaving.
  mutable std::mutex mu_;
  uint64_t version_ = 0;
  // std::less<> enables transparent string_view lookup/erasure.
  std::map<std::string, const sim::Counter*, std::less<>> counters_;
  std::map<std::string, const sim::Gauge*, std::less<>> gauges_;
  std::map<std::string, const sim::TimeWeightedGauge*, std::less<>>
      tw_gauges_;
  std::map<std::string, const sim::Histogram*, std::less<>> histograms_;
  std::map<std::string, const sim::StreamingHistogram*, std::less<>>
      streaming_;
  std::map<std::string, std::function<double()>, std::less<>> callbacks_;
};

}  // namespace dlog::obs

#endif  // DLOG_OBS_METRICS_H_
