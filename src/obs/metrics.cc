#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace dlog::obs {

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.at = at;
  for (const auto& [name, value] : values) {
    out.values[name] = value - earlier.Get(name);
  }
  for (const auto& [name, value] : earlier.values) {
    if (values.find(name) == values.end()) out.values[name] = -value;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : values) {
    std::snprintf(buf, sizeof(buf), " %.6g\n", value);
    out += name;
    out += buf;
  }
  return out;
}

namespace {

// Erases [prefix...] keys from one typed map.
template <typename Map>
void ErasePrefix(Map* map, std::string_view prefix) {
  for (auto it = map->lower_bound(prefix); it != map->end();) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) {
      break;
    }
    it = map->erase(it);
  }
}

// A name may move between metric kinds on re-registration; drop it from
// every map first. Transparent find: no temporary key string.
template <typename Map>
void EraseName(Map* map, std::string_view name) {
  auto it = map->find(name);
  if (it != map->end()) map->erase(it);
}

// Transparent insert-or-assign: materializes the key only when the name
// is genuinely new.
template <typename Map, typename V>
void Assign(Map* map, std::string_view name, V value) {
  auto it = map->find(name);
  if (it != map->end()) {
    it->second = std::move(value);
  } else {
    map->emplace(std::string(name), std::move(value));
  }
}

}  // namespace

void MetricsRegistry::RegisterCounter(std::string_view name,
                                      const sim::Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  Assign(&counters_, name, c);
}

void MetricsRegistry::RegisterGauge(std::string_view name,
                                    const sim::Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  Assign(&gauges_, name, g);
}

void MetricsRegistry::RegisterTimeWeightedGauge(
    std::string_view name, const sim::TimeWeightedGauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  Assign(&tw_gauges_, name, g);
}

void MetricsRegistry::RegisterHistogram(std::string_view name,
                                        const sim::Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&callbacks_, name);
  Assign(&histograms_, name, h);
}

void MetricsRegistry::RegisterCallback(std::string_view name,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  Assign(&callbacks_, name, std::move(fn));
}

void MetricsRegistry::UnregisterPrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  ErasePrefix(&counters_, prefix);
  ErasePrefix(&gauges_, prefix);
  ErasePrefix(&tw_gauges_, prefix);
  ErasePrefix(&histograms_, prefix);
  ErasePrefix(&callbacks_, prefix);
}

MetricsSnapshot MetricsRegistry::Snapshot(sim::Time now) const {
  MetricsSnapshot snap;
  snap.at = now;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.values[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.values[name] = static_cast<double>(g->value());
    snap.values[name + "/max"] = static_cast<double>(g->max());
  }
  for (const auto& [name, g] : tw_gauges_) {
    snap.values[name] = g->value();
    snap.values[name + "/avg"] = g->Average(now);
    snap.values[name + "/max"] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    snap.values[name + "/count"] = static_cast<double>(h->count());
    snap.values[name + "/mean"] = h->Mean();
    snap.values[name + "/p50"] = h->Percentile(0.5);
    snap.values[name + "/p95"] = h->Percentile(0.95);
    snap.values[name + "/p99"] = h->Percentile(0.99);
    snap.values[name + "/max"] = h->Max();
  }
  for (const auto& [name, fn] : callbacks_) {
    snap.values[name] = fn();
  }
  return snap;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) names.push_back(name);
  for (const auto& [name, g] : gauges_) names.push_back(name);
  for (const auto& [name, g] : tw_gauges_) names.push_back(name);
  for (const auto& [name, h] : histograms_) names.push_back(name);
  for (const auto& [name, fn] : callbacks_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dlog::obs
