#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace dlog::obs {

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.at = at;
  for (const auto& [name, value] : values) {
    out.values[name] = value - earlier.Get(name);
  }
  for (const auto& [name, value] : earlier.values) {
    if (values.find(name) == values.end()) out.values[name] = -value;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : values) {
    std::snprintf(buf, sizeof(buf), " %.6g\n", value);
    out += name;
    out += buf;
  }
  return out;
}

namespace {

// Erases [prefix...] keys from one typed map.
template <typename Map>
void ErasePrefix(Map* map, const std::string& prefix) {
  for (auto it = map->lower_bound(prefix); it != map->end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = map->erase(it);
  }
}

// A name may move between metric kinds on re-registration; drop it from
// every map first.
template <typename Map>
void EraseName(Map* map, const std::string& name) {
  map->erase(name);
}

}  // namespace

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const sim::Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  counters_[name] = c;
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const sim::Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  gauges_[name] = g;
}

void MetricsRegistry::RegisterTimeWeightedGauge(
    const std::string& name, const sim::TimeWeightedGauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&histograms_, name);
  EraseName(&callbacks_, name);
  tw_gauges_[name] = g;
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const sim::Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&callbacks_, name);
  histograms_[name] = h;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseName(&counters_, name);
  EraseName(&gauges_, name);
  EraseName(&tw_gauges_, name);
  EraseName(&histograms_, name);
  callbacks_[name] = std::move(fn);
}

void MetricsRegistry::UnregisterPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  ErasePrefix(&counters_, prefix);
  ErasePrefix(&gauges_, prefix);
  ErasePrefix(&tw_gauges_, prefix);
  ErasePrefix(&histograms_, prefix);
  ErasePrefix(&callbacks_, prefix);
}

MetricsSnapshot MetricsRegistry::Snapshot(sim::Time now) const {
  MetricsSnapshot snap;
  snap.at = now;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.values[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.values[name] = static_cast<double>(g->value());
    snap.values[name + "/max"] = static_cast<double>(g->max());
  }
  for (const auto& [name, g] : tw_gauges_) {
    snap.values[name] = g->value();
    snap.values[name + "/avg"] = g->Average(now);
    snap.values[name + "/max"] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    snap.values[name + "/count"] = static_cast<double>(h->count());
    snap.values[name + "/mean"] = h->Mean();
    snap.values[name + "/p50"] = h->Percentile(0.5);
    snap.values[name + "/p95"] = h->Percentile(0.95);
    snap.values[name + "/p99"] = h->Percentile(0.99);
    snap.values[name + "/max"] = h->Max();
  }
  for (const auto& [name, fn] : callbacks_) {
    snap.values[name] = fn();
  }
  return snap;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) names.push_back(name);
  for (const auto& [name, g] : gauges_) names.push_back(name);
  for (const auto& [name, g] : tw_gauges_) names.push_back(name);
  for (const auto& [name, h] : histograms_) names.push_back(name);
  for (const auto& [name, fn] : callbacks_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dlog::obs
