#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace dlog::obs {

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.at = at;
  for (const auto& [name, value] : values) {
    out.values[name] = value - earlier.Get(name);
  }
  for (const auto& [name, value] : earlier.values) {
    if (values.find(name) == values.end()) out.values[name] = -value;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : values) {
    std::snprintf(buf, sizeof(buf), " %.6g\n", value);
    out += name;
    out += buf;
  }
  return out;
}

namespace {

// Erases [prefix...] keys from one typed map. Returns whether anything
// was erased.
template <typename Map>
bool ErasePrefix(Map* map, std::string_view prefix) {
  bool erased = false;
  for (auto it = map->lower_bound(prefix); it != map->end();) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) {
      break;
    }
    it = map->erase(it);
    erased = true;
  }
  return erased;
}

// A name may move between metric kinds on re-registration; drop it from
// every map first. Transparent find: no temporary key string. Returns
// whether the name was present.
template <typename Map>
bool EraseName(Map* map, std::string_view name) {
  auto it = map->find(name);
  if (it == map->end()) return false;
  map->erase(it);
  return true;
}

// Re-registering the identical entry must be a no-op (idempotence);
// pointers compare by identity, callbacks are incomparable and always
// count as new.
template <typename V>
bool SameEntry(const V* a, const V* b) {
  return a == b;
}
inline bool SameEntry(const std::function<double()>&,
                      const std::function<double()>&) {
  return false;
}

// Transparent insert-or-assign: materializes the key only when the name
// is genuinely new. Returns whether the map changed.
template <typename Map, typename V>
bool Assign(Map* map, std::string_view name, V value) {
  auto it = map->find(name);
  if (it != map->end()) {
    if (SameEntry(it->second, value)) return false;
    it->second = std::move(value);
    return true;
  }
  map->emplace(std::string(name), std::move(value));
  return true;
}

}  // namespace

void MetricsRegistry::RegisterCounter(std::string_view name,
                                      const sim::Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&gauges_, name);
  changed |= EraseName(&tw_gauges_, name);
  changed |= EraseName(&histograms_, name);
  changed |= EraseName(&streaming_, name);
  changed |= EraseName(&callbacks_, name);
  changed |= Assign(&counters_, name, c);
  if (changed) ++version_;
}

void MetricsRegistry::RegisterGauge(std::string_view name,
                                    const sim::Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&counters_, name);
  changed |= EraseName(&tw_gauges_, name);
  changed |= EraseName(&histograms_, name);
  changed |= EraseName(&streaming_, name);
  changed |= EraseName(&callbacks_, name);
  changed |= Assign(&gauges_, name, g);
  if (changed) ++version_;
}

void MetricsRegistry::RegisterTimeWeightedGauge(
    std::string_view name, const sim::TimeWeightedGauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&counters_, name);
  changed |= EraseName(&gauges_, name);
  changed |= EraseName(&histograms_, name);
  changed |= EraseName(&streaming_, name);
  changed |= EraseName(&callbacks_, name);
  changed |= Assign(&tw_gauges_, name, g);
  if (changed) ++version_;
}

void MetricsRegistry::RegisterHistogram(std::string_view name,
                                        const sim::Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&counters_, name);
  changed |= EraseName(&gauges_, name);
  changed |= EraseName(&tw_gauges_, name);
  changed |= EraseName(&streaming_, name);
  changed |= EraseName(&callbacks_, name);
  changed |= Assign(&histograms_, name, h);
  if (changed) ++version_;
}

void MetricsRegistry::RegisterStreamingHistogram(
    std::string_view name, const sim::StreamingHistogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&counters_, name);
  changed |= EraseName(&gauges_, name);
  changed |= EraseName(&tw_gauges_, name);
  changed |= EraseName(&histograms_, name);
  changed |= EraseName(&callbacks_, name);
  changed |= Assign(&streaming_, name, h);
  if (changed) ++version_;
}

void MetricsRegistry::RegisterCallback(std::string_view name,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = EraseName(&counters_, name);
  changed |= EraseName(&gauges_, name);
  changed |= EraseName(&tw_gauges_, name);
  changed |= EraseName(&histograms_, name);
  changed |= EraseName(&streaming_, name);
  changed |= Assign(&callbacks_, name, std::move(fn));
  if (changed) ++version_;
}

void MetricsRegistry::UnregisterPrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = ErasePrefix(&counters_, prefix);
  changed |= ErasePrefix(&gauges_, prefix);
  changed |= ErasePrefix(&tw_gauges_, prefix);
  changed |= ErasePrefix(&histograms_, prefix);
  changed |= ErasePrefix(&streaming_, prefix);
  changed |= ErasePrefix(&callbacks_, prefix);
  if (changed) ++version_;
}

MetricsSnapshot MetricsRegistry::Snapshot(sim::Time now) const {
  MetricsSnapshot snap;
  snap.at = now;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.values[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.values[name] = static_cast<double>(g->value());
    snap.values[name + "/max"] = static_cast<double>(g->max());
  }
  for (const auto& [name, g] : tw_gauges_) {
    snap.values[name] = g->value();
    snap.values[name + "/avg"] = g->Average(now);
    snap.values[name + "/max"] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    snap.values[name + "/count"] = static_cast<double>(h->count());
    snap.values[name + "/mean"] = h->Mean();
    snap.values[name + "/p50"] = h->Percentile(0.5);
    snap.values[name + "/p95"] = h->Percentile(0.95);
    snap.values[name + "/p99"] = h->Percentile(0.99);
    snap.values[name + "/max"] = h->Max();
  }
  for (const auto& [name, h] : streaming_) {
    snap.values[name + "/count"] = static_cast<double>(h->count());
    snap.values[name + "/p50"] = h->Percentile(0.5);
    snap.values[name + "/p95"] = h->Percentile(0.95);
    snap.values[name + "/p99"] = h->Percentile(0.99);
    snap.values[name + "/max"] = static_cast<double>(h->max());
  }
  for (const auto& [name, fn] : callbacks_) {
    snap.values[name] = fn();
  }
  return snap;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) names.push_back(name);
  for (const auto& [name, g] : gauges_) names.push_back(name);
  for (const auto& [name, g] : tw_gauges_) names.push_back(name);
  for (const auto& [name, h] : histograms_) names.push_back(name);
  for (const auto& [name, h] : streaming_) names.push_back(name);
  for (const auto& [name, fn] : callbacks_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<MetricRef> MetricsRegistry::Enumerate() const {
  std::vector<MetricRef> refs;
  std::lock_guard<std::mutex> lock(mu_);
  refs.reserve(counters_.size() + gauges_.size() + tw_gauges_.size() +
               histograms_.size() + streaming_.size() + callbacks_.size());
  for (const auto& [name, c] : counters_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kCounter;
    ref.counter = c;
    refs.push_back(std::move(ref));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kGauge;
    ref.gauge = g;
    refs.push_back(std::move(ref));
  }
  for (const auto& [name, g] : tw_gauges_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kTimeWeightedGauge;
    ref.tw_gauge = g;
    refs.push_back(std::move(ref));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kHistogram;
    ref.histogram = h;
    refs.push_back(std::move(ref));
  }
  for (const auto& [name, h] : streaming_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kStreamingHistogram;
    ref.streaming = h;
    refs.push_back(std::move(ref));
  }
  for (const auto& [name, fn] : callbacks_) {
    MetricRef ref;
    ref.name = name;
    ref.kind = MetricKind::kCallback;
    ref.callback = fn;
    refs.push_back(std::move(ref));
  }
  std::sort(refs.begin(), refs.end(),
            [](const MetricRef& a, const MetricRef& b) {
              return a.name < b.name;
            });
  return refs;
}

}  // namespace dlog::obs
