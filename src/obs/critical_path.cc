#include "obs/critical_path.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace dlog::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

void AppendMicros(std::string* out, sim::Time t) {
  AppendF(out, "%" PRIu64 ".%03u", t / 1000,
          static_cast<unsigned>(t % 1000));
}

/// Children of each span, in id (creation) order — spans() is already
/// id-ordered, so a single pass builds ordered child lists.
using ChildIndex = std::map<SpanId, std::vector<const Span*>>;

/// The child that determined `parent`'s completion: latest-ending closed
/// child with end <= parent.end (a child that outlived its parent did not
/// gate it). Ties break toward the earlier-created span. Null when no
/// child qualifies (the parent itself is the frontier).
const Span* CriticalChild(const Span& parent, const ChildIndex& children) {
  auto it = children.find(parent.id);
  if (it == children.end()) return nullptr;
  const Span* best = nullptr;
  for (const Span* child : it->second) {
    if (child->open || child->end > parent.end) continue;
    if (best == nullptr || child->end > best->end) best = child;
  }
  return best;
}

}  // namespace

std::vector<CriticalPath> ExtractCriticalPaths(const Tracer& tracer) {
  // Group spans per trace; build child lists.
  std::map<TraceId, std::vector<const Span*>> by_trace;
  ChildIndex children;
  for (const Span& span : tracer.spans()) {
    by_trace[span.trace].push_back(&span);
    if (span.parent != kNoSpan) children[span.parent].push_back(&span);
  }

  std::vector<CriticalPath> paths;
  for (const auto& [trace, spans] : by_trace) {
    for (const Span* root : spans) {
      if (root->parent != kNoSpan || root->open) continue;
      CriticalPath path;
      path.trace = trace;
      path.start = root->start;
      path.end = root->end;

      // Descend along latest-finishing closed children.
      std::set<SpanId> on_path;
      const Span* cur = root;
      while (cur != nullptr) {
        on_path.insert(cur->id);
        const Span* next = CriticalChild(*cur, children);
        PathStep step;
        step.span = cur->id;
        step.name = cur->name;
        step.node = cur->node;
        step.start = cur->start;
        step.end = cur->end;
        step.self = next != nullptr ? cur->end - next->end
                                    : cur->end - cur->start;
        path.steps.push_back(step);
        cur = next;
      }

      // Every other span under this root, with slack against the sibling
      // that carried the path through its parent.
      for (const Span* span : spans) {
        if (span == root || on_path.count(span->id) > 0) continue;
        // Walk up to check membership in this root's subtree (per-trace
        // span counts are small; quadratic is fine and deterministic).
        const Span* p = span;
        bool under_root = false;
        while (p->parent != kNoSpan) {
          if (p->parent == root->id || on_path.count(p->parent) > 0) {
            under_root = true;
            break;
          }
          bool found = false;
          for (const Span* cand : spans) {
            if (cand->id == p->parent) {
              p = cand;
              found = true;
              break;
            }
          }
          if (!found) break;
        }
        if (!under_root) continue;
        SlackEntry entry;
        entry.span = span->id;
        entry.name = span->name;
        entry.node = span->node;
        if (!span->open) {
          // Find this span's parent and the end that gated it.
          const Span* parent = nullptr;
          for (const Span* cand : spans) {
            if (cand->id == span->parent) {
              parent = cand;
              break;
            }
          }
          if (parent != nullptr) {
            const Span* gate = CriticalChild(*parent, children);
            const sim::Time gate_end =
                gate != nullptr ? gate->end : parent->end;
            entry.slack =
                gate_end > span->end ? gate_end - span->end : 0;
          }
        }
        path.off_path.push_back(entry);
      }
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

std::string CriticalPathText(const std::vector<CriticalPath>& paths) {
  std::string out;
  for (const CriticalPath& path : paths) {
    AppendF(&out, "trace=%" PRIu64 " [", path.trace);
    AppendMicros(&out, path.start);
    out += "..";
    AppendMicros(&out, path.end);
    out += "]us total=";
    AppendMicros(&out, path.end - path.start);
    out += "us\n";
    for (const PathStep& step : path.steps) {
      AppendF(&out, "  > %-10s %-12s self=", step.node.c_str(),
              step.name.c_str());
      AppendMicros(&out, step.self);
      out += "us [";
      AppendMicros(&out, step.start);
      out += "..";
      AppendMicros(&out, step.end);
      out += "]\n";
    }
    for (const SlackEntry& entry : path.off_path) {
      AppendF(&out, "  ~ %-10s %-12s slack=+", entry.node.c_str(),
              entry.name.c_str());
      AppendMicros(&out, entry.slack);
      out += "us\n";
    }
  }
  return out;
}

}  // namespace dlog::obs
