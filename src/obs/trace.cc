#include "obs/trace.h"

#include "obs/flight.h"

namespace dlog::obs {

// Span ids are minted only when a span is recorded, so id k always sits
// at spans_[k - 1].
Span* Tracer::Find(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void Tracer::SetFlightRecorder(FlightRecorder* recorder) {
  recorder_ = recorder;
}

SpanContext Tracer::Admit(Span span) {
  const SpanContext ctx{span.trace, span.id};
  if (enabled_) {
    spans_.push_back(std::move(span));
    return ctx;
  }
  // Ring mode: hold the open span aside until EndSpan routes it into the
  // recorder. Evict the oldest past the bound — a span whose packet the
  // network dropped never closes and must not leak.
  if (!open_spans_.empty() &&
      open_spans_.size() >= recorder_->config().max_open_spans) {
    open_spans_.erase(open_spans_.begin());
  }
  open_spans_.emplace(ctx.span, std::move(span));
  return ctx;
}

SpanContext Tracer::StartTrace(std::string_view name,
                               std::string_view node) {
  if (!active()) return {};
  Span span;
  span.trace = next_trace_++;
  span.id = next_span_++;
  span.name = std::string(name);
  span.node = std::string(node);
  span.start = sim_->Now();
  return Admit(std::move(span));
}

SpanContext Tracer::StartSpan(std::string_view name,
                              std::string_view node, SpanContext parent) {
  if (!active() || !parent.valid()) return {};
  Span span;
  span.trace = parent.trace;
  span.id = next_span_++;
  span.parent = parent.span;
  span.name = std::string(name);
  span.node = std::string(node);
  span.start = sim_->Now();
  return Admit(std::move(span));
}

SpanContext Tracer::Instant(std::string_view name, std::string_view node,
                            SpanContext parent) {
  SpanContext ctx = StartSpan(name, node, parent);
  EndSpan(ctx);
  return ctx;
}

void Tracer::AddArg(SpanContext ctx, std::string_view key,
                    uint64_t value) {
  if (!ctx.valid()) return;
  if (enabled_) {
    Span* span = Find(ctx.span);
    if (span != nullptr) span->args.emplace_back(key, value);
    return;
  }
  auto it = open_spans_.find(ctx.span);
  if (it != open_spans_.end()) it->second.args.emplace_back(key, value);
}

void Tracer::EndSpan(SpanContext ctx) {
  if (!ctx.valid()) return;
  if (enabled_) {
    Span* span = Find(ctx.span);
    if (span == nullptr || !span->open) return;
    span->end = sim_->Now();
    span->open = false;
    // Full tracing with a recorder attached still feeds the rings, so
    // crash dumps work in traced runs too.
    if (recorder_ != nullptr) recorder_->Record(*span);
    return;
  }
  auto it = open_spans_.find(ctx.span);
  if (it == open_spans_.end()) return;  // closed already, or evicted
  Span span = std::move(it->second);
  open_spans_.erase(it);
  span.end = sim_->Now();
  span.open = false;
  recorder_->Record(std::move(span));
}

void Tracer::Clear() {
  spans_.clear();
  open_spans_.clear();
  context_stack_.clear();
  next_trace_ = 1;
  next_span_ = 1;
}

}  // namespace dlog::obs
