#include "obs/trace.h"

namespace dlog::obs {

// Span ids are minted only when a span is recorded, so id k always sits
// at spans_[k - 1].
Span* Tracer::Find(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

SpanContext Tracer::StartTrace(std::string_view name,
                               std::string_view node) {
  if (!enabled_) return {};
  Span span;
  span.trace = next_trace_++;
  span.id = next_span_++;
  span.name = std::string(name);
  span.node = std::string(node);
  span.start = sim_->Now();
  spans_.push_back(std::move(span));
  return {spans_.back().trace, spans_.back().id};
}

SpanContext Tracer::StartSpan(std::string_view name,
                              std::string_view node, SpanContext parent) {
  if (!enabled_ || !parent.valid()) return {};
  Span span;
  span.trace = parent.trace;
  span.id = next_span_++;
  span.parent = parent.span;
  span.name = std::string(name);
  span.node = std::string(node);
  span.start = sim_->Now();
  spans_.push_back(std::move(span));
  return {parent.trace, spans_.back().id};
}

SpanContext Tracer::Instant(std::string_view name, std::string_view node,
                            SpanContext parent) {
  SpanContext ctx = StartSpan(name, node, parent);
  EndSpan(ctx);
  return ctx;
}

void Tracer::AddArg(SpanContext ctx, std::string_view key,
                    uint64_t value) {
  if (!ctx.valid()) return;
  Span* span = Find(ctx.span);
  if (span != nullptr) span->args.emplace_back(key, value);
}

void Tracer::EndSpan(SpanContext ctx) {
  if (!ctx.valid()) return;
  Span* span = Find(ctx.span);
  if (span == nullptr || !span->open) return;
  span->end = sim_->Now();
  span->open = false;
}

void Tracer::Clear() {
  spans_.clear();
  context_stack_.clear();
  next_trace_ = 1;
  next_span_ = 1;
}

}  // namespace dlog::obs
