#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace dlog::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

/// Microsecond timestamps with three decimals keep the full nanosecond
/// resolution of the simulator while matching the trace-event convention
/// (ts/dur are in microseconds).
void AppendMicros(std::string* out, sim::Time t) {
  AppendF(out, "%" PRIu64 ".%03u", t / 1000,
          static_cast<unsigned>(t % 1000));
}

/// Span names/nodes contain no JSON-special characters by construction,
/// but escape defensively so a future name cannot corrupt the export.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Stable span-name -> Chrome reserved color-name mapping. Unknown names
/// share a neutral color; the mapping is what gives each attribution
/// component its own lane color in the viewer.
const char* ColorFor(const std::string& name) {
  if (name == "txn") return "good";
  if (name == "commit") return "rail_response";
  if (name == "ForceLog") return "thread_state_running";
  if (name == "wal.group") return "rail_animation";
  if (name == "wire.send") return "thread_state_iowait";
  if (name == "track.write") return "rail_load";
  if (name == "nvram.buffer") return "thread_state_runnable";
  if (name == "force.ack") return "cq_build_passed";
  return "generic_work";
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  // Stable node -> tid assignment in first-appearance order.
  std::map<std::string, int> tids;
  std::string events;
  for (const Span& span : tracer.spans()) {
    tids.try_emplace(span.node, static_cast<int>(tids.size()) + 1);
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [node, tid] : tids) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"%s\"}}",
            tid, JsonEscape(node).c_str());
  }
  for (const Span& span : tracer.spans()) {
    const sim::Time end = span.open ? span.start : span.end;
    if (!first) out += ",";
    first = false;
    AppendF(&out, "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"ts\":",
            tids[span.node], JsonEscape(span.name).c_str());
    AppendMicros(&out, span.start);
    out += ",\"dur\":";
    AppendMicros(&out, end - span.start);
    AppendF(&out,
            ",\"cat\":\"dlog\",\"args\":{\"trace\":%" PRIu64
            ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64,
            span.trace, span.id, span.parent);
    if (span.open) out += ",\"open\":1";
    for (const auto& [key, value] : span.args) {
      AppendF(&out, ",\"%s\":%" PRIu64, JsonEscape(key).c_str(), value);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

std::string ChromeTraceJsonColored(const Tracer& tracer,
                                   const std::vector<CriticalPath>& paths) {
  std::map<std::string, int> tids;
  for (const Span& span : tracer.spans()) {
    tids.try_emplace(span.node, static_cast<int>(tids.size()) + 1);
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendF(&out,
          "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
          "\"args\":{\"name\":\"critical-path\"}}");
  first = false;
  for (const auto& [node, tid] : tids) {
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"%s\"}}",
            tid, JsonEscape(node).c_str());
  }
  for (const Span& span : tracer.spans()) {
    const sim::Time end = span.open ? span.start : span.end;
    if (!first) out += ",";
    first = false;
    AppendF(&out,
            "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
            "\"cname\":\"%s\",\"ts\":",
            tids[span.node], JsonEscape(span.name).c_str(),
            ColorFor(span.name));
    AppendMicros(&out, span.start);
    out += ",\"dur\":";
    AppendMicros(&out, end - span.start);
    AppendF(&out,
            ",\"cat\":\"dlog\",\"args\":{\"trace\":%" PRIu64
            ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64,
            span.trace, span.id, span.parent);
    if (span.open) out += ",\"open\":1";
    for (const auto& [key, value] : span.args) {
      AppendF(&out, ",\"%s\":%" PRIu64, JsonEscape(key).c_str(), value);
    }
    out += "}}";
  }
  // The gating chain, re-emitted contiguously in its own lane.
  for (const CriticalPath& path : paths) {
    for (const PathStep& step : path.steps) {
      if (!first) out += ",";
      first = false;
      AppendF(&out,
              "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"%s\","
              "\"cname\":\"%s\",\"ts\":",
              JsonEscape(step.name).c_str(), ColorFor(step.name));
      AppendMicros(&out, step.start);
      out += ",\"dur\":";
      AppendMicros(&out, step.end - step.start);
      AppendF(&out,
              ",\"cat\":\"dlog.critical\",\"args\":{\"trace\":%" PRIu64
              ",\"span\":%" PRIu64 ",\"self_ns\":%" PRIu64 "}}",
              path.trace, step.span, step.self);
    }
  }
  out += "]}\n";
  return out;
}

std::string TextTimeline(const Tracer& tracer) {
  std::string out;
  for (const Span& span : tracer.spans()) {
    const sim::Time end = span.open ? span.start : span.end;
    out += "[";
    AppendMicros(&out, span.start);
    out += "..";
    AppendMicros(&out, end);
    AppendF(&out, "] %s %s trace=%" PRIu64 " span=%" PRIu64, span.node.c_str(),
            span.name.c_str(), span.trace, span.id);
    if (span.parent != kNoSpan) AppendF(&out, " parent=%" PRIu64, span.parent);
    if (span.open) out += " open";
    for (const auto& [key, value] : span.args) {
      AppendF(&out, " %s=%" PRIu64, key.c_str(), value);
    }
    out += "\n";
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Unavailable("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::OK();
}

}  // namespace dlog::obs
