#ifndef DLOG_OBS_EXPORT_H_
#define DLOG_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/critical_path.h"
#include "obs/trace.h"

namespace dlog::obs {

/// Renders the recorded span stream as Chrome trace-event JSON
/// (load in chrome://tracing or https://ui.perfetto.dev). Each simulated
/// node becomes a named thread; spans are complete ("X") events with
/// trace/span/parent ids in args. The output is a pure function of the
/// span stream, so a (config, seed) pair exports byte-identical JSON.
/// Spans still open at export time are emitted with zero duration and
/// "open":1 (e.g. a wire.send whose packet the network dropped).
std::string ChromeTraceJson(const Tracer& tracer);

/// ChromeTraceJson plus profiler decoration: every span gets a stable
/// per-component color ("cname") keyed by its name, and each extracted
/// critical path is re-emitted as a synthetic "critical-path" lane
/// (tid 0) so the gating chain reads as one contiguous colored row in
/// the trace viewer. Also a pure function of its inputs (byte-identical
/// per config/seed).
std::string ChromeTraceJsonColored(const Tracer& tracer,
                                   const std::vector<CriticalPath>& paths);

/// A compact fixed-point text rendering for tests and terminal diffing:
/// one line per span, in creation order:
///   [start_us..end_us] node name trace=T span=S parent=P k=v ...
std::string TextTimeline(const Tracer& tracer);

/// Writes `content` to `path` (0644), overwriting.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace dlog::obs

#endif  // DLOG_OBS_EXPORT_H_
