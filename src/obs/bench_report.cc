#include "obs/bench_report.h"

#include <cstdio>

#include "obs/export.h"

namespace dlog::obs {
namespace {

/// %.6g never emits JSON-invalid text for finite doubles and is stable
/// across platforms for the value ranges we report.
void AppendNumber(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void AppendString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

}  // namespace

void BenchReport::BeginRow() { rows_.emplace_back(); }

void BenchReport::SetConfig(const std::string& key, double value) {
  if (rows_.empty()) BeginRow();
  rows_.back().config_num[key] = value;
}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  if (rows_.empty()) BeginRow();
  rows_.back().config_text[key] = value;
}

void BenchReport::SetMetric(const std::string& key, double value) {
  if (rows_.empty()) BeginRow();
  rows_.back().metrics[key] = value;
}

void BenchReport::AddSnapshot(const std::string& prefix,
                              const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.values) {
    SetMetric(prefix + name, value);
  }
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"experiment\":";
  AppendString(&out, experiment_);
  out += ",\"rows\":[";
  bool first_row = true;
  for (const Row& row : rows_) {
    if (!first_row) out += ",";
    first_row = false;
    out += "{\"config\":{";
    bool first = true;
    // Text and numeric config keys merged in one sorted object; the two
    // maps are disjoint by convention (a key is either a label or a knob).
    auto text_it = row.config_text.begin();
    auto num_it = row.config_num.begin();
    while (text_it != row.config_text.end() || num_it != row.config_num.end()) {
      const bool take_text =
          num_it == row.config_num.end() ||
          (text_it != row.config_text.end() && text_it->first < num_it->first);
      if (!first) out += ",";
      first = false;
      if (take_text) {
        AppendString(&out, text_it->first);
        out += ":";
        AppendString(&out, text_it->second);
        ++text_it;
      } else {
        AppendString(&out, num_it->first);
        out += ":";
        AppendNumber(&out, num_it->second);
        ++num_it;
      }
    }
    out += "},\"metrics\":{";
    first = true;
    for (const auto& [key, value] : row.metrics) {
      if (!first) out += ",";
      first = false;
      AppendString(&out, key);
      out += ":";
      AppendNumber(&out, value);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

Status BenchReport::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

}  // namespace dlog::obs
