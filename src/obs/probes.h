#ifndef DLOG_OBS_PROBES_H_
#define DLOG_OBS_PROBES_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace dlog::obs {

/// Trace-driven invariant checkers. Each probe scans the recorded span
/// stream after (or during) a run and returns a human-readable violation
/// string per broken invariant; an empty vector means the invariant held.
/// Probes are pure functions of the span stream, so they compose with the
/// determinism guarantee: a failing interleaving can be replayed exactly.

/// Paper Section 2.3 durability rule: a client must not complete a
/// ForceLog (span "ForceLog" closing) before at least `quorum` servers
/// have durably accepted it (one "force.ack" instant per server in the
/// same trace, at or before the close time). Open ForceLog spans (client
/// still waiting, or crashed) are not violations.
std::vector<std::string> CheckForceAckQuorum(const Tracer& tracer, int quorum);

/// Log-order rule: on each server, the record stream of one client must
/// advance monotonically — "nvram.buffer" instants (args client/lsn/epoch)
/// per (server node, client) must have non-decreasing epoch, and strictly
/// increasing lsn within an epoch. Re-sends after a crash arrive under a
/// higher epoch and may legitimately repeat lsns.
std::vector<std::string> CheckLsnMonotonic(const Tracer& tracer);

/// Tree rule: every non-root span's parent id must reference an
/// earlier-recorded span of the same trace. Guards the exporters'
/// assumption that spans form connected per-trace trees.
std::vector<std::string> CheckSpanTreeConnected(const Tracer& tracer);

/// Runs every probe above; `quorum` feeds CheckForceAckQuorum.
std::vector<std::string> RunAllProbes(const Tracer& tracer, int quorum);

}  // namespace dlog::obs

#endif  // DLOG_OBS_PROBES_H_
