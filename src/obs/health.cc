#include "obs/health.h"

#include <cmath>
#include <cstdio>

namespace dlog::obs {

Status HealthConfig::Validate() const {
  if (!enabled) return Status::OK();
  if (imbalance_cv_threshold < 0) {
    return Status::InvalidArgument("imbalance_cv_threshold must be >= 0");
  }
  if (imbalance_min_mean_util < 0) {
    return Status::InvalidArgument("imbalance_min_mean_util must be >= 0");
  }
  if (slo_force_p99_us < 0 || shed_rate_per_sec < 0) {
    return Status::InvalidArgument("rule thresholds must be >= 0");
  }
  if (starvation_windows < 0) {
    return Status::InvalidArgument("starvation_windows must be >= 0");
  }
  if (fire_windows < 1 || clear_windows < 1) {
    return Status::InvalidArgument("hysteresis windows must be >= 1");
  }
  return Status::OK();
}

HealthMonitor::HealthMonitor(const HealthConfig& config,
                             const TimeSeriesCollector* collector)
    : config_(config), collector_(collector) {
  DLOG_CHECK_OK(config.Validate());
}

void HealthMonitor::AddServerNode(const std::string& name) {
  servers_.push_back(name);
}

void HealthMonitor::AddClientNode(const std::string& name) {
  clients_.push_back(name);
}

void HealthMonitor::RegisterMetrics(MetricsRegistry* registry) {
  registry->RegisterCounter("health/alerts_fired", &alerts_fired_);
  registry->RegisterCounter("health/alerts_cleared", &alerts_cleared_);
  registry->RegisterCounter("health/imbalance_fired", &imbalance_fired_);
  registry->RegisterCounter("health/slo_burn_fired", &slo_burn_fired_);
  registry->RegisterCounter("health/shed_spike_fired", &shed_spike_fired_);
  registry->RegisterCounter("health/starvation_fired", &starvation_fired_);
  registry->RegisterGauge("health/active_alerts", &active_alerts_);
}

void HealthMonitor::Judge(const std::string& rule,
                          const std::string& subject, bool breach,
                          double value, int fire_windows,
                          int clear_windows, uint64_t window,
                          sim::Time at) {
  RuleState& st = states_[rule + " " + subject];
  if (breach) {
    ++st.breach_streak;
    st.quiet_streak = 0;
  } else {
    ++st.quiet_streak;
    st.breach_streak = 0;
  }
  bool fired;
  if (!st.active && st.breach_streak >= fire_windows) {
    st.active = true;
    fired = true;
  } else if (st.active && st.quiet_streak >= clear_windows) {
    st.active = false;
    fired = false;
  } else {
    return;
  }
  HealthAlert alert;
  alert.window = window;
  alert.at = at;
  alert.rule = rule;
  alert.subject = subject;
  alert.fired = fired;
  alert.value = value;
  alerts_.push_back(alert);
  if (fired) {
    alerts_fired_.Increment();
    active_alerts_.Add(1);
    if (rule == "imbalance") imbalance_fired_.Increment();
    if (rule == "slo_burn") slo_burn_fired_.Increment();
    if (rule == "shed_spike") shed_spike_fired_.Increment();
    if (rule == "starvation") starvation_fired_.Increment();
  } else {
    alerts_cleared_.Increment();
    active_alerts_.Add(-1);
  }
  if (tracer_ != nullptr && tracer_->active()) {
    SpanContext ctx = tracer_->StartTrace(
        fired ? "alert." + rule : "alert." + rule + ".clear", "health");
    tracer_->AddArg(ctx, "window", window);
    tracer_->EndSpan(ctx);
  }
}

void HealthMonitor::Evaluate(sim::Time window_end) {
  const uint64_t w = collector_->windows();
  if (w == 0) return;
  const double interval_ns =
      static_cast<double>(collector_->interval());

  // --- Cross-server utilization imbalance (coefficient of variation of
  // windowed CPU busy fraction). Quiet below the mean-utilization floor:
  // an idle cluster is trivially "imbalanced".
  {
    double cv = 0.0;
    bool breach = false;
    if (!servers_.empty()) {
      double sum = 0.0;
      std::vector<double> utils;
      utils.reserve(servers_.size());
      for (const std::string& name : servers_) {
        const double util =
            collector_->At(name + "/cpu/busy_ns", w) / interval_ns;
        utils.push_back(util);
        sum += util;
      }
      const double mean = sum / static_cast<double>(utils.size());
      if (mean >= config_.imbalance_min_mean_util && mean > 0) {
        double var = 0.0;
        for (double u : utils) var += (u - mean) * (u - mean);
        var /= static_cast<double>(utils.size());
        cv = std::sqrt(var) / mean;
        breach = cv > config_.imbalance_cv_threshold;
      }
    }
    imbalance_cv_.push_back(cv);
    Judge("imbalance", "servers", breach, cv, config_.fire_windows,
          config_.clear_windows, w, window_end);
  }

  // --- SLO burn on the cluster-wide windowed ForceLog p99.
  if (config_.slo_force_p99_us > 0) {
    const double count =
        collector_->At("cluster/log/force_latency_us/count", w);
    const double p99 =
        collector_->At("cluster/log/force_latency_us/p99", w);
    const bool breach =
        count >= static_cast<double>(config_.slo_min_forces) &&
        p99 > config_.slo_force_p99_us;
    Judge("slo_burn", "cluster", breach, p99, config_.fire_windows,
          config_.clear_windows, w, window_end);
  }

  // --- Shed-rate spike (admission control rejecting work).
  if (config_.shed_rate_per_sec > 0) {
    double shed = 0.0;
    for (const std::string& name : servers_) {
      shed += collector_->At(name + "/flow/shed", w);
    }
    const double rate = shed / (interval_ns / 1e9);
    Judge("shed_spike", "cluster", rate > config_.shed_rate_per_sec, rate,
          config_.fire_windows, config_.clear_windows, w, window_end);
  }

  // --- Per-client stream starvation: pending records but no force
  // completions, for starvation_windows consecutive windows.
  if (config_.starvation_windows > 0) {
    for (const std::string& name : clients_) {
      const double pending =
          collector_->At(name + "/log/pending_records", w);
      const double progress =
          collector_->At(name + "/log/forces_completed", w);
      Judge("starvation", name, pending > 0 && progress <= 0, pending,
            config_.starvation_windows, config_.clear_windows, w,
            window_end);
    }
  }
}

size_t HealthMonitor::active_alerts() const {
  size_t n = 0;
  for (const auto& [key, st] : states_) {
    if (st.active) ++n;
  }
  return n;
}

std::vector<std::string> HealthMonitor::ActiveAlerts() const {
  std::vector<std::string> out;
  for (const auto& [key, st] : states_) {
    if (st.active) out.push_back(key);
  }
  return out;
}

std::string AlertsJson(const HealthMonitor& monitor) {
  std::string out = "{\"alerts\":[";
  char buf[96];
  bool first = true;
  for (const HealthAlert& alert : monitor.alerts()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"window\":%llu,\"at\":%llu,",
                  static_cast<unsigned long long>(alert.window),
                  static_cast<unsigned long long>(alert.at));
    out += buf;
    out += "\"rule\":\"";
    out += alert.rule;
    out += "\",\"subject\":\"";
    out += alert.subject;
    std::snprintf(buf, sizeof(buf), "\",\"fired\":%s,\"value\":%.9g}",
                  alert.fired ? "true" : "false", alert.value);
    out += buf;
  }
  out += "]}\n";
  return out;
}

std::string AlertsText(const HealthMonitor& monitor) {
  std::string out;
  char buf[160];
  for (const HealthAlert& alert : monitor.alerts()) {
    std::snprintf(buf, sizeof(buf), "[w%llu %.3fs] %s %s %s (%.4g)\n",
                  static_cast<unsigned long long>(alert.window),
                  sim::DurationToSeconds(alert.at), alert.rule.c_str(),
                  alert.subject.c_str(),
                  alert.fired ? "FIRED" : "cleared", alert.value);
    out += buf;
  }
  return out;
}

}  // namespace dlog::obs
