#ifndef DLOG_OBS_FLIGHT_H_
#define DLOG_OBS_FLIGHT_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace dlog::obs {

struct FlightRecorderConfig {
  /// Completed spans retained per node; older spans are overwritten.
  size_t ring_spans = 256;
  /// Bound on spans that started but have not ended (ring mode keeps
  /// them outside the rings until they close); the oldest are evicted —
  /// a span whose packet the network dropped would otherwise leak.
  size_t max_open_spans = 1024;
};

/// A per-node bounded ring of recently *completed* spans, fed by the
/// Tracer (see Tracer::SetFlightRecorder). Unlike full tracing, memory is
/// bounded however long the run: each node keeps only its last
/// `ring_spans` spans. Chaos crash faults call Dump() at the instant of
/// the fault, freezing the victim's recent history for post-mortem — the
/// "what was this node doing when it died" view an E17-scale run cannot
/// afford full tracing for.
///
/// Serial engine only (validated by the harness): ring contents follow
/// span completion order, which is interleaving-dependent under the
/// parallel engine for the same reason tracing is.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderConfig& config = {})
      : config_(config) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const FlightRecorderConfig& config() const { return config_; }

  /// Appends a completed span to its node's ring.
  void Record(Span span);

  /// Freezes `node`'s current ring contents (oldest first) as a dump.
  /// Dumping a node with no recorded spans still records the (empty)
  /// dump: "this node died having done nothing traced" is itself signal.
  void Dump(std::string_view node, sim::Time at, std::string_view reason);

  struct DumpRecord {
    sim::Time at = 0;
    std::string node;
    std::string reason;
    /// Lifetime total of spans this node had completed at dump time
    /// (>= spans.size(): the ring forgets, the count does not).
    uint64_t spans_recorded = 0;
    std::vector<Span> spans;  // chronological (completion order)
  };

  const std::vector<DumpRecord>& dumps() const { return dumps_; }

  /// Spans currently retained for `node` (0 when unknown).
  size_t RingSize(std::string_view node) const;

  void Clear();

 private:
  struct Ring {
    std::vector<Span> slots;
    size_t next = 0;          // overwrite cursor once full
    uint64_t recorded = 0;    // lifetime completions
  };

  FlightRecorderConfig config_;
  std::map<std::string, Ring, std::less<>> rings_;
  std::vector<DumpRecord> dumps_;
};

/// Deterministic serializations of every dump, for bench artifacts.
std::string FlightDumpsJson(const FlightRecorder& recorder);
std::string FlightDumpsText(const FlightRecorder& recorder);

}  // namespace dlog::obs

#endif  // DLOG_OBS_FLIGHT_H_
