#ifndef DLOG_OBS_CRITICAL_PATH_H_
#define DLOG_OBS_CRITICAL_PATH_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace dlog::obs {

/// Critical-path extraction over the recorded span forest.
///
/// Within one trace the spans form a tree (wire.send children under the
/// force/commit spans, track.write under wire.send, ...). The critical
/// path of a closed root span is the chain of spans that determined its
/// completion time: starting at the root, repeatedly descend into the
/// child that finished last (its end bounds when the parent could close).
/// Every sibling passed over gets a `slack` — how much later it could
/// have finished without delaying the parent — which is the profiler's
/// "where would optimization NOT help" signal.

/// One span on (or adjacent to) a critical path.
struct PathStep {
  SpanId span = kNoSpan;
  std::string name;
  std::string node;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Time this span itself was the completion frontier: its end minus
  /// its on-path child's end (or minus its own start at the leaf). Self
  /// times telescope: they sum to root end minus leaf start.
  sim::Duration self = 0;
};

/// An off-path span with its slack against the on-path sibling.
struct SlackEntry {
  SpanId span = kNoSpan;
  std::string name;
  std::string node;
  /// How much later this span could have ended without moving its
  /// parent's completion (on-path sibling's end minus this span's end).
  sim::Duration slack = 0;
};

struct CriticalPath {
  TraceId trace = kNoTrace;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Root-to-leaf chain of latest-finishing spans.
  std::vector<PathStep> steps;
  /// Closed spans in the tree that are not on the chain, with slack.
  std::vector<SlackEntry> off_path;
};

/// Extracts one CriticalPath per *closed root* span, in root-id order.
/// Open spans (e.g. a wire.send whose packet was lost) never appear on a
/// path — their completion time is unknown — but are listed off-path with
/// zero slack. Instants participate like zero-duration spans. The result
/// is a pure function of the span stream, hence deterministic per
/// (config, seed).
std::vector<CriticalPath> ExtractCriticalPaths(const Tracer& tracer);

/// Fixed-point text table, one block per path:
///   trace=7 [1234.000..5678.000]us total=4444.000us
///     > client-0 txn          self=12.000us  [1234.000..5678.000]
///     > client-0 ForceLog     self=...
///   slack: server-1 wire.send +300.000us ...
std::string CriticalPathText(const std::vector<CriticalPath>& paths);

}  // namespace dlog::obs

#endif  // DLOG_OBS_CRITICAL_PATH_H_
