#include "obs/timeseries.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

namespace dlog::obs {

Status TimeSeriesConfig::Validate() const {
  if (!enabled) return Status::OK();
  if (interval <= 0) {
    return Status::InvalidArgument("telemetry interval must be > 0");
  }
  if (retention_windows < 1) {
    return Status::InvalidArgument("retention_windows must be >= 1");
  }
  if (aggregate_streaming.size() > 32) {
    return Status::InvalidArgument(
        "at most 32 aggregate_streaming suffixes");
  }
  return Status::OK();
}

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

TimeSeriesCollector::TimeSeriesCollector(const TimeSeriesConfig& config,
                                         MetricsRegistry* registry)
    : config_(config), registry_(registry) {
  DLOG_CHECK_OK(config.Validate());
}

void TimeSeriesCollector::Push(const std::string& key, SeriesKind kind,
                               double value) {
  PushTo(EnsureSeries(key, kind), value);
}

void TimeSeriesCollector::PushTo(SeriesData* s, double value) {
  if (s->count == 0) s->first_window = windows_;
  // Gap-fill every window the source skipped (idle windows are not
  // pushed; see the class comment on sparsity): rates/quantiles with
  // zeros, levels with the held previous level.
  if (s->first_window + s->count < windows_) {
    const size_t retention =
        static_cast<size_t>(config_.retention_windows);
    const double gap =
        s->kind == SeriesKind::kLevel && s->count > 0
            ? s->values[(s->count - 1) % retention]
            : 0.0;
    while (s->first_window + s->count < windows_) Append(s, gap);
  }
  Append(s, value);
}

void TimeSeriesCollector::Append(SeriesData* s, double value) {
  const size_t retention = static_cast<size_t>(config_.retention_windows);
  if (s->values.size() < retention) {
    s->values.push_back(value);
  } else {
    s->values[s->count % retention] = value;
  }
  ++s->count;
}

TimeSeriesCollector::SeriesData* TimeSeriesCollector::EnsureSeries(
    const std::string& key, SeriesKind kind) {
  auto [it, inserted] = series_index_.try_emplace(key, series_store_.size());
  if (inserted) series_store_.emplace_back();
  SeriesData& s = series_store_[it->second];
  if (s.count == 0) s.kind = kind;
  return &s;
}

double* TimeSeriesCollector::EnsurePrevValue(const std::string& key) {
  auto [it, inserted] =
      prev_value_index_.try_emplace(key, prev_value_store_.size());
  if (inserted) prev_value_store_.push_back(0.0);
  return &prev_value_store_[it->second];
}

TimeSeriesCollector::StreamPrev* TimeSeriesCollector::EnsurePrevStream(
    const std::string& key) {
  auto [it, inserted] =
      prev_stream_index_.try_emplace(key, prev_stream_store_.size());
  if (inserted) prev_stream_store_.emplace_back();
  return &prev_stream_store_[it->second];
}

void TimeSeriesCollector::Rebuild() {
  refs_ = registry_->Enumerate();
  if (aggregates_.empty()) {
    for (const std::string& suffix : config_.aggregate_streaming) {
      Aggregate agg;
      agg.suffix = suffix;
      const std::string base = "cluster/" + suffix;
      agg.p50 = EnsureSeries(base + "/p50", SeriesKind::kQuantile);
      agg.p99 = EnsureSeries(base + "/p99", SeriesKind::kQuantile);
      agg.cnt = EnsureSeries(base + "/count", SeriesKind::kRate);
      aggregates_.push_back(std::move(agg));
    }
  }
  counter_slots_.clear();
  gauge_slots_.clear();
  tw_slots_.clear();
  callback_slots_.clear();
  stream_slots_.clear();
  for (MetricRef& ref : refs_) {
    bool excluded = false;
    for (const std::string& prefix : config_.exclude_prefixes) {
      if (ref.name.compare(0, prefix.size(), prefix) == 0) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    switch (ref.kind) {
      case MetricKind::kCounter:
        counter_slots_.push_back({ref.counter,
                                  EnsurePrevValue(ref.name),
                                  EnsureSeries(ref.name, SeriesKind::kRate)});
        break;
      case MetricKind::kGauge:
        gauge_slots_.push_back(
            {ref.gauge, EnsurePrevValue(ref.name),
             EnsureSeries(ref.name, SeriesKind::kLevel)});
        break;
      case MetricKind::kTimeWeightedGauge:
        tw_slots_.push_back(
            {ref.tw_gauge, EnsurePrevValue(ref.name),
             EnsureSeries(ref.name, SeriesKind::kLevel)});
        break;
      case MetricKind::kCallback:
        callback_slots_.push_back(
            {&ref.callback, EnsurePrevValue(ref.name),
             EnsureSeries(ref.name, SeriesKind::kLevel)});
        break;
      case MetricKind::kHistogram:
        // Exact sample-retaining histograms are end-of-run artifacts;
        // their windowed counterpart is the streaming histogram.
        break;
      case MetricKind::kStreamingHistogram: {
        StreamSlot slot;
        slot.src = ref.streaming;
        slot.prev = EnsurePrevStream(ref.name);
        slot.p50 = EnsureSeries(ref.name + "/p50", SeriesKind::kQuantile);
        slot.p99 = EnsureSeries(ref.name + "/p99", SeriesKind::kQuantile);
        slot.cnt = EnsureSeries(ref.name + "/count", SeriesKind::kRate);
        slot.agg_mask = 0;
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          if (EndsWith(ref.name, aggregates_[a].suffix)) {
            slot.agg_mask |= uint32_t{1} << a;
          }
        }
        stream_slots_.push_back(slot);
        break;
      }
    }
  }
}

void TimeSeriesCollector::Sample(sim::Time window_end) {
  ++windows_;
  const uint64_t version = registry_->version();
  if (version != synced_version_) {
    Rebuild();
    synced_version_ = version;
  }
  const size_t n = sim::StreamingHistogram::kNumBuckets;
  for (Aggregate& agg : aggregates_) {
    if (agg.buckets.size() != n) {
      agg.buckets.assign(n, 0);
    } else {
      // Only last window's occupied range is dirty.
      for (size_t b = agg.lo; b <= agg.hi && b < n; ++b) agg.buckets[b] = 0;
    }
    agg.count = 0;
    agg.lo = n;
    agg.hi = 0;
  }
  for (CounterSlot& slot : counter_slots_) {
    const double v = static_cast<double>(slot.src->value());
    // Unchanged counter: the window delta is zero, which is exactly
    // what a skipped window gap-fills, so don't push at all.
    if (v == *slot.prev) continue;
    // A freshly restarted component re-registers a zeroed counter under
    // the same name; a reading below the previous one means reset, and
    // the window delta is the new absolute value.
    const double delta = v >= *slot.prev ? v - *slot.prev : v;
    *slot.prev = v;
    PushTo(slot.out, delta);
  }
  // Levels are sample-and-hold: an unchanged reading means "still the
  // previous level", exactly what the gap-fill reconstructs, so only
  // changes are pushed.
  for (GaugeSlot& slot : gauge_slots_) {
    const double v = static_cast<double>(slot.src->value());
    if (v == *slot.prev) continue;
    *slot.prev = v;
    PushTo(slot.out, v);
  }
  for (TwGaugeSlot& slot : tw_slots_) {
    const double v = slot.src->value();
    if (v == *slot.prev) continue;
    *slot.prev = v;
    PushTo(slot.out, v);
  }
  for (CallbackSlot& slot : callback_slots_) {
    const double v = (*slot.fn)();
    if (v == *slot.prev) continue;
    *slot.prev = v;
    PushTo(slot.out, v);
  }
  for (StreamSlot& slot : stream_slots_) {
    const uint64_t ccount = slot.src->count();
    StreamPrev& prev = *slot.prev;
    // Untouched stream: count (and so every bucket) matches the
    // previous snapshot — the window's distribution is empty, and the
    // p50/p99/count pushes would all be the gap-fill zero.
    if (ccount == prev.count) continue;
    const std::vector<uint32_t>& cur = slot.src->buckets();
    // Occupied range: within one life, counts only grow, so the
    // previous snapshot's occupied range is contained in this one —
    // scanning [lo, hi] covers every bucket that can have a delta.
    const size_t lo = slot.src->bucket_lo();
    const size_t hi = slot.src->bucket_hi();
    if (delta_scratch_.size() != n) delta_scratch_.assign(n, 0);
    if (prev.buckets.size() != n) prev.buckets.assign(n, 0);
    uint64_t dcount;
    if (ccount < prev.count) {
      // Reset (restart): the whole current contents are this window,
      // and the stale previous snapshot is replaced outright — a
      // leftover count outside the new life's range would otherwise
      // distort deltas if the new histogram grows into it.
      dcount = ccount;
      std::fill(prev.buckets.begin(), prev.buckets.end(), 0);
      for (size_t b = lo; b <= hi; ++b) delta_scratch_[b] = cur[b];
    } else {
      dcount = ccount - prev.count;
      for (size_t b = lo; b <= hi; ++b) {
        delta_scratch_[b] = cur[b] - prev.buckets[b];
      }
    }
    for (size_t b = lo; b <= hi; ++b) prev.buckets[b] = cur[b];
    prev.count = ccount;
    PushTo(slot.p50,
           sim::StreamingHistogram::PercentileFromCounts(
               delta_scratch_.data(), n, dcount, 0.5, lo));
    PushTo(slot.p99,
           sim::StreamingHistogram::PercentileFromCounts(
               delta_scratch_.data(), n, dcount, 0.99, lo));
    PushTo(slot.cnt, static_cast<double>(dcount));
    for (uint32_t mask = slot.agg_mask; mask != 0; mask &= mask - 1) {
      Aggregate& agg =
          aggregates_[static_cast<size_t>(std::countr_zero(mask))];
      for (size_t b = lo; b <= hi; ++b) {
        const uint64_t sum =
            static_cast<uint64_t>(agg.buckets[b]) + delta_scratch_[b];
        agg.buckets[b] =
            sum > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(sum);
      }
      agg.count += dcount;
      if (lo < agg.lo) agg.lo = lo;
      if (hi > agg.hi && lo <= hi) agg.hi = hi;
    }
    // Restore the all-zero scratch invariant for the next stream.
    for (size_t b = lo; b <= hi; ++b) delta_scratch_[b] = 0;
  }
  // The cluster aggregates stay dense (pushed every window, active or
  // not): they are few, and the health rules' denominators read them.
  for (Aggregate& agg : aggregates_) {
    PushTo(agg.p50, sim::StreamingHistogram::PercentileFromCounts(
                        agg.buckets.data(), n, agg.count, 0.5, agg.lo));
    PushTo(agg.p99, sim::StreamingHistogram::PercentileFromCounts(
                        agg.buckets.data(), n, agg.count, 0.99, agg.lo));
    PushTo(agg.cnt, static_cast<double>(agg.count));
  }
  if (profiler_ != nullptr) {
    for (const auto& [resource, timeline] : profiler_->timelines()) {
      Push(resource + "/util_exact", SeriesKind::kLevel,
           timeline.Utilization(last_sample_time_, window_end));
    }
  }
  last_sample_time_ = window_end;
}

double TimeSeriesCollector::At(std::string_view key, uint64_t window,
                               double fallback) const {
  auto it = series_index_.find(key);
  if (it == series_index_.end()) return fallback;
  const SeriesData& s = series_store_[it->second];
  if (s.count == 0 || window < s.first_window) return fallback;
  uint64_t p = window - s.first_window;
  if (p >= s.count) {
    // Past the last sampled change: levels hold, rates/quantiles were
    // skipped as implicit zeros.
    if (s.kind != SeriesKind::kLevel) return fallback;
    p = s.count - 1;
  }
  const uint64_t retention =
      static_cast<uint64_t>(config_.retention_windows);
  if (s.count > retention && p < s.count - retention) return fallback;
  return s.values[p % retention];
}

double TimeSeriesCollector::Latest(std::string_view key,
                                   double fallback) const {
  auto it = series_index_.find(key);
  if (it == series_index_.end()) return fallback;
  const SeriesData& s = series_store_[it->second];
  if (s.count == 0) return fallback;
  return At(key, s.first_window + s.count - 1, fallback);
}

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

const char* KindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kRate:
      return "rate";
    case SeriesKind::kLevel:
      return "level";
    case SeriesKind::kQuantile:
      return "quantile";
  }
  return "?";
}

}  // namespace

std::string TimeSeriesJson(const TimeSeriesCollector& collector) {
  std::string out = "{\"interval_ns\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(collector.interval()));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"windows\":%llu",
                static_cast<unsigned long long>(collector.windows()));
  out += buf;
  out += ",\"series\":{";
  const uint64_t retention =
      static_cast<uint64_t>(collector.config().retention_windows);
  bool first = true;
  for (const auto& [name, index] : collector.series_index()) {
    const TimeSeriesCollector::SeriesData& s = collector.series_at(index);
    if (s.count == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += name;  // metric names contain no JSON-special characters
    out += "\":{\"kind\":\"";
    out += KindName(s.kind);
    const uint64_t retained = s.count < retention ? s.count : retention;
    const uint64_t start = s.count - retained;  // 0-based position
    std::snprintf(buf, sizeof(buf), "\",\"first_window\":%llu,\"values\":[",
                  static_cast<unsigned long long>(s.first_window + start));
    out += buf;
    for (uint64_t p = start; p < s.count; ++p) {
      if (p > start) out.push_back(',');
      AppendDouble(&out, s.values[p % retention]);
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

std::string TimeSeriesCsv(const TimeSeriesCollector& collector) {
  std::string out = "window,key,value\n";
  const uint64_t retention =
      static_cast<uint64_t>(collector.config().retention_windows);
  char buf[40];
  for (const auto& [name, index] : collector.series_index()) {
    const TimeSeriesCollector::SeriesData& s = collector.series_at(index);
    const uint64_t retained = s.count < retention ? s.count : retention;
    for (uint64_t p = s.count - retained; p < s.count; ++p) {
      std::snprintf(buf, sizeof(buf), "%llu,",
                    static_cast<unsigned long long>(s.first_window + p));
      out += buf;
      out += name;
      out.push_back(',');
      AppendDouble(&out, s.values[p % retention]);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace dlog::obs
