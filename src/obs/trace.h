#ifndef DLOG_OBS_TRACE_H_
#define DLOG_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace dlog::obs {

class FlightRecorder;

/// Identifies one causal tree of spans (normally: one transaction).
using TraceId = uint64_t;
/// Identifies one timed stage within a trace.
using SpanId = uint64_t;

constexpr TraceId kNoTrace = 0;
constexpr SpanId kNoSpan = 0;

/// The pair that travels with work as it moves between components (and,
/// for the record stream, across the wire inside message metadata).
struct SpanContext {
  TraceId trace = kNoTrace;
  SpanId span = kNoSpan;

  bool valid() const { return trace != kNoTrace; }
};

/// One timed stage of a trace. `end == start` with `open == false` marks
/// an instant event (a point in time rather than an interval).
struct Span {
  TraceId trace = kNoTrace;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // kNoSpan for trace roots
  std::string name;         // stage name: "txn", "ForceLog", "wire.send", ...
  std::string node;         // emitting node: "client-1", "server-2", ...
  sim::Time start = 0;
  sim::Time end = 0;
  bool open = true;
  /// Deterministically ordered key/value annotations (lsn, upto, ...).
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// Records causal spans against simulated time. Because the simulation is
/// a single-threaded deterministic DES, span ids are simple sequence
/// numbers and a (config, seed) pair always produces the identical span
/// stream — traces are byte-for-byte reproducible.
///
/// Components hold a `Tracer*` that may be null (tracing compiled out of
/// a run); every entry point tolerates null. Context propagation into
/// callees that take no context parameter (e.g. TxnLogger::Force) uses an
/// explicit stack of "current" contexts, scoped via Tracer::Scope.
class Tracer {
 public:
  explicit Tracer(sim::Scheduler* sim) : sim_(sim) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// When disabled, every Start*/Instant returns an invalid context and
  /// records nothing (cheap no-op for long bulk runs).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Attaches a flight recorder. Completed spans are forwarded to it;
  /// with tracing otherwise *disabled* the tracer runs in "ring mode":
  /// spans are recorded and routed to the recorder but never retained in
  /// spans_ — memory stays bounded by the recorder's rings however long
  /// the run. Open spans wait in a bounded side map until they close
  /// (kept per Span::node count-agnostic; the oldest are evicted past
  /// FlightRecorderConfig::max_open_spans). Only flipped while quiescent,
  /// like set_enabled.
  void SetFlightRecorder(FlightRecorder* recorder);

  /// Recording anything at all (fully or into flight rings)?
  bool active() const { return enabled_ || recorder_ != nullptr; }

  // Names and nodes pass as string_views: a call site handing over a
  // literal (or a cached per-node name) materializes a std::string only
  // inside an *enabled* tracer — the disabled hot path allocates
  // nothing, which matters at every-event call frequency.

  /// Opens a new root span, minting a fresh trace id.
  SpanContext StartTrace(std::string_view name, std::string_view node);

  /// Opens a child span of `parent`. An invalid parent yields an invalid
  /// context (the whole subtree is dropped).
  SpanContext StartSpan(std::string_view name, std::string_view node,
                        SpanContext parent);

  /// Records a zero-length event under `parent`.
  SpanContext Instant(std::string_view name, std::string_view node,
                      SpanContext parent);

  /// Attaches a key/value annotation to an open span.
  void AddArg(SpanContext ctx, std::string_view key, uint64_t value);

  /// Closes a span at the current simulated time. Closing an already
  /// closed or invalid span is a no-op (lost-message tolerance: a
  /// wire.send span whose packet the network dropped is simply never
  /// closed and exports as an open span).
  void EndSpan(SpanContext ctx);

  // --- Context stack (single-threaded scoped propagation) ---
  // Inactive, these are no-ops rather than pushes of the invalid context
  // Start* returned: Current() reads identically (invalid either way),
  // and — essential under the parallel engine, where one disabled Tracer
  // is shared by every shard — the stack is never touched from worker
  // threads (ring mode is serial-only, so its pushes are too). Toggling
  // set_enabled() with scopes open would unbalance the stack; it is only
  // flipped while quiescent (cluster construction).
  void PushContext(SpanContext ctx) {
    if (active()) context_stack_.push_back(ctx);
  }
  void PopContext() {
    if (active() && !context_stack_.empty()) context_stack_.pop_back();
  }
  /// The innermost pushed context; invalid when the stack is empty.
  SpanContext Current() const {
    return context_stack_.empty() ? SpanContext{} : context_stack_.back();
  }

  /// RAII context scope, tolerant of a null tracer.
  class Scope {
   public:
    Scope(Tracer* tracer, SpanContext ctx) : tracer_(tracer) {
      if (tracer_ != nullptr) tracer_->PushContext(ctx);
    }
    ~Scope() {
      if (tracer_ != nullptr) tracer_->PopContext();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
  };

  /// All spans recorded so far, in id (creation) order; open spans
  /// included.
  const std::vector<Span>& spans() const { return spans_; }
  size_t span_count() const { return spans_.size(); }

  void Clear();

 private:
  Span* Find(SpanId id);
  /// Files a freshly started span in spans_ (enabled) or the open-span
  /// side map (ring mode), returning its context.
  SpanContext Admit(Span span);

  sim::Scheduler* sim_;
  bool enabled_ = true;
  FlightRecorder* recorder_ = nullptr;
  TraceId next_trace_ = 1;
  SpanId next_span_ = 1;
  std::vector<Span> spans_;
  /// Ring mode only: spans started but not yet ended, keyed by id.
  /// Ordered map: ids are minted monotonically, so begin() is always the
  /// oldest — eviction past max_open_spans is deterministic.
  std::map<SpanId, Span> open_spans_;
  std::vector<SpanContext> context_stack_;
};

}  // namespace dlog::obs

#endif  // DLOG_OBS_TRACE_H_
