#include "obs/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>

namespace dlog::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

void UtilizationTimeline::AddBusy(sim::Time start, sim::Time end) {
  if (end <= start) return;
  if (!intervals_.empty() && start <= intervals_.back().end) {
    // Contiguous or overlapping with the previous interval (probes report
    // in non-decreasing start order): extend instead of appending.
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  intervals_.push_back({start, end});
}

sim::Duration UtilizationTimeline::BusyTime(sim::Time from,
                                            sim::Time to) const {
  sim::Duration busy = 0;
  for (const BusyInterval& iv : intervals_) {
    if (iv.end <= from) continue;
    if (iv.start >= to) break;
    busy += std::min(iv.end, to) - std::max(iv.start, from);
  }
  return busy;
}

double UtilizationTimeline::Utilization(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  return static_cast<double>(BusyTime(from, to)) /
         static_cast<double>(to - from);
}

void LevelTimeline::Set(sim::Time now, double level) {
  max_ = std::max(max_, level);
  if (!points_.empty() && points_.back().first == now) {
    points_.back().second = level;
    return;
  }
  points_.push_back({now, level});
}

double LevelTimeline::Average(sim::Time from, sim::Time to) const {
  if (to <= from || points_.empty()) return 0.0;
  double weighted = 0;
  // The level before the first point is 0 by convention (empty buffer).
  double level = 0;
  sim::Time cursor = from;
  for (const auto& [at, value] : points_) {
    if (at >= to) break;
    if (at > cursor) {
      weighted += level * static_cast<double>(at - cursor);
      cursor = at;
    }
    level = value;
  }
  weighted += level * static_cast<double>(to - cursor);
  return weighted / static_cast<double>(to - from);
}

void Profiler::RecordBusy(const std::string& resource, sim::Time start,
                          sim::Time end) {
  auto [it, inserted] = timelines_.try_emplace(resource);
  it->second.AddBusy(start, end);
  if (inserted && registry_ != nullptr) RegisterUtilization(resource);
}

void Profiler::RecordLevel(const std::string& resource, sim::Time now,
                           double level) {
  auto [it, inserted] = levels_.try_emplace(resource);
  it->second.Set(now, level);
  if (inserted && registry_ != nullptr) RegisterOccupancy(resource);
}

void Profiler::RecordDisk(const std::string& resource,
                          const DiskEvent& event) {
  disk_events_[resource].push_back(event);
  RecordBusy(resource, event.start, event.end);
}

double Profiler::Utilization(const std::string& resource, sim::Time from,
                             sim::Time to) const {
  auto it = timelines_.find(resource);
  if (it == timelines_.end()) return 0.0;
  return it->second.Utilization(from, to);
}

std::string Profiler::UtilizationText(sim::Time from, sim::Time to) const {
  std::string out;
  AppendF(&out, "resource utilization over [%" PRIu64 "..%" PRIu64 "]ns\n",
          from, to);
  for (const auto& [resource, timeline] : timelines_) {
    AppendF(&out, "  %-20s %6.4f\n", resource.c_str(),
            timeline.Utilization(from, to));
  }
  for (const auto& [resource, level] : levels_) {
    AppendF(&out, "  %-20s avg=%.1fB max=%.0fB\n", resource.c_str(),
            level.Average(from, to), level.Max());
  }
  return out;
}

std::vector<Profiler::Attribution> Profiler::AttributeForces(
    const Tracer& tracer) const {
  const std::vector<Span>& spans = tracer.spans();
  std::map<SpanId, const Span*> by_id;
  std::map<SpanId, std::vector<const Span*>> children;
  for (const Span& s : spans) {
    by_id[s.id] = &s;
    if (s.parent != kNoSpan) children[s.parent].push_back(&s);
  }
  std::map<uint64_t, std::vector<const PacketEvent*>> packets_by_span;
  for (const PacketEvent& p : packets_) {
    if (p.span != 0) packets_by_span[p.span].push_back(&p);
  }

  std::vector<Attribution> out;
  for (const Span& force : spans) {
    if (force.name != "ForceLog" || force.open) continue;
    const sim::Time t0 = force.start;
    const sim::Time t1 = force.end;

    // Collect the force's subtree and find the critical (latest) ack
    // that had arrived by the time the force completed.
    const Span* ack = nullptr;
    std::deque<SpanId> frontier = {force.id};
    while (!frontier.empty()) {
      const SpanId id = frontier.front();
      frontier.pop_front();
      auto kids = children.find(id);
      if (kids == children.end()) continue;
      for (const Span* child : kids->second) {
        frontier.push_back(child->id);
        if (child->name != "force.ack" || child->start > t1) continue;
        if (ack == nullptr || child->start > ack->start ||
            (child->start == ack->start && child->id > ack->id)) {
          ack = child;
        }
      }
    }

    // The wire.send span that carried the deciding copy, and its packet
    // delivery to the acking server.
    const Span* send = nullptr;
    const PacketEvent* packet = nullptr;
    if (ack != nullptr) {
      auto it = by_id.find(ack->parent);
      if (it != by_id.end()) send = it->second;
    }
    if (send != nullptr && ack != nullptr) {
      auto it = packets_by_span.find(send->id);
      if (it != packets_by_span.end()) {
        for (const PacketEvent* p : it->second) {
          if (!p->delivered) continue;
          auto name = node_names_.find(p->dst);
          if (name == node_names_.end() || name->second != ack->node) {
            continue;
          }
          packet = p;  // earliest matching delivery (feed order)
          break;
        }
      }
    }

    // Ordered checkpoints, each clamped into [previous, t1]: the cuts are
    // monotone by construction, so the component durations are
    // non-negative and sum exactly to t1 - t0.
    sim::Time cursor = t0;
    auto clamp = [&cursor, t1](sim::Time t) {
      return std::min(std::max(t, cursor), t1);
    };

    Attribution attr;
    attr.trace = force.trace;
    attr.span = force.id;
    attr.node = force.node;
    attr.start = t0;
    attr.end = t1;
    auto cut = [&attr, &cursor](const std::string& name, sim::Time upto) {
      attr.components.emplace_back(name, upto - cursor);
      cursor = upto;
    };

    const sim::Time c_enqueue = packet ? clamp(packet->enqueue) : cursor;
    cut("client.cpu", c_enqueue);
    const sim::Time c_tx = packet ? clamp(packet->tx_start) : cursor;
    cut("net.queue", c_tx);
    const sim::Time c_arrival = packet ? clamp(packet->arrival) : cursor;
    cut("net.transmit", c_arrival);
    // wire.send closes once the server CPU has processed the batch; an
    // open send span (packet lost) contributes nothing here.
    const sim::Time c_cpu =
        (send != nullptr && !send->open) ? clamp(send->end) : cursor;
    cut("server.cpu", c_cpu);

    const sim::Time c_ack = ack != nullptr ? clamp(ack->start) : cursor;
    // The buffered segment [c_cpu, c_ack] is nonzero when the ack waited
    // for the disk (ack_after_disk ablation or shed/retry paths): split
    // it against the acking server's disk-request timeline.
    sim::Time c_rot = c_ack;   // start of mechanical positioning
    sim::Time c_media = c_ack; // start of the media transfer
    if (ack != nullptr && c_ack > cursor) {
      auto events = disk_events_.find(ack->node + "/disk");
      if (events != disk_events_.end()) {
        const DiskEvent* write = nullptr;
        for (const DiskEvent& ev : events->second) {
          if (!ev.is_write || ev.end > c_ack) continue;
          if (ev.end <= cursor) continue;
          if (write == nullptr || ev.end > write->end) write = &ev;
        }
        if (write != nullptr) {
          c_rot = clamp(write->start);
          c_media = std::min(std::max(write->end - write->transfer, c_rot),
                             c_ack);
        }
      }
    }
    cut("buffer.wait", c_rot);
    cut("rotation.wait", c_media);
    cut("media.write", c_ack);
    cut("ack.return", t1);

    out.push_back(std::move(attr));
  }
  return out;
}

void Profiler::UpdateAttributionMetrics(const Tracer& tracer) {
  for (const std::string& name : AttributionComponents()) {
    attr_ms_[name].Clear();
  }
  attr_ms_["total"].Clear();
  for (const Attribution& attr : AttributeForces(tracer)) {
    for (const auto& [name, duration] : attr.components) {
      attr_ms_[name].Add(static_cast<double>(duration) / 1e6);
    }
    attr_ms_["total"].Add(static_cast<double>(attr.end - attr.start) / 1e6);
  }
}

void Profiler::RegisterUtilization(const std::string& resource) {
  registry_->RegisterCallback(
      "profiler/util/" + resource,
      [this, resource]() { return Utilization(resource, 0, now_fn_()); });
}

void Profiler::RegisterOccupancy(const std::string& resource) {
  registry_->RegisterCallback(
      "profiler/occupancy/" + resource, [this, resource]() {
        auto it = levels_.find(resource);
        return it == levels_.end() ? 0.0
                                   : it->second.Average(0, now_fn_());
      });
}

void Profiler::RegisterMetrics(MetricsRegistry* registry,
                               std::function<sim::Time()> now_fn) {
  registry_ = registry;
  now_fn_ = std::move(now_fn);
  for (const std::string& name : AttributionComponents()) {
    registry->RegisterHistogram("profiler/attr/" + name, &attr_ms_[name]);
  }
  registry->RegisterHistogram("profiler/attr/total", &attr_ms_["total"]);
  for (const auto& [resource, timeline] : timelines_) {
    RegisterUtilization(resource);
  }
  for (const auto& [resource, level] : levels_) {
    RegisterOccupancy(resource);
  }
}

}  // namespace dlog::obs
