#ifndef DLOG_OBS_BENCH_REPORT_H_
#define DLOG_OBS_BENCH_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace dlog::obs {

/// Machine-readable experiment output. One report per experiment
/// (e.g. "E4"); each row is one configuration point with its measured
/// metrics. Serialises to deterministic JSON (sorted keys, fixed float
/// formatting) so the driver can diff reruns and plot without scraping
/// stdout tables.
class BenchReport {
 public:
  explicit BenchReport(std::string experiment) : experiment_(std::move(experiment)) {}

  /// Starts a new row. Subsequent SetConfig/SetMetric calls apply to it.
  void BeginRow();

  /// Configuration coordinates of the current row (e.g. servers=3).
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, const std::string& value);

  /// Measured outputs of the current row.
  void SetMetric(const std::string& key, double value);

  /// Copies every value from a snapshot into the current row's metrics,
  /// prefixed (e.g. prefix "final/").
  void AddSnapshot(const std::string& prefix, const MetricsSnapshot& snap);

  size_t rows() const { return rows_.size(); }

  /// Deterministic JSON:
  ///   {"experiment":"E4","rows":[{"config":{...},"metrics":{...}},...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path` (conventionally BENCH_<experiment>.json).
  Status WriteJson(const std::string& path) const;

 private:
  struct Row {
    std::map<std::string, std::string> config_text;
    std::map<std::string, double> config_num;
    std::map<std::string, double> metrics;
  };

  std::string experiment_;
  std::vector<Row> rows_;
};

}  // namespace dlog::obs

#endif  // DLOG_OBS_BENCH_REPORT_H_
