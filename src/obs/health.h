#ifndef DLOG_OBS_HEALTH_H_
#define DLOG_OBS_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::obs {

struct HealthConfig {
  bool enabled = false;

  /// Cross-server utilization imbalance: coefficient of variation
  /// (stddev/mean) of per-server windowed CPU utilization. This is the
  /// paper's Section 5.4 reconfiguration trigger, measured online.
  double imbalance_cv_threshold = 0.5;
  /// The imbalance rule is quiet while mean utilization is below this —
  /// an idle cluster is trivially "imbalanced" and no reconfiguration
  /// signal.
  double imbalance_min_mean_util = 0.05;

  /// SLO burn: fires when the cluster-wide windowed ForceLog p99
  /// (microseconds, from the merged streaming histograms) exceeds this.
  /// 0 disables the rule.
  double slo_force_p99_us = 0.0;
  /// Minimum forces in the window for the SLO rule to judge it (small
  /// samples make noisy quantiles).
  uint64_t slo_min_forces = 8;

  /// Shed spike: fires when the cluster-wide admission shed rate
  /// (ops/second of simulated time, summed over servers) exceeds this.
  /// 0 disables the rule.
  double shed_rate_per_sec = 0.0;

  /// Per-client starvation: a client with pending records but zero
  /// force completions for this many consecutive windows is starving.
  /// 0 disables the rule.
  int starvation_windows = 8;

  /// Hysteresis: a rule's condition must hold for `fire_windows`
  /// consecutive windows to raise its alert, and stay clear for
  /// `clear_windows` consecutive windows to lower it — one-window blips
  /// in either direction are absorbed.
  int fire_windows = 3;
  int clear_windows = 3;

  Status Validate() const;
};

/// One alert transition (raise or clear). The ordered vector of these is
/// the run's "alert sequence" — deterministic, and byte-comparable
/// across engines via AlertsJson.
struct HealthAlert {
  uint64_t window = 0;   // window index of the transition
  sim::Time at = 0;      // simulated time of the window edge
  std::string rule;      // "imbalance", "slo_burn", "shed_spike", ...
  std::string subject;   // "servers", "cluster", "client-7"
  bool fired = false;    // true = raised, false = cleared
  double value = 0.0;    // the measured value at the transition
};

/// Evaluates deterministic per-window health rules over the collector's
/// series, with hysteresis. All inputs are engine-independent windowed
/// values (counter deltas, streaming-histogram quantiles), so the alert
/// sequence is byte-identical serial vs parallel — which is also why the
/// rules read the CPU busy-ns counters rather than the (serial-only)
/// profiler. Raises/clears bump `health/` counters, update the active-
/// alert gauge, and emit `alert.<rule>` trace instants when tracing.
class HealthMonitor {
 public:
  HealthMonitor(const HealthConfig& config,
                const TimeSeriesCollector* collector);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Optional alert trace instants (rooted at "alert.<rule>" on node
  /// "health"); null or disabled tracer drops them.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// The node names the rules iterate. The harness registers servers at
  /// construction and clients as they are added.
  void AddServerNode(const std::string& name);
  void AddClientNode(const std::string& name);

  /// Registers health/alerts_fired, health/alerts_cleared,
  /// health/active_alerts and per-rule fired counters.
  void RegisterMetrics(MetricsRegistry* registry);

  /// Evaluates every rule against the collector's latest window. Call
  /// immediately after TimeSeriesCollector::Sample for the same window.
  void Evaluate(sim::Time window_end);

  const HealthConfig& config() const { return config_; }
  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  size_t active_alerts() const;
  /// Alerts currently raised, as "rule subject" keys.
  std::vector<std::string> ActiveAlerts() const;

  /// Per-window imbalance CV (0 while below the mean-utilization floor),
  /// indexed by window-1. Exposed for the E18 bench's per-window keys.
  const std::vector<double>& imbalance_cv_history() const {
    return imbalance_cv_;
  }

 private:
  struct RuleState {
    int breach_streak = 0;
    int quiet_streak = 0;
    bool active = false;
  };

  /// Applies one window's breach verdict to a rule's hysteresis state,
  /// appending the transition (if any) to the alert sequence.
  void Judge(const std::string& rule, const std::string& subject,
             bool breach, double value, int fire_windows,
             int clear_windows, uint64_t window, sim::Time at);

  HealthConfig config_;
  const TimeSeriesCollector* collector_;
  Tracer* tracer_ = nullptr;

  std::vector<std::string> servers_;
  std::vector<std::string> clients_;

  /// (rule, subject) -> hysteresis state; map order makes same-window
  /// transitions deterministic.
  std::map<std::string, RuleState> states_;
  std::vector<HealthAlert> alerts_;
  std::vector<double> imbalance_cv_;

  sim::Counter alerts_fired_;
  sim::Counter alerts_cleared_;
  sim::Counter imbalance_fired_;
  sim::Counter slo_burn_fired_;
  sim::Counter shed_spike_fired_;
  sim::Counter starvation_fired_;
  sim::Gauge active_alerts_;
};

/// Deterministic serialization of the alert sequence (the byte-identity
/// artifact for the E18 gate).
std::string AlertsJson(const HealthMonitor& monitor);
std::string AlertsText(const HealthMonitor& monitor);

}  // namespace dlog::obs

#endif  // DLOG_OBS_HEALTH_H_
