#ifndef DLOG_ANALYSIS_AVAILABILITY_H_
#define DLOG_ANALYSIS_AVAILABILITY_H_

#include <cstdint>

namespace dlog::analysis {

/// Binomial coefficient C(n, k) as a double (exact for the small n used
/// in availability formulas).
double BinomialCoefficient(int n, int k);

/// Probability that at most `k` of `n` independent components are down
/// when each is down with probability p:  sum_{i=0..k} C(n,i) p^i (1-p)^(n-i).
double AtMostKDown(int n, int k, double p);

/// Section 3.2: availability of WriteLog with M servers, N copies, and
/// per-server unavailability p — "the probability that M-N or fewer log
/// servers are unavailable simultaneously."
double WriteLogAvailability(int m, int n, double p);

/// Section 3.2: availability of client initialization — M-N+1 interval
/// lists are required, so at most N-1 servers may be down.
double ClientInitAvailability(int m, int n, double p);

/// Section 3.2: availability of reading a particular record stored on N
/// servers: 1 - p^N.
double ReadAvailability(int n, double p);

/// Appendix I: availability of a replicated identifier generator with N
/// representatives — at most floor((N-1)/2) may be down.
double GeneratorAvailability(int n, double p);

}  // namespace dlog::analysis

#endif  // DLOG_ANALYSIS_AVAILABILITY_H_
