#include "analysis/availability.h"

#include <cassert>
#include <cmath>

namespace dlog::analysis {

double BinomialCoefficient(int n, int k) {
  assert(n >= 0);
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

double AtMostKDown(int n, int k, double p) {
  assert(n >= 0 && p >= 0.0 && p <= 1.0);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  double total = 0.0;
  for (int i = 0; i <= k; ++i) {
    total += BinomialCoefficient(n, i) * std::pow(p, i) *
             std::pow(1.0 - p, n - i);
  }
  return total;
}

double WriteLogAvailability(int m, int n, double p) {
  assert(n >= 1 && m >= n);
  return AtMostKDown(m, m - n, p);
}

double ClientInitAvailability(int m, int n, double p) {
  assert(n >= 1 && m >= n);
  return AtMostKDown(m, n - 1, p);
}

double ReadAvailability(int n, double p) {
  assert(n >= 1);
  return 1.0 - std::pow(p, n);
}

double GeneratorAvailability(int n, double p) {
  assert(n >= 1);
  return AtMostKDown(n, (n - 1) / 2, p);
}

}  // namespace dlog::analysis
