#ifndef DLOG_ANALYSIS_CAPACITY_H_
#define DLOG_ANALYSIS_CAPACITY_H_

#include <cstdint>
#include <string>

namespace dlog::analysis {

/// Inputs to the Section 4.1 capacity analysis. Defaults reproduce the
/// paper's target load: 50 clients × 10 local ET1 TPS, each transaction
/// writing 700 bytes in 7 log records with one force, dual-copy logging
/// to 6 servers.
struct CapacityInputs {
  int clients = 50;
  double tps_per_client = 10.0;
  int records_per_txn = 7;
  int bytes_per_txn = 700;
  int forces_per_txn = 1;
  int copies = 2;  // N
  int servers = 6;  // M
  double server_mips = 4.0;
  // Instruction budgets (Section 4.1).
  uint64_t instr_per_packet = 1000;
  uint64_t instr_per_message_logging = 2000;  // process + copy to NVRAM
  uint64_t instr_per_track_write = 2000;
  // Media.
  double network_bits_per_sec = 10e6;
  int packet_overhead_bytes = 32;
  int disk_track_bytes = 16 * 1024;
  double disk_rpm = 3600;
  double disk_avg_seek_ms = 25.0;
};

/// Outputs mirroring each claim in Section 4.1.
struct CapacityOutputs {
  double system_tps = 0;                  // aggregate transactions/second
  double log_bytes_per_sec_total = 0;     // all copies, all servers
  double msgs_per_sec_per_server_unbatched = 0;  // one RPC per record (in+out)
  double rpcs_per_sec_per_server_batched = 0;    // grouped to one per force
  double network_bits_per_sec = 0;        // aggregate offered load
  double network_bits_per_sec_multicast = 0;  // with multicast (~halved)
  double network_utilization = 0;         // of one network
  double cpu_fraction_comm = 0;           // packet processing share
  double cpu_fraction_logging = 0;        // record processing + track writes
  double disk_utilization = 0;            // log stream write share
  double bytes_per_server_per_day = 0;
};

/// Evaluates the analytical capacity model.
CapacityOutputs ComputeCapacity(const CapacityInputs& in);

/// Renders the outputs as the rows the paper states in prose.
std::string CapacityReport(const CapacityInputs& in,
                           const CapacityOutputs& out);

}  // namespace dlog::analysis

#endif  // DLOG_ANALYSIS_CAPACITY_H_
