#include "analysis/capacity.h"

#include <cmath>
#include <cstdio>

namespace dlog::analysis {
namespace {

// Wire-format overheads matching wire::EncodedRecordSize /
// RecordBatchOverhead (kept as plain numbers so the analytic model does
// not depend on the wire library).
constexpr double kRecordOverheadBytes = 21;  // lsn + epoch + flag + length
constexpr double kBatchOverheadBytes = 25;   // envelope + client + epoch
constexpr double kAckBytes = 9;              // NewHighLsn body
// Disk stream format (server/track_format.h): each interleaved stream
// entry stores client + lsn + epoch + flag + length alongside the data,
// and each track a CRC + count header.
constexpr double kStreamEntryOverheadBytes = 25;
constexpr double kTrackHeaderBytes = 8;

}  // namespace

CapacityOutputs ComputeCapacity(const CapacityInputs& in) {
  CapacityOutputs out;
  out.system_tps = in.clients * in.tps_per_client;

  const double records_per_sec = out.system_tps * in.records_per_txn;
  const double data_bytes_per_sec = out.system_tps * in.bytes_per_txn;
  out.log_bytes_per_sec_total = data_bytes_per_sec * in.copies;

  // One RPC per record: each server sees its share of record writes, and
  // each request has a reply ("incoming or outgoing messages").
  const double record_writes_per_sec = records_per_sec * in.copies;
  out.msgs_per_sec_per_server_unbatched =
      record_writes_per_sec * 2.0 / in.servers;

  // Grouping to one (forced) call per transaction per copy.
  const double force_calls_per_sec =
      out.system_tps * in.forces_per_txn * in.copies;
  out.rpcs_per_sec_per_server_batched = force_calls_per_sec / in.servers;

  // Network load: each force call carries a transaction's records.
  const double bytes_per_force_msg =
      static_cast<double>(in.bytes_per_txn) / in.forces_per_txn +
      kRecordOverheadBytes * in.records_per_txn / in.forces_per_txn +
      kBatchOverheadBytes + in.packet_overhead_bytes;
  const double ack_packet_bytes =
      kAckBytes + kBatchOverheadBytes + in.packet_overhead_bytes;
  const double data_bits =
      out.system_tps * in.forces_per_txn * in.copies * bytes_per_force_msg *
      8.0;
  const double ack_bits = out.system_tps * in.forces_per_txn * in.copies *
                          ack_packet_bytes * 8.0;
  out.network_bits_per_sec = data_bits + ack_bits;
  // Multicast sends the data once regardless of the number of copies.
  out.network_bits_per_sec_multicast = data_bits / in.copies + ack_bits;
  out.network_utilization =
      out.network_bits_per_sec / in.network_bits_per_sec;

  // Server CPU shares.
  const double instr_per_sec = in.server_mips * 1e6;
  const double packets_per_server_per_sec =
      out.rpcs_per_sec_per_server_batched * 2.0;  // request + ack
  out.cpu_fraction_comm =
      packets_per_server_per_sec * in.instr_per_packet / instr_per_sec;

  const double bytes_per_server_per_sec =
      out.log_bytes_per_sec_total / in.servers;
  // Tracks are packed with encoded stream entries, so the write rate is
  // driven by the stored bytes (data + per-record framing) against the
  // track's usable payload.
  const double stored_bytes_per_server_per_sec =
      (out.log_bytes_per_sec_total +
       records_per_sec * in.copies * kStreamEntryOverheadBytes) /
      in.servers;
  const double tracks_per_server_per_sec =
      stored_bytes_per_server_per_sec /
      (in.disk_track_bytes - kTrackHeaderBytes);
  out.cpu_fraction_logging =
      (out.rpcs_per_sec_per_server_batched * in.instr_per_message_logging +
       tracks_per_server_per_sec * in.instr_per_track_write) /
      instr_per_sec;

  // Disk: sequential track writes cost half a rotation (latency) plus a
  // full rotation (transfer).
  const double rotation_s = 60.0 / in.disk_rpm;
  const double track_write_s = 0.5 * rotation_s + rotation_s;
  out.disk_utilization = tracks_per_server_per_sec * track_write_s;

  out.bytes_per_server_per_day = bytes_per_server_per_sec * 86400.0;
  return out;
}

std::string CapacityReport(const CapacityInputs& in,
                           const CapacityOutputs& out) {
  char buf[1600];
  std::snprintf(
      buf, sizeof(buf),
      "Capacity model (Section 4.1)\n"
      "  load: %d clients x %.1f TPS, %d records/txn, %d bytes/txn, "
      "N=%d, M=%d servers\n"
      "  aggregate rate ................ %.0f TPS\n"
      "  unbatched msgs/server ......... %.0f msgs/s   (paper: ~2400)\n"
      "  batched RPCs/server ........... %.0f RPCs/s   (paper: ~170)\n"
      "  network load .................. %.2f Mbit/s  (paper: ~7)\n"
      "  network load w/ multicast ..... %.2f Mbit/s  (paper: ~halved)\n"
      "  one-network utilization ....... %.0f%%\n"
      "  server CPU: communication ..... %.1f%%       (paper: <10%%)\n"
      "  server CPU: logging ........... %.1f%%       (paper: 10-20%%)\n"
      "  disk utilization .............. %.0f%%       (paper: up to ~50%%)\n"
      "  log volume/server/day ......... %.2f GB     (paper: ~10 GB)\n",
      in.clients, in.tps_per_client, in.records_per_txn, in.bytes_per_txn,
      in.copies, in.servers, out.system_tps,
      out.msgs_per_sec_per_server_unbatched,
      out.rpcs_per_sec_per_server_batched,
      out.network_bits_per_sec / 1e6,
      out.network_bits_per_sec_multicast / 1e6,
      out.network_utilization * 100.0, out.cpu_fraction_comm * 100.0,
      out.cpu_fraction_logging * 100.0, out.disk_utilization * 100.0,
      out.bytes_per_server_per_day / 1e9);
  return buf;
}

}  // namespace dlog::analysis
