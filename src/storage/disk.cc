#include "storage/disk.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlog::storage {

Status DiskConfig::Validate() const {
  if (rpm <= 0) return Status::InvalidArgument("rpm must be > 0");
  if (track_bytes == 0) {
    return Status::InvalidArgument("track_bytes must be > 0");
  }
  if (num_tracks == 0) {
    return Status::InvalidArgument("num_tracks must be > 0");
  }
  return Status::OK();
}

SimDisk::SimDisk(sim::Scheduler* sim, const DiskConfig& config,
                 std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  DLOG_CHECK_OK(config.Validate());
}

sim::Duration SimDisk::RotationTime() const {
  return sim::SecondsToDuration(60.0 / config_.rpm);
}

SimDisk::Service SimDisk::ServiceTime(uint64_t track) {
  Service s;
  // Seek: free if the head is on this track or the immediately following
  // one (sequential streaming, the common case for the log stream).
  const uint64_t head = head_track_;
  const bool sequential = (track == head) || (track == head + 1);
  if (!sequential) s.seek = config_.avg_seek;
  // Rotational latency: half a rotation on average.
  s.rotation = RotationTime() / 2;
  // Transfer: a whole track takes one rotation.
  s.transfer = RotationTime();
  head_track_ = track;
  return s;
}

void SimDisk::WriteTrack(uint64_t track, Bytes data,
                         std::function<void(Status)> done) {
  Status status = Status::OK();
  if (track >= config_.num_tracks) {
    status = Status::InvalidArgument("track address out of range");
  } else if (data.size() > config_.track_bytes) {
    status = Status::InvalidArgument("data larger than a track");
  } else if (config_.write_once && tracks_.count(track) > 0) {
    status = Status::FailedPrecondition(
        "write-once medium: track already written");
  }
  if (!status.ok()) {
    // Parameter errors are detected before any mechanical motion.
    if (done) sim_->After(0, [done, status]() { done(status); });
    return;
  }

  const sim::Time submitted = sim_->Now();
  const sim::Time start = std::max(submitted, free_at_);
  const Service service = ServiceTime(track);
  free_at_ = start + service.Total();
  busy_time_ += service.Total();
  writes_.Increment();
  if (request_probe_) {
    request_probe_({track, true, submitted, start, service.seek,
                    service.rotation, service.transfer, free_at_});
  }

  const uint64_t generation = crash_generation_;
  sim_->At(free_at_, [this, track, data = std::move(data),
                      done = std::move(done), submitted,
                      generation]() mutable {
    if (generation != crash_generation_) return;  // lost in a crash
    tracks_[track] = std::move(data);
    write_latency_.Add(
        sim::DurationToSeconds(sim_->Now() - submitted) * 1e3);  // ms
    if (done) done(Status::OK());
  });
}

void SimDisk::ReadTrack(uint64_t track,
                        std::function<void(Result<Bytes>)> done) {
  assert(done);
  if (track >= config_.num_tracks) {
    sim_->After(0, [done]() {
      done(Status::InvalidArgument("track address out of range"));
    });
    return;
  }

  const sim::Time submitted = sim_->Now();
  const sim::Time start = std::max(submitted, free_at_);
  const Service service = ServiceTime(track);
  free_at_ = start + service.Total();
  busy_time_ += service.Total();
  reads_.Increment();
  if (request_probe_) {
    request_probe_({track, false, submitted, start, service.seek,
                    service.rotation, service.transfer, free_at_});
  }

  const uint64_t generation = crash_generation_;
  sim_->At(free_at_, [this, track, done = std::move(done), generation]() {
    if (generation != crash_generation_) return;
    auto it = tracks_.find(track);
    if (it == tracks_.end()) {
      done(Status::NotFound("track never written"));
    } else {
      done(it->second);
    }
  });
}

Result<Bytes> SimDisk::Peek(uint64_t track) const {
  auto it = tracks_.find(track);
  if (it == tracks_.end()) return Status::NotFound("track never written");
  return it->second;
}

void SimDisk::Crash() {
  ++crash_generation_;
  free_at_ = sim_->Now();
}

void SimDisk::WipeMedia() {
  Crash();
  tracks_.clear();
  head_track_ = 0;
}

double SimDisk::Utilization() const {
  const sim::Time now = std::max(sim_->Now(), free_at_);
  if (now == 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(now);
}

}  // namespace dlog::storage
