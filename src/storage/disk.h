#ifndef DLOG_STORAGE_DISK_H_
#define DLOG_STORAGE_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::storage {

/// Geometry and timing of a simulated track-addressed disk. Defaults are
/// mid-1980s commodity numbers ("slow disks with small tracks",
/// Section 4.1).
struct DiskConfig {
  double rpm = 3600;                           // 16.7 ms per rotation
  sim::Duration avg_seek = 25 * sim::kMillisecond;
  size_t track_bytes = 16 * 1024;              // small tracks
  uint64_t num_tracks = 1'000'000;
  /// Write-once (optical) mode: a track may be written exactly once
  /// (Section 4.3 requires data structures usable on optical storage).
  bool write_once = false;

  /// OK iff the geometry is usable (positive rpm, nonzero tracks, ...).
  Status Validate() const;
};

/// A simulated disk serving one request at a time in FIFO order. Writes
/// and reads are whole tracks: the log-server design (Section 4.1) buffers
/// records in NVRAM "so that an entire track of log data may be written to
/// disk at once".
///
/// Timing model per request:
///   seek (0 if the head is already positioned on an adjacent track)
///   + rotational latency (half a rotation on a random landing)
///   + transfer (one full rotation for a whole track; proportional for
///     partial reads).
///
/// Contents are non-volatile: they survive Crash(). A request in flight at
/// crash time is lost without effect (the old track contents remain).
class SimDisk {
 public:
  SimDisk(sim::Scheduler* sim, const DiskConfig& config,
          std::string name = "disk");

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Queues a whole-track write; `done` runs at simulated completion.
  /// Fails with InvalidArgument (oversized data / bad address) or
  /// FailedPrecondition (write-once violation) — reported through `done`.
  void WriteTrack(uint64_t track, Bytes data,
                  std::function<void(Status)> done);

  /// Queues a track read.
  void ReadTrack(uint64_t track, std::function<void(Result<Bytes>)> done);

  /// Synchronous inspection of current contents (test/recovery helper;
  /// charges no simulated time). Returns NotFound for never-written
  /// tracks.
  Result<Bytes> Peek(uint64_t track) const;

  /// Returns true if the track has been written.
  bool IsWritten(uint64_t track) const {
    return tracks_.find(track) != tracks_.end();
  }

  /// Drops all queued/in-flight requests; contents are preserved.
  /// Callbacks of dropped requests are never invoked.
  void Crash();

  /// Media failure: all contents are destroyed (and in-flight requests
  /// dropped). The device itself remains usable, as after a platter
  /// replacement.
  void WipeMedia();

  const DiskConfig& config() const { return config_; }
  sim::Duration RotationTime() const;
  sim::Duration busy_time() const { return busy_time_; }
  /// Busy fraction since construction.
  double Utilization() const;

  sim::Counter& writes() { return writes_; }
  sim::Counter& reads() { return reads_; }
  sim::Histogram& write_latency() { return write_latency_; }

  /// Per-request timing record for the profiler: when the request was
  /// submitted, when the arm started serving it, and the mechanical
  /// breakdown (seek / rotational latency / transfer). Requests serialize
  /// FIFO, so [start, end) intervals never overlap — an exact busy
  /// timeline for the arm. The probe fires at submission time (the full
  /// schedule is decided then), including for requests later lost to a
  /// Crash().
  struct RequestTiming {
    uint64_t track = 0;
    bool is_write = false;
    sim::Time submitted = 0;
    sim::Time start = 0;
    sim::Duration seek = 0;
    sim::Duration rotation = 0;
    sim::Duration transfer = 0;
    sim::Time end = 0;
  };
  using RequestProbe = std::function<void(const RequestTiming&)>;
  void SetRequestProbe(RequestProbe probe) {
    request_probe_ = std::move(probe);
  }

 private:
  /// Mechanical components of one whole-track access.
  struct Service {
    sim::Duration seek = 0;
    sim::Duration rotation = 0;
    sim::Duration transfer = 0;
    sim::Duration Total() const { return seek + rotation + transfer; }
  };
  /// Computes service components and advances head position.
  Service ServiceTime(uint64_t track);

  sim::Scheduler* sim_;
  DiskConfig config_;
  std::string name_;
  std::map<uint64_t, Bytes> tracks_;
  sim::Time free_at_ = 0;
  uint64_t head_track_ = 0;
  sim::Duration busy_time_ = 0;
  uint64_t crash_generation_ = 0;
  sim::Counter writes_;
  sim::Counter reads_;
  sim::Histogram write_latency_;
  RequestProbe request_probe_;
};

}  // namespace dlog::storage

#endif  // DLOG_STORAGE_DISK_H_
