#include "storage/nvram.h"

#include <utility>

namespace dlog::storage {

Status Nvram::Put(const std::string& region, Bytes data) {
  size_t old_size = 0;
  auto it = regions_.find(region);
  if (it != regions_.end()) old_size = it->second.size();
  const size_t new_used = used_ - old_size + data.size();
  if (new_used > capacity_) {
    return Status::ResourceExhausted("nvram full");
  }
  used_ = new_used;
  regions_[region] = std::move(data);
  return Status::OK();
}

Result<Bytes> Nvram::Get(const std::string& region) const {
  auto it = regions_.find(region);
  if (it == regions_.end()) return Status::NotFound("no such nvram region");
  return it->second;
}

void Nvram::Erase(const std::string& region) {
  auto it = regions_.find(region);
  if (it == regions_.end()) return;
  used_ -= it->second.size();
  regions_.erase(it);
}

Status NvramQueue::Append(Bytes entry) {
  if (used_ + entry.size() > capacity_) {
    return Status::ResourceExhausted("nvram queue full");
  }
  used_ += entry.size();
  entries_.push_back(std::move(entry));
  if (occupancy_probe_) occupancy_probe_(used_);
  return Status::OK();
}

void NvramQueue::PopFront(size_t n) {
  for (size_t i = 0; i < n && !entries_.empty(); ++i) {
    used_ -= entries_.front().size();
    entries_.pop_front();
  }
  if (occupancy_probe_) occupancy_probe_(used_);
}

}  // namespace dlog::storage
