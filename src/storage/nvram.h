#ifndef DLOG_STORAGE_NVRAM_H_
#define DLOG_STORAGE_NVRAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace dlog::storage {

/// Low-latency non-volatile memory (Section 5.1: battery-backed CMOS).
/// Contents survive node crashes; access is at memory speed, so no
/// simulated time is charged here — callers account CPU instructions for
/// the copy (Section 4.1 budgets 2000 instructions per message to process
/// records "and to copy them to low latency non volatile memory").
///
/// Named regions hold whole-value blobs (e.g., the checkpointed interval
/// lists); capacity is shared with any NvramQueue carved from the same
/// device by the owning node.
class Nvram {
 public:
  explicit Nvram(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  Nvram(const Nvram&) = delete;
  Nvram& operator=(const Nvram&) = delete;

  /// Replaces the contents of `region`. Fails with ResourceExhausted when
  /// the device would overflow.
  Status Put(const std::string& region, Bytes data);

  /// Reads a region; NotFound if absent.
  Result<Bytes> Get(const std::string& region) const;

  void Erase(const std::string& region);

  size_t used() const { return used_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t used_ = 0;
  std::map<std::string, Bytes> regions_;
};

/// An append-ordered queue of blobs in non-volatile memory: the log
/// server's group buffer. Records accumulate here (making them stable, so
/// forces can be acknowledged immediately) until a full track's worth is
/// written to disk at once (Section 4.1).
///
/// Like Nvram, the queue survives Crash(): a restarted server drains
/// whatever its predecessor had buffered.
class NvramQueue {
 public:
  explicit NvramQueue(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  NvramQueue(const NvramQueue&) = delete;
  NvramQueue& operator=(const NvramQueue&) = delete;

  /// Appends an entry; ResourceExhausted if it does not fit.
  Status Append(Bytes entry);

  /// FIFO view of the buffered entries.
  const std::deque<Bytes>& entries() const { return entries_; }

  /// Removes the first `n` entries (they have reached the disk).
  void PopFront(size_t n);

  size_t used_bytes() const { return used_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Occupancy probe: invoked with the new used-byte count after every
  /// successful Append and after PopFront. Feeds the profiler's buffer-
  /// occupancy timeline (the caller timestamps against its simulator; the
  /// queue itself is timeless).
  using OccupancyProbe = std::function<void(size_t used_bytes)>;
  void SetOccupancyProbe(OccupancyProbe probe) {
    occupancy_probe_ = std::move(probe);
  }

 private:
  size_t capacity_;
  size_t used_ = 0;
  std::deque<Bytes> entries_;
  OccupancyProbe occupancy_probe_;
};

/// A single non-volatile integer cell with atomic read/write, used for
/// the generator state representatives of Appendix I ("each store an
/// integer in non-volatile storage", with Read and Write "atomic at
/// individual representatives").
class StableCell {
 public:
  explicit StableCell(uint64_t initial = 0) : value_(initial) {}

  uint64_t Read() const { return value_; }
  void Write(uint64_t v) { value_ = v; }

 private:
  uint64_t value_;
};

}  // namespace dlog::storage

#endif  // DLOG_STORAGE_NVRAM_H_
