#ifndef DLOG_TP_STORAGE_H_
#define DLOG_TP_STORAGE_H_

#include <cstdint>
#include <map>
#include <set>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"
#include "tp/wal.h"

namespace dlog::tp {

/// A database page: fixed-size byte image stamped with the LSN of the
/// last update applied to it (the WAL page-LSN protocol).
struct Page {
  Lsn lsn = kNoLsn;
  Bytes data;
};

/// The transaction node's stable page storage (its single local data
/// disk, Section 2). Contents survive Crash(); timing is not modeled
/// here — the logging disks are the bottleneck under study, and data-disk
/// I/O is the same for every logging design being compared.
class PageDisk {
 public:
  explicit PageDisk(size_t page_bytes) : page_bytes_(page_bytes) {}

  size_t page_bytes() const { return page_bytes_; }

  /// Reads a page; a never-written page comes back zero-filled.
  Page Read(PageId id) const;

  /// Writes a page image (the buffer pool's "clean" operation).
  void Write(PageId id, const Page& page);

  bool Exists(PageId id) const { return pages_.count(id) > 0; }
  size_t page_count() const { return pages_.size(); }

 private:
  size_t page_bytes_;
  std::map<PageId, Page> pages_;
};

/// A volatile page cache with dirty tracking. The WAL discipline is
/// enforced by the engine: a dirty page may only be cleaned once the log
/// is forced past the page's LSN (and, under record splitting, once the
/// relevant undo components are logged — Section 5.2).
class BufferPool {
 public:
  explicit BufferPool(PageDisk* disk) : disk_(disk) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page (from cache or the page disk).
  Page& Get(PageId id);

  /// Applies `bytes` at `offset` and stamps the page with `lsn`.
  void ApplyUpdate(PageId id, uint32_t offset, const Bytes& bytes, Lsn lsn);

  bool IsDirty(PageId id) const { return dirty_.count(id) > 0; }
  const std::set<PageId>& dirty_pages() const { return dirty_; }

  /// Writes one page image to the page disk and clears its dirty bit.
  /// The caller must have satisfied the WAL rule first.
  void Clean(PageId id);

  /// Crash: the cache is volatile.
  void LoseAll() {
    cache_.clear();
    dirty_.clear();
  }

 private:
  PageDisk* disk_;
  std::map<PageId, Page> cache_;
  std::set<PageId> dirty_;
};

}  // namespace dlog::tp

#endif  // DLOG_TP_STORAGE_H_
