#include "tp/storage.h"

#include <cassert>

namespace dlog::tp {

Page PageDisk::Read(PageId id) const {
  auto it = pages_.find(id);
  if (it != pages_.end()) return it->second;
  Page page;
  page.data.assign(page_bytes_, 0);
  return page;
}

void PageDisk::Write(PageId id, const Page& page) {
  assert(page.data.size() == page_bytes_);
  pages_[id] = page;
}

Page& BufferPool::Get(PageId id) {
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    it = cache_.emplace(id, disk_->Read(id)).first;
  }
  return it->second;
}

void BufferPool::ApplyUpdate(PageId id, uint32_t offset, const Bytes& bytes,
                             Lsn lsn) {
  Page& page = Get(id);
  assert(offset + bytes.size() <= page.data.size());
  std::copy(bytes.begin(), bytes.end(), page.data.begin() + offset);
  page.lsn = lsn;
  dirty_.insert(id);
}

void BufferPool::Clean(PageId id) {
  auto it = cache_.find(id);
  if (it == cache_.end()) return;
  disk_->Write(id, it->second);
  dirty_.erase(id);
}

}  // namespace dlog::tp
