#ifndef DLOG_TP_LOGGER_H_
#define DLOG_TP_LOGGER_H_

#include <functional>
#include <vector>

#include "client/log_client.h"
#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"
#include "sim/scheduler.h"

namespace dlog::tp {

/// The recovery manager's view of its log: buffered appends, explicit
/// forces, and reads during restart ("recovery managers commonly support
/// the grouping of log record writes by providing different calls for
/// forced and buffered log writes", Section 4.1).
///
/// Implementations: ReplicatedTxnLogger (the paper's distributed log),
/// baseline::DuplexedTxnLogger (conventional local duplexed disks), and
/// InMemoryTxnLogger (unit tests).
class TxnLogger {
 public:
  virtual ~TxnLogger() = default;

  /// Appends a record to the (buffered) log, returning its LSN.
  virtual Result<Lsn> Append(Bytes payload) = 0;

  /// Makes all records up to `upto` stable, then calls `done`.
  virtual void Force(Lsn upto, std::function<void(Status)> done) = 0;

  /// Reads one record (restart/abort path).
  virtual void Read(Lsn lsn, std::function<void(Result<Bytes>)> done) = 0;

  /// LSN of the most recently appended record.
  virtual Lsn End() const = 0;

  /// Log space management (Section 5.3): the records below `below` are
  /// no longer needed for node recovery. Best effort; returns the point
  /// actually applied (kNoLsn when unsupported).
  virtual Lsn Truncate(Lsn below) {
    (void)below;
    return kNoLsn;
  }
};

/// Adapter over the replicated-log protocol client.
class ReplicatedTxnLogger : public TxnLogger {
 public:
  explicit ReplicatedTxnLogger(client::LogClient* log) : log_(log) {}

  Result<Lsn> Append(Bytes payload) override {
    return log_->WriteLog(std::move(payload));
  }
  void Force(Lsn upto, std::function<void(Status)> done) override {
    log_->ForceLog(upto, std::move(done));
  }
  void Read(Lsn lsn, std::function<void(Result<Bytes>)> done) override {
    log_->ReadLog(lsn, std::move(done));
  }
  Lsn End() const override { return log_->EndOfLog(); }
  Lsn Truncate(Lsn below) override { return log_->TruncateLog(below); }

 private:
  client::LogClient* log_;
};

/// In-memory log with crash semantics (unforced suffix lost), for engine
/// unit tests.
class InMemoryTxnLogger : public TxnLogger {
 public:
  explicit InMemoryTxnLogger(sim::Scheduler* sim) : sim_(sim) {}

  Result<Lsn> Append(Bytes payload) override {
    records_.push_back(std::move(payload));
    return static_cast<Lsn>(records_.size());
  }

  void Force(Lsn upto, std::function<void(Status)> done) override {
    forced_high_ = std::max(forced_high_, upto);
    sim_->After(0, [done = std::move(done)]() { done(Status::OK()); });
  }

  void Read(Lsn lsn, std::function<void(Result<Bytes>)> done) override {
    Result<Bytes> result = Status::OutOfRange("beyond end of log");
    if (lsn >= 1 && lsn <= records_.size()) {
      result = records_[lsn - 1];
    }
    sim_->After(0, [done = std::move(done), result = std::move(result)]() {
      done(result);
    });
  }

  Lsn End() const override { return static_cast<Lsn>(records_.size()); }

  /// Simulated node crash: records never forced are gone.
  void Crash() { records_.resize(std::min<size_t>(records_.size(),
                                                  forced_high_)); }

  Lsn forced_high() const { return forced_high_; }

 private:
  sim::Scheduler* sim_;
  std::vector<Bytes> records_;
  Lsn forced_high_ = 0;
};

}  // namespace dlog::tp

#endif  // DLOG_TP_LOGGER_H_
