#ifndef DLOG_TP_ENGINE_H_
#define DLOG_TP_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/log_types.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "tp/logger.h"
#include "tp/storage.h"
#include "tp/wal.h"

namespace dlog::tp {

/// Transaction engine options.
struct EngineConfig {
  size_t page_bytes = 1024;
  /// Section 5.2: split each update into a redo component (streamed to
  /// the log immediately) and an undo component (cached in client memory,
  /// logged only if its page must be cleaned before commit).
  bool split_records = false;
  /// Section 5.3: after a quiescent checkpoint (no active transactions,
  /// all pages clean), ask the log to discard everything before it —
  /// "checkpoints and other mechanisms ... limit the online log storage
  /// required for node recovery".
  bool truncate_after_checkpoint = false;
};

/// A miniature write-ahead-logging transaction engine: the paper's
/// "client node" recovery manager. One engine per node, serial
/// transaction execution (the paper's replicated log serves exactly one
/// client process; concurrency control is out of scope). Commits pipeline
/// through the asynchronous log force.
///
/// Recovery is redo/undo over byte-image update records: committed and
/// aborted transactions are redone in LSN order (aborts log redo-only
/// compensation records), and transactions with no outcome record are
/// undone in reverse LSN order using cached-or-logged undo components.
class TransactionEngine {
 public:
  TransactionEngine(sim::Scheduler* sim, TxnLogger* logger, PageDisk* disk,
                    const EngineConfig& config);

  TransactionEngine(const TransactionEngine&) = delete;
  TransactionEngine& operator=(const TransactionEngine&) = delete;

  /// Starts a transaction (logs a begin record, buffered).
  Result<TxnId> Begin();

  /// Logs and applies an update of `bytes` at [offset, offset+size) of
  /// `page`.
  Status Update(TxnId txn, PageId page, uint32_t offset, Bytes bytes);

  /// Logs the commit record, forces the log through it, and completes.
  void Commit(TxnId txn, std::function<void(Status)> done);

  /// Rolls the transaction back from the cached undo components (no
  /// log server read — the Section 5.2 point), logging compensation.
  Status Abort(TxnId txn);

  /// Flushes undo components as needed, forces the log, cleans every
  /// dirty page, and appends a checkpoint record.
  void CleanPages(std::function<void(Status)> done);

  /// Simulated node crash: buffer pool, undo cache, and transaction
  /// table vanish. The engine is dead; build a new one on the same
  /// PageDisk and a recovered logger, then call Recover().
  void Crash();

  /// Restart recovery: scans the log, redoes committed/aborted work,
  /// undoes unfinished transactions.
  void Recover(std::function<void(Status)> done);

  BufferPool& buffer_pool() { return *pool_; }
  PageDisk& disk() { return *disk_; }
  size_t active_transactions() const { return active_.size(); }

  // --- Observability ---
  /// Attaches the shared causal tracer. Every Begin() mints a "txn" root
  /// span (closed when the transaction commits or aborts); the scoped
  /// context makes downstream log appends and forces children of it.
  void SetTracer(obs::Tracer* tracer, const std::string& node);
  /// Registers commit/abort counters under "<node>/tp/...".
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& node) const;

  // --- statistics (experiment E7) ---
  uint64_t log_bytes() const { return log_bytes_; }
  uint64_t log_records() const { return log_records_; }
  uint64_t undo_bytes_logged() const { return undo_bytes_logged_; }
  uint64_t undo_bytes_cached() const { return undo_bytes_cached_; }
  sim::Counter& commits() { return commits_; }
  sim::Counter& aborts() { return aborts_; }

 private:
  struct UpdateInfo {
    Lsn lsn = kNoLsn;
    PageId page = 0;
    uint32_t offset = 0;
    Bytes redo;
    Bytes undo;        // cached undo component
    bool undo_logged = false;
  };
  struct ActiveTxn {
    std::vector<UpdateInfo> updates;
    /// Root span of this transaction's causal trace.
    obs::SpanContext span;
  };

  /// Appends a WAL record, tracking volume statistics.
  Result<Lsn> AppendRecord(const WalRecord& record);

  /// Logs the undo components covering `page` for all active txns
  /// (required before cleaning under splitting).
  Status FlushUndoFor(PageId page);

  sim::Scheduler* sim_;
  TxnLogger* logger_;
  PageDisk* disk_;
  EngineConfig config_;
  std::unique_ptr<BufferPool> pool_;

  bool crashed_ = false;
  TxnId next_txn_ = 1;
  std::map<TxnId, ActiveTxn> active_;

  obs::Tracer* tracer_ = nullptr;
  std::string trace_node_;

  uint64_t log_bytes_ = 0;
  uint64_t log_records_ = 0;
  uint64_t undo_bytes_logged_ = 0;
  uint64_t undo_bytes_cached_ = 0;
  sim::Counter commits_;
  sim::Counter aborts_;
};

}  // namespace dlog::tp

#endif  // DLOG_TP_ENGINE_H_
