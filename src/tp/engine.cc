#include "tp/engine.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace dlog::tp {

TransactionEngine::TransactionEngine(sim::Scheduler* sim, TxnLogger* logger,
                                     PageDisk* disk,
                                     const EngineConfig& config)
    : sim_(sim), logger_(logger), disk_(disk), config_(config) {
  pool_ = std::make_unique<BufferPool>(disk);
}

void TransactionEngine::SetTracer(obs::Tracer* tracer,
                                  const std::string& node) {
  tracer_ = tracer;
  trace_node_ = node;
}

void TransactionEngine::RegisterMetrics(obs::MetricsRegistry* registry,
                                        const std::string& node) const {
  registry->RegisterCounter(node + "/tp/commits", &commits_);
  registry->RegisterCounter(node + "/tp/aborts", &aborts_);
}

Result<Lsn> TransactionEngine::AppendRecord(const WalRecord& record) {
  Bytes payload = EncodeWalRecord(record);
  log_bytes_ += payload.size();
  ++log_records_;
  return logger_->Append(std::move(payload));
}

Result<TxnId> TransactionEngine::Begin() {
  if (crashed_) return Status::Aborted("engine crashed");
  const TxnId txn = next_txn_++;
  obs::SpanContext root;
  if (tracer_ != nullptr) {
    root = tracer_->StartTrace("txn", trace_node_);
    tracer_->AddArg(root, "txn", txn);
  }
  WalRecord rec;
  rec.type = WalType::kBegin;
  rec.txn = txn;
  {
    obs::Tracer::Scope scope(tracer_, root);
    Status st = AppendRecord(rec).status();
    if (!st.ok()) {
      if (tracer_ != nullptr) tracer_->EndSpan(root);
      return st;
    }
  }
  active_[txn] = ActiveTxn{{}, root};
  return txn;
}

Status TransactionEngine::Update(TxnId txn, PageId page, uint32_t offset,
                                 Bytes bytes) {
  if (crashed_) return Status::Aborted("engine crashed");
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::InvalidArgument("unknown transaction");
  }
  Page& current = pool_->Get(page);
  if (offset + bytes.size() > current.data.size()) {
    return Status::OutOfRange("update beyond page");
  }
  Bytes old_image(current.data.begin() + offset,
                  current.data.begin() + offset + bytes.size());

  WalRecord rec;
  rec.type = WalType::kUpdate;
  rec.txn = txn;
  rec.page = page;
  rec.offset = offset;
  rec.redo = bytes;
  if (config_.split_records) {
    // "Redo components of log records are sent to log servers as they
    // are generated ... Undo components ... are cached in virtual memory
    // at client nodes."
    undo_bytes_cached_ += old_image.size();
  } else {
    rec.undo = old_image;
  }
  obs::Tracer::Scope scope(tracer_, it->second.span);
  DLOG_ASSIGN_OR_RETURN(Lsn lsn, AppendRecord(rec));

  pool_->ApplyUpdate(page, offset, bytes, lsn);
  UpdateInfo info;
  info.lsn = lsn;
  info.page = page;
  info.offset = offset;
  info.redo = std::move(bytes);
  info.undo = std::move(old_image);
  info.undo_logged = !config_.split_records;
  it->second.updates.push_back(std::move(info));
  return Status::OK();
}

void TransactionEngine::Commit(TxnId txn, std::function<void(Status)> done) {
  if (crashed_ || active_.find(txn) == active_.end()) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::InvalidArgument("unknown or dead transaction"));
    });
    return;
  }
  const obs::SpanContext root = active_[txn].span;
  obs::SpanContext commit_span;
  if (tracer_ != nullptr) {
    commit_span = tracer_->StartSpan("commit", trace_node_, root);
  }
  WalRecord rec;
  rec.type = WalType::kCommit;
  rec.txn = txn;
  Result<Lsn> lsn = [&]() {
    obs::Tracer::Scope scope(tracer_, commit_span);
    return AppendRecord(rec);
  }();
  if (!lsn.ok()) {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(commit_span);
      tracer_->EndSpan(root);
    }
    sim_->After(0, [done = std::move(done), st = lsn.status()]() {
      done(st);
    });
    return;
  }
  // "Only the final commit record written by a local ET1 transaction must
  // be forced to disk, preceding records are buffered."
  // "When a transaction commits, the undo components of log records
  // written by the transaction are flushed from the cache."
  active_.erase(txn);
  {
    // The scoped context makes the client's ForceLog span (and the sends
    // it triggers) children of the commit span.
    obs::Tracer::Scope scope(tracer_, commit_span);
    logger_->Force(*lsn, [this, root, commit_span,
                          done = std::move(done)](Status st) {
      if (st.ok()) commits_.Increment();
      if (tracer_ != nullptr) {
        tracer_->EndSpan(commit_span);
        tracer_->EndSpan(root);
      }
      done(st);
    });
  }
}

Status TransactionEngine::Abort(TxnId txn) {
  if (crashed_) return Status::Aborted("engine crashed");
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::InvalidArgument("unknown transaction");
  }
  // Undo from the local cache ("If a transaction aborts while the undo
  // components of its log records are in the cache, then the log records
  // are available locally and do not need to be retrieved from a log
  // server"), logging redo-only compensation records so recovery replays
  // the rollback.
  ActiveTxn& state = it->second;
  obs::Tracer::Scope scope(tracer_, state.span);
  const obs::SpanContext root = state.span;
  for (auto u = state.updates.rbegin(); u != state.updates.rend(); ++u) {
    WalRecord clr;
    clr.type = WalType::kUpdate;
    clr.txn = txn;
    clr.page = u->page;
    clr.offset = u->offset;
    clr.redo = u->undo;  // compensation: restore the old image
    DLOG_ASSIGN_OR_RETURN(Lsn lsn, AppendRecord(clr));
    pool_->ApplyUpdate(u->page, u->offset, u->undo, lsn);
  }
  WalRecord rec;
  rec.type = WalType::kAbort;
  rec.txn = txn;
  DLOG_RETURN_IF_ERROR(AppendRecord(rec).status());
  active_.erase(it);
  aborts_.Increment();
  if (tracer_ != nullptr) tracer_->EndSpan(root);
  return Status::OK();
}

Status TransactionEngine::FlushUndoFor(PageId page) {
  if (!config_.split_records) return Status::OK();
  // "If a page referenced by an undo component of a log record in the
  // cache is scheduled for cleaning, the undo component must be sent to
  // log servers first."
  for (auto& [txn, state] : active_) {
    for (UpdateInfo& u : state.updates) {
      if (u.page != page || u.undo_logged) continue;
      WalRecord rec;
      rec.type = WalType::kUndo;
      rec.txn = txn;
      rec.page = u.page;
      rec.offset = u.offset;
      rec.update_lsn = u.lsn;
      rec.undo = u.undo;
      DLOG_RETURN_IF_ERROR(AppendRecord(rec).status());
      undo_bytes_logged_ += u.undo.size();
      u.undo_logged = true;
    }
  }
  return Status::OK();
}

void TransactionEngine::CleanPages(std::function<void(Status)> done) {
  if (crashed_) {
    sim_->After(0, [done = std::move(done)]() {
      done(Status::Aborted("engine crashed"));
    });
    return;
  }
  std::vector<PageId> dirty(pool_->dirty_pages().begin(),
                            pool_->dirty_pages().end());
  for (PageId page : dirty) {
    Status st = FlushUndoFor(page);
    if (!st.ok()) {
      sim_->After(0, [done = std::move(done), st]() { done(st); });
      return;
    }
  }
  // WAL rule: force the log past every dirty page's LSN before cleaning.
  const Lsn end = logger_->End();
  logger_->Force(end, [this, dirty, done = std::move(done)](Status st) {
    if (!st.ok()) {
      done(st);
      return;
    }
    if (crashed_) {
      done(Status::Aborted("engine crashed"));
      return;
    }
    for (PageId page : dirty) pool_->Clean(page);
    WalRecord rec;
    rec.type = WalType::kCheckpoint;
    Result<Lsn> checkpoint = AppendRecord(rec);
    if (config_.truncate_after_checkpoint && checkpoint.ok() &&
        active_.empty()) {
      // Quiescent: node recovery needs nothing before the checkpoint.
      (void)logger_->Truncate(*checkpoint);
    }
    done(Status::OK());
  });
}

void TransactionEngine::Crash() {
  crashed_ = true;
  pool_->LoseAll();
  active_.clear();
}

void TransactionEngine::Recover(std::function<void(Status)> done) {
  // Sequential asynchronous scan of the whole log.
  struct ScanState {
    std::vector<std::pair<Lsn, WalRecord>> records;
    Lsn cursor = 1;
    Lsn end = kNoLsn;
    std::function<void(Status)> done;
  };
  auto st = std::make_shared<ScanState>();
  st->end = logger_->End();
  st->done = std::move(done);
  crashed_ = false;

  if (st->end == kNoLsn) {
    sim_->After(0, [st]() { st->done(Status::OK()); });
    return;
  }

  auto step = std::make_shared<std::function<void()>>();
  *step = [this, st, step]() {
    if (st->cursor > st->end) {
      // --- Analysis ---
      std::map<TxnId, bool> finished;  // txn -> has outcome record
      for (const auto& [lsn, rec] : st->records) {
        switch (rec.type) {
          case WalType::kBegin:
            finished[rec.txn] = false;
            break;
          case WalType::kCommit:
          case WalType::kAbort:
            finished[rec.txn] = true;
            break;
          default:
            break;
        }
      }
      // --- Redo (committed and aborted transactions, in LSN order) ---
      for (const auto& [lsn, rec] : st->records) {
        if (rec.type != WalType::kUpdate) continue;
        auto f = finished.find(rec.txn);
        if (f == finished.end() || !f->second) continue;
        Page& page = pool_->Get(rec.page);
        if (page.lsn < lsn) {
          pool_->ApplyUpdate(rec.page, rec.offset, rec.redo, lsn);
        }
      }
      // --- Undo (unfinished transactions, reverse LSN order) ---
      // Undo components come from the update record itself or, under
      // splitting, from kUndo records keyed by update LSN.
      std::map<Lsn, Bytes> logged_undo;
      for (const auto& [lsn, rec] : st->records) {
        if (rec.type == WalType::kUndo) {
          logged_undo[rec.update_lsn] = rec.undo;
        }
      }
      for (auto it = st->records.rbegin(); it != st->records.rend(); ++it) {
        const auto& [lsn, rec] = *it;
        if (rec.type != WalType::kUpdate) continue;
        auto f = finished.find(rec.txn);
        if (f == finished.end() || f->second) continue;
        Page& page = pool_->Get(rec.page);
        if (page.lsn < lsn) continue;  // update never reached this image
        Bytes undo = rec.undo;
        if (undo.empty()) {
          auto lu = logged_undo.find(lsn);
          if (lu == logged_undo.end()) {
            // Split record whose undo was never logged: then its page was
            // never cleaned, so the disk image cannot contain the update.
            continue;
          }
          undo = lu->second;
        }
        pool_->ApplyUpdate(rec.page, rec.offset, undo, lsn);
      }
      st->done(Status::OK());
      return;
    }
    logger_->Read(st->cursor, [this, st, step](Result<Bytes> r) {
      if (r.ok()) {
        Result<WalRecord> rec = DecodeWalRecord(*r);
        if (rec.ok()) {
          st->records.emplace_back(st->cursor, *std::move(rec));
        }
      } else if (!r.status().IsNotFound()) {
        // OutOfRange / unreadable tail: treat as end of usable log.
        // NotFound (not-present records from log recovery) is skipped.
        if (!r.status().IsOutOfRange()) {
          st->done(r.status());
          return;
        }
      }
      ++st->cursor;
      (*step)();
    });
  };
  (*step)();
}

}  // namespace dlog::tp
