#ifndef DLOG_TP_BANK_H_
#define DLOG_TP_BANK_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "tp/engine.h"

namespace dlog::tp {

/// Layout and workload parameters of the ET1 bank (the DebitCredit
/// precursor of [Anonymous et al 85] that the paper's capacity analysis
/// is built on: "Each ET1 transaction ... writes 700 bytes of log data in
/// seven log records").
struct BankConfig {
  int accounts = 10000;
  int tellers = 100;
  int branches = 10;
  /// Padding of the audit record, sized so a default transaction logs
  /// about 700 bytes in 7 records.
  size_t audit_padding = 130;
};

/// The ET1 bank database: fixed arrays of account/teller/branch balances
/// mapped onto pages, plus an append-style history region. Each ET1
/// transaction logs seven records: begin, four balance/history updates,
/// one padded audit update, and the (forced) commit.
class BankDb {
 public:
  BankDb(TransactionEngine* engine, const BankConfig& config);

  /// Runs one ET1 transaction asynchronously:
  ///   account += delta; teller += delta; branch += delta;
  ///   history row appended; audit record written; commit forced.
  void RunEt1(int account, int teller, int branch, int64_t delta,
              std::function<void(Status)> done);

  /// Like RunEt1 but aborts instead of committing (undo-path testing).
  Status RunEt1Abort(int account, int teller, int branch, int64_t delta);

  // Balance accessors (through the buffer pool, i.e., post-recovery these
  // reflect exactly the committed state).
  int64_t AccountBalance(int account);
  int64_t TellerBalance(int teller);
  int64_t BranchBalance(int branch);
  int64_t TotalAccounts();
  int64_t TotalTellers();
  int64_t TotalBranches();

  const BankConfig& config() const { return config_; }

 private:
  /// Executes the five updates of an ET1 transaction.
  Result<TxnId> Prepare(int account, int teller, int branch, int64_t delta);

  int64_t ReadSlot(PageId page, uint32_t offset);
  Status UpdateSlot(TxnId txn, PageId page, uint32_t offset, int64_t value);

  // Page layout.
  uint32_t SlotsPerPage() const;
  PageId AccountPage(int i) const;
  uint32_t AccountOffset(int i) const;
  PageId TellerPage(int i) const;
  uint32_t TellerOffset(int i) const;
  PageId BranchPage(int i) const;
  uint32_t BranchOffset(int i) const;

  TransactionEngine* engine_;
  BankConfig config_;
  PageId teller_base_ = 0;
  PageId branch_base_ = 0;
  PageId history_base_ = 0;
  uint64_t history_seq_ = 0;
};

}  // namespace dlog::tp

#endif  // DLOG_TP_BANK_H_
