#include "tp/bank.h"

#include <cassert>

namespace dlog::tp {
namespace {

constexpr size_t kSlotBytes = 8;
constexpr size_t kHistoryRowBytes = 64;

Bytes EncodeI64(int64_t v) {
  Bytes out;
  Encoder enc(&out);
  enc.PutU64(static_cast<uint64_t>(v));
  return out;
}

int64_t DecodeI64(const Bytes& page_data, uint32_t offset) {
  Decoder dec(page_data.data() + offset, kSlotBytes);
  return static_cast<int64_t>(*dec.GetU64());
}

}  // namespace

BankDb::BankDb(TransactionEngine* engine, const BankConfig& config)
    : engine_(engine), config_(config) {
  const uint32_t slots = SlotsPerPage();
  const PageId account_pages = (config_.accounts + slots - 1) / slots;
  const PageId teller_pages = (config_.tellers + slots - 1) / slots;
  const PageId branch_pages = (config_.branches + slots - 1) / slots;
  teller_base_ = account_pages;
  branch_base_ = teller_base_ + teller_pages;
  history_base_ = branch_base_ + branch_pages;
}

uint32_t BankDb::SlotsPerPage() const {
  return static_cast<uint32_t>(engine_->disk().page_bytes() / kSlotBytes);
}

PageId BankDb::AccountPage(int i) const { return i / SlotsPerPage(); }
uint32_t BankDb::AccountOffset(int i) const {
  return (i % SlotsPerPage()) * kSlotBytes;
}
PageId BankDb::TellerPage(int i) const {
  return teller_base_ + i / SlotsPerPage();
}
uint32_t BankDb::TellerOffset(int i) const {
  return (i % SlotsPerPage()) * kSlotBytes;
}
PageId BankDb::BranchPage(int i) const {
  return branch_base_ + i / SlotsPerPage();
}
uint32_t BankDb::BranchOffset(int i) const {
  return (i % SlotsPerPage()) * kSlotBytes;
}

int64_t BankDb::ReadSlot(PageId page, uint32_t offset) {
  return DecodeI64(engine_->buffer_pool().Get(page).data, offset);
}

Status BankDb::UpdateSlot(TxnId txn, PageId page, uint32_t offset,
                          int64_t value) {
  return engine_->Update(txn, page, offset, EncodeI64(value));
}

Result<TxnId> BankDb::Prepare(int account, int teller, int branch,
                              int64_t delta) {
  assert(account >= 0 && account < config_.accounts);
  assert(teller >= 0 && teller < config_.tellers);
  assert(branch >= 0 && branch < config_.branches);

  DLOG_ASSIGN_OR_RETURN(TxnId txn, engine_->Begin());

  // Three balance updates.
  DLOG_RETURN_IF_ERROR(UpdateSlot(
      txn, AccountPage(account), AccountOffset(account),
      ReadSlot(AccountPage(account), AccountOffset(account)) + delta));
  DLOG_RETURN_IF_ERROR(UpdateSlot(
      txn, TellerPage(teller), TellerOffset(teller),
      ReadSlot(TellerPage(teller), TellerOffset(teller)) + delta));
  DLOG_RETURN_IF_ERROR(UpdateSlot(
      txn, BranchPage(branch), BranchOffset(branch),
      ReadSlot(BranchPage(branch), BranchOffset(branch)) + delta));

  // History insert: a fixed-size row in a rotating region.
  const uint32_t rows_per_page =
      static_cast<uint32_t>(engine_->disk().page_bytes() / kHistoryRowBytes);
  const PageId history_page =
      history_base_ + static_cast<PageId>((history_seq_ / rows_per_page) %
                                          64);  // 64-page rotating region
  const uint32_t history_offset =
      static_cast<uint32_t>((history_seq_ % rows_per_page) *
                            kHistoryRowBytes);
  ++history_seq_;
  Bytes row;
  Encoder enc(&row);
  enc.PutU64(txn);
  enc.PutU32(static_cast<uint32_t>(account));
  enc.PutU32(static_cast<uint32_t>(teller));
  enc.PutU32(static_cast<uint32_t>(branch));
  enc.PutU64(static_cast<uint64_t>(delta));
  row.resize(kHistoryRowBytes, 0);
  DLOG_RETURN_IF_ERROR(
      engine_->Update(txn, history_page, history_offset, std::move(row)));

  // Audit record padding the transaction to the ET1 log-volume profile,
  // in its own page past the history rotation region.
  Bytes audit(config_.audit_padding, 0xA5);
  DLOG_RETURN_IF_ERROR(
      engine_->Update(txn, history_base_ + 64, 0, std::move(audit)));

  return txn;
}

void BankDb::RunEt1(int account, int teller, int branch, int64_t delta,
                    std::function<void(Status)> done) {
  Result<TxnId> txn = Prepare(account, teller, branch, delta);
  if (!txn.ok()) {
    done(txn.status());
    return;
  }
  engine_->Commit(*txn, std::move(done));
}

Status BankDb::RunEt1Abort(int account, int teller, int branch,
                           int64_t delta) {
  DLOG_ASSIGN_OR_RETURN(TxnId txn, Prepare(account, teller, branch, delta));
  return engine_->Abort(txn);
}

int64_t BankDb::AccountBalance(int account) {
  return ReadSlot(AccountPage(account), AccountOffset(account));
}
int64_t BankDb::TellerBalance(int teller) {
  return ReadSlot(TellerPage(teller), TellerOffset(teller));
}
int64_t BankDb::BranchBalance(int branch) {
  return ReadSlot(BranchPage(branch), BranchOffset(branch));
}

int64_t BankDb::TotalAccounts() {
  int64_t total = 0;
  for (int i = 0; i < config_.accounts; ++i) total += AccountBalance(i);
  return total;
}
int64_t BankDb::TotalTellers() {
  int64_t total = 0;
  for (int i = 0; i < config_.tellers; ++i) total += TellerBalance(i);
  return total;
}
int64_t BankDb::TotalBranches() {
  int64_t total = 0;
  for (int i = 0; i < config_.branches; ++i) total += BranchBalance(i);
  return total;
}

}  // namespace dlog::tp
