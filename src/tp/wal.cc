#include "tp/wal.h"

namespace dlog::tp {

Bytes EncodeWalRecord(const WalRecord& record) {
  Bytes out;
  Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(record.type));
  enc.PutU64(record.txn);
  enc.PutU32(record.page);
  enc.PutU32(record.offset);
  enc.PutU64(record.update_lsn);
  enc.PutBlob(record.redo);
  enc.PutBlob(record.undo);
  return out;
}

Result<WalRecord> DecodeWalRecord(const Bytes& bytes) {
  Decoder dec(bytes);
  WalRecord record;
  DLOG_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < static_cast<uint8_t>(WalType::kBegin) ||
      type > static_cast<uint8_t>(WalType::kCheckpoint)) {
    return Status::Corruption("bad WAL record type");
  }
  record.type = static_cast<WalType>(type);
  DLOG_ASSIGN_OR_RETURN(record.txn, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(record.page, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(record.offset, dec.GetU32());
  DLOG_ASSIGN_OR_RETURN(record.update_lsn, dec.GetU64());
  DLOG_ASSIGN_OR_RETURN(record.redo, dec.GetBlob());
  DLOG_ASSIGN_OR_RETURN(record.undo, dec.GetBlob());
  if (!dec.Done()) return Status::Corruption("trailing WAL bytes");
  return record;
}

}  // namespace dlog::tp
