#ifndef DLOG_TP_WAL_H_
#define DLOG_TP_WAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/log_types.h"
#include "common/result.h"

namespace dlog::tp {

/// Transaction identifiers issued by the engine.
using TxnId = uint64_t;
/// Page identifiers within a node's page store.
using PageId = uint32_t;

/// Types of transaction-level log records. These are the payloads the
/// recovery manager hands to the (replicated) log — the log itself treats
/// them as opaque bytes.
enum class WalType : uint8_t {
  kBegin = 1,
  /// A page update carrying redo and (unless split) undo byte images.
  kUpdate = 2,
  kCommit = 3,
  kAbort = 4,
  /// An undo component logged separately under record splitting
  /// (Section 5.2), emitted just before its page is cleaned.
  kUndo = 5,
  /// A quiescent checkpoint: all pages clean, no active transactions.
  kCheckpoint = 6,
};

/// One transaction-level WAL record. Update records carry the byte range
/// they change: [offset, offset + redo.size()) within `page`.
struct WalRecord {
  WalType type = WalType::kBegin;
  TxnId txn = 0;
  PageId page = 0;
  uint32_t offset = 0;
  /// For kUndo records: the LSN of the update this undo belongs to.
  Lsn update_lsn = kNoLsn;
  Bytes redo;
  Bytes undo;

  friend bool operator==(const WalRecord& a, const WalRecord& b) {
    return a.type == b.type && a.txn == b.txn && a.page == b.page &&
           a.offset == b.offset && a.update_lsn == b.update_lsn &&
           a.redo == b.redo && a.undo == b.undo;
  }
};

Bytes EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(const Bytes& bytes);

}  // namespace dlog::tp

#endif  // DLOG_TP_WAL_H_
