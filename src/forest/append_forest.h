#ifndef DLOG_FOREST_APPEND_FOREST_H_
#define DLOG_FOREST_APPEND_FOREST_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dlog::forest {

/// The append-forest of Section 4.3: an index over an append-only medium
/// giving "logarithmic read access to records" while "new records may be
/// added ... in constant time using append only storage, providing that
/// keys are appended to the tree in strictly increasing order."
///
/// A complete append forest (2^n - 1 nodes) is a binary search tree where
///   1. the key of the root of any subtree is greater than all its
///      descendants' keys, and
///   2. all keys in the right subtree of any node are greater than all
///      keys in the left subtree.
/// An incomplete append forest is a forest of at most n+1 complete trees
/// of non-increasing height (only the two smallest may share a height),
/// linked right-to-left by per-node "forest pointers".
///
/// Nodes live in an append-only array (modeling write-once storage): a
/// node, once appended, is never modified. Each node indexes a contiguous
/// key range [key_low, key_high] and carries an opaque value (in the log
/// server, the disk location of the records in that LSN range).
class AppendForest {
 public:
  using Key = uint64_t;
  using Value = uint64_t;

  /// One immutable node of the forest as laid out on append-only storage.
  struct Node {
    Key key_low = 0;    // lowest key indexed by this node
    Key key_high = 0;   // highest key (the node's BST key)
    Value value = 0;    // opaque payload for the range
    /// Position of the left/right sons in the node array, or kNil.
    /// Leaves have no sons.
    uint64_t left = kNil;
    uint64_t right = kNil;
    /// Forest pointer: the root of the next tree to the left at the time
    /// this node was the overall root, or kNil.
    uint64_t forest = kNil;
    /// Height of the complete tree rooted here (leaf = 0).
    uint32_t height = 0;
  };

  static constexpr uint64_t kNil = ~uint64_t{0};

  AppendForest() = default;

  /// Appends a node covering keys [key_low, key_high]; key_low must be
  /// exactly one past the previous node's key_high (strictly increasing,
  /// gap-free append order), except for the first node.
  Status Append(Key key_low, Key key_high, Value value);

  /// Convenience for single-key appends.
  Status Append(Key key, Value value) { return Append(key, key, value); }

  /// Finds the node whose range contains `key`. NotFound if the key is
  /// outside every appended range.
  Result<Node> Find(Key key) const;

  /// Like Find but also reports how many pointer traversals the search
  /// made (for the O(log n) measurements of experiment E6).
  Result<Node> FindCounted(Key key, uint64_t* traversals) const;

  /// Number of nodes appended.
  uint64_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// The roots of the trees currently in the forest, rightmost (largest
  /// keys, most recent) first — i.e., the chain of forest pointers from
  /// the overall root.
  std::vector<uint64_t> Roots() const;

  /// Direct node access (for tests and for persisting to storage).
  const Node& node(uint64_t index) const { return nodes_[index]; }

  /// Verifies all structural invariants; used by property tests.
  Status CheckInvariants() const;

 private:
  std::vector<Node> nodes_;  // append-only; index == append order
};

}  // namespace dlog::forest

#endif  // DLOG_FOREST_APPEND_FOREST_H_
