#include "forest/append_forest.h"

#include <algorithm>
#include <cassert>

namespace dlog::forest {
namespace {

/// Number of nodes in a complete tree of height h (leaf = 0).
uint64_t CompleteSize(uint32_t height) {
  return (uint64_t{1} << (height + 1)) - 1;
}

}  // namespace

Status AppendForest::Append(Key key_low, Key key_high, Value value) {
  if (key_high < key_low) {
    return Status::InvalidArgument("key_high < key_low");
  }
  if (!nodes_.empty() && key_low != nodes_.back().key_high + 1) {
    return Status::InvalidArgument(
        "keys must be appended in strictly increasing, gap-free order");
  }

  Node node;
  node.key_low = key_low;
  node.key_high = key_high;
  node.value = value;

  // Reconstruct the two rightmost roots from the node array: the overall
  // root is the last node; the tree to its left is found via its forest
  // pointer. (We keep no auxiliary mutable state: everything needed is in
  // the append-only array, as write-once storage requires.)
  if (!nodes_.empty()) {
    const uint64_t right_root = nodes_.size() - 1;
    const uint64_t left_root = nodes_[right_root].forest;
    if (left_root != kNil &&
        nodes_[left_root].height == nodes_[right_root].height) {
      // The two smallest trees have equal height: the new node becomes
      // their parent, forming a complete tree one taller.
      node.left = left_root;
      node.right = right_root;
      node.height = nodes_[right_root].height + 1;
      node.forest = nodes_[left_root].forest;
    } else {
      // New singleton tree; link it to the previous overall root.
      node.height = 0;
      node.forest = right_root;
    }
  }
  nodes_.push_back(node);
  return Status::OK();
}

std::vector<uint64_t> AppendForest::Roots() const {
  std::vector<uint64_t> roots;
  if (nodes_.empty()) return roots;
  uint64_t cur = nodes_.size() - 1;
  while (cur != kNil) {
    roots.push_back(cur);
    cur = nodes_[cur].forest;
  }
  return roots;
}

Result<AppendForest::Node> AppendForest::Find(Key key) const {
  uint64_t traversals = 0;
  return FindCounted(key, &traversals);
}

Result<AppendForest::Node> AppendForest::FindCounted(
    Key key, uint64_t* traversals) const {
  *traversals = 0;
  if (nodes_.empty()) return Status::NotFound("empty forest");
  if (key > nodes_.back().key_high || key < nodes_.front().key_low) {
    return Status::NotFound("key outside appended range");
  }

  // A complete tree's nodes occupy a contiguous suffix of the append
  // order ending at its root, so the subtree minimum is computable from
  // the root index and height alone.
  auto tree_min = [this](uint64_t root) -> Key {
    const uint64_t first = root - (CompleteSize(nodes_[root].height) - 1);
    return nodes_[first].key_low;
  };

  // Phase 1: walk the forest-pointer chain from the overall root until a
  // tree that (potentially) contains the key.
  uint64_t cur = nodes_.size() - 1;
  while (key < tree_min(cur)) {
    cur = nodes_[cur].forest;
    ++*traversals;
    if (cur == kNil) return Status::NotFound("key below all trees");
  }

  // Phase 2: binary-search the complete tree.
  while (true) {
    const Node& n = nodes_[cur];
    if (key >= n.key_low && key <= n.key_high) return n;
    if (n.left == kNil) {
      return Status::NotFound("key not indexed");  // unreachable: gap-free
    }
    ++*traversals;
    cur = (key >= tree_min(n.right)) ? n.right : n.left;
  }
}

Status AppendForest::CheckInvariants() const {
  if (nodes_.empty()) return Status::OK();

  // Key ranges are gap-free and increasing in append order.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.key_high < n.key_low) {
      return Status::Internal("node with inverted key range");
    }
    if (i > 0 && n.key_low != nodes_[i - 1].key_high + 1) {
      return Status::Internal("key ranges not contiguous in append order");
    }
  }

  // Forest structure: roots right-to-left have strictly decreasing
  // heights except the two rightmost, which may tie.
  std::vector<uint64_t> roots = Roots();
  for (size_t i = 0; i + 1 < roots.size(); ++i) {
    const uint32_t right_h = nodes_[roots[i]].height;
    const uint32_t left_h = nodes_[roots[i + 1]].height;
    if (i == 0) {
      if (left_h < right_h) {
        return Status::Internal("forest heights increase leftward only");
      }
    } else if (left_h <= right_h) {
      return Status::Internal(
          "only the two smallest trees may share a height");
    }
  }

  // Per-node structural checks.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if ((n.left == kNil) != (n.right == kNil)) {
      return Status::Internal("node with exactly one son");
    }
    if (n.height == 0 && n.left != kNil) {
      return Status::Internal("leaf with sons");
    }
    if (n.height > 0) {
      if (n.left == kNil) return Status::Internal("internal node no sons");
      const Node& l = nodes_[n.left];
      const Node& r = nodes_[n.right];
      if (l.height != n.height - 1 || r.height != n.height - 1) {
        return Status::Internal("son height mismatch");
      }
      // Property 1: root key greater than all descendants' keys.
      // Property 2: right subtree keys greater than left subtree keys.
      if (!(l.key_high < r.key_high && r.key_high < n.key_low)) {
        return Status::Internal("BST key properties violated");
      }
      if (n.left >= i || n.right >= i) {
        return Status::Internal("son appended after parent");
      }
      // Sons of a complete tree are adjacent suffixes.
      if (n.right != i - 1) {
        return Status::Internal("right son must immediately precede root");
      }
      if (n.left != i - CompleteSize(n.height - 1) - 1) {
        return Status::Internal("left son at wrong offset");
      }
    }
  }

  // Every node is reachable from the overall root: complete trees are
  // contiguous, so reachability follows from root/size arithmetic.
  uint64_t covered = 0;
  for (uint64_t root : roots) covered += CompleteSize(nodes_[root].height);
  if (covered != nodes_.size()) {
    return Status::Internal("trees do not partition the node array");
  }
  return Status::OK();
}

}  // namespace dlog::forest
