#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace dlog::net {

Status NetworkConfig::Validate() const {
  if (bandwidth_bits_per_sec <= 0) {
    return Status::InvalidArgument("bandwidth_bits_per_sec must be > 0");
  }
  if (loss_probability < 0 || loss_probability > 1) {
    return Status::InvalidArgument("loss_probability must be in [0, 1]");
  }
  if (duplicate_probability < 0 || duplicate_probability > 1) {
    return Status::InvalidArgument(
        "duplicate_probability must be in [0, 1]");
  }
  if (mtu_bytes == 0) {
    return Status::InvalidArgument("mtu_bytes must be > 0");
  }
  return Status::OK();
}

Network::Network(sim::Scheduler* sim, const NetworkConfig& config)
    : sim_(sim), config_(config), rng_(config.seed) {
  DLOG_CHECK_OK(config.Validate());
}

void Network::Sequenced(sim::Callback fn) {
  if (hooks_.sequencer != nullptr) {
    hooks_.sequencer->Post(sim_->Now(), /*key=*/0, std::move(fn));
    return;
  }
  fn();
}

void Network::Attach(NodeId id, Nic* nic) {
  assert(!IsMulticast(id));
  Sequenced([this, id, nic] {
    if (id >= node_table_.size()) node_table_.resize(id + 1, nullptr);
    assert(node_table_[id] == nullptr);
    node_table_[id] = nic;
  });
}

void Network::Detach(NodeId id) {
  Sequenced([this, id] {
    if (id < node_table_.size()) node_table_[id] = nullptr;
  });
}

void Network::JoinGroup(NodeId group, NodeId member) {
  assert(IsMulticast(group));
  Sequenced([this, group, member] {
    std::vector<NodeId>& members = groups_[group];
    auto it = std::lower_bound(members.begin(), members.end(), member);
    if (it == members.end() || *it != member) members.insert(it, member);
  });
}

void Network::LeaveGroup(NodeId group, NodeId member) {
  Sequenced([this, group, member] {
    auto it = groups_.find(group);
    if (it == groups_.end()) return;
    std::vector<NodeId>& members = it->second;
    auto pos = std::lower_bound(members.begin(), members.end(), member);
    if (pos != members.end() && *pos == member) members.erase(pos);
  });
}

void Network::Send(const Packet& packet) {
  if (hooks_.sequencer != nullptr) {
    // Keyed by the source node: equal-time sends replay in ascending
    // node order under either engine's sequencer, so shared-medium tie
    // arbitration is a pure function of simulated state.
    const sim::Time enqueue = sim_->Now();
    hooks_.sequencer->Post(
        enqueue, static_cast<uint64_t>(packet.src),
        [this, packet, enqueue] { SendNow(packet, enqueue); });
    return;
  }
  SendNow(packet, sim_->Now());
}

void Network::SendNow(const Packet& packet, sim::Time enqueue) {
  if (packet.payload.size() > config_.mtu_bytes) {
    packets_oversized_.Increment();
    return;
  }
  packets_sent_.Increment();

  const uint64_t bits =
      static_cast<uint64_t>(packet.WireSize(config_.header_bytes)) * 8;
  bits_sent_ += bits;

  // Serialize transmissions on the shared medium.
  const sim::Duration tx_time = sim::SecondsToDuration(
      static_cast<double>(bits) / config_.bandwidth_bits_per_sec);
  const sim::Time tx_start = std::max(enqueue, medium_free_at_);
  medium_free_at_ = tx_start + tx_time;
  const sim::Time arrival = medium_free_at_ + config_.propagation_delay;
  if (busy_probe_) busy_probe_(tx_start, medium_free_at_);

  PacketTiming timing;
  timing.trace = packet.trace;
  timing.span = packet.span;
  timing.src = packet.src;
  timing.wire_bytes = packet.WireSize(config_.header_bytes);
  timing.enqueue = enqueue;
  timing.tx_start = tx_start;
  timing.tx_end = medium_free_at_;

  if (IsMulticast(packet.dst)) {
    auto it = groups_.find(packet.dst);
    if (it == groups_.end()) return;
    for (NodeId member : it->second) {
      if (member == packet.src) continue;
      DeliverTo(member, packet, arrival, timing);
    }
  } else {
    DeliverTo(packet.dst, packet, arrival, timing);
  }
}

void Network::SetPartition(const std::vector<std::vector<NodeId>>& groups) {
  partition_logical_ = true;
  Sequenced([this, groups] {
    partition_group_.clear();
    for (size_t g = 0; g < groups.size(); ++g) {
      for (NodeId node : groups[g]) {
        partition_group_[node] = static_cast<int>(g);
      }
    }
    partition_active_ = true;
  });
}

void Network::HealPartition() {
  partition_logical_ = false;
  Sequenced([this] {
    partition_active_ = false;
    partition_group_.clear();
  });
}

bool Network::Partitioned(NodeId a, NodeId b) const {
  if (!partition_active_) return false;
  auto group_of = [this](NodeId node) {
    auto it = partition_group_.find(node);
    return it == partition_group_.end() ? -1 : it->second;
  };
  return group_of(a) != group_of(b);
}

void Network::SetLinkFault(NodeId src, NodeId dst, const LinkFault& fault) {
  Sequenced([this, src, dst, fault] { link_faults_[{src, dst}] = fault; });
}

void Network::ClearLinkFault(NodeId src, NodeId dst) {
  Sequenced([this, src, dst] { link_faults_.erase({src, dst}); });
}

void Network::ClearLinkFaults() {
  Sequenced([this] { link_faults_.clear(); });
}

void Network::DeliverTo(NodeId dst, const Packet& packet,
                        sim::Time arrival, PacketTiming timing) {
  timing.dst = dst;
  timing.arrival = arrival;
  if (Partitioned(packet.src, dst)) {
    packets_partition_dropped_.Increment();
    if (packet_probe_) packet_probe_(timing);
    return;
  }
  Nic* nic = dst < node_table_.size() ? node_table_[dst] : nullptr;
  if (nic == nullptr) {
    packets_lost_.Increment();
    if (packet_probe_) packet_probe_(timing);
    return;
  }
  if (!link_faults_.empty()) {
    auto fault = link_faults_.find({packet.src, dst});
    if (fault != link_faults_.end()) {
      if (fault->second.extra_loss > 0 &&
          rng_.Bernoulli(fault->second.extra_loss)) {
        packets_lost_.Increment();
        if (packet_probe_) packet_probe_(timing);
        return;
      }
      arrival += fault->second.extra_latency;
      timing.arrival = arrival;
    }
  }
  int copies = 1;
  if (config_.loss_probability > 0 &&
      rng_.Bernoulli(config_.loss_probability)) {
    packets_lost_.Increment();
    copies = 0;
  } else if (config_.duplicate_probability > 0 &&
             rng_.Bernoulli(config_.duplicate_probability)) {
    copies = 2;
  }
  timing.delivered = copies > 0;
  if (packet_probe_) packet_probe_(timing);
  sim::Scheduler* target =
      hooks_.scheduler_of ? hooks_.scheduler_of(dst) : sim_;
  for (int i = 0; i < copies; ++i) {
    // Packet carries a refcounted payload: this capture shares the
    // sender's buffer with every receiver instead of duplicating it.
    packets_delivered_.Increment();
    target->At(arrival + static_cast<sim::Duration>(i) * sim::kMicrosecond,
               [nic, packet]() { nic->Deliver(packet); });
  }
}

double Network::Utilization() const {
  const sim::Duration elapsed = sim_->Now() - start_time_;
  if (elapsed == 0) return 0.0;
  const double capacity_bits =
      config_.bandwidth_bits_per_sec * sim::DurationToSeconds(elapsed);
  if (capacity_bits <= 0) return 0.0;
  return static_cast<double>(bits_sent_) / capacity_bits;
}

Nic::Nic(sim::Scheduler* sim, size_t ring_slots)
    : sim_(sim), ring_slots_(ring_slots) {
  assert(ring_slots > 0);
}

void Nic::SetUp(bool up) {
  up_ = up;
  if (!up) ring_in_use_ = 0;  // power cycle clears the ring
}

void Nic::Deliver(const Packet& packet) {
  if (!up_) {
    down_drops_.Increment();
    return;
  }
  if (ring_in_use_ >= ring_slots_) {
    overflow_drops_.Increment();
    return;
  }
  ++ring_in_use_;
  packets_received_.Increment();
  if (handler_) {
    handler_(packet);
  } else {
    CompleteReceive();
  }
}

void Nic::CompleteReceive() {
  if (ring_in_use_ > 0) --ring_in_use_;
}

}  // namespace dlog::net
