#ifndef DLOG_NET_PACKET_H_
#define DLOG_NET_PACKET_H_

#include <cstdint>

#include "common/bytes.h"

namespace dlog::net {

/// Identifies a node on the simulated local network. Ids at or above
/// kMulticastBase name multicast groups instead of single nodes.
using NodeId = uint32_t;

/// Destination ids >= kMulticastBase address multicast groups.
constexpr NodeId kMulticastBase = 0x80000000u;

/// Returns true if `id` names a multicast group.
inline bool IsMulticast(NodeId id) { return id >= kMulticastBase; }

/// A network packet. The payload is an opaque byte string produced by the
/// wire layer; the network only looks at sizes and addresses. The payload
/// is refcounted and immutable (SharedBytes): queueing, multicast
/// fan-out, duplication, and per-receiver delivery all share one buffer,
/// and a delivered packet keeps that buffer alive even if the sending
/// node has since crashed or been destroyed.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  SharedBytes payload;
  /// Causal-span identity of the message this packet carries (obs trace
  /// and span ids; 0 = untraced). Plain integers here so the network
  /// layer needs no observability dependency: the wire layer stamps them
  /// and the network's packet probe reports per-packet queue/transmit/
  /// delivery timing against them for latency attribution.
  uint64_t trace = 0;
  uint64_t span = 0;

  /// Total bytes on the wire, including link-level header/trailer.
  size_t WireSize(size_t header_bytes) const {
    return payload.size() + header_bytes;
  }
};

}  // namespace dlog::net

#endif  // DLOG_NET_PACKET_H_
