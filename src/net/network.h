#ifndef DLOG_NET_NETWORK_H_
#define DLOG_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::net {

class Nic;

/// Configuration of one simulated local-area network (Section 2: a high
/// speed LAN; Section 4.1 assumes ~10 megabits/second Ethernet-class
/// media, possibly upgraded to ~100 Mbit fiber).
struct NetworkConfig {
  double bandwidth_bits_per_sec = 10e6;   // 10 Mbit/s Ethernet class
  sim::Duration propagation_delay = 50 * sim::kMicrosecond;
  double loss_probability = 0.0;          // per-delivery independent loss
  double duplicate_probability = 0.0;     // per-delivery duplication
  size_t header_bytes = 32;               // link + protocol header overhead
  size_t mtu_bytes = 1500;                // maximum payload size
  uint64_t seed = 1;                      // drives loss/duplication draws

  /// OK iff the configuration describes a usable network (positive
  /// bandwidth, nonzero MTU, probabilities in [0, 1], ...).
  Status Validate() const;
};

/// Degradation applied to one directed src->dst link while a fault is
/// injected (chaos::FaultType::kLinkDegrade): extra independent loss on
/// top of NetworkConfig::loss_probability, and extra one-way latency.
struct LinkFault {
  double extra_loss = 0.0;
  sim::Duration extra_latency = 0;
};

/// A shared-medium local network: one transmission at a time (like an
/// Ethernet segment), so aggregate offered load beyond the bandwidth
/// queues senders. Supports unicast and multicast delivery, independent
/// per-delivery loss, and duplication.
///
/// For the paper's dual-network availability configuration, instantiate
/// two Networks and attach each node's two Nics.
class Network {
 public:
  Network(sim::Scheduler* sim, const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sequencing seam. The Network is the one actor every node touches
  /// (shared-medium arbitration, one loss/duplication Rng, the topology
  /// maps), so its mutations decide tie order whenever two nodes act in
  /// the same simulated tick. With hooks set, Send() and the topology
  /// mutators capture their arguments plus the caller's clock and Post
  /// them to `sequencer`, which replays them single-threaded in
  /// deterministic (time, src node) order — through the unchanged
  /// arbitration code below. The cluster installs a sequencer under BOTH
  /// engines so ties break identically: the parallel engine drains posts
  /// at its window barrier (sim::ParallelSimulator), the serial engine at
  /// the end of the posting tick (sim::TickSequencer) — the same merged
  /// order, since a tick never spans a window boundary.
  /// Deliveries are then scheduled onto `scheduler_of(dst)` — the
  /// destination node's shard under the parallel engine (propagation
  /// delay >= the engine lookahead guarantees they land after the
  /// barrier), or the one serial queue when unset. With no hooks at all
  /// (standalone Network unit tests), everything executes inline in call
  /// order, exactly as before the sequencing seam existed.
  struct SequencingHooks {
    sim::SequencedExecutor* sequencer = nullptr;
    std::function<sim::Scheduler*(NodeId)> scheduler_of;
  };
  void SetSequencing(SequencingHooks hooks) { hooks_ = std::move(hooks); }

  /// Attaches a NIC under the given address. The address must be unused
  /// and must not be a multicast id.
  void Attach(NodeId id, Nic* nic);
  /// Detaches a NIC (e.g., permanent node removal).
  void Detach(NodeId id);

  /// Adds/removes `member` to the multicast group `group`
  /// (group >= kMulticastBase).
  void JoinGroup(NodeId group, NodeId member);
  void LeaveGroup(NodeId group, NodeId member);

  /// Transmits a packet. The sender queues behind in-progress
  /// transmissions (shared medium); each receiver independently
  /// experiences loss/duplication. Oversized payloads (> mtu) are a
  /// programming error at the wire layer and are dropped with a count.
  void Send(const Packet& packet);

  /// Splits the network: nodes in different groups cannot exchange
  /// packets (delivery is silently filtered, like a failed bridge
  /// between segments). Nodes named in no group share one implicit
  /// extra group. Replaces any previous partition.
  void SetPartition(const std::vector<std::vector<NodeId>>& groups);
  /// Removes the partition: full connectivity again.
  void HealPartition();
  /// Logical partition state as of the last SetPartition/HealPartition
  /// *call* (under the parallel engine the filtering itself applies at
  /// the next barrier; callers sequencing set/heal decisions — the chaos
  /// controller — need call-time semantics).
  bool HasPartition() const { return partition_logical_; }
  /// True when a partition is active and separates `a` from `b`.
  bool Partitioned(NodeId a, NodeId b) const;

  /// Installs (or replaces) a fault on the directed link src->dst.
  /// Delivered packets on that link suffer `extra_loss` on top of the
  /// configured loss probability and arrive `extra_latency` later.
  void SetLinkFault(NodeId src, NodeId dst, const LinkFault& fault);
  void ClearLinkFault(NodeId src, NodeId dst);
  void ClearLinkFaults();

  const NetworkConfig& config() const { return config_; }

  /// Medium busy-interval probe: invoked once per accepted transmission
  /// with the interval [tx_start, tx_end) the shared medium is occupied.
  /// Transmissions serialize, so intervals never overlap and arrive in
  /// non-decreasing start order — an exact utilization timeline feed.
  using BusyProbe = std::function<void(sim::Time start, sim::Time end)>;
  void SetBusyProbe(BusyProbe probe) { busy_probe_ = std::move(probe); }

  /// Per-delivery timing record for latency attribution: when the packet
  /// was offered to the medium (enqueue), when its transmission started
  /// and ended on the shared medium, and when this copy reached `dst`
  /// (including propagation and any link-fault latency). `delivered` is
  /// false for copies dropped by loss, partition, or a missing NIC.
  struct PacketTiming {
    uint64_t trace = 0;  // Packet::trace (0 = untraced)
    uint64_t span = 0;   // Packet::span
    NodeId src = 0;
    NodeId dst = 0;
    size_t wire_bytes = 0;
    sim::Time enqueue = 0;
    sim::Time tx_start = 0;
    sim::Time tx_end = 0;
    sim::Time arrival = 0;
    bool delivered = false;
  };
  using PacketProbe = std::function<void(const PacketTiming&)>;
  void SetPacketProbe(PacketProbe probe) {
    packet_probe_ = std::move(probe);
  }

  /// Total payload+header bits accepted for transmission.
  uint64_t bits_sent() const { return bits_sent_; }
  /// Offered-load utilization of the medium since construction.
  double Utilization() const;

  sim::Counter& packets_sent() { return packets_sent_; }
  sim::Counter& packets_delivered() { return packets_delivered_; }
  sim::Counter& packets_lost() { return packets_lost_; }
  sim::Counter& packets_oversized() { return packets_oversized_; }
  sim::Counter& packets_partition_dropped() {
    return packets_partition_dropped_;
  }

 private:
  /// The original Send body: shared-medium arbitration at `enqueue` plus
  /// fan-out. Serial: called inline. Parallel: replayed at the barrier.
  void SendNow(const Packet& packet, sim::Time enqueue);
  void DeliverTo(NodeId dst, const Packet& packet, sim::Time arrival,
                 PacketTiming timing);
  /// Runs a shared-state mutation now (serial) or Posts it with control
  /// key 0 (parallel).
  void Sequenced(sim::Callback fn);

  sim::Scheduler* sim_;
  NetworkConfig config_;
  SequencingHooks hooks_;
  Rng rng_;
  /// Unicast routing, dense-indexed by NodeId (node ids are small and
  /// contiguous in practice; nullptr = no NIC attached): O(1) lookup on
  /// the per-delivery hot path.
  std::vector<Nic*> node_table_;
  /// Multicast membership as sorted member vectors: group fan-out walks
  /// a contiguous array in the same ascending order as the std::set it
  /// replaces, with no per-send allocation.
  std::map<NodeId, std::vector<NodeId>> groups_;
  /// Partition state: group index per named node; unnamed nodes share
  /// the implicit group -1. `partition_logical_` tracks the call-time
  /// view (see HasPartition); `partition_active_` the applied one.
  bool partition_logical_ = false;
  bool partition_active_ = false;
  std::map<NodeId, int> partition_group_;
  /// Directed-link degradations, keyed src->dst.
  std::map<std::pair<NodeId, NodeId>, LinkFault> link_faults_;
  sim::Time medium_free_at_ = 0;
  uint64_t bits_sent_ = 0;
  sim::Time start_time_ = 0;
  sim::Counter packets_sent_;
  sim::Counter packets_delivered_;
  sim::Counter packets_lost_;
  sim::Counter packets_oversized_;
  sim::Counter packets_partition_dropped_;
  BusyProbe busy_probe_;
  PacketProbe packet_probe_;
};

/// A network interface with a finite receive ring. Section 4.1: "Log
/// servers will frequently encounter back to back requests, and so must
/// have sophisticated network interfaces that can buffer multiple
/// packets." Packets arriving while the ring is full are dropped and
/// counted. The endpoint must call CompleteReceive() when it has finished
/// processing a delivered packet, freeing the ring slot.
class Nic {
 public:
  using Handler = std::function<void(const Packet&)>;

  /// `ring_slots` is the number of packets the interface can buffer.
  Nic(sim::Scheduler* sim, size_t ring_slots);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Installs the receive callback. The callback is responsible for
  /// eventually calling CompleteReceive() exactly once per invocation.
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Powers the interface on/off. A down NIC drops all traffic; used for
  /// node crash injection.
  void SetUp(bool up);
  bool IsUp() const { return up_; }

  /// Called by Network to hand over an arriving packet.
  void Deliver(const Packet& packet);

  /// Frees one receive-ring slot.
  void CompleteReceive();

  size_t ring_in_use() const { return ring_in_use_; }
  sim::Counter& overflow_drops() { return overflow_drops_; }
  sim::Counter& down_drops() { return down_drops_; }
  sim::Counter& packets_received() { return packets_received_; }

 private:
  sim::Scheduler* sim_;
  size_t ring_slots_;
  size_t ring_in_use_ = 0;
  bool up_ = true;
  Handler handler_;
  sim::Counter overflow_drops_;
  sim::Counter down_drops_;
  sim::Counter packets_received_;
};

}  // namespace dlog::net

#endif  // DLOG_NET_NETWORK_H_
