file(REMOVE_RECURSE
  "CMakeFiles/bench_init_wait_time.dir/bench_init_wait_time.cpp.o"
  "CMakeFiles/bench_init_wait_time.dir/bench_init_wait_time.cpp.o.d"
  "bench_init_wait_time"
  "bench_init_wait_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_init_wait_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
