# Empty compiler generated dependencies file for bench_init_wait_time.
# This may be replaced when dependencies are built.
