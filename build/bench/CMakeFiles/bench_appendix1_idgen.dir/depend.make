# Empty dependencies file for bench_appendix1_idgen.
# This may be replaced when dependencies are built.
