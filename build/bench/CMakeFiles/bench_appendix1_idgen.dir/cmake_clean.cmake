file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix1_idgen.dir/bench_appendix1_idgen.cpp.o"
  "CMakeFiles/bench_appendix1_idgen.dir/bench_appendix1_idgen.cpp.o.d"
  "bench_appendix1_idgen"
  "bench_appendix1_idgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix1_idgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
