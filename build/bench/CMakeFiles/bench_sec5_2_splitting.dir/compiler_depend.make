# Empty compiler generated dependencies file for bench_sec5_2_splitting.
# This may be replaced when dependencies are built.
