file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_2_splitting.dir/bench_sec5_2_splitting.cpp.o"
  "CMakeFiles/bench_sec5_2_splitting.dir/bench_sec5_2_splitting.cpp.o.d"
  "bench_sec5_2_splitting"
  "bench_sec5_2_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_2_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
