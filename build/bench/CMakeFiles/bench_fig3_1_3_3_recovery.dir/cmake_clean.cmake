file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_1_3_3_recovery.dir/bench_fig3_1_3_3_recovery.cpp.o"
  "CMakeFiles/bench_fig3_1_3_3_recovery.dir/bench_fig3_1_3_3_recovery.cpp.o.d"
  "bench_fig3_1_3_3_recovery"
  "bench_fig3_1_3_3_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_1_3_3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
