# Empty dependencies file for bench_fig3_1_3_3_recovery.
# This may be replaced when dependencies are built.
