# Empty compiler generated dependencies file for bench_sec5_4_load_assignment.
# This may be replaced when dependencies are built.
