file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_4_load_assignment.dir/bench_sec5_4_load_assignment.cpp.o"
  "CMakeFiles/bench_sec5_4_load_assignment.dir/bench_sec5_4_load_assignment.cpp.o.d"
  "bench_sec5_4_load_assignment"
  "bench_sec5_4_load_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_4_load_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
