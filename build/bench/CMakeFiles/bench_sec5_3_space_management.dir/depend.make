# Empty dependencies file for bench_sec5_3_space_management.
# This may be replaced when dependencies are built.
