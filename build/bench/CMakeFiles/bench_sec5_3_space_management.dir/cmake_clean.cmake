file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_3_space_management.dir/bench_sec5_3_space_management.cpp.o"
  "CMakeFiles/bench_sec5_3_space_management.dir/bench_sec5_3_space_management.cpp.o.d"
  "bench_sec5_3_space_management"
  "bench_sec5_3_space_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_3_space_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
