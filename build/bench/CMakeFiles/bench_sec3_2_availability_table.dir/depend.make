# Empty dependencies file for bench_sec3_2_availability_table.
# This may be replaced when dependencies are built.
