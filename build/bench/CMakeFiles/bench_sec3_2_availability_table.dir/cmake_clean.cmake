file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_2_availability_table.dir/bench_sec3_2_availability_table.cpp.o"
  "CMakeFiles/bench_sec3_2_availability_table.dir/bench_sec3_2_availability_table.cpp.o.d"
  "bench_sec3_2_availability_table"
  "bench_sec3_2_availability_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_2_availability_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
