# Empty dependencies file for bench_append_forest.
# This may be replaced when dependencies are built.
