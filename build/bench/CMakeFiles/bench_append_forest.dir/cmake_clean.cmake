file(REMOVE_RECURSE
  "CMakeFiles/bench_append_forest.dir/bench_append_forest.cpp.o"
  "CMakeFiles/bench_append_forest.dir/bench_append_forest.cpp.o.d"
  "bench_append_forest"
  "bench_append_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_append_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
