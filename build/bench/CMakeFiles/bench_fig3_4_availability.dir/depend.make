# Empty dependencies file for bench_fig3_4_availability.
# This may be replaced when dependencies are built.
