# Empty compiler generated dependencies file for bench_group_commit_ablation.
# This may be replaced when dependencies are built.
