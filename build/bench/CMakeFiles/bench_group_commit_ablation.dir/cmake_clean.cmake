file(REMOVE_RECURSE
  "CMakeFiles/bench_group_commit_ablation.dir/bench_group_commit_ablation.cpp.o"
  "CMakeFiles/bench_group_commit_ablation.dir/bench_group_commit_ablation.cpp.o.d"
  "bench_group_commit_ablation"
  "bench_group_commit_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_commit_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
