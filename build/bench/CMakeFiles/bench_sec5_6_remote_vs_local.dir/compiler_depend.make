# Empty compiler generated dependencies file for bench_sec5_6_remote_vs_local.
# This may be replaced when dependencies are built.
