file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_6_remote_vs_local.dir/bench_sec5_6_remote_vs_local.cpp.o"
  "CMakeFiles/bench_sec5_6_remote_vs_local.dir/bench_sec5_6_remote_vs_local.cpp.o.d"
  "bench_sec5_6_remote_vs_local"
  "bench_sec5_6_remote_vs_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_6_remote_vs_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
