# Empty dependencies file for bench_sec4_1_capacity.
# This may be replaced when dependencies are built.
