# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/forest_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/log_store_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_log_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/log_server_test[1]_include.cmake")
include("/root/repo/build/tests/tp_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/truncation_test[1]_include.cmake")
include("/root/repo/build/tests/log_client_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/wire_property_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
