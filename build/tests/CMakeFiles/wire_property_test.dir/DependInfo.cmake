
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wire_property_test.cc" "tests/CMakeFiles/wire_property_test.dir/wire_property_test.cc.o" "gcc" "tests/CMakeFiles/wire_property_test.dir/wire_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dlog_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/dlog_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/epoch/CMakeFiles/dlog_epoch.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dlog_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dlog_client.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dlog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/dlog_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tp/CMakeFiles/dlog_tp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dlog_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
