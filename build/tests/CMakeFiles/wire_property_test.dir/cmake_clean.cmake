file(REMOVE_RECURSE
  "CMakeFiles/wire_property_test.dir/wire_property_test.cc.o"
  "CMakeFiles/wire_property_test.dir/wire_property_test.cc.o.d"
  "wire_property_test"
  "wire_property_test.pdb"
  "wire_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
