file(REMOVE_RECURSE
  "CMakeFiles/log_server_test.dir/log_server_test.cc.o"
  "CMakeFiles/log_server_test.dir/log_server_test.cc.o.d"
  "log_server_test"
  "log_server_test.pdb"
  "log_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
