# Empty dependencies file for log_server_test.
# This may be replaced when dependencies are built.
