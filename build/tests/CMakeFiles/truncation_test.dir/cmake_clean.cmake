file(REMOVE_RECURSE
  "CMakeFiles/truncation_test.dir/truncation_test.cc.o"
  "CMakeFiles/truncation_test.dir/truncation_test.cc.o.d"
  "truncation_test"
  "truncation_test.pdb"
  "truncation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truncation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
