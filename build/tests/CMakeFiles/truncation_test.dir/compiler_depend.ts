# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for truncation_test.
