# Empty compiler generated dependencies file for truncation_test.
# This may be replaced when dependencies are built.
