file(REMOVE_RECURSE
  "CMakeFiles/tp_test.dir/tp_test.cc.o"
  "CMakeFiles/tp_test.dir/tp_test.cc.o.d"
  "tp_test"
  "tp_test.pdb"
  "tp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
