file(REMOVE_RECURSE
  "CMakeFiles/log_store_test.dir/log_store_test.cc.o"
  "CMakeFiles/log_store_test.dir/log_store_test.cc.o.d"
  "log_store_test"
  "log_store_test.pdb"
  "log_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
