file(REMOVE_RECURSE
  "CMakeFiles/availability_explorer.dir/availability_explorer.cpp.o"
  "CMakeFiles/availability_explorer.dir/availability_explorer.cpp.o.d"
  "availability_explorer"
  "availability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
