# Empty compiler generated dependencies file for availability_explorer.
# This may be replaced when dependencies are built.
