# Empty dependencies file for optical_archive.
# This may be replaced when dependencies are built.
