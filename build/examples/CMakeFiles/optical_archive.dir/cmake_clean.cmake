file(REMOVE_RECURSE
  "CMakeFiles/optical_archive.dir/optical_archive.cpp.o"
  "CMakeFiles/optical_archive.dir/optical_archive.cpp.o.d"
  "optical_archive"
  "optical_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
