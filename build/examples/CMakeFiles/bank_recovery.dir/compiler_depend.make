# Empty compiler generated dependencies file for bank_recovery.
# This may be replaced when dependencies are built.
