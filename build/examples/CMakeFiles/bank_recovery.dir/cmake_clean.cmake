file(REMOVE_RECURSE
  "CMakeFiles/bank_recovery.dir/bank_recovery.cpp.o"
  "CMakeFiles/bank_recovery.dir/bank_recovery.cpp.o.d"
  "bank_recovery"
  "bank_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
