# Empty dependencies file for workstation_cluster.
# This may be replaced when dependencies are built.
