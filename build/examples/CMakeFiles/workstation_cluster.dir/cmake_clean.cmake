file(REMOVE_RECURSE
  "CMakeFiles/workstation_cluster.dir/workstation_cluster.cpp.o"
  "CMakeFiles/workstation_cluster.dir/workstation_cluster.cpp.o.d"
  "workstation_cluster"
  "workstation_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workstation_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
