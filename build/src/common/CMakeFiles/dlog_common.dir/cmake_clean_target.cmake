file(REMOVE_RECURSE
  "libdlog_common.a"
)
