# Empty compiler generated dependencies file for dlog_common.
# This may be replaced when dependencies are built.
