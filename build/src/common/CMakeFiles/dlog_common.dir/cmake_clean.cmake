file(REMOVE_RECURSE
  "CMakeFiles/dlog_common.dir/crc32c.cc.o"
  "CMakeFiles/dlog_common.dir/crc32c.cc.o.d"
  "CMakeFiles/dlog_common.dir/log_types.cc.o"
  "CMakeFiles/dlog_common.dir/log_types.cc.o.d"
  "CMakeFiles/dlog_common.dir/rng.cc.o"
  "CMakeFiles/dlog_common.dir/rng.cc.o.d"
  "CMakeFiles/dlog_common.dir/status.cc.o"
  "CMakeFiles/dlog_common.dir/status.cc.o.d"
  "libdlog_common.a"
  "libdlog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
