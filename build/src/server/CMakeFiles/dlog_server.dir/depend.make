# Empty dependencies file for dlog_server.
# This may be replaced when dependencies are built.
