file(REMOVE_RECURSE
  "CMakeFiles/dlog_server.dir/client_log_store.cc.o"
  "CMakeFiles/dlog_server.dir/client_log_store.cc.o.d"
  "CMakeFiles/dlog_server.dir/log_server.cc.o"
  "CMakeFiles/dlog_server.dir/log_server.cc.o.d"
  "CMakeFiles/dlog_server.dir/track_format.cc.o"
  "CMakeFiles/dlog_server.dir/track_format.cc.o.d"
  "libdlog_server.a"
  "libdlog_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
