file(REMOVE_RECURSE
  "libdlog_server.a"
)
