file(REMOVE_RECURSE
  "libdlog_net.a"
)
