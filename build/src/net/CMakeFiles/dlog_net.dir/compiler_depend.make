# Empty compiler generated dependencies file for dlog_net.
# This may be replaced when dependencies are built.
