file(REMOVE_RECURSE
  "CMakeFiles/dlog_net.dir/network.cc.o"
  "CMakeFiles/dlog_net.dir/network.cc.o.d"
  "libdlog_net.a"
  "libdlog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
