file(REMOVE_RECURSE
  "CMakeFiles/dlog_epoch.dir/id_generator.cc.o"
  "CMakeFiles/dlog_epoch.dir/id_generator.cc.o.d"
  "libdlog_epoch.a"
  "libdlog_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
