file(REMOVE_RECURSE
  "libdlog_epoch.a"
)
