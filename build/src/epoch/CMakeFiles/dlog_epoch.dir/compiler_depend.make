# Empty compiler generated dependencies file for dlog_epoch.
# This may be replaced when dependencies are built.
