file(REMOVE_RECURSE
  "libdlog_client.a"
)
