# Empty compiler generated dependencies file for dlog_client.
# This may be replaced when dependencies are built.
