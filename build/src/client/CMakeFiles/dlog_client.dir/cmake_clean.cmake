file(REMOVE_RECURSE
  "CMakeFiles/dlog_client.dir/log_client.cc.o"
  "CMakeFiles/dlog_client.dir/log_client.cc.o.d"
  "CMakeFiles/dlog_client.dir/replicated_log.cc.o"
  "CMakeFiles/dlog_client.dir/replicated_log.cc.o.d"
  "libdlog_client.a"
  "libdlog_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
