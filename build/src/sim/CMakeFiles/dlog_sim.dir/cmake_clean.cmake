file(REMOVE_RECURSE
  "CMakeFiles/dlog_sim.dir/cpu.cc.o"
  "CMakeFiles/dlog_sim.dir/cpu.cc.o.d"
  "CMakeFiles/dlog_sim.dir/simulator.cc.o"
  "CMakeFiles/dlog_sim.dir/simulator.cc.o.d"
  "CMakeFiles/dlog_sim.dir/stats.cc.o"
  "CMakeFiles/dlog_sim.dir/stats.cc.o.d"
  "libdlog_sim.a"
  "libdlog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
