file(REMOVE_RECURSE
  "libdlog_sim.a"
)
