# Empty dependencies file for dlog_sim.
# This may be replaced when dependencies are built.
