file(REMOVE_RECURSE
  "CMakeFiles/dlog_forest.dir/append_forest.cc.o"
  "CMakeFiles/dlog_forest.dir/append_forest.cc.o.d"
  "libdlog_forest.a"
  "libdlog_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
