file(REMOVE_RECURSE
  "libdlog_forest.a"
)
