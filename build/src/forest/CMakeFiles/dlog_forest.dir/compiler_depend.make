# Empty compiler generated dependencies file for dlog_forest.
# This may be replaced when dependencies are built.
