file(REMOVE_RECURSE
  "CMakeFiles/dlog_storage.dir/disk.cc.o"
  "CMakeFiles/dlog_storage.dir/disk.cc.o.d"
  "CMakeFiles/dlog_storage.dir/nvram.cc.o"
  "CMakeFiles/dlog_storage.dir/nvram.cc.o.d"
  "libdlog_storage.a"
  "libdlog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
