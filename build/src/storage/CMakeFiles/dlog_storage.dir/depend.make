# Empty dependencies file for dlog_storage.
# This may be replaced when dependencies are built.
