file(REMOVE_RECURSE
  "libdlog_storage.a"
)
