file(REMOVE_RECURSE
  "CMakeFiles/dlog_analysis.dir/availability.cc.o"
  "CMakeFiles/dlog_analysis.dir/availability.cc.o.d"
  "CMakeFiles/dlog_analysis.dir/capacity.cc.o"
  "CMakeFiles/dlog_analysis.dir/capacity.cc.o.d"
  "libdlog_analysis.a"
  "libdlog_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
