
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cc" "src/analysis/CMakeFiles/dlog_analysis.dir/availability.cc.o" "gcc" "src/analysis/CMakeFiles/dlog_analysis.dir/availability.cc.o.d"
  "/root/repo/src/analysis/capacity.cc" "src/analysis/CMakeFiles/dlog_analysis.dir/capacity.cc.o" "gcc" "src/analysis/CMakeFiles/dlog_analysis.dir/capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
