# Empty compiler generated dependencies file for dlog_analysis.
# This may be replaced when dependencies are built.
