file(REMOVE_RECURSE
  "libdlog_analysis.a"
)
