# Empty dependencies file for dlog_harness.
# This may be replaced when dependencies are built.
