file(REMOVE_RECURSE
  "CMakeFiles/dlog_harness.dir/cluster.cc.o"
  "CMakeFiles/dlog_harness.dir/cluster.cc.o.d"
  "CMakeFiles/dlog_harness.dir/et1_driver.cc.o"
  "CMakeFiles/dlog_harness.dir/et1_driver.cc.o.d"
  "libdlog_harness.a"
  "libdlog_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
