file(REMOVE_RECURSE
  "libdlog_harness.a"
)
