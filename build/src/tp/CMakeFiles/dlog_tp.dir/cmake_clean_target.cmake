file(REMOVE_RECURSE
  "libdlog_tp.a"
)
