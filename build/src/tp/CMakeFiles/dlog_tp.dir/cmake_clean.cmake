file(REMOVE_RECURSE
  "CMakeFiles/dlog_tp.dir/bank.cc.o"
  "CMakeFiles/dlog_tp.dir/bank.cc.o.d"
  "CMakeFiles/dlog_tp.dir/engine.cc.o"
  "CMakeFiles/dlog_tp.dir/engine.cc.o.d"
  "CMakeFiles/dlog_tp.dir/storage.cc.o"
  "CMakeFiles/dlog_tp.dir/storage.cc.o.d"
  "CMakeFiles/dlog_tp.dir/wal.cc.o"
  "CMakeFiles/dlog_tp.dir/wal.cc.o.d"
  "libdlog_tp.a"
  "libdlog_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
