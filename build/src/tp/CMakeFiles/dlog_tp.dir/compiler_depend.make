# Empty compiler generated dependencies file for dlog_tp.
# This may be replaced when dependencies are built.
