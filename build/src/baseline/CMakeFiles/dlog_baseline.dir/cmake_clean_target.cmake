file(REMOVE_RECURSE
  "libdlog_baseline.a"
)
