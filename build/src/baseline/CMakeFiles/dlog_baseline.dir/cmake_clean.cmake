file(REMOVE_RECURSE
  "CMakeFiles/dlog_baseline.dir/duplexed_logger.cc.o"
  "CMakeFiles/dlog_baseline.dir/duplexed_logger.cc.o.d"
  "libdlog_baseline.a"
  "libdlog_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
