# Empty dependencies file for dlog_baseline.
# This may be replaced when dependencies are built.
