
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/connection.cc" "src/wire/CMakeFiles/dlog_wire.dir/connection.cc.o" "gcc" "src/wire/CMakeFiles/dlog_wire.dir/connection.cc.o.d"
  "/root/repo/src/wire/messages.cc" "src/wire/CMakeFiles/dlog_wire.dir/messages.cc.o" "gcc" "src/wire/CMakeFiles/dlog_wire.dir/messages.cc.o.d"
  "/root/repo/src/wire/rpc.cc" "src/wire/CMakeFiles/dlog_wire.dir/rpc.cc.o" "gcc" "src/wire/CMakeFiles/dlog_wire.dir/rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlog_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
