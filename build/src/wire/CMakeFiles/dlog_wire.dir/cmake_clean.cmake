file(REMOVE_RECURSE
  "CMakeFiles/dlog_wire.dir/connection.cc.o"
  "CMakeFiles/dlog_wire.dir/connection.cc.o.d"
  "CMakeFiles/dlog_wire.dir/messages.cc.o"
  "CMakeFiles/dlog_wire.dir/messages.cc.o.d"
  "CMakeFiles/dlog_wire.dir/rpc.cc.o"
  "CMakeFiles/dlog_wire.dir/rpc.cc.o.d"
  "libdlog_wire.a"
  "libdlog_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
