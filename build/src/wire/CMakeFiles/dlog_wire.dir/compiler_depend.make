# Empty compiler generated dependencies file for dlog_wire.
# This may be replaced when dependencies are built.
