file(REMOVE_RECURSE
  "libdlog_wire.a"
)
