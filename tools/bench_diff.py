#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on metric regressions.

The reports are the deterministic obs::BenchReport output:

    {"experiment": "E15", "rows": [{"config": {...}, "metrics": {...}}]}

Rows are matched by their full config dict. Only the declared key
metrics gate the exit status; every other shared metric is reported
informationally. A key metric declares its direction:

    --key tps:higher           regression = current < baseline
    --key force_p95_ms:lower   regression = current > baseline

A relative change beyond --threshold in the bad direction for any key
metric on any matched row makes the exit status nonzero, which is what
lets CI gate a perf-smoke run against a committed baseline.

Per-window time-series metrics ("w<N>/<series>", emitted by benches
that export telemetry windows, e.g. E18's w12/imbalance_cv) are always
informational: they are collapsed into one summary line per series
(windows compared, how many differ, the largest change) rather than
printed per window, and declaring one as a --key is an error — window
values are exact-determinism artifacts gated by byte comparison (cmp)
in CI, not tolerance-threshold metrics.

    bench_diff.py baseline.json current.json \
        --threshold 0.10 --key tps:higher --key force_p95_ms:lower

`--self-test` runs the built-in check that an injected synthetic
regression is detected (and that an improvement is not), so the gate
itself is exercised in CI without needing two real runs.
"""

import argparse
import json
import re
import sys

# "w12/imbalance_cv" -> per-window series sample; never a gate key.
WINDOW_KEY = re.compile(r"^w(\d+)/(.+)$")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for row in report.get("rows", []):
        key = json.dumps(row.get("config", {}), sort_keys=True)
        rows[key] = row.get("metrics", {})
    return report.get("experiment", "?"), rows


def parse_keys(specs):
    """[("tps", "higher"), ...] from ["tps:higher", ...]."""
    keys = []
    for spec in specs:
        name, sep, direction = spec.partition(":")
        if not sep or direction not in ("higher", "lower"):
            raise SystemExit(
                f"bad --key {spec!r}: expected <metric>:higher|lower")
        if WINDOW_KEY.match(name):
            raise SystemExit(
                f"bad --key {spec!r}: per-window series are informational "
                "(gate them with a byte comparison, not a threshold)")
        keys.append((name, direction))
    return keys


def window_summary(base_metrics, cur_metrics, out):
    """One line per w<N>/<series> family: windows compared, diffs, max."""
    families = {}
    for name, base in base_metrics.items():
        m = WINDOW_KEY.match(name)
        if not m or name not in cur_metrics:
            continue
        window, series = int(m.group(1)), m.group(2)
        families.setdefault(series, []).append(
            (window, base, cur_metrics[name]))
    for series in sorted(families):
        samples = sorted(families[series])
        differing = [(w, b, c) for w, b, c in samples if b != c]
        label = f"w*/{series}"
        if not differing:
            print(f"  {label:32s} {len(samples)} windows identical",
                  file=out)
            continue
        worst = max(differing, key=lambda s: abs(s[2] - s[1]))
        print(f"  {label:32s} {len(differing)}/{len(samples)} windows "
              f"differ (max at w{worst[0]}: {worst[1]:g} -> {worst[2]:g})",
              file=out)


def relative_change(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return (cur - base) / abs(base)


def diff(base_rows, cur_rows, keys, threshold, out=sys.stdout):
    """Returns the list of regression description lines."""
    regressions = []
    for config, base_metrics in sorted(base_rows.items()):
        if config not in cur_rows:
            regressions.append(f"row missing from current report: {config}")
            continue
        cur_metrics = cur_rows[config]
        for name, direction in keys:
            if name not in base_metrics:
                continue
            if name not in cur_metrics:
                regressions.append(f"{config}: key metric {name} missing")
                continue
            base, cur = base_metrics[name], cur_metrics[name]
            change = relative_change(base, cur)
            bad = -change if direction == "higher" else change
            marker = ""
            if bad > threshold:
                marker = "  REGRESSION"
                regressions.append(
                    f"{config}: {name} {base:g} -> {cur:g} "
                    f"({change:+.1%}, allowed {direction})")
            print(f"  {name:32s} {base:12g} -> {cur:12g} "
                  f"({change:+.1%}){marker}", file=out)
        window_summary(base_metrics, cur_metrics, out)
    return regressions


def self_test():
    base = {"row": {"tps": 100.0, "p95_ms": 5.0, "util": 0.2}}
    keys = parse_keys(["tps:higher", "p95_ms:lower"])
    sink = open("/dev/null", "w", encoding="utf-8")

    # Identical reports: clean.
    assert not diff(base, {"row": dict(base["row"])}, keys, 0.10, sink)
    # Improvements in both directions: clean.
    better = {"row": {"tps": 130.0, "p95_ms": 3.0, "util": 0.9}}
    assert not diff(base, better, keys, 0.10, sink)
    # Small drift inside the threshold: clean.
    drift = {"row": {"tps": 95.0, "p95_ms": 5.4, "util": 0.2}}
    assert not diff(base, drift, keys, 0.10, sink)
    # Injected throughput regression: detected.
    slow = {"row": {"tps": 80.0, "p95_ms": 5.0, "util": 0.2}}
    assert diff(base, slow, keys, 0.10, sink)
    # Injected latency regression: detected.
    lat = {"row": {"tps": 100.0, "p95_ms": 9.0, "util": 0.2}}
    assert diff(base, lat, keys, 0.10, sink)
    # Non-key metric regressing alone: clean (informational only).
    # (util is not declared, so no direction gates it.)
    util = {"row": {"tps": 100.0, "p95_ms": 5.0, "util": 0.9}}
    assert not diff(base, util, keys, 0.10, sink)
    # A dropped row is a regression.
    assert diff(base, {}, keys, 0.10, sink)
    # Per-window series never gate, however far they move.
    winbase = {"row": {"tps": 100.0, "w1/cv": 0.1, "w2/cv": 0.1}}
    wincur = {"row": {"tps": 100.0, "w1/cv": 9.0, "w2/cv": 0.1}}
    assert not diff(winbase, wincur, keys, 0.10, sink)
    # ... and declaring one as a gate key is rejected.
    try:
        parse_keys(["w1/cv:lower"])
        raise AssertionError("window key accepted as gate")
    except SystemExit:
        pass
    # The summary collapses a family into one line and flags the worst
    # differing window.
    import io
    buf = io.StringIO()
    window_summary(winbase["row"], wincur["row"], buf)
    assert "1/2 windows differ" in buf.getvalue()
    assert "w1: 0.1 -> 9" in buf.getvalue()
    print("bench_diff self-test passed")


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json reports")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative change (default 0.10)")
    parser.add_argument("--key", action="append", default=[],
                        metavar="METRIC:higher|lower",
                        help="gated metric and its good direction")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate detects injected regressions")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.current:
        parser.error("baseline and current reports are required")

    base_exp, base_rows = load_rows(args.baseline)
    cur_exp, cur_rows = load_rows(args.current)
    if base_exp != cur_exp:
        print(f"experiment mismatch: {base_exp} vs {cur_exp}")
        return 1
    keys = parse_keys(args.key)
    print(f"{base_exp}: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    regressions = diff(base_rows, cur_rows, keys, args.threshold)
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
