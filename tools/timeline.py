#!/usr/bin/env python3
"""Render a telemetry export (obs::TimeSeriesJson) as terminal heatmaps.

One heatmap per selected series suffix, one row per emitting node,
columns downsampled to the terminal width; cell brightness is the
window value on a scale shared by every row of the map, so a skewed
cluster reads as one bright row above dim ones:

    server/cpu/util_exact  63w x 250ms  max=0.87
    server-1 |▇███████████████████████████████|
    server-2 |▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂▂▁▂|

Usage:
    timeline.py E18_series_skewed.json --suffix server/cpu/util_exact \
        --suffix log/force_latency_us/p99 [--width 64]
    timeline.py E18_series_skewed.json --list   # see what's available

Stdlib only; reads the deterministic JSON artifact the benches and the
harness write, so a crash or CI failure can be eyeballed from the
uploaded artifact without any plotting stack.
"""

import argparse
import json
import sys

SHADES = " ▁▂▃▄▅▆▇█"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc["interval_ns"], doc["windows"], doc["series"]


def value_at(series, window):
    """Series value at 1-based `window`, decoding export semantics:
    rates/quantiles are implicitly zero outside the stored range, level
    series hold their last value forward."""
    first = series["first_window"]
    values = series["values"]
    i = window - first
    if i < 0 or not values:
        return 0.0
    if i >= len(values):
        return values[-1] if series["kind"] == "level" else 0.0
    return values[i]


def split_suffix(name, suffix):
    """Row label for `name` given it matches `suffix` ("" if exact)."""
    if name == suffix:
        return name
    return name[: -(len(suffix) + 1)]


def matches(name, suffix):
    return name == suffix or name.endswith("/" + suffix)


def downsample(samples, width):
    """Peak-preserving resample to at most `width` cells."""
    if len(samples) <= width:
        return samples
    cells = []
    for c in range(width):
        lo = c * len(samples) // width
        hi = max(lo + 1, (c + 1) * len(samples) // width)
        cells.append(max(samples[lo:hi]))
    return cells


def render(interval_ns, windows, series, suffix, width, out=sys.stdout):
    rows = []
    for name in sorted(series):
        if matches(name, suffix):
            rows.append((split_suffix(name, suffix), series[name]))
    if not rows:
        print(f"{suffix}: no matching series", file=out)
        return False
    grids = [
        downsample([value_at(s, w) for w in range(1, windows + 1)], width)
        for _, s in rows
    ]
    peak = max(max(g) for g in grids)
    label_w = max(len(label) for label, _ in rows)
    print(f"{suffix}  {windows}w x {interval_ns / 1e6:g}ms  max={peak:g}",
          file=out)
    for (label, _), grid in zip(rows, grids):
        cells = "".join(
            SHADES[min(len(SHADES) - 1,
                       int(v / peak * (len(SHADES) - 1) + 0.5))]
            if peak > 0 else SHADES[0]
            for v in grid)
        print(f"{label:>{label_w}} |{cells}|", file=out)
    return True


def list_suffixes(series, out=sys.stdout):
    """Distinct per-node suffixes with node counts, for discovery."""
    groups = {}
    for name in series:
        head, sep, tail = name.partition("/")
        # Node-qualified series group by what follows the node; global
        # series (health/..., cluster/...) stand alone.
        suffix = tail if sep and "-" in head else name
        groups.setdefault(suffix, set()).add(head if sep else name)
    for suffix in sorted(groups):
        print(f"  {suffix}  ({len(groups[suffix])} series)", file=out)


def self_test():
    doc = {
        "interval_ns": 250000000,
        "windows": 4,
        "series": {
            "server-1/cpu/util": {"kind": "level", "first_window": 1,
                                  "values": [0.9, 0.9]},
            "server-2/cpu/util": {"kind": "level", "first_window": 2,
                                  "values": [0.1]},
            "server-1/ops": {"kind": "rate", "first_window": 1,
                             "values": [5.0]},
        },
    }
    s = doc["series"]
    # Level holds forward past its last stored value; rate decays to 0.
    assert value_at(s["server-1/cpu/util"], 4) == 0.9
    assert value_at(s["server-2/cpu/util"], 1) == 0.0
    assert value_at(s["server-1/ops"], 3) == 0.0
    assert downsample([1, 9, 2, 3], 2) == [9, 3]  # peak-preserving
    import io
    buf = io.StringIO()
    assert render(doc["interval_ns"], doc["windows"], s, "cpu/util", 32,
                  buf)
    lines = buf.getvalue().splitlines()
    assert len(lines) == 3 and "max=0.9" in lines[0]
    # The loaded server outshades the idle one in every shared window.
    hot, cold = lines[1].split("|")[1], lines[2].split("|")[1]
    assert SHADES.index(hot[-1]) > SHADES.index(cold[-1])
    assert not render(doc["interval_ns"], doc["windows"], s, "nope", 32,
                      buf)
    print("timeline self-test passed")


def main():
    parser = argparse.ArgumentParser(
        description="terminal heatmaps from a TimeSeriesJson export")
    parser.add_argument("export", nargs="?", help="E18_series_*.json etc.")
    parser.add_argument("--suffix", action="append", default=[],
                        help="series suffix to render (repeatable); "
                             "rows are the matching nodes")
    parser.add_argument("--width", type=int, default=64,
                        help="max heatmap columns (default 64)")
    parser.add_argument("--list", action="store_true",
                        help="list available suffixes and exit")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.export:
        parser.error("an export file is required")
    interval_ns, windows, series = load(args.export)
    if args.list or not args.suffix:
        print(f"{args.export}: {windows} windows x "
              f"{interval_ns / 1e6:g}ms, {len(series)} series")
        list_suffixes(series)
        if not args.list:
            print("pick one or more with --suffix")
        return 0
    ok = True
    for i, suffix in enumerate(args.suffix):
        if i > 0:
            print()
        ok = render(interval_ns, windows, series, suffix,
                    max(8, args.width)) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
