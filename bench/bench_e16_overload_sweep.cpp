// Experiment E16 — overload behavior with and without the src/flow
// stack (admission control + retry budgets + adaptive windows).
//
// A fixed client fleet sweeps its offered ET1 rate from half the
// capacity knee to twice past it, against servers whose NVRAM group
// buffer is deliberately small and whose disk is slow: past the knee
// the buffer stays full and the servers must shed. Each load point
// runs twice — flow disabled (the legacy Section 4.2 silent shed:
// clients discover loss only by resend timeout) and flow enabled
// (explicit Overloaded replies with retry-after hints, client backoff
// under a token budget, AIMD wire windows).
//
// The gate, checked by this binary (exit nonzero) and re-checked by
// tools/bench_diff.py against the committed baseline:
//   - with flow, goodput at 2x the knee holds >= 80% of knee goodput;
//   - with flow, force p99 at 2x the knee stays <= ~5x the at-knee p99,
//     while without flow it degrades far past that;
//   - past the knee the flow run actually sheds (nonzero shed_rate and
//     overload_replies_per_sec) — the gate is meaningless otherwise.
//
// Usage: bench_e16_overload_sweep [measure_seconds] [threads]
//            [shard_workers]
// The report is a pure function of the config and seeds: any thread
// count — and, with shard_workers > 0, running each cluster on the
// sharded parallel engine at any worker count — yields a byte-identical
// BENCH_E16.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/trial_runner.h"
#include "obs/bench_report.h"

namespace {

using namespace dlog;

constexpr int kClients = 10;
constexpr int kServers = 3;
/// Per-client TPS at the capacity knee — the offered load where goodput
/// saturates for this geometry (slow disk, small NVRAM; see RunPoint).
/// Empirical: goodput flattens at ~186 TPS between 18 and 20 per client.
constexpr double kKneeTps = 19.0;
constexpr double kGoodputRetention = 0.80;  // goodput(2x) / goodput(knee)
constexpr double kP99Blowup = 5.0;          // p99(2x) / p99(knee), flow on

struct Point {
  bool flow = false;
  double tps_per_client = 0;
  double offered = 0;
  double goodput = 0;
  double force_p99_ms = 0;
  double shed_rate = 0;           // silent + replied sheds, per second
  double overload_replies = 0;    // explicit Overloaded replies, per second
  double overloads_received = 0;  // client-side, per second
  double backoffs = 0;
  double retries_suppressed = 0;
  double txns_shed = 0;  // refused at the application layer, per second
};

Point RunPoint(bool flow, double tps_per_client, int measure_seconds,
               int shard_workers) {
  Point p;
  p.flow = flow;
  p.tps_per_client = tps_per_client;
  p.offered = kClients * tps_per_client;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = kServers;
  cluster_cfg.shard_workers = shard_workers;
  // The overload geometry: a disk slow enough to be the clear
  // bottleneck and an NVRAM buffer of only a few tracks, so past the
  // knee occupancy pins at the admission threshold and stays there.
  // Sequential log writes never seek, so the slowness has to come from
  // rotation: 600 rpm is 100 ms per track transfer.
  cluster_cfg.server.disk.rpm = 600;
  cluster_cfg.server.nvram_bytes = 48 * 1024;
  cluster_cfg.server.admission.enabled = flow;
  // Match the flow-control timescales to this geometry: the disk drains
  // one track every ~150 ms, so second-scale default backoffs would park
  // clients far longer than the congestion they are reacting to.
  cluster_cfg.server.admission.min_retry_after = 10 * sim::kMillisecond;
  cluster_cfg.server.admission.max_retry_after = 150 * sim::kMillisecond;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < kClients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    log_cfg.retry.enabled = flow;
    log_cfg.retry.initial_backoff = 10 * sim::kMillisecond;
    log_cfg.retry.max_backoff = 100 * sim::kMillisecond;
    log_cfg.wire.adaptive_window.enabled = flow;
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = tps_per_client;
    driver_cfg.seed = 1600 + i;
    // End-to-end backpressure: with flow on, arrivals are refused while
    // the log backlog is deep, instead of queueing without bound.
    driver_cfg.max_log_backlog = flow ? 32 : 0;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }

  // Warm up through initialization traffic, then measure a clean window.
  cluster.RunFor(2 * sim::kSecond);
  uint64_t committed_before = 0;
  uint64_t shed_before = 0, replies_before = 0;
  uint64_t recv_before = 0, backoff_before = 0, suppressed_before = 0;
  uint64_t txshed_before = 0;
  for (auto& d : drivers) {
    committed_before += d->committed();
    txshed_before += d->txns_shed();
    recv_before += d->log().overloads_received().value();
    backoff_before += d->log().backoffs().value();
    suppressed_before += d->log().retries_suppressed().value();
  }
  for (int s = 1; s <= kServers; ++s) {
    shed_before += cluster.server(s).writes_shed().value();
    replies_before += cluster.server(s).admission().overload_replies().value();
  }

  cluster.RunFor(measure_seconds * sim::kSecond);

  uint64_t committed = 0, shed = 0, replies = 0;
  uint64_t recv = 0, backoff = 0, suppressed = 0, txshed = 0;
  sim::Histogram force_ms;
  for (auto& d : drivers) {
    committed += d->committed();
    txshed += d->txns_shed();
    recv += d->log().overloads_received().value();
    backoff += d->log().backoffs().value();
    suppressed += d->log().retries_suppressed().value();
    force_ms.Merge(d->log().force_latency_ms());
  }
  for (int s = 1; s <= kServers; ++s) {
    shed += cluster.server(s).writes_shed().value();
    replies += cluster.server(s).admission().overload_replies().value();
  }

  const double window = static_cast<double>(measure_seconds);
  p.goodput = static_cast<double>(committed - committed_before) / window;
  p.force_p99_ms = force_ms.Percentile(0.99);
  p.shed_rate = static_cast<double>(shed - shed_before) / window;
  p.overload_replies =
      static_cast<double>(replies - replies_before) / window;
  p.overloads_received = static_cast<double>(recv - recv_before) / window;
  p.backoffs = static_cast<double>(backoff - backoff_before) / window;
  p.retries_suppressed =
      static_cast<double>(suppressed - suppressed_before) / window;
  p.txns_shed = static_cast<double>(txshed - txshed_before) / window;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const int measure_seconds = argc > 1 ? std::atoi(argv[1]) : 10;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 1;
  const int shard_workers = argc > 3 ? std::atoi(argv[3]) : 0;
  harness::TrialRunner runner(threads > 0 ? threads : 1);

  const std::vector<double> loads = {kKneeTps / 2, kKneeTps, 2 * kKneeTps};
  struct Trial {
    bool flow;
    double tps;
  };
  std::vector<Trial> trials;
  for (bool flow : {false, true}) {
    for (double tps : loads) trials.push_back({flow, tps});
  }

  std::printf(
      "E16: overload sweep, %d clients, %d servers, slow-disk / small-"
      "NVRAM geometry, knee ~%.0f TPS offered, %ds measured window\n\n",
      kClients, kServers, kClients * kKneeTps, measure_seconds);

  const std::vector<Point> points = runner.Run(
      trials.size(), [&](size_t i) {
        return RunPoint(trials[i].flow, trials[i].tps, measure_seconds,
                        shard_workers);
      });

  obs::BenchReport report("E16");
  std::printf(
      "  flow | offered | goodput | force p99 ms | shed/s | "
      "overload replies/s\n");
  for (const Point& p : points) {
    std::printf("  %4s | %7.0f | %7.1f | %12.1f | %6.1f | %10.1f\n",
                p.flow ? "on" : "off", p.offered, p.goodput,
                p.force_p99_ms, p.shed_rate, p.overload_replies);
    report.BeginRow();
    report.SetConfig("design", "sweep");
    report.SetConfig("flow", p.flow ? "on" : "off");
    report.SetConfig("clients", kClients);
    report.SetConfig("servers", kServers);
    report.SetConfig("tps_per_client", p.tps_per_client);
    report.SetMetric("offered_tps", p.offered);
    report.SetMetric("goodput_tps", p.goodput);
    report.SetMetric("force_p99_ms", p.force_p99_ms);
    report.SetMetric("shed_rate", p.shed_rate);
    report.SetMetric("overload_replies_per_sec", p.overload_replies);
    report.SetMetric("overloads_received_per_sec", p.overloads_received);
    report.SetMetric("backoffs_per_sec", p.backoffs);
    report.SetMetric("retries_suppressed_per_sec", p.retries_suppressed);
    report.SetMetric("txns_shed_per_sec", p.txns_shed);
  }

  Status st = report.WriteJson("BENCH_E16.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E16.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E16.json (%zu rows)\n", report.rows());

  // Self-gate. Index math mirrors the trials vector: off = 0..2,
  // on = 3..5, each ordered {knee/2, knee, 2x knee}.
  const Point& off_2x = points[2];
  const Point& on_knee = points[4];
  const Point& on_2x = points[5];
  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
  };
  check(on_2x.goodput >= kGoodputRetention * on_knee.goodput,
        "flow-on goodput at 2x knee fell below 80% of knee goodput");
  check(on_2x.force_p99_ms <= kP99Blowup * on_knee.force_p99_ms,
        "flow-on force p99 at 2x knee exceeded 5x the at-knee p99");
  check(on_2x.shed_rate > 0,
        "flow-on run past the knee shed nothing (geometry too easy)");
  check(on_2x.overload_replies > 0,
        "flow-on run past the knee sent no Overloaded replies");
  check(off_2x.force_p99_ms > on_2x.force_p99_ms,
        "flow did not improve past-knee force p99 over silent shedding");
  if (!ok) return 1;
  std::printf("overload gate passed: goodput retained, p99 bounded, "
              "sheds observed\n");
  return 0;
}
