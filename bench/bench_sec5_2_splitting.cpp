// Experiment E7 — Section 5.2, log record splitting and caching:
// "The performance improvements possible with log record splitting and
// caching depend on the size of the cache, and on the length of
// transactions."
//
// Sweeps transaction length (updates per transaction) and the page-clean
// interval (how often dirty pages are cleaned, which forces cached undo
// components out to the log) and reports the logged volume with and
// without splitting. Short transactions and aggressive cleaning erode
// the saving — the paper's predicted shape.

#include <cstdio>
#include <memory>

#include "sim/simulator.h"
#include "tp/engine.h"
#include "tp/logger.h"

namespace {

using namespace dlog;

struct VolumeResult {
  uint64_t log_bytes = 0;
  uint64_t undo_logged = 0;
};

/// Runs `txns` transactions of `updates_per_txn` 100-byte updates,
/// cleaning all pages every `clean_every` transactions (0 = never).
VolumeResult RunWorkload(bool split, int txns, int updates_per_txn,
                         int clean_every) {
  sim::Simulator sim;
  tp::InMemoryTxnLogger logger(&sim);
  tp::PageDisk disk(1024);
  tp::EngineConfig cfg;
  cfg.split_records = split;
  tp::TransactionEngine engine(&sim, &logger, &disk, cfg);

  for (int t = 0; t < txns; ++t) {
    Result<tp::TxnId> txn = engine.Begin();
    if (!txn.ok()) break;
    for (int u = 0; u < updates_per_txn; ++u) {
      Bytes data(100, static_cast<uint8_t>('a' + u % 26));
      (void)engine.Update(*txn, static_cast<tp::PageId>(u % 8), (u / 8) * 100,
                          std::move(data));
      // Long transactions see their pages cleaned mid-flight.
      if (clean_every > 0 && (u + 1) % clean_every == 0) {
        bool done = false;
        engine.CleanPages([&](Status) { done = true; });
        sim.Run();
        (void)done;
      }
    }
    bool committed = false;
    engine.Commit(*txn, [&](Status) { committed = true; });
    sim.Run();
    if (clean_every > 0 && (t + 1) % clean_every == 0) {
      bool done = false;
      engine.CleanPages([&](Status) { done = true; });
      sim.Run();
    }
  }
  return {engine.log_bytes(), engine.undo_bytes_logged()};
}

}  // namespace

int main() {
  const int txns = 200;
  std::printf(
      "Section 5.2: logged volume with and without record splitting\n"
      "(%d transactions of 100-byte updates; 'clean' = pages cleaned "
      "every k updates, flushing cached undo)\n\n",
      txns);
  std::printf("%-10s %-12s | %12s %12s %8s %14s\n", "updates", "cleaning",
              "plain B", "split B", "saved", "undo logged B");
  for (int updates : {1, 3, 7, 20, 50}) {
    for (int clean_every : {0, 25, 5}) {
      VolumeResult plain =
          RunWorkload(false, txns, updates, clean_every);
      VolumeResult split = RunWorkload(true, txns, updates, clean_every);
      const double saved =
          100.0 * (1.0 - static_cast<double>(split.log_bytes) /
                             static_cast<double>(plain.log_bytes));
      char clean_desc[24];
      if (clean_every == 0) {
        std::snprintf(clean_desc, sizeof(clean_desc), "never");
      } else {
        std::snprintf(clean_desc, sizeof(clean_desc), "every %d",
                      clean_every);
      }
      std::printf("%-10d %-12s | %12llu %12llu %7.1f%% %14llu\n", updates,
                  clean_desc,
                  static_cast<unsigned long long>(plain.log_bytes),
                  static_cast<unsigned long long>(split.log_bytes), saved,
                  static_cast<unsigned long long>(split.undo_logged));
    }
  }
  std::printf(
      "\nShape checks (paper):\n"
      "  * short transactions: splitting saves little (few records to "
      "split);\n"
      "  * frequent cleaning (very long transactions): undo components "
      "get logged anyway, eroding the saving;\n"
      "  * the sweet spot is transactions that commit before their pages "
      "are cleaned.\n");
  return 0;
}
