// Experiment E2 — the specific availability numbers quoted in the prose
// of Section 3.2, each printed next to the paper's claim.

#include <cstdio>

#include "analysis/availability.h"

int main() {
  using namespace dlog::analysis;
  const double p = 0.05;

  std::printf("Section 3.2 quoted availability numbers (p = 0.05)\n\n");
  std::printf("%-58s %-10s %s\n", "claim", "paper", "computed");

  std::printf("%-58s %-10s %.6f\n",
              "single server: ReadLog/WriteLog/init availability", "0.95",
              1 - p);
  std::printf("%-58s %-10s %.6f\n",
              "N=2, M=5: WriteLog 'hardly ever unavailable'", ">0.9999",
              WriteLogAvailability(5, 2, p));
  std::printf("%-58s %-10s %.6f\n",
              "N=2, M=5: client initialization (4 of 5 up)", "~0.98",
              ClientInitAvailability(5, 2, p));
  std::printf("%-58s %-10s %.6f\n",
              "N=3, M=5: WriteLog availability", "~0.999",
              WriteLogAvailability(5, 3, p));
  std::printf("%-58s %-10s %.6f\n",
              "N=3, M=5: client initialization", "~0.999",
              ClientInitAvailability(5, 3, p));
  std::printf("%-58s %-10s %.6f\n",
              "N=2, M=7: init still >= 0.95 (largest such M)", ">=0.95",
              ClientInitAvailability(7, 2, p));
  std::printf("%-58s %-10s %.6f\n",
              "N=2, M=8: init drops below 0.95", "<0.95",
              ClientInitAvailability(8, 2, p));
  std::printf("%-58s %-10s %.6f\n", "N=2: ReadLog of a record (1 - p^2)",
              "0.9975", ReadAvailability(2, p));
  std::printf("%-58s %-10s %.6f\n", "N=3: ReadLog of a record (1 - p^3)",
              "0.999875", ReadAvailability(3, p));
  return 0;
}
