// Experiment E17 — large-cluster scale: a 50-server / 5000-client ET1
// slice on the serial and sharded engines.
//
// The ROADMAP's scale-out target made measurable: every client runs the
// real protocol (init via interval gather + epoch acquisition, grouped
// WriteLog/ForceLog streams, retry timers, driver backpressure) against
// a 50-server fleet on a 1 Gbit LAN. The bench reports raw engine
// throughput (events/s over the measured window), wall-clock, peak RSS,
// and per-client memory, and proves determinism: the workload's
// end-state hash (per-client committed/failed/shed + per-server records
// written) must be identical on the serial engine and on the parallel
// engine at every worker count and shard-group size.
//
// Each client talks to a 5-server slice of the fleet (servers
// (i+j) % M, j = 0..4) with its generator representatives on the first
// three — both the write load and the Appendix I identifier-generator
// load spread uniformly, as a real deployment would place them.
//
// Usage: bench_e17_scale [clients] [servers] [window_seconds]
// Defaults: 5000 50 5. CI gates a reduced geometry (400 10 2) via
// tools/bench_diff.py on determinism_ok / committed_txns / events_per_sec;
// the full-size run is the acceptance configuration. Exit is nonzero on
// any determinism mismatch. Engine speed varies run to run, so
// BENCH_E17.json is bench_diff-gated (directional, generous threshold),
// never byte-compared.

#include <algorithm>
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/stop_latch.h"
#include "obs/bench_report.h"

namespace {

using namespace dlog;

struct EngineSetup {
  int workers = 0;          // 0 = serial sim::Simulator
  int nodes_per_shard = 1;  // parallel only
  /// Live telemetry sampling on (obs::TimeSeriesCollector at the
  /// fleet-scale 1 s cadence). Schedule-invisible — the end-state hash
  /// must still match — and its events/s ratio against the plain serial
  /// run is the overhead gate: telemetry must keep >= 95% throughput.
  bool telemetry = false;
};

struct RunResult {
  EngineSetup setup;
  uint64_t committed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t records_written = 0;
  uint64_t hash = 0;
  uint64_t window_events = 0;
  double window_wall_s = 0;   // wall-clock of the measured RunFor
  double total_wall_s = 0;    // init + warmup + window
  double events_per_sec = 0;  // window_events / window_wall_s
  double peak_rss_mb = 0;
  double rss_per_client_kb = 0;  // construction RSS delta / clients
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

double PeakRssMb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KB -> MB
}

/// A constructed, not yet initialized, ET1 fleet on one cluster.
struct Fleet {
  int workers = 0;
  std::unique_ptr<harness::StopLatch> started;
  std::unique_ptr<harness::Cluster> cluster;
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;

  uint64_t events_executed() const {
    return workers == 0 ? cluster->sim().events_executed()
                        : cluster->parallel_sim().events_executed();
  }
};

Fleet BuildFleet(const EngineSetup& setup, int clients, int servers) {
  Fleet f;
  f.workers = setup.workers;
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.shard_workers = setup.workers;
  cluster_cfg.nodes_per_shard = setup.nodes_per_shard;
  // A modern-LAN profile: at the 1987 default of 10 Mbit the fleet's
  // aggregate init + log traffic would saturate the medium long before
  // the engine becomes the bottleneck this bench measures.
  cluster_cfg.network.bandwidth_bits_per_sec = 1e9;
  cluster_cfg.run_until_quantum = sim::kMillisecond;
  cluster_cfg.telemetry.enabled = setup.telemetry;
  // Fleet-scale cadence: 1 s windows. The 250 ms default suits the
  // fine-grained health windows of small experiments (E18's 24
  // clients); at 400+ clients a sample walks thousands of live metrics,
  // and 1 s is the deployment-realistic monitoring resolution.
  cluster_cfg.telemetry.interval = 1 * sim::kSecond;
  f.cluster = std::make_unique<harness::Cluster>(cluster_cfg);

  f.started =
      std::make_unique<harness::StopLatch>(static_cast<uint64_t>(clients));
  f.drivers.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    // A 5-server slice of the fleet, representatives on its first 3.
    for (int j = 0; j < 5; ++j) {
      log_cfg.servers.push_back(
          static_cast<net::NodeId>((i + j) % servers + 1));
    }
    log_cfg.generator_reps.assign(log_cfg.servers.begin(),
                                  log_cfg.servers.begin() + 3);
    log_cfg.seed = 1700 + static_cast<uint64_t>(i);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 2.0;
    driver_cfg.seed = 17000 + static_cast<uint64_t>(i);
    driver_cfg.max_log_backlog = 64;
    driver_cfg.start_latch = f.started.get();
    // Light per-client bank: the protocol load is what's under test,
    // and 5000 default-size banks would dominate the memory budget.
    driver_cfg.bank.accounts = 100;
    driver_cfg.bank.tellers = 10;
    driver_cfg.bank.branches = 2;
    f.drivers.push_back(std::make_unique<harness::Et1Driver>(
        f.cluster.get(), log_cfg, driver_cfg));
  }
  // Stagger the fleet's Init calls over two simulated seconds so the
  // generator representatives see a ramp, not 5000 simultaneous epoch
  // acquisitions at t = 0.
  const sim::Duration spread = 2 * sim::kSecond;
  for (int i = 0; i < clients; ++i) {
    harness::Et1Driver* d = f.drivers[static_cast<size_t>(i)].get();
    f.cluster->client_scheduler(i).At(
        static_cast<sim::Time>(i) * spread / clients,
        [d]() { d->Start(); });
  }
  return f;
}

/// Init barrier + warm-up: leaves the fleet in steady state.
void StartFleet(Fleet& f) {
  // A single atomic-flag stop condition, not an O(clients) predicate
  // per poll.
  if (!f.cluster->RunUntil(*f.started, 120 * sim::kSecond)) {
    std::fprintf(stderr, "E17: fleet failed to initialize (%llu left)\n",
                 static_cast<unsigned long long>(f.started->remaining()));
    std::exit(1);
  }
  f.cluster->RunFor(1 * sim::kSecond);  // past the start transient
}

uint64_t HashFleet(const Fleet& f, int servers, RunResult* r) {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const auto& d : f.drivers) {
    if (r != nullptr) {
      r->committed += d->committed();
      r->failed += d->failed();
      r->shed += d->txns_shed();
    }
    hash = Fnv1a(hash, d->committed());
    hash = Fnv1a(hash, d->failed());
    hash = Fnv1a(hash, d->txns_shed());
  }
  for (int s = 1; s <= servers; ++s) {
    const uint64_t written = f.cluster->server(s).records_written().value();
    if (r != nullptr) r->records_written += written;
    hash = Fnv1a(hash, written);
  }
  return hash;
}

RunResult RunConfig(const EngineSetup& setup, int clients, int servers,
                    int window_seconds) {
  RunResult r;
  r.setup = setup;

  const double rss_before_mb = PeakRssMb();
  const auto wall_start = std::chrono::steady_clock::now();

  Fleet fleet = BuildFleet(setup, clients, servers);
  r.rss_per_client_kb =
      (PeakRssMb() - rss_before_mb) * 1024.0 / clients;

  StartFleet(fleet);

  const uint64_t events_before = fleet.events_executed();
  const auto window_start = std::chrono::steady_clock::now();
  fleet.cluster->RunFor(window_seconds * sim::kSecond);
  const auto window_end = std::chrono::steady_clock::now();
  const uint64_t events_after = fleet.events_executed();

  r.hash = HashFleet(fleet, servers, &r);
  r.window_events = events_after - events_before;
  r.window_wall_s =
      std::chrono::duration<double>(window_end - window_start).count();
  r.total_wall_s =
      std::chrono::duration<double>(window_end - wall_start).count();
  r.events_per_sec =
      static_cast<double>(r.window_events) / r.window_wall_s;
  r.peak_rss_mb = PeakRssMb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 5000;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 50;
  const int window_seconds = argc > 3 ? std::atoi(argv[3]) : 5;

  // Serial first: peak RSS is a process-wide high-water mark, so only
  // the first cluster's numbers are attributable. The telemetry run
  // repeats the serial configuration with live sampling on: same hash,
  // >= 95% of the plain serial events/s.
  const std::vector<EngineSetup> setups = {
      {0, 1, false}, {2, 128, false}, {8, 128, false}, {8, 512, false},
      {0, 1, true}};

  std::printf(
      "E17: scale slice, %d clients x %d servers, 1 Gbit LAN, 2.0 TPS "
      "per client, %ds measured window\n\n",
      clients, servers, window_seconds);
  std::printf(
      "  engine        | events/s | window wall s | committed | shed | "
      "hash\n");

  std::vector<RunResult> results;
  for (const EngineSetup& setup : setups) {
    results.push_back(RunConfig(setup, clients, servers, window_seconds));
    const RunResult& r = results.back();
    char engine[32];
    if (setup.workers == 0) {
      std::snprintf(engine, sizeof engine,
                    setup.telemetry ? "serial+ts" : "serial");
    } else {
      std::snprintf(engine, sizeof engine, "w=%d nps=%d", setup.workers,
                    setup.nodes_per_shard);
    }
    std::printf("  %-13s | %8.0f | %13.2f | %9llu | %4llu | %016llx\n",
                engine, r.events_per_sec, r.window_wall_s,
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.hash));
  }

  bool deterministic = true;
  for (const RunResult& r : results) {
    if (r.hash != results[0].hash) deterministic = false;
  }

  // Telemetry-overhead ratio, measured apart from the table rows: a
  // single run's events/s jitters ~10% with machine load while the
  // sampling cost itself is a few percent, so independent runs (even
  // long, even best-of-N) cannot resolve it. Instead hold two live
  // fleets — identical but for sampling — and alternate one-simulated-
  // second slices between them: both sides walk the same load phases
  // within milliseconds of each other, and the ratio of summed walls
  // cancels the noise that run-level comparisons cannot.
  const int ratio_rounds = std::max(window_seconds, 10);
  std::printf("\nmeasuring telemetry overhead (%d interleaved 1s rounds)\n",
              ratio_rounds);
  Fleet plain = BuildFleet({0, 1, false}, clients, servers);
  Fleet sampled = BuildFleet({0, 1, true}, clients, servers);
  StartFleet(plain);
  StartFleet(sampled);
  double wall_plain = 0.0, wall_sampled = 0.0;
  std::vector<double> round_ratios;
  round_ratios.reserve(static_cast<size_t>(ratio_rounds));
  for (int round = 0; round < ratio_rounds; ++round) {
    auto t0 = std::chrono::steady_clock::now();
    plain.cluster->RunFor(1 * sim::kSecond);
    auto t1 = std::chrono::steady_clock::now();
    sampled.cluster->RunFor(1 * sim::kSecond);
    auto t2 = std::chrono::steady_clock::now();
    const double p = std::chrono::duration<double>(t1 - t0).count();
    const double s = std::chrono::duration<double>(t2 - t1).count();
    wall_plain += p;
    wall_sampled += s;
    round_ratios.push_back(p / s);
  }
  // Both fleets executed the identical event sequence (sampling is
  // schedule-invisible), so each round's events/s ratio is its wall
  // ratio. A background burst lands on one side of one round and skews
  // its ratio in one direction; the median across rounds discards it.
  if (HashFleet(plain, servers, nullptr) !=
      HashFleet(sampled, servers, nullptr)) {
    std::printf("FAIL: sampling changed the overhead fleets' end state\n");
    return 1;
  }
  std::nth_element(round_ratios.begin(),
                   round_ratios.begin() + round_ratios.size() / 2,
                   round_ratios.end());
  const double ratio = round_ratios[round_ratios.size() / 2];

  obs::BenchReport report("E17");
  for (const RunResult& r : results) {
    report.BeginRow();
    report.SetConfig("engine", r.setup.workers == 0 ? "serial" : "parallel");
    report.SetConfig("workers", r.setup.workers);
    report.SetConfig("nodes_per_shard", r.setup.nodes_per_shard);
    report.SetConfig("telemetry", r.setup.telemetry ? 1 : 0);
    report.SetConfig("clients", clients);
    report.SetConfig("servers", servers);
    report.SetConfig("window_seconds", window_seconds);
    report.SetMetric("events_per_sec", r.events_per_sec);
    report.SetMetric("window_events", static_cast<double>(r.window_events));
    report.SetMetric("window_wall_seconds", r.window_wall_s);
    report.SetMetric("total_wall_seconds", r.total_wall_s);
    report.SetMetric("committed_txns", static_cast<double>(r.committed));
    report.SetMetric("failed_txns", static_cast<double>(r.failed));
    report.SetMetric("shed_txns", static_cast<double>(r.shed));
    report.SetMetric("records_written",
                     static_cast<double>(r.records_written));
    report.SetMetric("determinism_ok",
                     r.hash == results[0].hash ? 1.0 : 0.0);
    if (r.setup.workers == 0 && !r.setup.telemetry) {
      report.SetMetric("peak_rss_mb", r.peak_rss_mb);
      report.SetMetric("rss_per_client_kb", r.rss_per_client_kb);
    }
    if (r.setup.telemetry) {
      report.SetMetric("telemetry_events_ratio", ratio);
    }
  }
  Status st = report.WriteJson("BENCH_E17.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E17.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E17.json (%zu rows)\n", report.rows());
  std::printf("serial peak RSS %.0f MB, ~%.0f KB/client at construction\n",
              results[0].peak_rss_mb, results[0].rss_per_client_kb);

  if (!deterministic) {
    std::printf("FAIL: end-state hash differs across engines\n");
    return 1;
  }
  std::printf("determinism: end-state identical across %zu engine "
              "configurations\n", setups.size());
  std::printf("telemetry overhead: %.3fs wall with sampling vs %.3fs "
              "without over %d interleaved rounds (median events/s ratio "
              "%.3f)\n",
              wall_sampled, wall_plain, ratio_rounds, ratio);
  // Wall-clock, so noisy — but a sampling path that costs more than 5%
  // is a hot-loop bug, not noise, which is what this gate is for.
  if (ratio < 0.95) {
    std::printf("FAIL: telemetry overhead exceeds 5%% (ratio %.3f)\n",
                ratio);
    return 1;
  }
  return 0;
}
