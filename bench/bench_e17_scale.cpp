// Experiment E17 — large-cluster scale: a 50-server / 5000-client ET1
// slice on the serial and sharded engines.
//
// The ROADMAP's scale-out target made measurable: every client runs the
// real protocol (init via interval gather + epoch acquisition, grouped
// WriteLog/ForceLog streams, retry timers, driver backpressure) against
// a 50-server fleet on a 1 Gbit LAN. The bench reports raw engine
// throughput (events/s over the measured window), wall-clock, peak RSS,
// and per-client memory, and proves determinism: the workload's
// end-state hash (per-client committed/failed/shed + per-server records
// written) must be identical on the serial engine and on the parallel
// engine at every worker count and shard-group size.
//
// Each client talks to a 5-server slice of the fleet (servers
// (i+j) % M, j = 0..4) with its generator representatives on the first
// three — both the write load and the Appendix I identifier-generator
// load spread uniformly, as a real deployment would place them.
//
// Usage: bench_e17_scale [clients] [servers] [window_seconds]
// Defaults: 5000 50 5. CI gates a reduced geometry (400 10 2) via
// tools/bench_diff.py on determinism_ok / committed_txns / events_per_sec;
// the full-size run is the acceptance configuration. Exit is nonzero on
// any determinism mismatch. Engine speed varies run to run, so
// BENCH_E17.json is bench_diff-gated (directional, generous threshold),
// never byte-compared.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/stop_latch.h"
#include "obs/bench_report.h"

namespace {

using namespace dlog;

struct EngineSetup {
  int workers = 0;          // 0 = serial sim::Simulator
  int nodes_per_shard = 1;  // parallel only
};

struct RunResult {
  EngineSetup setup;
  uint64_t committed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t records_written = 0;
  uint64_t hash = 0;
  uint64_t window_events = 0;
  double window_wall_s = 0;   // wall-clock of the measured RunFor
  double total_wall_s = 0;    // init + warmup + window
  double events_per_sec = 0;  // window_events / window_wall_s
  double peak_rss_mb = 0;
  double rss_per_client_kb = 0;  // construction RSS delta / clients
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

double PeakRssMb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KB -> MB
}

RunResult RunConfig(const EngineSetup& setup, int clients, int servers,
                    int window_seconds) {
  RunResult r;
  r.setup = setup;

  const double rss_before_mb = PeakRssMb();
  const auto wall_start = std::chrono::steady_clock::now();

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.shard_workers = setup.workers;
  cluster_cfg.nodes_per_shard = setup.nodes_per_shard;
  // A modern-LAN profile: at the 1987 default of 10 Mbit the fleet's
  // aggregate init + log traffic would saturate the medium long before
  // the engine becomes the bottleneck this bench measures.
  cluster_cfg.network.bandwidth_bits_per_sec = 1e9;
  cluster_cfg.run_until_quantum = sim::kMillisecond;
  harness::Cluster cluster(cluster_cfg);

  harness::StopLatch started(static_cast<uint64_t>(clients));
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  drivers.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    // A 5-server slice of the fleet, representatives on its first 3.
    for (int j = 0; j < 5; ++j) {
      log_cfg.servers.push_back(
          static_cast<net::NodeId>((i + j) % servers + 1));
    }
    log_cfg.generator_reps.assign(log_cfg.servers.begin(),
                                  log_cfg.servers.begin() + 3);
    log_cfg.seed = 1700 + static_cast<uint64_t>(i);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 2.0;
    driver_cfg.seed = 17000 + static_cast<uint64_t>(i);
    driver_cfg.max_log_backlog = 64;
    driver_cfg.start_latch = &started;
    // Light per-client bank: the protocol load is what's under test,
    // and 5000 default-size banks would dominate the memory budget.
    driver_cfg.bank.accounts = 100;
    driver_cfg.bank.tellers = 10;
    driver_cfg.bank.branches = 2;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
  }
  // Stagger the fleet's Init calls over two simulated seconds so the
  // generator representatives see a ramp, not 5000 simultaneous epoch
  // acquisitions at t = 0.
  const sim::Duration spread = 2 * sim::kSecond;
  for (int i = 0; i < clients; ++i) {
    harness::Et1Driver* d = drivers[static_cast<size_t>(i)].get();
    cluster.client_scheduler(i).At(
        static_cast<sim::Time>(i) * spread / clients,
        [d]() { d->Start(); });
  }
  r.rss_per_client_kb =
      (PeakRssMb() - rss_before_mb) * 1024.0 / clients;

  // Init barrier: a single atomic-flag stop condition, not an
  // O(clients) predicate per poll.
  if (!cluster.RunUntil(started, 120 * sim::kSecond)) {
    std::fprintf(stderr, "E17: fleet failed to initialize (%llu left)\n",
                 static_cast<unsigned long long>(started.remaining()));
    std::exit(1);
  }
  cluster.RunFor(1 * sim::kSecond);  // warm-up past the start transient

  const uint64_t events_before = setup.workers == 0
                                     ? cluster.sim().events_executed()
                                     : cluster.parallel_sim().events_executed();
  const auto window_start = std::chrono::steady_clock::now();
  cluster.RunFor(window_seconds * sim::kSecond);
  const auto window_end = std::chrono::steady_clock::now();
  const uint64_t events_after = setup.workers == 0
                                    ? cluster.sim().events_executed()
                                    : cluster.parallel_sim().events_executed();

  r.hash = 1469598103934665603ULL;  // FNV offset basis
  for (auto& d : drivers) {
    r.committed += d->committed();
    r.failed += d->failed();
    r.shed += d->txns_shed();
    r.hash = Fnv1a(r.hash, d->committed());
    r.hash = Fnv1a(r.hash, d->failed());
    r.hash = Fnv1a(r.hash, d->txns_shed());
  }
  for (int s = 1; s <= servers; ++s) {
    const uint64_t written = cluster.server(s).records_written().value();
    r.records_written += written;
    r.hash = Fnv1a(r.hash, written);
  }
  r.window_events = events_after - events_before;
  r.window_wall_s =
      std::chrono::duration<double>(window_end - window_start).count();
  r.total_wall_s =
      std::chrono::duration<double>(window_end - wall_start).count();
  r.events_per_sec =
      static_cast<double>(r.window_events) / r.window_wall_s;
  r.peak_rss_mb = PeakRssMb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 5000;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 50;
  const int window_seconds = argc > 3 ? std::atoi(argv[3]) : 5;

  // Serial first: peak RSS is a process-wide high-water mark, so only
  // the first cluster's numbers are attributable.
  const std::vector<EngineSetup> setups = {
      {0, 1}, {2, 128}, {8, 128}, {8, 512}};

  std::printf(
      "E17: scale slice, %d clients x %d servers, 1 Gbit LAN, 2.0 TPS "
      "per client, %ds measured window\n\n",
      clients, servers, window_seconds);
  std::printf(
      "  engine        | events/s | window wall s | committed | shed | "
      "hash\n");

  std::vector<RunResult> results;
  for (const EngineSetup& setup : setups) {
    results.push_back(RunConfig(setup, clients, servers, window_seconds));
    const RunResult& r = results.back();
    char engine[32];
    if (setup.workers == 0) {
      std::snprintf(engine, sizeof engine, "serial");
    } else {
      std::snprintf(engine, sizeof engine, "w=%d nps=%d", setup.workers,
                    setup.nodes_per_shard);
    }
    std::printf("  %-13s | %8.0f | %13.2f | %9llu | %4llu | %016llx\n",
                engine, r.events_per_sec, r.window_wall_s,
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.hash));
  }

  bool deterministic = true;
  for (const RunResult& r : results) {
    if (r.hash != results[0].hash) deterministic = false;
  }

  obs::BenchReport report("E17");
  for (const RunResult& r : results) {
    report.BeginRow();
    report.SetConfig("engine", r.setup.workers == 0 ? "serial" : "parallel");
    report.SetConfig("workers", r.setup.workers);
    report.SetConfig("nodes_per_shard", r.setup.nodes_per_shard);
    report.SetConfig("clients", clients);
    report.SetConfig("servers", servers);
    report.SetConfig("window_seconds", window_seconds);
    report.SetMetric("events_per_sec", r.events_per_sec);
    report.SetMetric("window_events", static_cast<double>(r.window_events));
    report.SetMetric("window_wall_seconds", r.window_wall_s);
    report.SetMetric("total_wall_seconds", r.total_wall_s);
    report.SetMetric("committed_txns", static_cast<double>(r.committed));
    report.SetMetric("failed_txns", static_cast<double>(r.failed));
    report.SetMetric("shed_txns", static_cast<double>(r.shed));
    report.SetMetric("records_written",
                     static_cast<double>(r.records_written));
    report.SetMetric("determinism_ok",
                     r.hash == results[0].hash ? 1.0 : 0.0);
    if (r.setup.workers == 0) {
      report.SetMetric("peak_rss_mb", r.peak_rss_mb);
      report.SetMetric("rss_per_client_kb", r.rss_per_client_kb);
    }
  }
  Status st = report.WriteJson("BENCH_E17.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E17.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E17.json (%zu rows)\n", report.rows());
  std::printf("serial peak RSS %.0f MB, ~%.0f KB/client at construction\n",
              results[0].peak_rss_mb, results[0].rss_per_client_kb);

  if (!deterministic) {
    std::printf("FAIL: end-state hash differs across engines\n");
    return 1;
  }
  std::printf("determinism: end-state identical across %zu engine "
              "configurations\n", setups.size());
  return 0;
}
