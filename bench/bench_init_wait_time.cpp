// Experiment E12 — the model the paper's Section 3.2 closes by asking
// for: "In practice, M-N+1 log servers do not have to be simultaneously
// available to initialize a client process. The client process can poll
// until it receives responses from enough servers ... Predicting the
// expected time for client process initialization to complete requires a
// more complicated model that includes the expected rates of log server
// failures and the expected times for repair."
//
// Each of M servers alternates between up (exponential MTTF) and down
// (exponential MTTR). We measure, from random restart instants:
//   * the steady-state fraction of time M-N+1 servers are simultaneously
//     up (the paper's instantaneous availability, cross-check:
//     p = MTTR / (MTTF + MTTR));
//   * the distribution of the time a polling client waits until M-N+1
//     servers are up (0 when already available).

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/availability.h"
#include "common/rng.h"
#include "sim/stats.h"

namespace {

using dlog::Rng;

struct WaitResult {
  double instantaneous;   // fraction of probes with quorum already up
  double mean_wait_min;   // over probes that had to wait
  double p95_wait_min;
  double overall_mean_min;  // including zero waits
};

// Simulates the M alternating renewal processes and probes them.
WaitResult Simulate(int m, int n, double mttf_hours, double mttr_minutes,
                    uint64_t seed) {
  const double mttf_min = mttf_hours * 60.0;
  Rng rng(seed);
  const int need = m - n + 1;

  // Per-server next transition time and state.
  std::vector<double> next_change(m);
  std::vector<bool> up(m, true);
  for (int i = 0; i < m; ++i) {
    next_change[i] = rng.NextExponential(mttf_min);
  }

  dlog::sim::Histogram waits;        // minutes, waits > 0 only
  dlog::sim::Histogram all_waits;
  int instant_ok = 0;
  int probes = 0;

  double now = 0;
  double next_probe = rng.NextExponential(30.0);  // probe ~ every 30 min
  const double horizon = 10'000'000;              // minutes
  // Event loop over server transitions and probes. Several probes can be
  // waiting at once (they sample the same outage independently).
  std::vector<double> pending_starts;
  while (now < horizon && probes < 200000) {
    // Next event: earliest server transition or the probe.
    int who = -1;
    double when = next_probe;
    for (int i = 0; i < m; ++i) {
      if (next_change[i] < when) {
        when = next_change[i];
        who = i;
      }
    }
    now = when;
    int up_count = 0;
    for (int i = 0; i < m; ++i) up_count += up[i] ? 1 : 0;

    if (who < 0) {
      next_probe = now + rng.NextExponential(30.0);
      // Probe: a client restarts now and polls until `need` are up.
      ++probes;
      if (up_count >= need) {
        ++instant_ok;
        all_waits.Add(0.0);
      } else {
        pending_starts.push_back(now);
      }
      continue;
    }
    // Server transition.
    up[who] = !up[who];
    next_change[who] =
        now + (up[who] ? rng.NextExponential(mttf_min)
                       : rng.NextExponential(mttr_minutes));
    if (!pending_starts.empty()) {
      int count = 0;
      for (int i = 0; i < m; ++i) count += up[i] ? 1 : 0;
      if (count >= need) {
        for (double start : pending_starts) {
          const double wait = now - start;
          waits.Add(wait);
          all_waits.Add(wait);
        }
        pending_starts.clear();
      }
    }
  }

  WaitResult r;
  r.instantaneous = static_cast<double>(instant_ok) / probes;
  r.mean_wait_min = waits.Mean();
  r.p95_wait_min = waits.Percentile(0.95);
  r.overall_mean_min = all_waits.Mean();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "Client-initialization wait-time model (Section 3.2's suggested "
      "extension)\nServers alternate up/down with exponential MTTF/MTTR; "
      "clients restart at random instants and poll for M-N+1 up "
      "servers.\n\n");
  std::printf("%-4s %-4s %-10s %-10s | %-12s %-12s | %-12s %-12s %-12s\n",
              "M", "N", "MTTF", "MTTR", "inst (sim)", "inst (calc)",
              "wait mean", "wait p95", "overall");
  const double mttf_hours = 38.0;  // p = MTTR/(MTTF+MTTR) = 0.05 at 2h MTTR
  for (int n : {2, 3}) {
    for (int m : {3, 5, 7}) {
      if (n > m) continue;
      const double mttr_minutes = 120.0;
      const double p =
          mttr_minutes / (mttf_hours * 60.0 + mttr_minutes);
      WaitResult r = Simulate(m, n, mttf_hours, mttr_minutes,
                              100 + m * 10 + n);
      const double calc = dlog::analysis::ClientInitAvailability(m, n, p);
      std::printf(
          "%-4d %-4d %-10s %-10s | %-12.4f %-12.4f | %8.1f min %8.1f min "
          "%8.2f min\n",
          m, n, "38h", "2h", r.instantaneous, calc, r.mean_wait_min,
          r.p95_wait_min, r.overall_mean_min);
    }
  }
  std::printf(
      "\nReadings:\n"
      "  * the instantaneous column reproduces the closed-form Section "
      "3.2 availability (cross-validation of the renewal model);\n"
      "  * when a restarting client does have to wait, the wait is "
      "bounded by repair times (~MTTR/k for k missing servers), so even "
      "configurations with modest instantaneous availability recover "
      "quickly — the paper's polling argument quantified.\n");
  return 0;
}
