// Experiment E10 — simulated vs closed-form availability (Section 3.2).
//
// The first end-to-end check that the implemented protocol actually
// delivers the availability the paper computes. A chaos::ChaosController
// runs the Section 3.2 Markov fault process (per-server exponential
// up/down cycles, p = MTTR/(MTTF+MTTR) = 10/200 = 0.05) against a live
// cluster while two probe clients Monte-Carlo the paper's two
// operations:
//
//   * WriteLog availability — a persistent writer attempts a small
//     write + force every probe interval. The paper: available iff at
//     most M-N servers are down (any N of M can hold the copies).
//   * ClientInit availability — a probe client is crash-cycled through
//     the cluster lifecycle (CrashClient/RestartClient) and re-runs the
//     Section 3.1.2 initialization. The paper: available iff at most
//     N-1 servers are down (M-N+1 interval lists are reachable).
//
// Alongside the protocol probes, the same instants are state-sampled
// (count down servers, apply the combinatorial condition directly),
// separating Monte-Carlo noise from protocol effects: state-sampled vs
// closed-form shows sampling error; protocol vs state-sampled shows
// implementation deviation.
//
// Output: BENCH_E10.json, one row per (N, M) configuration. With fixed
// seeds the run — and the JSON — is byte-identical across reruns.
//
// Each configuration's probes are split into kTrialsPerConfig fully
// independent trials (own cluster, own seeds) fanned across a
// harness::TrialRunner thread pool. The decomposition, the per-trial
// seeds, and the merge order are fixed regardless of thread count, so
// the JSON is byte-identical whether the trials run serially or on
// eight threads — parallelism only changes wall-clock time.
//
// Usage: bench_e10_simulated_availability [probes_per_config] [threads]
//            [shard_workers]
//   default 4000 probes (a few tens of seconds) on 1 thread; CI soak
//   uses a small count and the tolerance below widens with the matching
//   3.5-sigma bound. shard_workers > 0 runs every trial cluster on the
//   sharded parallel engine; predicate waits are quantized on the LAN
//   propagation delay in both modes, so the JSON is byte-identical to
//   the serial run at every worker count.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/availability.h"
#include "chaos/controller.h"
#include "harness/cluster.h"
#include "harness/trial_runner.h"
#include "obs/bench_report.h"
#include "obs/flight.h"

namespace {

using namespace dlog;

constexpr sim::Duration kProbeInterval = 10 * sim::kSecond;
constexpr sim::Duration kWarmup = 300 * sim::kSecond;
constexpr sim::Duration kProbeTimeout = 3 * sim::kSecond;

struct ConfigResult {
  double write_measured = 0;  // protocol probe success fraction
  double init_measured = 0;
  double write_state = 0;  // state-sampled (same instants, same path)
  double init_state = 0;
  uint64_t server_crashes = 0;
};

/// Raw success counts from one independent trial.
struct TrialCounts {
  uint64_t write_ok = 0;
  uint64_t init_ok = 0;
  uint64_t state_write_ok = 0;
  uint64_t state_init_ok = 0;
  uint64_t server_crashes = 0;
};

/// How many independent trials each configuration decomposes into. Fixed
/// (not derived from the thread count) so the probe/seed split — and the
/// resulting JSON — never depends on the degree of parallelism.
constexpr int kTrialsPerConfig = 8;

/// Probe clients fail fast: a probe must resolve well inside the probe
/// interval, so an unavailable instant is reported as a failure instead
/// of being ridden out until the servers repair.
client::LogClientConfig ProbeClientConfig(uint32_t client_id, int copies) {
  client::LogClientConfig cfg;
  cfg.client_id = client_id;
  cfg.copies = copies;
  cfg.force_timeout = 300 * sim::kMillisecond;
  cfg.force_retries = 2;
  cfg.rpc_timeout = 150 * sim::kMillisecond;
  cfg.rpc_attempts = 2;
  return cfg;
}

TrialCounts RunTrial(int m, int n, int probes, uint64_t seed,
                     int shard_workers) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = m;
  cluster_cfg.seed = seed;
  cluster_cfg.shard_workers = shard_workers;
  // Quantized predicate waits in both modes: stopping times become a
  // pure function of the simulated schedule, so serial and parallel
  // runs probe at identical instants.
  cluster_cfg.run_until_quantum = cluster_cfg.network.propagation_delay;
  harness::Cluster cluster(cluster_cfg);

  harness::ClientHandle writer = cluster.AddClient(ProbeClientConfig(1, n));
  harness::ClientHandle initer = cluster.AddClient(ProbeClientConfig(2, n));

  // Probe callbacks hold their state on the heap: a probe that times out
  // (counted unavailable) may still complete later, once servers repair,
  // and that late completion must land somewhere harmless.
  struct ProbeState {
    bool done = false;
    Status status = Status::Internal("pending");
  };
  auto init_client = [&](harness::ClientHandle& c) {
    auto state = std::make_shared<ProbeState>();
    c->Init([state](Status s) {
      state->status = s;
      state->done = true;
    });
    cluster.RunUntil([&]() { return state->done; }, kProbeTimeout);
    return state->done && state->status.ok();
  };
  if (!init_client(writer) || !init_client(initer)) {
    std::fprintf(stderr, "E10: initial Init failed (M=%d N=%d)\n", m, n);
    std::exit(2);
  }

  chaos::MarkovFaultConfig markov;  // 190s/10s defaults: p = 0.05
  markov.seed = seed + 17;
  cluster.chaos().StartMarkov(markov);
  cluster.RunFor(kWarmup);  // mix toward the stationary state

  TrialCounts r;
  uint64_t write_ok = 0, init_ok = 0, state_write_ok = 0, state_init_ok = 0;
  Lsn last_forced = kNoLsn;
  for (int i = 0; i < probes; ++i) {
    const sim::Time probe_start = cluster.Now();

    // State sample at the probe instant (the closed forms' condition).
    int down = 0;
    for (int s = 1; s <= m; ++s) {
      if (!cluster.server(s).IsUp()) ++down;
    }
    if (down <= m - n) ++state_write_ok;
    if (down <= n - 1) ++state_init_ok;

    // WriteLog probe: one record, forced.
    Result<Lsn> lsn = writer->WriteLog(ToBytes("p" + std::to_string(i)));
    if (lsn.ok()) {
      auto state = std::make_shared<ProbeState>();
      writer->ForceLog(*lsn, [state](Status st) {
        state->status = st;
        state->done = true;
      });
      cluster.RunUntil([&]() { return state->done; }, kProbeTimeout);
      if (state->done && state->status.ok()) {
        ++write_ok;
        last_forced = *lsn;
      }
    }
    // Keep the accumulated per-server interval lists bounded so late
    // probes pay the same RPC sizes as early ones.
    if (i % 64 == 63 && last_forced != kNoLsn) {
      writer->TruncateLog(last_forced);
    }

    // ClientInit probe: a fresh incarnation re-enters the log.
    cluster.CrashClient(initer);
    cluster.RestartClient(initer);
    if (init_client(initer)) ++init_ok;

    const sim::Duration spent = cluster.Now() - probe_start;
    if (spent < kProbeInterval) cluster.RunFor(kProbeInterval - spent);
  }
  cluster.chaos().StopMarkov();

  r.write_ok = write_ok;
  r.init_ok = init_ok;
  r.state_write_ok = state_write_ok;
  r.state_init_ok = state_init_ok;
  r.server_crashes = cluster.chaos().server_crashes().value();
  return r;
}

/// Splits `probes` across kTrialsPerConfig independent trials, fans them
/// over `runner`, and merges the counts in trial order.
ConfigResult RunConfig(int m, int n, int probes, uint64_t seed,
                       const harness::TrialRunner& runner,
                       int shard_workers) {
  std::vector<TrialCounts> counts = runner.Run(
      kTrialsPerConfig, [m, n, probes, seed, shard_workers](size_t trial) {
        // Even probe split, remainder to the earliest trials; each trial
        // gets a disjoint deterministic seed.
        int trial_probes = probes / kTrialsPerConfig;
        if (static_cast<int>(trial) < probes % kTrialsPerConfig) {
          ++trial_probes;
        }
        if (trial_probes == 0) return TrialCounts{};
        return RunTrial(m, n, trial_probes,
                        seed + 1000 * (static_cast<uint64_t>(trial) + 1),
                        shard_workers);
      });

  TrialCounts total;
  for (const TrialCounts& c : counts) {
    total.write_ok += c.write_ok;
    total.init_ok += c.init_ok;
    total.state_write_ok += c.state_write_ok;
    total.state_init_ok += c.state_init_ok;
    total.server_crashes += c.server_crashes;
  }
  ConfigResult r;
  r.write_measured = static_cast<double>(total.write_ok) / probes;
  r.init_measured = static_cast<double>(total.init_ok) / probes;
  r.write_state = static_cast<double>(total.state_write_ok) / probes;
  r.init_state = static_cast<double>(total.state_init_ok) / probes;
  r.server_crashes = total.server_crashes;
  return r;
}

/// Acceptance band: +-0.01 at the default probe count, widened to the
/// 3.5-sigma binomial bound when a small CI run can't resolve 0.01.
double Tolerance(double closed_form, int probes) {
  const double sigma =
      std::sqrt(closed_form * (1.0 - closed_form) / probes);
  return std::max(0.01, 3.5 * sigma);
}

}  // namespace

/// Flight-recorder post-mortem artifact: a small serial chaos run with
/// the per-node span rings on. A writer streams forced records while a
/// scripted plan crashes a server, fails another's disk, and finally
/// crashes the writer itself; each fault freezes the victim's recent
/// spans. The dump of everything — E10_flight.json — is the CI artifact
/// showing what each node was doing when it died. Fixed seeds, serial
/// engine regardless of the sweep's shard_workers: byte-identical every
/// run.
bool WriteFlightArtifact() {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  cluster_cfg.flight_recorder = true;
  harness::Cluster cluster(cluster_cfg);

  harness::ClientHandle writer = cluster.AddClient(ProbeClientConfig(1, 2));
  bool init_done = false;
  writer->Init([&](Status s) { init_done = s.ok(); });
  if (!cluster.RunUntil([&]() { return init_done; }, kProbeTimeout)) {
    return false;
  }

  chaos::FaultPlan plan;
  plan.CrashServer(2 * sim::kSecond, 2)
      .FailDisk(3 * sim::kSecond, 3)
      .CrashClient(4 * sim::kSecond, 0);
  cluster.chaos().Execute(plan);

  // Forced writes until the plan kills the writer; failures past that
  // point are the powered-off machine answering, which is fine — the
  // rings already hold its final spans. Each probe roots its own trace
  // (the client only emits spans under a valid parent), which is what
  // feeds the rings the crash dumps snapshot.
  obs::Tracer& tracer = cluster.tracer();
  for (int i = 0; i < 400 && cluster.Now() < 5 * sim::kSecond; ++i) {
    const obs::SpanContext root = tracer.StartTrace("probe", "client-1");
    bool forced = false;
    {
      obs::Tracer::Scope scope(&tracer, root);
      Result<Lsn> lsn = writer->WriteLog(ToBytes("f" + std::to_string(i)));
      if (lsn.ok()) {
        writer->ForceLog(*lsn, [&](Status) { forced = true; });
      } else {
        forced = true;
      }
    }
    if (!forced) {
      cluster.RunUntil([&]() { return forced; }, 500 * sim::kMillisecond);
    }
    tracer.EndSpan(root);
    cluster.RunFor(10 * sim::kMillisecond);
  }
  cluster.RunFor(1 * sim::kSecond);

  const obs::FlightRecorder* recorder = cluster.flight_recorder();
  size_t spans = 0;
  for (const obs::FlightRecorder::DumpRecord& d : recorder->dumps()) {
    spans += d.spans.size();
  }
  std::ofstream out("E10_flight.json", std::ios::binary);
  out << obs::FlightDumpsJson(*recorder);
  if (!out) return false;
  std::printf("wrote E10_flight.json (%zu dumps, %zu spans)\n",
              recorder->dumps().size(), spans);
  // Three crash-class faults -> three dumps, and the crashed server /
  // client rings must not both be empty under a forced-write load.
  return recorder->dumps().size() == 3 && spans > 0;
}

int main(int argc, char** argv) {
  const int probes = argc > 1 ? std::atoi(argv[1]) : 4000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 1;
  const int shard_workers = argc > 3 ? std::atoi(argv[3]) : 0;
  const double p = 0.05;
  harness::TrialRunner runner(threads > 0 ? threads : 1);

  obs::BenchReport report("e10_simulated_availability");
  bool all_ok = true;

  std::printf(
      "E10: Monte-Carlo availability on the running protocol, Markov "
      "faults (MTTF=190s MTTR=10s, p=%.2f), %d probes/config, %d trials "
      "on %d thread(s)\n\n",
      p, probes, kTrialsPerConfig, threads);
  std::printf("%-3s %-3s | %-28s | %-28s\n", "N", "M",
              "WriteLog (closed/state/meas)",
              "ClientInit (closed/state/meas)");
  std::printf("--------+------------------------------+-----------------"
              "-------------\n");

  const int kConfigs[][2] = {{2, 3}, {2, 5}};  // {N, M}
  for (const auto& nm : kConfigs) {
    const int n = nm[0], m = nm[1];
    const double write_closed = analysis::WriteLogAvailability(m, n, p);
    const double init_closed = analysis::ClientInitAvailability(m, n, p);
    const ConfigResult r =
        RunConfig(m, n, probes, /*seed=*/1000 + m, runner, shard_workers);

    const double write_tol = Tolerance(write_closed, probes);
    const double init_tol = Tolerance(init_closed, probes);
    const bool ok =
        std::abs(r.write_measured - write_closed) <= write_tol &&
        std::abs(r.init_measured - init_closed) <= init_tol;
    all_ok = all_ok && ok;

    std::printf("%-3d %-3d | %.4f / %.4f / %.4f     | %.4f / %.4f / "
                "%.4f     %s\n",
                n, m, write_closed, r.write_state, r.write_measured,
                init_closed, r.init_state, r.init_measured,
                ok ? "[ok]" : "[OUT OF BAND]");

    report.BeginRow();
    report.SetConfig("n_copies", n);
    report.SetConfig("m_servers", m);
    report.SetConfig("p", p);
    report.SetConfig("mttf_s", 190);
    report.SetConfig("mttr_s", 10);
    report.SetConfig("probes", probes);
    report.SetMetric("write_availability_closed_form", write_closed);
    report.SetMetric("write_availability_state_mc", r.write_state);
    report.SetMetric("write_availability_measured", r.write_measured);
    report.SetMetric("init_availability_closed_form", init_closed);
    report.SetMetric("init_availability_state_mc", r.init_state);
    report.SetMetric("init_availability_measured", r.init_measured);
    report.SetMetric("write_abs_error",
                     std::abs(r.write_measured - write_closed));
    report.SetMetric("init_abs_error",
                     std::abs(r.init_measured - init_closed));
    report.SetMetric("tolerance_write", write_tol);
    report.SetMetric("tolerance_init", init_tol);
    report.SetMetric("server_crashes",
                     static_cast<double>(r.server_crashes));
  }

  Status st = report.WriteJson("BENCH_E10.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E10.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E10.json (%zu rows)\n", report.rows());
  if (!WriteFlightArtifact()) {
    std::printf("E10 FAILED: flight-recorder artifact missing dumps\n");
    return 1;
  }
  if (!all_ok) {
    std::printf("E10 FAILED: measured availability outside the closed-"
                "form band\n");
    return 1;
  }
  return 0;
}
