// Experiment E8 — Appendix I: the replicated increasing unique identifier
// generator.
//   * availability vs number of representatives (closed form + Monte
//     Carlo over representative up/down draws);
//   * behavioural check: identifiers strictly increase across thousands
//     of NewID calls interleaved with crashes and representative churn;
//   * values skipped by crashed NewID calls are counted (permitted by
//     the specification, never repeated).

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/availability.h"
#include "common/rng.h"
#include "epoch/id_generator.h"

int main() {
  using namespace dlog;

  const double p = 0.05;
  std::printf(
      "Appendix I: availability of the replicated identifier generator "
      "(p = %.2f)\n\n",
      p);
  std::printf("%4s %12s %12s\n", "N", "exact", "MonteCarlo");
  Rng rng(11);
  for (int n = 1; n <= 9; ++n) {
    const double exact = analysis::GeneratorAvailability(n, p);
    int ok = 0;
    const int trials = 300000;
    for (int t = 0; t < trials; ++t) {
      int down = 0;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(p)) ++down;
      }
      if (down <= (n - 1) / 2) ++ok;
    }
    std::printf("%4d %12.6f %12.6f\n", n, exact,
                static_cast<double>(ok) / trials);
  }
  std::printf("(note: an even N adds no tolerance over N-1 — the table "
              "shows the N=3/4, 5/6, 7/8 plateaus)\n\n");

  // Behavioural run: monotonicity under churn and crashes.
  std::vector<std::unique_ptr<epoch::GeneratorStateRep>> reps;
  std::vector<epoch::GeneratorStateRep*> raw;
  for (int i = 0; i < 5; ++i) {
    reps.push_back(std::make_unique<epoch::GeneratorStateRep>());
    raw.push_back(reps.back().get());
  }
  epoch::ReplicatedIdGenerator generator(raw);

  Rng churn(99);
  uint64_t last = 0;
  uint64_t issued = 0, skipped = 0, unavailable = 0, violations = 0;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t dice = churn.NextBelow(100);
    if (dice < 10) {
      // Crash a NewID mid-write.
      (void)generator.NewIdCrashAfterWrites(
          static_cast<int>(churn.NextBelow(3)));
      ++skipped;
    } else if (dice < 25) {
      // Flap one representative (keep a majority up).
      int up = 0;
      for (auto& r : reps) up += r->IsAvailable() ? 1 : 0;
      auto& victim = reps[churn.NextBelow(reps.size())];
      if (victim->IsAvailable() && up > 3) {
        victim->SetAvailable(false);
      } else {
        victim->SetAvailable(true);
      }
    } else {
      Result<uint64_t> id = generator.NewId();
      if (!id.ok()) {
        ++unavailable;
        continue;
      }
      if (*id <= last) ++violations;
      last = *id;
      ++issued;
    }
  }
  std::printf("Behavioural run (5 representatives, 20000 steps):\n");
  std::printf("  identifiers issued ......... %llu\n",
              static_cast<unsigned long long>(issued));
  std::printf("  crashed NewID calls ........ %llu (values skipped, never "
              "repeated)\n",
              static_cast<unsigned long long>(skipped));
  std::printf("  unavailable calls .......... %llu\n",
              static_cast<unsigned long long>(unavailable));
  std::printf("  monotonicity violations .... %llu (must be 0)\n",
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}
