// Experiment E3 — Figures 3-1, 3-2, 3-3: the worked example of the
// replicated log algorithm. Drives the reference implementation through
// the exact history implied by the figures (epoch-1 writes on servers
// 1+2, an epoch-3 recovery using servers 1+3, server switches for LSNs
// 6-7 and 8-9, a partial write of record 10, and a final recovery using
// servers 1+2) and prints each server's records in the paper's
// LSN/Epoch/Present table format after each stage.

#include <cstdio>
#include <memory>
#include <vector>

#include "client/log_server_stub.h"
#include "client/replicated_log.h"
#include "epoch/id_generator.h"

namespace {

using namespace dlog;
using client::InMemoryLogServerStub;
using client::ReplicatedLog;

constexpr ClientId kClient = 1;

void PrintServers(std::vector<std::unique_ptr<InMemoryLogServerStub>>& s) {
  // Column-per-server table of <LSN, Epoch, Present> rows.
  std::vector<std::vector<LogRecord>> rows;
  size_t max_rows = 0;
  for (auto& srv : s) {
    rows.push_back(srv->store(kClient).stream());
    max_rows = std::max(max_rows, rows.back().size());
  }
  for (size_t i = 0; i < s.size(); ++i) {
    std::printf("     Server %zu          ", i + 1);
  }
  std::printf("\n");
  for (size_t i = 0; i < s.size(); ++i) {
    std::printf("LSN  Epoch  Present    ");
  }
  std::printf("\n");
  for (size_t r = 0; r < max_rows; ++r) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (r < rows[i].size()) {
        const LogRecord& rec = rows[i][r];
        std::printf("%-4llu %-6llu %-10s ",
                    static_cast<unsigned long long>(rec.lsn),
                    static_cast<unsigned long long>(rec.epoch),
                    rec.present ? "yes" : "no");
      } else {
        std::printf("%-22s ", "");
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::vector<std::unique_ptr<InMemoryLogServerStub>> servers;
  std::vector<client::LogServerStub*> raw;
  for (int i = 1; i <= 3; ++i) {
    servers.push_back(std::make_unique<InMemoryLogServerStub>(i));
    raw.push_back(servers.back().get());
  }
  std::vector<std::unique_ptr<epoch::GeneratorStateRep>> reps;
  std::vector<epoch::GeneratorStateRep*> raw_reps;
  for (int i = 0; i < 3; ++i) {
    reps.push_back(std::make_unique<epoch::GeneratorStateRep>());
    raw_reps.push_back(reps.back().get());
  }
  epoch::ReplicatedIdGenerator generator(raw_reps);
  ReplicatedLog::Options opts;
  opts.copies = 2;

  // Epoch 1: records 1-3 on servers 1 and 2.
  {
    ReplicatedLog log(kClient, raw, &generator, opts);
    if (!log.Init().ok()) return 1;
    for (int i = 1; i <= 3; ++i) (void)log.WriteLog(ToBytes("epoch1"));
  }
  (void)generator.NewId();  // the figures' history includes a burnt epoch

  {
    // Epoch 3: recovery using servers 1 and 3 (server 2 down), then
    // writes 5 (S1+S3), 6-7 (S1+S2), 8-9 (S1+S3).
    servers[1]->SetAvailable(false);
    ReplicatedLog log(kClient, raw, &generator, opts);
    if (!log.Init().ok()) return 1;
    (void)log.WriteLog(ToBytes("r5"));
    servers[1]->SetAvailable(true);
    servers[2]->SetAvailable(false);
    (void)log.WriteLog(ToBytes("r6"));
    (void)log.WriteLog(ToBytes("r7"));
    servers[2]->SetAvailable(true);
    servers[1]->SetAvailable(false);
    (void)log.WriteLog(ToBytes("r8"));
    (void)log.WriteLog(ToBytes("r9"));
    servers[1]->SetAvailable(true);

    std::printf("=== Figure 3-1: three log server nodes ===\n");
    PrintServers(servers);

    // Record 10 partially written (reaches server 3 only).
    servers[0]->SetAvailable(false);
    (void)log.WriteLogCrashAfter(ToBytes("r10"), 1);
    servers[0]->SetAvailable(true);
    std::printf(
        "=== Figure 3-2: record 10 partially written (server 3 only) "
        "===\n");
    PrintServers(servers);
  }

  // Figure 3-3: crash recovery using servers 1 and 2, server 3 down.
  servers[2]->SetAvailable(false);
  ReplicatedLog log(kClient, raw, &generator, opts);
  if (!log.Init().ok()) return 1;
  servers[2]->SetAvailable(true);
  std::printf(
      "=== Figure 3-3: after crash recovery with server 3 unavailable "
      "===\n");
  PrintServers(servers);

  std::printf("record 10 reported as: %s (consistently not present)\n",
              log.ReadLog(10).status().ToString().c_str());
  std::printf("record 9 reads back:  \"%s\"\n",
              ToString(*log.ReadLog(9)).c_str());
  return 0;
}
