// Experiment E5 — the Section 5.6 measurement: "remote logging to virtual
// memory on two remote servers used less than twice the elapsed time
// required for local logging to a single disk."
//
// Runs the same ET1 transaction stream over three logging designs:
//   A. replicated remote log, N=2, servers acking from NVRAM
//      (the paper's stage-2/stage-3 configuration);
//   B. local logging to a single disk (the paper's comparison point);
//   C. local duplexed disks (the conventional Gray-style design).
// Reports per-transaction elapsed time and the remote/local ratio.

#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/duplexed_logger.h"
#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "obs/bench_report.h"
#include "tp/bank.h"
#include "tp/engine.h"

namespace {

using namespace dlog;

struct RunStats {
  double p50 = 0, mean = 0, p95 = 0;
  uint64_t committed = 0;
};

/// Runs `txns` serial ET1 transactions against an engine whose logger is
/// provided; returns latency stats.
RunStats RunSerialBank(sim::Simulator* sim, tp::TxnLogger* logger,
                       std::function<void(sim::Duration)> advance,
                       int txns) {
  tp::PageDisk page_disk(1024);
  tp::TransactionEngine engine(sim, logger, &page_disk, tp::EngineConfig{});
  tp::BankDb bank(&engine, tp::BankConfig{});
  sim::Histogram latency_ms;
  RunStats stats;
  for (int i = 0; i < txns; ++i) {
    const sim::Time start = sim->Now();
    bool done = false;
    Status result = Status::Internal("pending");
    bank.RunEt1(i % 100, i % 10, i % 5, 1, [&](Status st) {
      result = st;
      done = true;
    });
    for (int guard = 0; !done && guard < 120000; ++guard) {
      advance(sim::kMillisecond);
    }
    if (!done) break;  // wedged: report what we have
    if (result.ok()) {
      ++stats.committed;
      latency_ms.Add(sim::DurationToSeconds(sim->Now() - start) * 1e3);
    }
  }
  stats.p50 = latency_ms.Percentile(0.5);
  stats.mean = latency_ms.Mean();
  stats.p95 = latency_ms.Percentile(0.95);
  return stats;
}

RunStats RunRemote(int copies) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  harness::Cluster cluster(cluster_cfg);
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 1;
  log_cfg.copies = copies;
  auto log = cluster.AddClient(log_cfg);
  bool ready = false;
  log->Init([&](Status st) { ready = st.ok(); });
  cluster.RunUntil([&]() { return ready; });
  tp::ReplicatedTxnLogger logger(log.get());
  return RunSerialBank(
      &cluster.sim(), &logger,
      [&](sim::Duration d) { cluster.sim().RunFor(d); }, 300);
}

RunStats RunLocal(int disks) {
  sim::Simulator sim;
  baseline::DuplexedLogConfig cfg;
  cfg.num_disks = disks;
  baseline::DuplexedDiskLogger logger(&sim, cfg);
  return RunSerialBank(&sim, &logger,
                       [&](sim::Duration d) { sim.RunFor(d); }, 300);
}

}  // namespace

int main() {
  std::printf("Section 5.6: remote replicated logging vs local disk "
              "logging (300 serial ET1 transactions each)\n\n");
  RunStats remote2 = RunRemote(2);
  RunStats local1 = RunLocal(1);
  RunStats local2 = RunLocal(2);

  obs::BenchReport report("E5");
  const struct {
    const char* design;
    const RunStats* stats;
  } rows[] = {{"remote_replicated_n2", &remote2},
              {"local_single_disk", &local1},
              {"local_duplexed_disks", &local2}};
  for (const auto& row : rows) {
    report.BeginRow();
    report.SetConfig("design", row.design);
    report.SetConfig("txns", 300);
    report.SetMetric("committed", static_cast<double>(row.stats->committed));
    report.SetMetric("latency_p50_ms", row.stats->p50);
    report.SetMetric("latency_mean_ms", row.stats->mean);
    report.SetMetric("latency_p95_ms", row.stats->p95);
  }

  std::printf("%-42s %8s %8s %8s\n", "design", "p50 ms", "mean ms",
              "p95 ms");
  std::printf("%-42s %8.2f %8.2f %8.2f\n",
              "remote replicated log, N=2 (NVRAM ack)", remote2.p50,
              remote2.mean, remote2.p95);
  std::printf("%-42s %8.2f %8.2f %8.2f\n", "local single log disk",
              local1.p50, local1.mean, local1.p95);
  std::printf("%-42s %8.2f %8.2f %8.2f\n", "local duplexed log disks",
              local2.p50, local2.mean, local2.p95);

  const double ratio = remote2.mean / local1.mean;
  std::printf(
      "\nremote(N=2) / local(single) elapsed-time ratio: %.2fx   "
      "(paper: < 2x; with low-latency NVRAM on the servers the remote "
      "path avoids rotational latency entirely)\n",
      ratio);

  report.BeginRow();
  report.SetConfig("design", "summary");
  report.SetMetric("remote_over_local_ratio", ratio);
  Status st = report.WriteJson("BENCH_E5.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E5.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_E5.json (%zu rows)\n", report.rows());
  return ratio < 2.0 ? 0 : 1;
}
