// Engine throughput — the fast-path optimizations measured head to head.
//
// Four sections, one BENCH_ENGINE.json:
//
//   * engine: raw discrete-event throughput (events/sec) of the current
//     sim::Simulator (slot/generation table, pooled small-buffer
//     callbacks, POD heap entries) against a faithful inline replica of
//     the previous engine (std::function events copied on every pop,
//     lazy cancellation through an unordered_set probed per pop). Both
//     run the identical timer-wheel workload: a ring of self-
//     rescheduling events with steady cancel churn, captures sized like
//     the wire layer's (inline-eligible in the new engine).
//
//   * wheel: the same cancel-heavy workload on the current engine with
//     the hierarchical timer wheel enabled (the default) and disabled
//     (pure binary heap). The workload's far-out retry timers are the
//     wheel's target: cancelled entries die in their bucket for free
//     instead of riding the heap until expiry. The executed schedules
//     must be identical — the wheel is schedule-invisible.
//
//   * obs: the disabled-tracer hot path, gated at zero heap
//     allocations. Span names and node labels pass as string_views, so
//     a disabled tracer at every-event call frequency must not touch
//     the allocator; a global operator-new counter proves it.
//
//   * wire: payload bytes memcpy'd per delivered record, after their
//     initial serialization (the dlog::BytesCopied() counter). "after"
//     runs the real stack: trailer framing in place, SharedBytes slices
//     through envelope and record decode, one counted materialization at
//     persistence. "before" replays the same payload through the copy
//     chain the previous stack performed (header-prefix rebuild, packet
//     buffer copy, per-receiver duplication, envelope body copy, record
//     blob copy, pending-buffer copy, persistence encode), counting each
//     with the same counter.
//
//   * cluster: end-to-end messages/sec and records/sec (wall clock) of a
//     live 3-server cluster forcing records through the full new stack —
//     the figure the two optimizations above exist to move.
//
//   * parallel: a multi-node workload (per-node timer chains plus
//     cross-node injections) run on the serial engine and on the
//     sharded sim::ParallelSimulator at the requested worker count.
//     Every run folds its execution into a per-node FNV hash;
//     determinism_ok = 1 iff the serial hash, the 1-worker hash, and
//     the N-worker hash are all equal — a machine-independent metric CI
//     gates on with a zero threshold. events_per_sec and the
//     parallel-vs-serial speedup are reported for trend tracking
//     (speedup > 1 needs real cores; on one CPU the parallel engine
//     pays its window overhead).
//
// Wall-clock numbers vary by machine; the JSON is for trend tracking,
// not byte-diffing. CI gates on this binary exiting 0 and on
// determinism_ok via tools/bench_diff.py.
//
// Usage: bench_engine_throughput [engine_events] [cluster_records]
//            [shard_workers]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "harness/cluster.h"
#include "obs/bench_report.h"
#include "obs/trace.h"
#include "server/track_format.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "wire/messages.h"

// Global allocation tally backing the obs section's zero-allocation
// regression assert. Counting is process-wide; the assert reads a delta
// across a single-threaded region, so relaxed ordering suffices.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dlog;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- Section 1: event engine, before vs after ---

/// The previous engine, verbatim (git history: src/sim/simulator.{h,cc}
/// before the slot-table rewrite): one std::function per queued event,
/// copied out of the heap top on every pop, with lazy cancellation via
/// an unordered_set probe per pop.
class LegacySimulator {
 public:
  using EventId = uint64_t;

  sim::Time Now() const { return now_; }

  EventId At(sim::Time t, std::function<void()> fn) {
    EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    return id;
  }

  EventId After(sim::Duration d, std::function<void()> fn) {
    return At(now_ + d, std::move(fn));
  }

  bool Cancel(EventId id) {
    if (id == 0 || id >= next_id_) return false;
    return cancelled_.insert(id).second;
  }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();  // copies the std::function
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      now_ = ev.time;
      ++events_executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    sim::Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventGreater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  sim::Time now_ = 0;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventGreater> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// The weight of a wire-layer event capture: Network::DeliverTo and
/// Endpoint::SendFrame close over a Packet (src, dst, refcounted
/// payload) plus a pointer — about 40 bytes. Below std::function's
/// small-object threshold this would be free; at the real size the old
/// engine pays a heap allocation per scheduled event and a deep copy per
/// pop, while sim::Callback keeps it inline.
struct PacketCapture {
  uint64_t a = 0, b = 0, c = 0, d = 0;
  void* e = nullptr;
};

/// The shared workload: `width` self-rescheduling timer chains with
/// packet-sized captures, each also arming a far-out retry timer that is
/// disarmed on the next step — the mix the real simulations produce
/// (delivery events plus RPC/force timeout timers that are cancelled by
/// the ack long before they fire, so the queue carries a standing
/// population of cancelled entries). Runs until `target` events have
/// executed.
template <typename Sim>
uint64_t RunEngineWorkload(Sim& sim, uint64_t target, int width,
                           sim::Duration decoy_delay = 3000) {
  struct Chain {
    Sim* sim;
    uint64_t remaining;
    uint64_t step = 0;
    uint64_t decoy = 0;
    sim::Duration decoy_delay = 0;

    void Fire(const PacketCapture& pkt) {
      if (remaining == 0) return;
      --remaining;
      ++step;
      if (decoy != 0) {
        sim->Cancel(decoy);
        decoy = 0;
      }
      // The retry timer: armed now, disarmed next step, dead weight in
      // the queue until its expiry sweeps past.
      PacketCapture decoy_pkt = pkt;
      decoy = sim->After(decoy_delay + (step % 7), [decoy_pkt] {
        (void)decoy_pkt;
      });
      Chain* self = this;
      PacketCapture next = pkt;
      next.a = step;
      sim->After(1 + (step % 3), [self, next] { self->Fire(next); });
    }
  };

  std::vector<std::unique_ptr<Chain>> chains;
  const uint64_t per_chain = target / width;
  for (int i = 0; i < width; ++i) {
    auto c = std::make_unique<Chain>();
    c->sim = &sim;
    c->remaining = per_chain;
    c->step = static_cast<uint64_t>(i);
    c->decoy_delay = decoy_delay;
    chains.push_back(std::move(c));
  }
  for (auto& c : chains) {
    Chain* self = c.get();
    sim.After(1, [self] { self->Fire(PacketCapture{}); });
  }
  sim.Run();
  return sim.events_executed();
}

// --- Section 2: bytes copied per delivered record, before vs after ---

struct WireSample {
  double bytes_copied_per_record;
  double records;
};

LogRecord MakeRecord(Lsn lsn, size_t payload_bytes) {
  LogRecord r;
  r.lsn = lsn;
  r.epoch = 1;
  r.present = true;
  r.data = Bytes(payload_bytes, static_cast<uint8_t>(lsn));
  return r;
}

/// The current path: encode once, frame in place, decode envelope and
/// records as views, materialize only at persistence (EncodeStreamEntry
/// counts the copy). `receivers` models the N-server multicast fan-out.
WireSample RunWireAfter(int batches, int records_per_batch,
                        size_t payload_bytes, int receivers) {
  ResetBytesCopied();
  uint64_t decoded = 0;
  for (int b = 0; b < batches; ++b) {
    wire::RecordBatch batch;
    batch.client = 7;
    batch.epoch = 1;
    for (int i = 0; i < records_per_batch; ++i) {
      batch.records.push_back(
          MakeRecord(static_cast<Lsn>(b * records_per_batch + i),
                     payload_bytes));
    }
    Bytes msg = wire::EncodeRecordBatch(wire::MessageType::kForceLog, batch);
    // Trailer framing appends in place; the frame then becomes the
    // refcounted packet payload shared by every receiver.
    msg.resize(msg.size() + 29);
    SharedBytes packet_payload(std::move(msg));
    for (int rcv = 0; rcv < receivers; ++rcv) {
      SharedBytes delivered =
          packet_payload.Slice(0, packet_payload.size() - 29);
      Result<wire::Envelope> env = wire::DecodeEnvelope(delivered);
      if (!env.ok()) std::abort();
      Result<wire::RecordBatch> rb = wire::DecodeRecordBatch(env->body);
      if (!rb.ok()) std::abort();
      for (const LogRecord& rec : rb->records) {
        // Persistence: NVRAM group-buffer image (the one kept copy).
        server::EncodeStreamEntry({batch.client, rec});
        ++decoded;
      }
    }
  }
  WireSample s;
  s.records = static_cast<double>(decoded);
  s.bytes_copied_per_record = static_cast<double>(BytesCopied()) / decoded;
  return s;
}

/// The previous path, replayed copy for copy on the same payloads. Every
/// step below was a real memcpy in the old stack; each is performed (so
/// the timing is honest) and tallied with the same counter.
WireSample RunWireBefore(int batches, int records_per_batch,
                         size_t payload_bytes, int receivers) {
  ResetBytesCopied();
  uint64_t decoded = 0;
  for (int b = 0; b < batches; ++b) {
    wire::RecordBatch batch;
    batch.client = 7;
    batch.epoch = 1;
    for (int i = 0; i < records_per_batch; ++i) {
      batch.records.push_back(
          MakeRecord(static_cast<Lsn>(b * records_per_batch + i),
                     payload_bytes));
    }
    Bytes msg = wire::EncodeRecordBatch(wire::MessageType::kForceLog, batch);

    // 1. SendFrame: header-prefixed rebuild into a fresh buffer.
    Bytes framed;
    framed.reserve(29 + msg.size());
    framed.resize(29);
    framed.insert(framed.end(), msg.begin(), msg.end());
    AddBytesCopied(msg.size());

    // 2. Packet payload: the frame copied into the Packet struct.
    Bytes packet_payload = framed;
    AddBytesCopied(framed.size());

    for (int rcv = 0; rcv < receivers; ++rcv) {
      // 3. Network::DeliverTo: one Packet copy per multicast receiver.
      Bytes per_receiver = packet_payload;
      AddBytesCopied(packet_payload.size());

      // 4. ProcessPacket: payload split out of the frame.
      Bytes payload(per_receiver.begin() + 29, per_receiver.end());
      AddBytesCopied(payload.size());

      // 5. DecodeEnvelope: body.assign copy of everything past the
      //    message header.
      Result<wire::Envelope> env = wire::DecodeEnvelope(payload);
      if (!env.ok()) std::abort();
      AddBytesCopied(env->body.size());

      // 6. GetBlob per record (the old GetRecord materialization) —
      //    performed for real by ToBytes below, which also stands in for
      //    the old double-copy fixed in Decoder::GetString.
      Result<wire::RecordBatch> rb = wire::DecodeRecordBatch(env->body);
      if (!rb.ok()) std::abort();
      for (const LogRecord& rec : rb->records) {
        Bytes materialized = rec.data.ToBytes();
        // 7. Persistence encode, same as the new path.
        server::EncodeStreamEntry(
            {batch.client, LogRecord{rec.lsn, rec.epoch, rec.present,
                                     std::move(materialized)}});
        ++decoded;
      }
    }
  }
  WireSample s;
  s.records = static_cast<double>(decoded);
  s.bytes_copied_per_record = static_cast<double>(BytesCopied()) / decoded;
  return s;
}

// --- Section 3: end-to-end cluster throughput on the new stack ---

struct ClusterSample {
  double wall_seconds;
  double records;
  double messages;
};

ClusterSample RunClusterWorkload(int records) {
  harness::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.seed = 42;
  harness::Cluster cluster(cfg);

  client::LogClientConfig ccfg;
  ccfg.client_id = 1;
  ccfg.copies = 2;
  harness::ClientHandle writer = cluster.AddClient(ccfg);

  bool ready = false;
  writer->Init([&](Status s) { ready = s.ok(); });
  cluster.RunUntil([&]() { return ready; }, 10 * sim::kSecond);
  if (!ready) std::abort();

  const auto start = std::chrono::steady_clock::now();
  int forced = 0;
  for (int i = 0; i < records; ++i) {
    Result<Lsn> lsn =
        writer->WriteLog(Bytes(256, static_cast<uint8_t>(i)));
    if (!lsn.ok()) std::abort();
    bool done = false;
    writer->ForceLog(*lsn, [&](Status st) { done = st.ok(); });
    cluster.RunUntil([&]() { return done; }, 5 * sim::kSecond);
    if (done) ++forced;
  }
  ClusterSample s;
  s.wall_seconds = SecondsSince(start);
  s.records = forced;
  double messages = 0;
  for (int sid = 1; sid <= cfg.num_servers; ++sid) {
    messages +=
        static_cast<double>(cluster.server(sid).records_written().value());
  }
  s.messages = messages;
  return s;
}

// --- Section 4: sharded parallel engine, serial vs N workers ---

/// The simulated-node workload: a self-rescheduling timer chain per
/// node, with every eighth step injecting an event into another node at
/// >= the lookahead. Local periods (2-6 ticks) are much shorter than
/// the lookahead (50), so one window covers many events per shard and
/// the barrier cost amortizes — the shape real node simulations have
/// (micro-scale CPU/disk events, LAN-scale cross-node latency). Local
/// events land on even times (even start, even periods) and injections
/// on odd times (even + odd delay), so no cross-node tie ever forms and
/// the serial engine's schedule is reproduced exactly. Everything
/// observable folds into per-node FNV hashes — node-local state, so
/// shard execution needs no locking. Each event also burns a fixed
/// mixing loop standing in for the per-event protocol work (decode,
/// bookkeeping) a real node performs; without it the workload would
/// measure nothing but engine overhead and no engine could scale.
struct HashNode {
  sim::Scheduler* sched = nullptr;
  std::vector<HashNode*>* peers = nullptr;
  int id = 0;
  uint64_t remaining = 0;
  uint64_t step = 0;
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis

  static constexpr int kWorkPerEvent = 150;

  void Mix(uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  }

  void Fire() {
    Mix(sched->Now());
    Mix(step);
    for (int i = 0; i < kWorkPerEvent; ++i) Mix(static_cast<uint64_t>(i));
    if (remaining-- == 0) return;
    ++step;
    sched->After(2 + 2 * (step % 3), [this] { Fire(); });
    if (step % 8 == 0) {
      HashNode* peer = (*peers)[(static_cast<size_t>(id) + step) %
                                peers->size()];
      peer->sched->At(sched->Now() + 51 + 2 * (step % 3),
                      [peer] { peer->Mix(0x9e3779b97f4a7c15ull); });
    }
  }
};

struct ParallelSample {
  double wall_seconds = 0;
  uint64_t events = 0;
  /// Per-node hashes combined in node order.
  uint64_t hash = 0;
};

/// workers == 0: the serial engine (every node's handle is the one
/// Simulator). workers >= 1: one shard per node on the parallel engine.
ParallelSample RunParallelWorkload(int num_nodes, uint64_t target_events,
                                   int workers) {
  constexpr sim::Duration kLookahead = 50;
  std::unique_ptr<sim::Simulator> serial;
  std::unique_ptr<sim::ParallelSimulator> parallel;
  std::vector<sim::Scheduler*> handles;
  if (workers == 0) {
    serial = std::make_unique<sim::Simulator>();
    for (int i = 0; i < num_nodes; ++i) handles.push_back(serial.get());
  } else {
    sim::ParallelConfig pc;
    pc.num_workers = workers;
    pc.lookahead = kLookahead;
    parallel = std::make_unique<sim::ParallelSimulator>(pc);
    for (int i = 0; i < num_nodes; ++i) {
      handles.push_back(parallel->shard(parallel->AddShard()));
    }
  }

  std::vector<std::unique_ptr<HashNode>> nodes;
  std::vector<HashNode*> node_ptrs;
  for (int i = 0; i < num_nodes; ++i) {
    auto node = std::make_unique<HashNode>();
    node->sched = handles[static_cast<size_t>(i)];
    node->peers = &node_ptrs;
    node->id = i;
    node->remaining = target_events / static_cast<uint64_t>(num_nodes);
    node_ptrs.push_back(node.get());
    nodes.push_back(std::move(node));
  }
  for (auto& node : nodes) {
    node->sched->At(static_cast<sim::Time>(2 * node->id),
                    [n = node.get()] { n->Fire(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (serial) {
    serial->Run();
  } else {
    parallel->Run();
  }
  ParallelSample s;
  s.wall_seconds = SecondsSince(t0);
  s.events = serial ? serial->events_executed()
                    : parallel->events_executed();
  uint64_t combined = 14695981039346656037ull;
  for (auto& node : nodes) {
    combined ^= node->hash;
    combined *= 1099511628211ull;
  }
  s.hash = combined;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t engine_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
  const int cluster_records = argc > 2 ? std::atoi(argv[2]) : 400;
  const int shard_workers = argc > 3 ? std::atoi(argv[3]) : 8;

  obs::BenchReport report("engine_throughput");

  // Engine: identical workload on both engines. Three repeats each,
  // alternating, best-of reported: single-run numbers on shared machines
  // are dominated by scheduling noise, and the best run is the one
  // closest to each engine's steady-state cost.
  {
    double before_rate = 0;
    double after_rate = 0;
    for (int rep = 0; rep < 3; ++rep) {
      LegacySimulator before;
      auto t0 = std::chrono::steady_clock::now();
      const uint64_t before_events =
          RunEngineWorkload(before, engine_events, /*width=*/64);
      const double r_before = before_events / SecondsSince(t0);
      if (r_before > before_rate) before_rate = r_before;

      sim::Simulator after;
      t0 = std::chrono::steady_clock::now();
      const uint64_t after_events =
          RunEngineWorkload(after, engine_events, /*width=*/64);
      const double r_after = after_events / SecondsSince(t0);
      if (r_after > after_rate) after_rate = r_after;
    }
    std::printf("engine: before %.0f events/s, after %.0f events/s "
                "(%.2fx)\n",
                before_rate, after_rate, after_rate / before_rate);

    report.BeginRow();
    report.SetConfig("section", std::string("engine"));
    report.SetConfig("target_events", static_cast<double>(engine_events));
    report.SetMetric("events_per_sec_before", before_rate);
    report.SetMetric("events_per_sec_after", after_rate);
    report.SetMetric("speedup", after_rate / before_rate);
  }

  // Wheel: timer wheel vs heap-only on the cancel-heavy workload. The
  // wheel only re-stages insertion, so both runs must execute the exact
  // same number of events.
  {
    double wheel_rate = 0;
    double heap_rate = 0;
    uint64_t wheel_events = 0;
    uint64_t heap_events = 0;
    // Decoys sit milliseconds out — the force/RPC-timeout distance that
    // clears the wheel's staging horizon (2^20 ticks), where a heap-only
    // queue carries every cancelled timer until its expiry sweeps past.
    const sim::Duration decoy_delay = 2 * sim::kMillisecond;
    for (int rep = 0; rep < 3; ++rep) {
      sim::Simulator wheel;  // the wheel is on by default
      auto t0 = std::chrono::steady_clock::now();
      wheel_events =
          RunEngineWorkload(wheel, engine_events, /*width=*/64, decoy_delay);
      const double r_wheel = wheel_events / SecondsSince(t0);
      if (r_wheel > wheel_rate) wheel_rate = r_wheel;

      sim::Simulator heap_only;
      heap_only.EnableTimerWheel(false);
      t0 = std::chrono::steady_clock::now();
      heap_events = RunEngineWorkload(heap_only, engine_events, /*width=*/64,
                                      decoy_delay);
      const double r_heap = heap_events / SecondsSince(t0);
      if (r_heap > heap_rate) heap_rate = r_heap;
    }
    const bool identical = wheel_events == heap_events;
    std::printf("wheel: heap-only %.0f events/s, wheel %.0f events/s "
                "(%.2fx), schedules %s\n",
                heap_rate, wheel_rate, wheel_rate / heap_rate,
                identical ? "identical" : "DIVERGED");
    if (!identical) return 1;

    report.BeginRow();
    report.SetConfig("section", std::string("wheel"));
    report.SetConfig("target_events", static_cast<double>(engine_events));
    report.SetMetric("events_per_sec_heap_only", heap_rate);
    report.SetMetric("events_per_sec_wheel", wheel_rate);
    report.SetMetric("speedup_wheel", wheel_rate / heap_rate);
    report.SetMetric("schedule_identical", identical ? 1.0 : 0.0);
  }

  // Obs: the disabled-tracer hot path must not allocate. Every call
  // below passes literals as string_views — the shapes the server and
  // client hot paths use at every-event frequency.
  {
    sim::Simulator sim;
    obs::Tracer tracer(&sim);
    tracer.set_enabled(false);
    constexpr uint64_t kCalls = 200'000;
    const uint64_t allocs_before =
        g_heap_allocs.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i < kCalls; ++i) {
      obs::SpanContext span =
          tracer.StartSpan("record.append", "server-17", {});
      tracer.AddArg(span, "lsn", i);
      obs::SpanContext instant =
          tracer.Instant("force.ack", "server-17", span);
      (void)instant;
      tracer.EndSpan(span);
    }
    const uint64_t allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
    std::printf("obs: %llu disabled-tracer calls, %llu heap allocations\n",
                static_cast<unsigned long long>(4 * kCalls),
                static_cast<unsigned long long>(allocs));
    if (allocs != 0) {
      std::printf("obs: REGRESSION — disabled tracer hit the heap\n");
      return 1;
    }

    report.BeginRow();
    report.SetConfig("section", std::string("obs"));
    report.SetConfig("calls", static_cast<double>(4 * kCalls));
    report.SetMetric("disabled_tracer_allocs",
                     static_cast<double>(allocs));
    report.SetMetric("zero_alloc_ok", allocs == 0 ? 1.0 : 0.0);
  }

  // Wire: bytes copied per delivered record, old chain vs new chain.
  {
    const int batches = 2000, per_batch = 4, receivers = 3;
    const size_t payload = 256;
    const WireSample before =
        RunWireBefore(batches, per_batch, payload, receivers);
    const WireSample after =
        RunWireAfter(batches, per_batch, payload, receivers);
    std::printf("wire: before %.1f bytes copied/record, after %.1f "
                "(%.1fx fewer)\n",
                before.bytes_copied_per_record,
                after.bytes_copied_per_record,
                before.bytes_copied_per_record /
                    after.bytes_copied_per_record);

    report.BeginRow();
    report.SetConfig("section", std::string("wire"));
    report.SetConfig("payload_bytes", static_cast<double>(payload));
    report.SetConfig("receivers", receivers);
    report.SetMetric("bytes_copied_per_record_before",
                     before.bytes_copied_per_record);
    report.SetMetric("bytes_copied_per_record_after",
                     after.bytes_copied_per_record);
    report.SetMetric("copy_reduction",
                     before.bytes_copied_per_record /
                         after.bytes_copied_per_record);
  }

  // Cluster: end-to-end throughput on the new stack.
  {
    const ClusterSample s = RunClusterWorkload(cluster_records);
    std::printf("cluster: %.0f forced records in %.2fs wall (%.0f "
                "records/s, %.0f server record-writes)\n",
                s.records, s.wall_seconds, s.records / s.wall_seconds,
                s.messages);

    report.BeginRow();
    report.SetConfig("section", std::string("cluster"));
    report.SetConfig("records", cluster_records);
    report.SetMetric("records_per_sec_wall", s.records / s.wall_seconds);
    report.SetMetric("server_record_writes", s.messages);
    report.SetMetric("wall_seconds", s.wall_seconds);
  }

  // Parallel: the sharded engine against the serial engine on the same
  // multi-node workload, plus the determinism gate.
  {
    const int nodes = 16;
    const uint64_t target = engine_events / 2;
    // Best-of-3 wall clocks for both engines (same rationale as the
    // engine section); the hash must be constant across every run.
    ParallelSample serial_s, one_s, many_s;
    for (int rep = 0; rep < 3; ++rep) {
      ParallelSample s = RunParallelWorkload(nodes, target, /*workers=*/0);
      if (rep == 0 || s.wall_seconds < serial_s.wall_seconds) serial_s = s;
      ParallelSample o = RunParallelWorkload(nodes, target, /*workers=*/1);
      if (rep == 0 || o.wall_seconds < one_s.wall_seconds) one_s = o;
      ParallelSample m =
          RunParallelWorkload(nodes, target, shard_workers);
      if (rep == 0 || m.wall_seconds < many_s.wall_seconds) many_s = m;
    }
    const bool deterministic = serial_s.hash == one_s.hash &&
                               serial_s.hash == many_s.hash &&
                               serial_s.events == many_s.events;
    const double serial_rate =
        static_cast<double>(serial_s.events) / serial_s.wall_seconds;
    const double parallel_rate =
        static_cast<double>(many_s.events) / many_s.wall_seconds;
    std::printf("parallel: serial %.0f events/s, %d workers %.0f "
                "events/s (%.2fx), determinism %s\n",
                serial_rate, shard_workers, parallel_rate,
                parallel_rate / serial_rate,
                deterministic ? "ok" : "BROKEN");

    report.BeginRow();
    report.SetConfig("section", std::string("parallel"));
    report.SetConfig("nodes", nodes);
    report.SetConfig("shard_workers", shard_workers);
    report.SetConfig("target_events", static_cast<double>(target));
    report.SetMetric("determinism_ok", deterministic ? 1.0 : 0.0);
    report.SetMetric("events_per_sec_serial", serial_rate);
    report.SetMetric("events_per_sec_parallel", parallel_rate);
    report.SetMetric("speedup_parallel", parallel_rate / serial_rate);
    if (!deterministic) {
      std::printf("parallel engine NOT deterministic: hashes %llx / %llx "
                  "/ %llx\n",
                  static_cast<unsigned long long>(serial_s.hash),
                  static_cast<unsigned long long>(one_s.hash),
                  static_cast<unsigned long long>(many_s.hash));
      return 1;
    }
  }

  Status st = report.WriteJson("BENCH_ENGINE.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_ENGINE.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_ENGINE.json (%zu rows)\n", report.rows());
  return 0;
}
