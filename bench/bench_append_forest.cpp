// Experiment E6 — the append-forest (Section 4.3, Figures 4-2/4-3):
//   * constant-time append and O(log n) search, measured as wall-clock
//     throughput with google-benchmark;
//   * worst-case pointer traversals per search vs n (the paper's
//     O(log2 n) bound);
//   * comparison against a std::map index (the non-append-only
//     alternative a log server cannot use on write-once storage).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/rng.h"
#include "forest/append_forest.h"

namespace {

using dlog::forest::AppendForest;

void BM_ForestAppend(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    AppendForest forest;
    state.ResumeTiming();
    for (int64_t k = 1; k <= state.range(0); ++k) {
      benchmark::DoNotOptimize(forest.Append(k, k));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestAppend)->Range(1 << 10, 1 << 18);

void BM_ForestFind(benchmark::State& state) {
  AppendForest forest;
  for (int64_t k = 1; k <= state.range(0); ++k) {
    (void)forest.Append(k, k);
  }
  dlog::Rng rng(7);
  for (auto _ : state) {
    const uint64_t key = 1 + rng.NextBelow(state.range(0));
    benchmark::DoNotOptimize(forest.Find(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestFind)->Range(1 << 10, 1 << 20);

void BM_StdMapInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::map<uint64_t, uint64_t> index;
    state.ResumeTiming();
    for (int64_t k = 1; k <= state.range(0); ++k) {
      index[k] = k;
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdMapInsert)->Range(1 << 10, 1 << 18);

void BM_StdMapFind(benchmark::State& state) {
  std::map<uint64_t, uint64_t> index;
  for (int64_t k = 1; k <= state.range(0); ++k) index[k] = k;
  dlog::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.find(1 + rng.NextBelow(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapFind)->Range(1 << 10, 1 << 20);

void PrintTraversalTable() {
  std::printf(
      "\nWorst-case pointer traversals per search (paper: O(log2 n)):\n");
  std::printf("%12s %14s %14s\n", "n", "worst", "2*log2(n)");
  for (uint32_t exp = 8; exp <= 20; exp += 2) {
    const uint64_t n = uint64_t{1} << exp;
    AppendForest forest;
    for (uint64_t k = 1; k <= n; ++k) (void)forest.Append(k, k);
    uint64_t worst = 0;
    for (uint64_t k = 1; k <= n; k += std::max<uint64_t>(1, n / 4096)) {
      uint64_t traversals = 0;
      (void)forest.FindCounted(k, &traversals);
      worst = std::max(worst, traversals);
    }
    std::printf("%12llu %14llu %14u\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(worst), 2 * exp);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintTraversalTable();
  return 0;
}
