// Experiment E13 — ablation of the two Section 4.1 design points:
//   1. the low-latency non-volatile buffer: with it, a ForceLog is
//      acknowledged as soon as records reach battery-backed CMOS; without
//      it every force waits for the disk ("the rotational latencies would
//      still be too high to permit each request to be forced to disk
//      independently");
//   2. track-at-a-time group buffering: records from many clients merge
//      into sequential whole-track writes instead of per-force disk
//      writes.
//
// Reports force latency and disk writes/second for NVRAM vs no-NVRAM
// servers under the same multi-client ET1 load.

#include <cstdio>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"

namespace {

using namespace dlog;

struct AblationResult {
  double tps = 0;
  double txn_p50 = 0, txn_p95 = 0;
  double disk_writes_per_sec = 0;
  double forces_per_sec = 0;
  double disk_util = 0;
};

AblationResult Run(bool nvram_ack, int clients, int seconds) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  cluster_cfg.server.ack_after_disk = !nvram_ack;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    log_cfg.force_timeout = 500 * sim::kMillisecond;
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 10.0;
    driver_cfg.seed = 40 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }
  cluster.sim().RunFor(static_cast<sim::Duration>(seconds) * sim::kSecond);

  AblationResult r;
  uint64_t committed = 0;
  for (auto& d : drivers) {
    committed += d->committed();
    r.txn_p50 = std::max(r.txn_p50, d->txn_latency_ms().Percentile(0.5));
    r.txn_p95 = std::max(r.txn_p95, d->txn_latency_ms().Percentile(0.95));
  }
  r.tps = static_cast<double>(committed) / seconds;
  double writes = 0, forces = 0, util = 0;
  for (int s = 1; s <= cluster.num_servers(); ++s) {
    writes += static_cast<double>(cluster.server(s).disk().writes().value());
    forces += static_cast<double>(cluster.server(s).forces_acked().value());
    util += cluster.server(s).disk().Utilization();
  }
  r.disk_writes_per_sec = writes / seconds;
  r.forces_per_sec = forces / seconds;
  r.disk_util = util / cluster.num_servers();
  return r;
}

}  // namespace

int main() {
  const int clients = 10, seconds = 15;
  std::printf(
      "Group commit / NVRAM ablation (%d clients x 10 ET1 TPS, 3 servers, "
      "N=2, %d simulated seconds)\n\n",
      clients, seconds);
  AblationResult with_nvram = Run(/*nvram_ack=*/true, clients, seconds);
  AblationResult no_nvram = Run(/*nvram_ack=*/false, clients, seconds);

  std::printf("%-28s %14s %14s\n", "", "NVRAM ack", "ack after disk");
  std::printf("%-28s %14.1f %14.1f\n", "committed TPS", with_nvram.tps,
              no_nvram.tps);
  std::printf("%-28s %14.2f %14.2f\n", "txn p50 latency (ms)",
              with_nvram.txn_p50, no_nvram.txn_p50);
  std::printf("%-28s %14.2f %14.2f\n", "txn p95 latency (ms)",
              with_nvram.txn_p95, no_nvram.txn_p95);
  std::printf("%-28s %14.1f %14.1f\n", "disk track writes /s (all)",
              with_nvram.disk_writes_per_sec, no_nvram.disk_writes_per_sec);
  std::printf("%-28s %14.1f %14.1f\n", "forces acked /s (all)",
              with_nvram.forces_per_sec, no_nvram.forces_per_sec);
  std::printf("%-28s %13.1f%% %13.1f%%\n", "disk utilization",
              with_nvram.disk_util * 100, no_nvram.disk_util * 100);
  std::printf(
      "\nShape check (paper): without the low-latency non-volatile "
      "buffer, force latency absorbs rotational delays and the disk sees "
      "more, smaller writes.\n");
  return 0;
}
