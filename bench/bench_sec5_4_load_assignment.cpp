// Experiment E9 — Section 5.4, load assignment: "Presumably, simple
// decentralized strategies for assigning loads fairly can be used. The
// development of these strategies is likely to be a problem that is very
// amenable to analytic modeling and simple experimentation."
//
// The simple experimentation: 12 ET1 clients on 6 log servers under four
// replacement policies, with a server failure and recovery mid-run.
// Reports load balance across servers, transaction latency, server
// switches, and interval-list fragmentation (the Section 5.4 warning:
// clients that "change servers too frequently [cause] very long interval
// lists").

#include <cstdio>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"

namespace {

using namespace dlog;

const char* PolicyName(client::SelectionPolicy p) {
  switch (p) {
    case client::SelectionPolicy::kStickyFailover:
      return "sticky-failover";
    case client::SelectionPolicy::kRoundRobin:
      return "round-robin";
    case client::SelectionPolicy::kRandom:
      return "random";
    case client::SelectionPolicy::kLeastQueued:
      return "least-queued";
  }
  return "?";
}

void RunPolicy(client::SelectionPolicy policy) {
  const int clients = 12, servers = 6, seconds = 20;
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    log_cfg.policy = policy;
    log_cfg.seed = 31 * (i + 1);
    log_cfg.force_timeout = 150 * sim::kMillisecond;
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 10.0;
    driver_cfg.seed = 700 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }

  // A server failure (and later recovery) mid-run.
  cluster.sim().After(8 * sim::kSecond,
                      [&]() { cluster.server(1).Crash(); });
  cluster.sim().After(14 * sim::kSecond,
                      [&]() { cluster.server(1).Restart(); });
  cluster.sim().RunFor(static_cast<sim::Duration>(seconds) * sim::kSecond);

  uint64_t committed = 0, switches = 0;
  double p95 = 0;
  for (auto& d : drivers) {
    committed += d->committed();
    switches += d->log().server_switches().value();
    p95 = std::max(p95, d->txn_latency_ms().Percentile(0.95));
  }
  // Load balance: records written per server.
  double total_records = 0, max_records = 0;
  size_t total_intervals = 0;
  for (int s = 1; s <= servers; ++s) {
    const double r =
        static_cast<double>(cluster.server(s).records_written().value());
    total_records += r;
    max_records = std::max(max_records, r);
    for (int c = 1; c <= clients; ++c) {
      total_intervals +=
          cluster.server(s).IntervalsOf(static_cast<ClientId>(c)).size();
    }
  }
  const double imbalance =
      total_records > 0 ? max_records / (total_records / servers) : 0;

  std::printf("%-16s | %7.1f TPS | p95 %7.2f ms | %3llu switches | "
              "imbalance %.2f | %3zu intervals\n",
              PolicyName(policy),
              static_cast<double>(committed) / seconds, p95,
              static_cast<unsigned long long>(switches), imbalance,
              total_intervals);
}

}  // namespace

int main() {
  std::printf(
      "Section 5.4: load-assignment strategies (12 clients x 10 TPS, 6 "
      "servers, N=2; server 1 fails at t=8s, returns at t=14s)\n\n");
  std::printf("%-16s | %-11s | %-14s | %-12s | %-14s | %s\n", "policy",
              "throughput", "latency", "switches", "load imbalance",
              "interval-list entries");
  RunPolicy(client::SelectionPolicy::kStickyFailover);
  RunPolicy(client::SelectionPolicy::kRoundRobin);
  RunPolicy(client::SelectionPolicy::kRandom);
  RunPolicy(client::SelectionPolicy::kLeastQueued);
  std::printf(
      "\nShape checks (paper): sticky selection keeps interval lists "
      "short; eager switching fragments them; all policies must ride "
      "through the failure.\n");
  return 0;
}
