// Experiment E1 — Figure 3-4: "Availability of Replicated Logs with
// Probability of Individual Log Server Availability 0.95".
//
// Reproduces both curve families (WriteLog availability rising with M,
// client-initialization availability falling with M) for dual-copy
// (N = 2) and triple-copy (N = 3) logs, from the closed forms of Section
// 3.2, cross-checked by Monte-Carlo simulation of independent server
// failures.

#include <cstdio>
#include <initializer_list>

#include "analysis/availability.h"
#include "common/rng.h"

namespace {

struct McResult {
  double write;
  double init;
};

McResult MonteCarlo(int m, int n, double p, int trials, uint64_t seed) {
  dlog::Rng rng(seed);
  int write_ok = 0, init_ok = 0;
  for (int t = 0; t < trials; ++t) {
    int down = 0;
    for (int i = 0; i < m; ++i) {
      if (rng.Bernoulli(p)) ++down;
    }
    if (down <= m - n) ++write_ok;
    if (down <= n - 1) ++init_ok;
  }
  return {static_cast<double>(write_ok) / trials,
          static_cast<double>(init_ok) / trials};
}

}  // namespace

int main() {
  const double p = 0.05;
  const int trials = 400000;

  std::printf("Figure 3-4: availability of replicated logs (p = %.2f)\n\n",
              p);
  std::printf("%-3s %-3s | %-22s | %-22s\n", "N", "M",
              "WriteLog  (exact / MC)", "ClientInit (exact / MC)");
  std::printf("--------+------------------------+----------------------\n");
  for (int n : {2, 3}) {
    for (int m = n; m <= 10; ++m) {
      const double write = dlog::analysis::WriteLogAvailability(m, n, p);
      const double init = dlog::analysis::ClientInitAvailability(m, n, p);
      const McResult mc =
          MonteCarlo(m, n, p, trials, 1000 + 17 * m + n);
      std::printf("%-3d %-3d | %.6f / %.6f   | %.6f / %.6f\n", n, m, write,
                  mc.write, init, mc.init);
    }
    std::printf("--------+------------------------+--------------------\n");
  }
  std::printf(
      "\nShape checks (paper):\n"
      "  * WriteLog availability approaches 1 very quickly as M grows.\n"
      "  * Client-init availability decreases as M grows.\n"
      "  * N=2,M=5 init ~ 0.98; N=3,M=5 both ~ 0.999; single server 0.95.\n");
  return 0;
}
