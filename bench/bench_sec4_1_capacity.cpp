// Experiment E4 — the Section 4.1 capacity analysis, reproduced two ways:
//   1. the paper's own back-of-envelope model (analysis::ComputeCapacity);
//   2. a full discrete-event simulation of the target load: 50 client
//      nodes x 10 local ET1 TPS logging with N=2 to 6 log servers over
//      dual 10 Mbit networks, with the Section 4.1 instruction budgets.
//
// Also prints the grouped-vs-per-record messaging comparison (the 7x
// batching claim) using a second run with an MTU too small to pack.

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/capacity.h"
#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "obs/bench_report.h"

namespace {

using namespace dlog;

struct RunResult {
  double tps = 0;
  double forces_per_server = 0;
  double packets_per_server = 0;
  double cpu_util = 0;
  double disk_util = 0;
  double mbits_per_sec = 0;  // both networks combined
  double bytes_per_server_per_sec = 0;
  double txn_p50_ms = 0;
  double txn_p95_ms = 0;
};

RunResult RunSimulation(int clients, int servers, int seconds,
                        size_t mtu_payload, bool multicast = false) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.num_networks = 2;
  cluster_cfg.server.cpu_mips = 4.0;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    log_cfg.mtu_payload = mtu_payload;
    log_cfg.multicast_writes = multicast;
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 10.0;
    driver_cfg.seed = 500 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }
  // Warm up (initialization traffic), then measure.
  cluster.sim().RunFor(2 * sim::kSecond);
  for (int s = 1; s <= servers; ++s) {
    cluster.server(s).cpu().ResetStats();
    cluster.server(s).forces_acked().Reset();
  }
  const uint64_t committed_before = [&] {
    uint64_t c = 0;
    for (auto& d : drivers) c += d->committed();
    return c;
  }();
  const uint64_t net_bits_before =
      cluster.network(0).bits_sent() + cluster.network(1).bits_sent();
  uint64_t packets_before = 0;
  for (int s = 1; s <= servers; ++s) {
    packets_before += cluster.server(s).cpu().busy_time();  // placeholder
  }

  cluster.sim().RunFor(static_cast<sim::Duration>(seconds) * sim::kSecond);

  RunResult r;
  uint64_t committed = 0;
  sim::Histogram latency;
  for (auto& d : drivers) {
    committed += d->committed();
    r.txn_p50_ms =
        std::max(r.txn_p50_ms, d->txn_latency_ms().Percentile(0.5));
    r.txn_p95_ms =
        std::max(r.txn_p95_ms, d->txn_latency_ms().Percentile(0.95));
  }
  r.tps = static_cast<double>(committed - committed_before) / seconds;
  double forces = 0, cpu = 0, disk = 0, bytes = 0;
  for (int s = 1; s <= servers; ++s) {
    forces += static_cast<double>(cluster.server(s).forces_acked().value());
    cpu += cluster.server(s).cpu().Utilization();
    disk += cluster.server(s).disk().Utilization();
    bytes += static_cast<double>(cluster.server(s).bytes_logged());
  }
  r.forces_per_server = forces / servers / seconds;
  r.cpu_util = cpu / servers;
  r.disk_util = disk / servers;
  r.bytes_per_server_per_sec = bytes / servers / (seconds + 2);
  r.mbits_per_sec = static_cast<double>(cluster.network(0).bits_sent() +
                                        cluster.network(1).bits_sent() -
                                        net_bits_before) /
                    seconds / 1e6;
  (void)packets_before;
  return r;
}

/// One BENCH_E4.json row: the run's configuration plus every measured
/// output of RunResult.
void ReportRun(obs::BenchReport* report, const char* label, int clients,
               int servers, size_t mtu_payload, bool multicast,
               const RunResult& r) {
  report->BeginRow();
  report->SetConfig("design", label);
  report->SetConfig("clients", clients);
  report->SetConfig("servers", servers);
  report->SetConfig("mtu_payload", static_cast<double>(mtu_payload));
  report->SetConfig("multicast", multicast ? 1.0 : 0.0);
  report->SetMetric("tps", r.tps);
  report->SetMetric("forces_per_server_per_sec", r.forces_per_server);
  report->SetMetric("network_mbits_per_sec", r.mbits_per_sec);
  report->SetMetric("server_cpu_util", r.cpu_util);
  report->SetMetric("server_disk_util", r.disk_util);
  report->SetMetric("log_bytes_per_server_per_sec",
                    r.bytes_per_server_per_sec);
  report->SetMetric("txn_p50_ms", r.txn_p50_ms);
  report->SetMetric("txn_p95_ms", r.txn_p95_ms);
}

}  // namespace

int main() {
  obs::BenchReport report("E4");

  // --- The paper's analytic model ---
  analysis::CapacityInputs in;
  analysis::CapacityOutputs out = analysis::ComputeCapacity(in);
  std::printf("%s\n", analysis::CapacityReport(in, out).c_str());

  // --- Discrete-event simulation of the same target load ---
  const int clients = 50, servers = 6, seconds = 10;
  std::printf(
      "Discrete-event simulation: %d clients x 10 ET1 TPS, %d servers, "
      "N=2, dual 10 Mbit LANs, %d measured seconds\n",
      clients, servers, seconds);
  RunResult grouped = RunSimulation(clients, servers, seconds,
                                    /*mtu_payload=*/1400);
  ReportRun(&report, "grouped_unicast", clients, servers, 1400, false,
            grouped);
  std::printf("  committed rate ............... %7.1f TPS   (target 500)\n",
              grouped.tps);
  std::printf(
      "  force RPCs per server ........ %7.1f /s    (paper: ~170)\n",
      grouped.forces_per_server);
  std::printf("  network load (both LANs) ..... %7.2f Mbit/s (paper: ~7)\n",
              grouped.mbits_per_sec);
  std::printf("  server CPU utilization ....... %7.1f %%\n",
              grouped.cpu_util * 100);
  std::printf("  server disk utilization ...... %7.1f %%\n",
              grouped.disk_util * 100);
  std::printf(
      "  log volume per server ........ %7.1f KB/s  (~%.1f GB/day, paper "
      "~10)\n",
      grouped.bytes_per_server_per_sec / 1024,
      grouped.bytes_per_server_per_sec * 86400 / 1e9);
  std::printf("  txn latency (worst client) ... p50 %.2f ms, p95 %.2f ms\n",
              grouped.txn_p50_ms, grouped.txn_p95_ms);

  // --- Multicast (Section 4.1: "With the use of multicast, this amount
  //     would be approximately halved"). ---
  RunResult mcast = RunSimulation(clients, servers, seconds, 1400,
                                  /*multicast=*/true);
  ReportRun(&report, "grouped_multicast", clients, servers, 1400, true,
            mcast);
  std::printf(
      "\nWith multicast record streams:\n"
      "  network load (both LANs) ..... %7.2f Mbit/s (unicast was %.2f; "
      "paper: ~halved)\n"
      "  committed rate ............... %7.1f TPS\n",
      mcast.mbits_per_sec, grouped.mbits_per_sec, mcast.tps);

  // --- Grouping ablation: an MTU too small to pack more than one
  //     record models the one-RPC-per-record design. ---
  std::printf(
      "\nGrouping ablation (one record per packet, 10 clients scaled):\n");
  RunResult grouped_small = RunSimulation(10, servers, seconds, 1400);
  RunResult ungrouped = RunSimulation(10, servers, seconds, 200);
  ReportRun(&report, "grouped_10_clients", 10, servers, 1400, false,
            grouped_small);
  ReportRun(&report, "ungrouped_10_clients", 10, servers, 200, false,
            ungrouped);
  std::printf("  grouped:   %6.1f TPS, p95 force-path latency %.2f ms\n",
              grouped_small.tps, grouped_small.txn_p95_ms);
  std::printf("  ungrouped: %6.1f TPS, p95 force-path latency %.2f ms\n",
              ungrouped.tps, ungrouped.txn_p95_ms);
  std::printf(
      "  (paper: grouping cuts per-record messages by ~7x; unbatched "
      "would be ~2400 msgs/s/server)\n");

  Status st = report.WriteJson("BENCH_E4.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E4.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E4.json (%zu rows)\n", report.rows());
  return 0;
}
