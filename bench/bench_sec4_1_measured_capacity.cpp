// Experiment E15 — measured capacity: the Section 4.1 closed forms
// cross-checked against the profiler's exact resource timelines.
//
// A fixed 50-client fleet sweeps its per-client ET1 rate from light
// load up past the saturation knee (the dual 10 Mbit LANs give out
// first). At every point the obs::Profiler measures each resource's
// utilization over the post-warmup window from its busy/idle probes,
// and the analytic model (analysis::ComputeCapacity) predicts the same
// quantities from the offered load. Below the knee the two must agree
// within +/-0.05 absolute and the committed rate must track the
// offered rate within 5%; the binary exits nonzero otherwise, which is
// what lets CI gate on it.
//
// A second, small trace-capture run exports the colored Chrome trace
// with the extracted critical-path lane (E15_trace.json) and prints
// the per-force latency attribution -- the profiler walkthrough the
// README documents.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/capacity.h"
#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "obs/bench_report.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/profiler.h"

namespace {

using namespace dlog;

constexpr int kClients = 50;
constexpr int kServers = 6;
constexpr int kNetworks = 2;
constexpr int kMeasureSeconds = 10;
/// Below the knee, |measured - predicted| utilization must stay within
/// this absolute tolerance, and TPS within 5% of offered.
constexpr double kUtilTolerance = 0.05;
constexpr double kTpsTolerance = 0.05;
/// A point counts as below the knee when every predicted utilization
/// is under this fraction; beyond it queueing (open-loop) makes the
/// closed forms inapplicable by design.
constexpr double kKneeFraction = 0.8;

struct Point {
  double tps_per_client = 0;
  double offered = 0;
  double tps = 0;
  // Measured over the post-warmup window (profiler busy timelines).
  double cpu_util = 0;   // mean across servers
  double disk_util = 0;  // mean across servers
  double net_util = 0;   // mean across LANs
  double nvram_avg_bytes = 0;
  double nvram_max_bytes = 0;
  double force_p95_ms = 0;
  // Predicted by the Section 4.1 closed forms at this offered load.
  double pred_cpu = 0;
  double pred_disk = 0;
  double pred_net = 0;
  bool below_knee = false;
  bool ok = true;
};

Point RunPoint(double tps_per_client) {
  Point p;
  p.tps_per_client = tps_per_client;
  p.offered = kClients * tps_per_client;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = kServers;
  cluster_cfg.num_networks = kNetworks;
  cluster_cfg.server.cpu_mips = 4.0;
  // A one-second flush interval makes full-track writes dominate, the
  // regime the closed-form disk model assumes; the NVRAM buffer is
  // sized so a second of peak log volume never triggers shedding.
  cluster_cfg.server.flush_interval = 1 * sim::kSecond;
  cluster_cfg.server.nvram_bytes = 1024 * 1024;
  cluster_cfg.tracing = true;
  cluster_cfg.profiling = true;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < kClients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = tps_per_client;
    driver_cfg.seed = 1500 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }

  // Warm up through initialization traffic, then measure a clean window.
  cluster.sim().RunFor(2 * sim::kSecond);
  const sim::Time window_start = cluster.sim().Now();
  uint64_t committed_before = 0;
  for (auto& d : drivers) committed_before += d->committed();

  cluster.sim().RunFor(kMeasureSeconds * sim::kSecond);
  const sim::Time window_end = cluster.sim().Now();

  uint64_t committed = 0;
  for (auto& d : drivers) committed += d->committed();
  p.tps = static_cast<double>(committed - committed_before) /
          kMeasureSeconds;

  const obs::Profiler& prof = cluster.profiler();
  for (int s = 1; s <= kServers; ++s) {
    const std::string name = "server-" + std::to_string(s);
    p.cpu_util +=
        prof.Utilization(name + "/cpu", window_start, window_end);
    p.disk_util +=
        prof.Utilization(name + "/disk", window_start, window_end);
    auto level = prof.levels().find(name + "/nvram");
    if (level != prof.levels().end()) {
      p.nvram_avg_bytes += level->second.Average(window_start, window_end);
      p.nvram_max_bytes =
          std::max(p.nvram_max_bytes, level->second.Max());
    }
  }
  p.cpu_util /= kServers;
  p.disk_util /= kServers;
  p.nvram_avg_bytes /= kServers;
  for (int n = 0; n < kNetworks; ++n) {
    p.net_util += prof.Utilization("net-" + std::to_string(n),
                                   window_start, window_end);
  }
  p.net_util /= kNetworks;

  sim::Histogram force_ms;
  for (auto& d : drivers) {
    force_ms.Merge(d->log().force_latency_ms());
  }
  p.force_p95_ms = force_ms.Percentile(0.95);

  // The Section 4.1 model at this offered load. The endpoints
  // round-robin their packets over the LANs, so the single-network
  // closed form spreads evenly across kNetworks.
  analysis::CapacityInputs in;
  in.clients = kClients;
  in.tps_per_client = tps_per_client;
  in.servers = kServers;
  const analysis::CapacityOutputs out = analysis::ComputeCapacity(in);
  p.pred_cpu = out.cpu_fraction_comm + out.cpu_fraction_logging;
  p.pred_disk = out.disk_utilization;
  p.pred_net = out.network_utilization / kNetworks;
  p.below_knee = p.pred_cpu < kKneeFraction &&
                 p.pred_disk < kKneeFraction &&
                 p.pred_net < kKneeFraction;
  if (p.below_knee) {
    p.ok = std::fabs(p.cpu_util - p.pred_cpu) <= kUtilTolerance &&
           std::fabs(p.disk_util - p.pred_disk) <= kUtilTolerance &&
           std::fabs(p.net_util - p.pred_net) <= kUtilTolerance &&
           std::fabs(p.tps - p.offered) <= kTpsTolerance * p.offered;
  }
  return p;
}

/// The small trace-capture run: few clients, short horizon, so the
/// exported Chrome trace stays browsable. Returns the metrics snapshot
/// (per-component attribution histograms included) for the report.
obs::MetricsSnapshot TraceCaptureRun(obs::BenchReport* report) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  cluster_cfg.tracing = true;
  cluster_cfg.profiling = true;
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < 3; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 10.0;
    driver_cfg.seed = 900 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }
  cluster.sim().RunFor(2 * sim::kSecond);

  obs::Profiler& prof = cluster.profiler();
  prof.RegisterMetrics(&cluster.metrics(),
                       [&cluster]() { return cluster.sim().Now(); });
  prof.UpdateAttributionMetrics(cluster.tracer());

  const std::vector<obs::CriticalPath> paths =
      obs::ExtractCriticalPaths(cluster.tracer());
  const Status st = obs::WriteFile(
      "E15_trace.json",
      obs::ChromeTraceJsonColored(cluster.tracer(), paths));
  if (!st.ok()) {
    std::printf("failed to write E15_trace.json: %s\n",
                st.ToString().c_str());
  } else {
    std::printf("wrote E15_trace.json (%zu spans, %zu critical paths)\n",
                cluster.tracer().spans().size(), paths.size());
  }

  std::printf("\n%s\n",
              prof.UtilizationText(0, cluster.sim().Now()).c_str());
  // A taste of the critical-path report: the first transactions.
  std::vector<obs::CriticalPath> head(
      paths.begin(),
      paths.begin() + std::min<size_t>(paths.size(), 2));
  std::printf("%s\n", obs::CriticalPathText(head).c_str());

  std::printf("per-force latency attribution (ms):\n");
  for (const std::string& name : obs::AttributionComponents()) {
    sim::Histogram& h = prof.ComponentHistogram(name);
    std::printf("  %-14s mean %8.4f  p95 %8.4f\n", name.c_str(),
                h.Mean(), h.Percentile(0.95));
  }

  report->BeginRow();
  report->SetConfig("design", "trace_capture");
  report->SetConfig("clients", 3);
  report->SetConfig("servers", 3);
  return cluster.metrics().Snapshot(cluster.sim().Now());
}

}  // namespace

int main() {
  obs::BenchReport report("E15");

  std::printf(
      "E15: measured capacity, %d clients x sweep TPS, %d servers, "
      "%d LANs, flush interval 1s, %ds measured window\n\n",
      kClients, kServers, kNetworks, kMeasureSeconds);
  std::printf(
      "  offered |  TPS    | cpu meas/pred | disk meas/pred | "
      "net meas/pred | knee\n");

  bool all_ok = true;
  for (double tps : {4.0, 10.0, 16.0, 22.0, 28.0, 34.0}) {
    const Point p = RunPoint(tps);
    all_ok = all_ok && p.ok;
    std::printf(
        "  %7.0f | %7.1f | %.3f / %.3f | %.3f  / %.3f | %.3f / %.3f | "
        "%s%s\n",
        p.offered, p.tps, p.cpu_util, p.pred_cpu, p.disk_util,
        p.pred_disk, p.net_util, p.pred_net,
        p.below_knee ? "below" : "above",
        p.ok ? "" : "  TOLERANCE EXCEEDED");

    report.BeginRow();
    report.SetConfig("design", "sweep");
    report.SetConfig("clients", kClients);
    report.SetConfig("servers", kServers);
    report.SetConfig("tps_per_client", tps);
    report.SetMetric("offered_tps", p.offered);
    report.SetMetric("tps", p.tps);
    report.SetMetric("server_cpu_util", p.cpu_util);
    report.SetMetric("server_cpu_util_predicted", p.pred_cpu);
    report.SetMetric("server_disk_util", p.disk_util);
    report.SetMetric("server_disk_util_predicted", p.pred_disk);
    report.SetMetric("network_util", p.net_util);
    report.SetMetric("network_util_predicted", p.pred_net);
    report.SetMetric("nvram_avg_bytes", p.nvram_avg_bytes);
    report.SetMetric("nvram_max_bytes", p.nvram_max_bytes);
    report.SetMetric("force_p95_ms", p.force_p95_ms);
    report.SetMetric("below_knee", p.below_knee ? 1.0 : 0.0);
    report.SetMetric("within_tolerance", p.ok ? 1.0 : 0.0);
  }

  std::printf("\ntrace capture (3 clients x 10 TPS, 3 servers, 2s):\n");
  const obs::MetricsSnapshot snap = TraceCaptureRun(&report);
  report.AddSnapshot("trace_run/", snap);

  Status st = report.WriteJson("BENCH_E15.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E15.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E15.json (%zu rows)\n", report.rows());
  if (!all_ok) {
    std::printf(
        "FAIL: a below-knee point exceeded the +/-%.2f utilization or "
        "%.0f%% TPS tolerance\n",
        kUtilTolerance, kTpsTolerance * 100);
    return 1;
  }
  std::printf("all below-knee points within tolerance\n");
  return 0;
}
