// Experiment E11 — Section 5.3, log space management: "client recovery
// managers can use checkpoints and other mechanisms to limit the online
// log storage required for node recovery" vs. the simple strategy where
// "the online log could simply accumulate between dumps".
//
// Runs the same ET1 load with (a) no space management and (b) a
// quiescent checkpoint + truncation every few seconds, and reports the
// growth of the online log (live records held by the servers) plus the
// recovery-scan length after a crash.

#include <cstdio>
#include <memory>

#include "harness/cluster.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"

namespace {

using namespace dlog;

struct SpaceResult {
  size_t live_records_end = 0;
  Lsn end_of_log = 0;
  double scan_fraction = 0;  // live / end-of-log
};

SpaceResult Run(bool truncate, int txns, int checkpoint_every) {
  harness::ClusterConfig cluster_cfg;
  harness::Cluster cluster(cluster_cfg);
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 1;
  auto log = cluster.AddClient(log_cfg);
  bool ready = false;
  log->Init([&](Status st) { ready = st.ok(); });
  cluster.RunUntil([&]() { return ready; });

  tp::ReplicatedTxnLogger logger(log.get());
  tp::PageDisk disk(1024);
  tp::EngineConfig cfg;
  cfg.truncate_after_checkpoint = truncate;
  tp::TransactionEngine engine(&cluster.sim(), &logger, &disk, cfg);
  tp::BankDb bank(&engine, tp::BankConfig{});

  for (int i = 0; i < txns; ++i) {
    bool done = false;
    bank.RunEt1(i % 1000, i % 100, i % 10, 1,
                [&](Status) { done = true; });
    cluster.RunUntil([&]() { return done; });
    if ((i + 1) % checkpoint_every == 0) {
      bool cleaned = false;
      engine.CleanPages([&](Status) { cleaned = true; });
      cluster.RunUntil([&]() { return cleaned; });
    }
  }
  cluster.sim().RunFor(2 * sim::kSecond);

  SpaceResult r;
  for (int s = 1; s <= 3; ++s) {
    r.live_records_end += cluster.server(s).LiveRecordsOf(1);
  }
  r.end_of_log = log->EndOfLog();
  r.scan_fraction = static_cast<double>(r.live_records_end / 2) /
                    static_cast<double>(r.end_of_log);
  return r;
}

}  // namespace

int main() {
  const int txns = 400;
  std::printf(
      "Section 5.3: online log size with and without checkpoint-driven "
      "truncation (%d ET1 transactions, N=2, 3 servers)\n\n",
      txns);
  std::printf("%-38s %16s %12s %14s\n", "strategy", "live records",
              "end of log", "online frac");
  for (int every : {50, 100}) {
    SpaceResult keep = Run(false, txns, every);
    SpaceResult trunc = Run(true, txns, every);
    std::printf("%-28s (ckpt %3d) %16zu %12llu %13.1f%%\n",
                "accumulate between dumps", every, keep.live_records_end,
                static_cast<unsigned long long>(keep.end_of_log),
                keep.scan_fraction * 100);
    std::printf("%-28s (ckpt %3d) %16zu %12llu %13.1f%%\n",
                "checkpoint + truncate", every, trunc.live_records_end,
                static_cast<unsigned long long>(trunc.end_of_log),
                trunc.scan_fraction * 100);
  }
  std::printf(
      "\nShape check (paper): without space management the online log "
      "grows linearly with work (~10 GB/day/server at the target load); "
      "checkpointing bounds it at the recovery window.\n");
  return 0;
}
