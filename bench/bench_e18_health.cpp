// Experiment E18 — online health monitoring: live windowed telemetry
// plus the HealthMonitor's imbalance rule, exercised end to end.
//
// Two scenarios on the same cluster geometry and ET1 workload:
//
//   skewed    every client writes to the same 3-server slice {1,2,3},
//             leaving the rest of the fleet idle — the Section 5.4
//             "load assignment gone wrong" shape. The cross-server
//             utilization CV sits at sqrt(servers/3 - 1) regardless of
//             absolute load, so the imbalance alert MUST fire.
//   balanced  slices rotate across the fleet ((i+j) % servers, the E17
//             placement), so per-server load is uniform and the run
//             must finish with ZERO alerts of any kind.
//
// Both self-gate (exit nonzero on a miss), making the bench its own
// acceptance test. Every reported metric is simulated — no wall clock —
// so BENCH_E18.json is byte-identical on the serial engine and on the
// parallel engine at any worker count; CI runs it at workers {0, 2, 8}
// and cmp(1)s the reports. The per-window "w<k>/imbalance_cv" keys give
// tools/bench_diff.py a window-by-window view of the signal (matched by
// window index, informational only — see --ts-exact).
//
// Artifacts: E18_series_<scenario>.json (full telemetry export) and
// E18_alerts_<scenario>.json (the alert sequence) in the working
// directory; tools/timeline.py renders the series as a terminal heatmap.
//
// Usage: bench_e18_health [clients] [servers] [seconds] [shard_workers]
// Defaults: 24 6 15 0.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/stop_latch.h"
#include "obs/bench_report.h"
#include "obs/health.h"
#include "obs/timeseries.h"

namespace {

using namespace dlog;

struct ScenarioResult {
  std::string name;
  uint64_t windows = 0;
  uint64_t committed = 0;
  size_t alerts_total = 0;       // raise + clear transitions
  size_t imbalance_raised = 0;   // imbalance raise transitions
  size_t active_at_end = 0;
  uint64_t series_hash = 0;
  uint64_t alerts_hash = 0;
  std::vector<double> imbalance_cv;  // per window, 1-based window k at [k-1]
};

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  return static_cast<bool>(out);
}

ScenarioResult RunScenario(const std::string& name, bool skewed,
                           int clients, int servers, int seconds,
                           int workers) {
  ScenarioResult r;
  r.name = name;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.shard_workers = workers;
  cluster_cfg.nodes_per_shard = workers > 0 ? 8 : 1;
  cluster_cfg.network.bandwidth_bits_per_sec = 1e9;
  // Quantized predicate polling: the init barrier stops at times that
  // are a pure function of the simulated schedule, so serial and
  // parallel runs enter the measured window identically.
  cluster_cfg.run_until_quantum = sim::kMillisecond;
  cluster_cfg.telemetry.enabled = true;
  cluster_cfg.telemetry.interval = 250 * sim::kMillisecond;
  cluster_cfg.health.enabled = true;
  // The workload's absolute CPU utilization is small (the point is the
  // *shape* of the load, not its magnitude); drop the idle-cluster
  // floor so the rule judges it. The CV contrast does the rest: ~1.0
  // skewed vs ~1/sqrt(events per server-window) balanced.
  cluster_cfg.health.imbalance_min_mean_util = 1e-4;
  harness::Cluster cluster(cluster_cfg);

  harness::StopLatch started(static_cast<uint64_t>(clients));
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  drivers.reserve(static_cast<size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    // The scenario is entirely in the slice placement.
    for (int j = 0; j < 3; ++j) {
      const int base = skewed ? j : (i + j) % servers;
      log_cfg.servers.push_back(static_cast<net::NodeId>(base + 1));
    }
    log_cfg.generator_reps = log_cfg.servers;
    log_cfg.seed = 1800 + static_cast<uint64_t>(i);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 20.0;
    driver_cfg.seed = 18000 + static_cast<uint64_t>(i);
    driver_cfg.max_log_backlog = 64;
    driver_cfg.start_latch = &started;
    driver_cfg.bank.accounts = 100;
    driver_cfg.bank.tellers = 10;
    driver_cfg.bank.branches = 2;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
  }
  const sim::Duration spread = 1 * sim::kSecond;
  for (int i = 0; i < clients; ++i) {
    harness::Et1Driver* d = drivers[static_cast<size_t>(i)].get();
    cluster.client_scheduler(i).At(
        static_cast<sim::Time>(i) * spread / clients,
        [d]() { d->Start(); });
  }

  if (!cluster.RunUntil(started, 60 * sim::kSecond)) {
    std::fprintf(stderr, "E18 %s: fleet failed to initialize (%llu left)\n",
                 name.c_str(),
                 static_cast<unsigned long long>(started.remaining()));
    std::exit(1);
  }
  cluster.RunFor(seconds * sim::kSecond);

  for (auto& d : drivers) r.committed += d->committed();
  r.windows = cluster.telemetry()->windows();
  r.alerts_total = cluster.health()->alerts().size();
  for (const obs::HealthAlert& a : cluster.health()->alerts()) {
    if (a.rule == "imbalance" && a.fired) ++r.imbalance_raised;
  }
  r.active_at_end = cluster.health()->active_alerts();
  r.imbalance_cv = cluster.health()->imbalance_cv_history();

  const std::string series = obs::TimeSeriesJson(*cluster.telemetry());
  const std::string alerts = obs::AlertsJson(*cluster.health());
  r.series_hash = Fnv1a(series);
  r.alerts_hash = Fnv1a(alerts);
  if (!WriteFile("E18_series_" + name + ".json", series) ||
      !WriteFile("E18_alerts_" + name + ".json", alerts)) {
    std::fprintf(stderr, "E18 %s: failed to write artifacts\n",
                 name.c_str());
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 24;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 6;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 15;
  const int workers = argc > 4 ? std::atoi(argv[4]) : 0;
  if (servers < 4) {
    std::fprintf(stderr, "E18 needs >= 4 servers for a skewed placement\n");
    return 1;
  }

  const std::string engine =
      workers == 0 ? "serial engine" : "parallel w=" + std::to_string(workers);
  std::printf(
      "E18: online health monitoring, %d clients x %d servers, %ds, "
      "%s\n\n",
      clients, servers, seconds, engine.c_str());

  const ScenarioResult skewed =
      RunScenario("skewed", true, clients, servers, seconds, workers);
  const ScenarioResult balanced =
      RunScenario("balanced", false, clients, servers, seconds, workers);

  std::printf(
      "  scenario | windows | committed | alerts | imbalance raised | "
      "series hash\n");
  for (const ScenarioResult* r : {&skewed, &balanced}) {
    std::printf("  %-8s | %7llu | %9llu | %6zu | %16zu | %016llx\n",
                r->name.c_str(),
                static_cast<unsigned long long>(r->windows),
                static_cast<unsigned long long>(r->committed),
                r->alerts_total, r->imbalance_raised,
                static_cast<unsigned long long>(r->series_hash));
  }

  obs::BenchReport report("E18");
  for (const ScenarioResult* r : {&skewed, &balanced}) {
    report.BeginRow();
    report.SetConfig("scenario", r->name);
    report.SetConfig("clients", clients);
    report.SetConfig("servers", servers);
    report.SetConfig("seconds", seconds);
    report.SetMetric("windows", static_cast<double>(r->windows));
    report.SetMetric("committed_txns", static_cast<double>(r->committed));
    report.SetMetric("alerts_total", static_cast<double>(r->alerts_total));
    report.SetMetric("imbalance_raised",
                     static_cast<double>(r->imbalance_raised));
    report.SetMetric("active_at_end",
                     static_cast<double>(r->active_at_end));
    // 64-bit hashes split into exactly-representable 32-bit halves.
    report.SetMetric("series_hash_hi",
                     static_cast<double>(r->series_hash >> 32));
    report.SetMetric("series_hash_lo",
                     static_cast<double>(r->series_hash & 0xffffffffu));
    report.SetMetric("alerts_hash_hi",
                     static_cast<double>(r->alerts_hash >> 32));
    report.SetMetric("alerts_hash_lo",
                     static_cast<double>(r->alerts_hash & 0xffffffffu));
    // Per-window signal for bench_diff's time-series view.
    for (size_t w = 0; w < r->imbalance_cv.size(); ++w) {
      report.SetMetric("w" + std::to_string(w + 1) + "/imbalance_cv",
                       r->imbalance_cv[w]);
    }
  }
  Status st = report.WriteJson("BENCH_E18.json");
  if (!st.ok()) {
    std::printf("failed to write BENCH_E18.json: %s\n",
                st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_E18.json (%zu rows) + series/alert "
              "artifacts\n", report.rows());

  bool ok = true;
  if (skewed.imbalance_raised == 0) {
    std::printf("FAIL: skewed placement never raised the imbalance "
                "alert\n");
    ok = false;
  }
  if (balanced.alerts_total != 0) {
    std::printf("FAIL: balanced placement raised %zu alert "
                "transition(s); expected a quiet run\n",
                balanced.alerts_total);
    ok = false;
  }
  if (ok) {
    std::printf("gates: imbalance alert fired under skew (%zu raise(s), "
                "%zu active at end); balanced run quiet\n",
                skewed.imbalance_raised, skewed.active_at_end);
  }
  return ok ? 0 : 1;
}
