#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "harness/cluster.h"

namespace dlog {
namespace {

using client::LogClient;
using client::LogClientConfig;
using harness::Cluster;
using harness::ClusterConfig;

/// Initializes a client synchronously; returns the final status.
Status InitClient(Cluster& cluster, LogClient& log_client,
                  sim::Duration timeout = 30 * sim::kSecond) {
  Status result = Status::Internal("init never completed");
  bool done = false;
  log_client.Init([&](Status st) {
    result = st;
    done = true;
  });
  cluster.RunUntil([&]() { return done; }, timeout);
  return result;
}

/// Writes a record and forces it; returns the LSN.
Result<Lsn> WriteForced(Cluster& cluster, LogClient& log_client,
                        const std::string& data) {
  Result<Lsn> lsn = log_client.WriteLog(ToBytes(data));
  if (!lsn.ok()) return lsn;
  Status forced = Status::Internal("force never completed");
  bool done = false;
  log_client.ForceLog(*lsn, [&](Status st) {
    forced = st;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::TimedOut("force did not complete");
  }
  if (!forced.ok()) return forced;
  return lsn;
}

Result<Bytes> ReadSync(Cluster& cluster, LogClient& log_client, Lsn lsn) {
  Result<Bytes> result = Status::Internal("read never completed");
  bool done = false;
  log_client.ReadLog(lsn, [&](Result<Bytes> r) {
    result = std::move(r);
    done = true;
  });
  cluster.RunUntil([&]() { return done; });
  return result;
}

TEST(SystemTest, InitOnEmptyLog) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  EXPECT_TRUE(InitClient(cluster, *c).ok());
  EXPECT_TRUE(c->IsInitialized());
  EXPECT_EQ(c->current_epoch(), 1u);
  EXPECT_EQ(c->EndOfLog(), kNoLsn);
}

TEST(SystemTest, WriteForceRead) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  Result<Lsn> lsn1 = WriteForced(cluster, *c, "hello");
  ASSERT_TRUE(lsn1.ok());
  EXPECT_EQ(*lsn1, 1u);
  Result<Lsn> lsn2 = WriteForced(cluster, *c, "world");
  ASSERT_TRUE(lsn2.ok());
  EXPECT_EQ(*lsn2, 2u);

  EXPECT_EQ(*ReadSync(cluster, *c, 1), ToBytes("hello"));
  EXPECT_EQ(*ReadSync(cluster, *c, 2), ToBytes("world"));
  EXPECT_TRUE(ReadSync(cluster, *c, 3).status().IsOutOfRange());
}

TEST(SystemTest, RecordsLandOnExactlyNServers) {
  ClusterConfig cfg;
  cfg.num_servers = 5;
  Cluster cluster(cfg);
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(WriteForced(cluster, *c, "r" + std::to_string(i)).ok());
  }
  for (Lsn lsn = 1; lsn <= 10; ++lsn) {
    int holders = 0;
    for (int s = 1; s <= 5; ++s) {
      for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
        if (r.lsn == lsn && r.present) {
          ++holders;
          break;
        }
      }
    }
    EXPECT_EQ(holders, 2) << "LSN " << lsn;
  }
}

TEST(SystemTest, GroupingPacksManyRecordsPerBatch) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  // Buffer 7 small records, force once: ET1-style grouping.
  Lsn last = kNoLsn;
  for (int i = 0; i < 7; ++i) {
    Result<Lsn> lsn = c->WriteLog(ToBytes(std::string(100, 'x')));
    ASSERT_TRUE(lsn.ok());
    last = *lsn;
  }
  bool done = false;
  c->ForceLog(last, [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  // 7 records x 2 copies in two batches (one per server), not 14 RPCs.
  EXPECT_EQ(c->records_sent().value(), 14u);
  EXPECT_LE(c->batches_sent().value(), 4u);
}

TEST(SystemTest, BufferedWritesReachDiskViaGroupBuffer) {
  ClusterConfig cfg;
  cfg.server.flush_interval = 20 * sim::kMillisecond;
  Cluster cluster(cfg);
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(c->WriteLog(ToBytes(std::string(200, 'a' + (i % 26)))).ok());
    if (i % 10 == 9) {
      bool done = false;
      c->ForceLog(c->EndOfLog(), [&](Status) { done = true; });
      ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
    }
  }
  cluster.sim().RunFor(sim::kSecond);
  // Tracks were written on the write-set servers.
  uint64_t tracks = 0, disk_writes = 0;
  for (int s = 1; s <= 3; ++s) {
    tracks += cluster.server(s).tracks_written().value();
    disk_writes += cluster.server(s).disk().writes().value();
  }
  EXPECT_GT(tracks, 0u);
  EXPECT_GT(disk_writes, 0u);
}

TEST(SystemTest, ServerCrashRestartPreservesAckedRecords) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  ASSERT_TRUE(WriteForced(cluster, *c, "durable").ok());

  // Crash and restart every server: records must survive in NVRAM/disk.
  for (int s = 1; s <= 3; ++s) cluster.server(s).Crash();
  cluster.sim().RunFor(100 * sim::kMillisecond);
  for (int s = 1; s <= 3; ++s) cluster.server(s).Restart();

  // A fresh client (the old one's connections died) re-initializes and
  // reads the record back.
  auto c2 = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c2).ok());
  Result<Bytes> r = ReadSync(cluster, *c2, 1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, ToBytes("durable"));
}

TEST(SystemTest, ClientRestartRecoversForcedRecords) {
  Cluster cluster(ClusterConfig{});
  LogClientConfig ccfg;
  ccfg.client_id = 7;
  auto c = cluster.AddClient(ccfg);
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  const Epoch first_epoch = c->current_epoch();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(WriteForced(cluster, *c, "rec" + std::to_string(i)).ok());
  }
  // Two unforced records die with the client.
  ASSERT_TRUE(c->WriteLog(ToBytes("lost1")).ok());
  ASSERT_TRUE(c->WriteLog(ToBytes("lost2")).ok());
  cluster.CrashClient(c);

  // The cluster-owned restart rebuilds the node with the same identity.
  cluster.RestartClient(c);
  auto c2 = c;
  ASSERT_TRUE(InitClient(cluster, *c2).ok());
  EXPECT_GT(c2->current_epoch(), first_epoch);
  for (Lsn lsn = 1; lsn <= 5; ++lsn) {
    Result<Bytes> r = ReadSync(cluster, *c2, lsn);
    ASSERT_TRUE(r.ok()) << "lsn " << lsn << ": " << r.status().ToString();
    EXPECT_EQ(*r, ToBytes("rec" + std::to_string(lsn - 1)));
  }
  // The unforced records are reported consistently: either recovered (if
  // they reached servers before the crash) or not-present.
  for (Lsn lsn = 6; lsn <= 7; ++lsn) {
    Result<Bytes> first = ReadSync(cluster, *c2, lsn);
    Result<Bytes> second = ReadSync(cluster, *c2, lsn);
    EXPECT_EQ(first.ok(), second.ok());
    if (first.ok()) {
      EXPECT_EQ(*first, *second);
    }
  }
  // New writes continue beyond the recovered end of log.
  Result<Lsn> next = WriteForced(cluster, *c2, "after-restart");
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, 7u);
}

TEST(SystemTest, ForceCompletesDespiteWriteSetServerDeath) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  Cluster cluster(cfg);
  LogClientConfig ccfg;
  ccfg.force_timeout = 100 * sim::kMillisecond;
  ccfg.force_retries = 2;
  auto c = cluster.AddClient(ccfg);
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  ASSERT_TRUE(WriteForced(cluster, *c, "warmup").ok());

  // Kill one write-set server (a holder of the warmup record).
  int victim = 0;
  for (int s = 1; s <= 4 && victim == 0; ++s) {
    for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
      if (r.lsn == 1 && r.present) {
        victim = s;
        break;
      }
    }
  }
  ASSERT_NE(victim, 0);
  cluster.server(victim).Crash();
  Result<Lsn> lsn = c->WriteLog(ToBytes("survives"));
  ASSERT_TRUE(lsn.ok());
  bool done = false;
  Status force_status = Status::Internal("never");
  c->ForceLog(*lsn, [&](Status st) {
    force_status = st;
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }, 60 * sim::kSecond));
  EXPECT_TRUE(force_status.ok());
  EXPECT_GE(c->server_switches().value(), 1u);

  // The record has two live holders among the surviving servers.
  int holders = 0;
  for (int s = 1; s <= 4; ++s) {
    if (s == victim) continue;
    for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
      if (r.lsn == *lsn && r.present) {
        ++holders;
        break;
      }
    }
  }
  EXPECT_GE(holders, 2);
}

TEST(SystemTest, LossyNetworkEndToEnd) {
  ClusterConfig cfg;
  cfg.network.loss_probability = 0.10;
  cfg.network.duplicate_probability = 0.05;
  Cluster cluster(cfg);
  LogClientConfig ccfg;
  ccfg.force_timeout = 100 * sim::kMillisecond;
  auto c = cluster.AddClient(ccfg);
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  std::map<Lsn, std::string> written;
  for (int i = 0; i < 50; ++i) {
    const std::string data = "lossy" + std::to_string(i);
    Result<Lsn> lsn = WriteForced(cluster, *c, data);
    ASSERT_TRUE(lsn.ok()) << i << ": " << lsn.status().ToString();
    written[*lsn] = data;
  }
  for (const auto& [lsn, data] : written) {
    Result<Bytes> r = ReadSync(cluster, *c, lsn);
    ASSERT_TRUE(r.ok()) << "lsn " << lsn;
    EXPECT_EQ(*r, ToBytes(data));
  }
  // Loss and duplication actually happened.
  EXPECT_GT(cluster.network().packets_lost().value(), 0u);
}

TEST(SystemTest, DualNetworkSurvivesOneNetworkOutage) {
  ClusterConfig cfg;
  cfg.num_networks = 2;
  Cluster cluster(cfg);
  LogClientConfig ccfg;
  ccfg.force_timeout = 100 * sim::kMillisecond;
  auto c = cluster.AddClient(ccfg);
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  ASSERT_TRUE(WriteForced(cluster, *c, "two nets").ok());
  // Both networks carried traffic (round-robin).
  EXPECT_GT(cluster.network(0).packets_sent().value(), 0u);
  EXPECT_GT(cluster.network(1).packets_sent().value(), 0u);
}

TEST(SystemTest, IntervalListsStayShortUnderStickyWrites) {
  ClusterConfig cfg;
  cfg.num_servers = 5;
  Cluster cluster(cfg);
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c->WriteLog(ToBytes("x")).ok());
    if (i % 20 == 19) {
      bool done = false;
      c->ForceLog(c->EndOfLog(), [&](Status) { done = true; });
      ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
    }
  }
  // Sticky server selection: each storing server holds one interval.
  for (int s = 1; s <= 5; ++s) {
    EXPECT_LE(cluster.server(s).IntervalsOf(1).size(), 1u);
  }
}

TEST(SystemTest, EpochsRiseAcrossRestarts) {
  Cluster cluster(ClusterConfig{});
  client::LogClientConfig ccfg;
  ccfg.client_id = 3;
  auto c = cluster.AddClient(ccfg);
  Epoch last = 0;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(InitClient(cluster, *c).ok());
    EXPECT_GT(c->current_epoch(), last);
    last = c->current_epoch();
    ASSERT_TRUE(WriteForced(cluster, *c, "r" + std::to_string(round)).ok());
    cluster.CrashClient(c);
    cluster.RestartClient(c);
  }
}

TEST(SystemTest, TwoClientsShareServersIndependently) {
  Cluster cluster(ClusterConfig{});
  client::LogClientConfig a_cfg;
  a_cfg.client_id = 1;
  client::LogClientConfig b_cfg;
  b_cfg.client_id = 2;
  b_cfg.node_id = 1500;
  auto a = cluster.AddClient(a_cfg);
  auto b = cluster.AddClient(b_cfg);
  ASSERT_TRUE(InitClient(cluster, *a).ok());
  ASSERT_TRUE(InitClient(cluster, *b).ok());

  ASSERT_TRUE(WriteForced(cluster, *a, "from-a").ok());
  ASSERT_TRUE(WriteForced(cluster, *b, "from-b").ok());
  EXPECT_EQ(*ReadSync(cluster, *a, 1), ToBytes("from-a"));
  EXPECT_EQ(*ReadSync(cluster, *b, 1), ToBytes("from-b"));
}

TEST(SystemTest, ReadsServedFromLocalBufferWithoutServerTrip) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  Result<Lsn> lsn = c->WriteLog(ToBytes("still local"));
  ASSERT_TRUE(lsn.ok());
  // Not forced yet: the record is in the client buffer.
  Result<Bytes> r = ReadSync(cluster, *c, *lsn);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("still local"));
  EXPECT_EQ(cluster.server(1).read_rpcs().value() +
                cluster.server(2).read_rpcs().value() +
                cluster.server(3).read_rpcs().value(),
            0u);
}

TEST(SystemTest, ServerForestIndexesDiskResidentRecords) {
  ClusterConfig cfg;
  cfg.server.flush_interval = 10 * sim::kMillisecond;
  cfg.server.disk.track_bytes = 2048;  // small tracks: several flushes
  Cluster cluster(cfg);
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(WriteForced(cluster, *c, std::string(120, 'z')).ok());
  }
  cluster.sim().RunFor(sim::kSecond);
  const forest::AppendForest* forest = cluster.server(1).ForestOf(1);
  if (forest != nullptr && !forest->empty()) {
    EXPECT_TRUE(forest->CheckInvariants().ok());
    // The forest locates a disk-resident record's track.
    Result<forest::AppendForest::Node> node = forest->Find(5);
    if (node.ok()) {
      EXPECT_TRUE(cluster.server(1).disk().IsWritten(node->value));
    }
  }
}

TEST(SystemTest, ShedThenRetryForceIsNotDuplicated) {
  // Servers with a tiny admission threshold shed mid-stream; the client
  // backs off per the Overloaded hint and re-offers. The force must still
  // complete, and the retries must not duplicate any record.
  ClusterConfig cfg;
  cfg.server.nvram_bytes = 3000;
  cfg.server.admission.nvram_shed_fraction = 0.4;
  Cluster cluster(cfg);
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  Lsn last = kNoLsn;
  for (int i = 0; i < 8; ++i) {
    Result<Lsn> lsn = c->WriteLog(ToBytes(std::string(400, 'a' + i)));
    ASSERT_TRUE(lsn.ok());
    last = *lsn;
  }
  Status forced = Status::Internal("force never completed");
  bool done = false;
  c->ForceLog(last, [&](Status st) {
    forced = st;
    done = true;
  });
  // Generous deadline: shed rounds back off up to the policy's max.
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }, 120 * sim::kSecond));
  EXPECT_TRUE(forced.ok()) << forced.ToString();
  // The scenario only proves idempotence if servers actually shed.
  EXPECT_GT(c->overloads_received().value(), 0u);
  EXPECT_GT(c->backoffs().value(), 0u);

  // Exactly N copies of every record cluster-wide, and no server holds a
  // duplicate of any LSN.
  for (Lsn lsn = 1; lsn <= last; ++lsn) {
    int holders = 0;
    for (int s = 1; s <= 3; ++s) {
      int on_this_server = 0;
      for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
        if (r.lsn == lsn && r.present) ++on_this_server;
      }
      EXPECT_LE(on_this_server, 1) << "server " << s << " LSN " << lsn;
      holders += on_this_server;
    }
    EXPECT_EQ(holders, 2) << "LSN " << lsn;
  }
}

}  // namespace
}  // namespace dlog
