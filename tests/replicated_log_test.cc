#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "client/log_server_stub.h"
#include "client/replicated_log.h"
#include "common/rng.h"
#include "epoch/id_generator.h"

namespace dlog::client {
namespace {

constexpr ClientId kClient = 1;

struct Cluster {
  explicit Cluster(int m, int gen_reps = 3) {
    for (int i = 0; i < m; ++i) {
      servers.push_back(std::make_unique<InMemoryLogServerStub>(i + 1));
      raw_servers.push_back(servers.back().get());
    }
    for (int i = 0; i < gen_reps; ++i) {
      reps.push_back(std::make_unique<epoch::GeneratorStateRep>());
      raw_reps.push_back(reps.back().get());
    }
    generator = std::make_unique<epoch::ReplicatedIdGenerator>(raw_reps);
  }

  std::unique_ptr<ReplicatedLog> NewLog(int n) {
    ReplicatedLog::Options opts;
    opts.copies = n;
    return std::make_unique<ReplicatedLog>(kClient, raw_servers,
                                           generator.get(), opts);
  }

  InMemoryLogServerStub& server(ServerId id) { return *servers[id - 1]; }

  std::vector<std::unique_ptr<InMemoryLogServerStub>> servers;
  std::vector<LogServerStub*> raw_servers;
  std::vector<std::unique_ptr<epoch::GeneratorStateRep>> reps;
  std::vector<epoch::GeneratorStateRep*> raw_reps;
  std::unique_ptr<epoch::ReplicatedIdGenerator> generator;
};

TEST(ReplicatedLogTest, RequiresInit) {
  Cluster c(3);
  auto log = c.NewLog(2);
  EXPECT_EQ(log->WriteLog(ToBytes("x")).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(log->ReadLog(1).ok());
  EXPECT_FALSE(log->EndOfLog().ok());
}

TEST(ReplicatedLogTest, WriteReadEndOfLog) {
  Cluster c(3);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  EXPECT_EQ(*log->EndOfLog(), kNoLsn);

  EXPECT_EQ(*log->WriteLog(ToBytes("first")), 1u);
  EXPECT_EQ(*log->WriteLog(ToBytes("second")), 2u);
  EXPECT_EQ(*log->EndOfLog(), 2u);
  EXPECT_EQ(*log->ReadLog(1), ToBytes("first"));
  EXPECT_EQ(*log->ReadLog(2), ToBytes("second"));
}

TEST(ReplicatedLogTest, ReadBeyondEndSignalsOutOfRange) {
  Cluster c(3);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  ASSERT_TRUE(log->WriteLog(ToBytes("a")).ok());
  EXPECT_TRUE(log->ReadLog(2).status().IsOutOfRange());
  EXPECT_TRUE(log->ReadLog(99).status().IsOutOfRange());
}

TEST(ReplicatedLogTest, EachRecordStoredOnExactlyNServers) {
  Cluster c(5);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(log->WriteLog(ToBytes("r")).ok());
  for (Lsn lsn = 1; lsn <= 10; ++lsn) {
    int holders = 0;
    for (auto& s : c.servers) {
      if (s->store(kClient).Read(lsn).ok()) ++holders;
    }
    EXPECT_EQ(holders, 2) << "LSN " << lsn;
  }
}

TEST(ReplicatedLogTest, ConsecutiveWritesStickToSameServers) {
  Cluster c(5);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(log->WriteLog(ToBytes("r")).ok());
  // All records on the same two servers => one interval each, none
  // elsewhere ("clients should attempt to perform consecutive writes to
  // the same servers").
  int with_records = 0;
  for (auto& s : c.servers) {
    const IntervalList ivs = s->store(kClient).Intervals();
    if (!ivs.empty()) {
      ++with_records;
      EXPECT_EQ(ivs.size(), 1u);
    }
  }
  EXPECT_EQ(with_records, 2);
}

TEST(ReplicatedLogTest, WriteSwitchesServersOnFailure) {
  Cluster c(3);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  ASSERT_TRUE(log->WriteLog(ToBytes("a")).ok());
  c.server(1).SetAvailable(false);  // one of the write set dies
  ASSERT_TRUE(log->WriteLog(ToBytes("b")).ok());
  // Record 2 must still have two holders (among servers 2 and 3).
  int holders = 0;
  for (auto& s : c.servers) {
    if (s->IsAvailable() && s->store(kClient).Read(2).ok()) ++holders;
  }
  EXPECT_EQ(holders, 2);
  EXPECT_EQ(*log->ReadLog(2), ToBytes("b"));
}

TEST(ReplicatedLogTest, WriteUnavailableWhenFewerThanNServersUp) {
  Cluster c(3);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  c.server(1).SetAvailable(false);
  c.server(2).SetAvailable(false);
  EXPECT_TRUE(log->WriteLog(ToBytes("x")).status().IsUnavailable());
}

TEST(ReplicatedLogTest, InitNeedsMinusNPlusOneServers) {
  Cluster c(5);
  {
    auto log = c.NewLog(2);  // needs M-N+1 = 4 interval lists
    c.server(1).SetAvailable(false);
    c.server(2).SetAvailable(false);
    EXPECT_TRUE(log->Init().IsUnavailable());
    c.server(1).SetAvailable(true);
    EXPECT_TRUE(log->Init().ok());
  }
}

TEST(ReplicatedLogTest, RecoveryAfterCleanRestartPreservesLog) {
  Cluster c(3);
  {
    auto log = c.NewLog(2);
    ASSERT_TRUE(log->Init().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(log->WriteLog(ToBytes("rec" + std::to_string(i))).ok());
    }
  }  // client vanishes without crash markers
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  // All five records remain readable; LSN 6 is the recovery's
  // not-present record.
  for (Lsn l = 1; l <= 5; ++l) {
    EXPECT_EQ(*log->ReadLog(l), ToBytes("rec" + std::to_string(l - 1)));
  }
  EXPECT_EQ(*log->EndOfLog(), 6u);
  EXPECT_TRUE(log->ReadLog(6).status().IsNotFound());  // marked not present
  // New writes continue above.
  EXPECT_EQ(*log->WriteLog(ToBytes("after")), 7u);
}

TEST(ReplicatedLogTest, PartialWriteInvisibleWhenItsServerExcluded) {
  Cluster c(3);
  {
    auto log = c.NewLog(2);
    ASSERT_TRUE(log->Init().ok());
    ASSERT_TRUE(log->WriteLog(ToBytes("ok")).ok());
    // Crash after reaching only one server.
    EXPECT_TRUE(
        log->WriteLogCrashAfter(ToBytes("partial"), 1).IsAborted());
  }
  // Find the server holding the partial record and exclude it from
  // recovery (Figure 3-2: "If Servers 1 and 2 were used ... record 10
  // would not be read").
  ServerId holder = 0;
  for (auto& s : c.servers) {
    if (s->store(kClient).Read(2).ok()) holder = s->id();
  }
  ASSERT_NE(holder, 0u);
  c.server(holder).SetAvailable(false);

  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  EXPECT_EQ(*log->ReadLog(1), ToBytes("ok"));
  // LSN 2 is now the not-present record written by recovery; the partial
  // write is reported as not existing — consistently.
  EXPECT_TRUE(log->ReadLog(2).status().IsNotFound());
  EXPECT_TRUE(log->ReadLog(2).status().IsNotFound());
}

TEST(ReplicatedLogTest, PartialWriteBecomesDurableWhenItsServerIncluded) {
  Cluster c(3);
  {
    auto log = c.NewLog(2);
    ASSERT_TRUE(log->Init().ok());
    ASSERT_TRUE(log->WriteLog(ToBytes("ok")).ok());
    EXPECT_TRUE(
        log->WriteLogCrashAfter(ToBytes("partial"), 1).IsAborted());
  }
  // All servers up: the merged interval lists see the partial record, so
  // recovery copies it and it becomes real ("the log replication
  // algorithm may report the record as existing or as not existing
  // provided that all reports are consistent").
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  EXPECT_EQ(*log->ReadLog(2), ToBytes("partial"));
  EXPECT_EQ(*log->ReadLog(2), ToBytes("partial"));  // and consistently so
}

// The complete Figure 3-1 / 3-2 / 3-3 walkthrough, producing exactly the
// per-server tables printed in the paper.
TEST(ReplicatedLogTest, Figures31Through33) {
  Cluster c(3);

  // --- Epoch 1: records 1-3 written to Servers 1 and 2. ---
  {
    auto log = c.NewLog(2);
    ASSERT_TRUE(log->Init().ok());
    ASSERT_EQ(log->current_epoch(), 1u);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(log->WriteLog(ToBytes("e1")).ok());
  }

  // Burn epoch 2 (the paper's history implies an intervening restart).
  ASSERT_TRUE(c.generator->NewId().ok());

  // --- Epoch 3 recovery using Servers 1 and 3 (Server 2 down):
  //     copy <3,3>, write <4,3> not-present, then records 5 (S1+S3),
  //     6-7 (S1+S2), 8-9 (S1+S3). ---
  {
    c.server(2).SetAvailable(false);
    auto log = c.NewLog(2);
    ASSERT_TRUE(log->Init().ok());
    ASSERT_EQ(log->current_epoch(), 3u);
    ASSERT_EQ(*log->WriteLog(ToBytes("r5")), 5u);
    c.server(2).SetAvailable(true);
    c.server(3).SetAvailable(false);
    ASSERT_EQ(*log->WriteLog(ToBytes("r6")), 6u);
    ASSERT_EQ(*log->WriteLog(ToBytes("r7")), 7u);
    c.server(3).SetAvailable(true);
    c.server(2).SetAvailable(false);
    ASSERT_EQ(*log->WriteLog(ToBytes("r8")), 8u);
    ASSERT_EQ(*log->WriteLog(ToBytes("r9")), 9u);
    c.server(2).SetAvailable(true);

    // Verify Figure 3-1.
    EXPECT_EQ(c.server(1).store(kClient).Intervals(),
              (IntervalList{{1, 1, 3}, {3, 3, 9}}));
    EXPECT_EQ(c.server(2).store(kClient).Intervals(),
              (IntervalList{{1, 1, 3}, {3, 6, 7}}));
    EXPECT_EQ(c.server(3).store(kClient).Intervals(),
              (IntervalList{{3, 3, 5}, {3, 8, 9}}));
    EXPECT_FALSE(c.server(1).store(kClient).Read(4)->present);
    EXPECT_FALSE(c.server(3).store(kClient).Read(4)->present);

    // --- Figure 3-2: record 10 partially written (Server 3 only).
    // With Server 1 down, the write set is S3 (sticky) then S2; the
    // injected crash happens after the first ServerWriteLog. ---
    c.server(1).SetAvailable(false);
    EXPECT_TRUE(log->WriteLogCrashAfter(ToBytes("r10"), 1).IsAborted());
    c.server(1).SetAvailable(true);
    EXPECT_EQ(c.server(3).store(kClient).Intervals(),
              (IntervalList{{3, 3, 5}, {3, 8, 10}}));
    EXPECT_FALSE(c.server(1).store(kClient).Read(10).ok());
    EXPECT_FALSE(c.server(2).store(kClient).Read(10).ok());
  }

  // --- Figure 3-3: recovery with Servers 1 and 2 (Server 3 down). ---
  c.server(3).SetAvailable(false);
  auto log = c.NewLog(2);
  ASSERT_TRUE(log->Init().ok());
  ASSERT_EQ(log->current_epoch(), 4u);

  EXPECT_EQ(c.server(1).store(kClient).Intervals(),
            (IntervalList{{1, 1, 3}, {3, 3, 9}, {4, 9, 10}}));
  EXPECT_EQ(c.server(2).store(kClient).Intervals(),
            (IntervalList{{1, 1, 3}, {3, 6, 7}, {4, 9, 10}}));
  // Server 3 untouched (down), still holding the orphaned <10,3>.
  EXPECT_EQ(c.server(3).store(kClient).Intervals(),
            (IntervalList{{3, 3, 5}, {3, 8, 10}}));

  // <9,4> present copy; <10,4> not present.
  EXPECT_TRUE(c.server(1).store(kClient).Read(9)->present);
  EXPECT_EQ(c.server(1).store(kClient).Read(9)->epoch, 4u);
  EXPECT_FALSE(c.server(1).store(kClient).Read(10)->present);
  EXPECT_EQ(c.server(2).store(kClient).Read(10)->epoch, 4u);

  // The partially written record 10 is reported as not existing, even
  // after Server 3 comes back: its epoch-3 copy is superseded.
  EXPECT_TRUE(log->ReadLog(10).status().IsNotFound());
  c.server(3).SetAvailable(true);
  EXPECT_TRUE(log->ReadLog(10).status().IsNotFound());
  EXPECT_EQ(*log->ReadLog(9), ToBytes("r9"));
}

// Randomized crash-recovery property test: committed records are never
// lost or altered; partially written records are reported consistently.
TEST(ReplicatedLogTest, RandomCrashRecoveryProperty) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const int m = 3 + static_cast<int>(rng.NextBelow(3));  // 3..5 servers
    const int n = 2 + static_cast<int>(rng.NextBelow(2));  // N in {2,3}
    Cluster c(m);
    std::map<Lsn, Bytes> committed;
    std::map<Lsn, Bytes> attempted;  // crashed writes

    auto log = c.NewLog(n);
    ASSERT_TRUE(log->Init().ok());

    for (int step = 0; step < 120; ++step) {
      const uint64_t dice = rng.NextBelow(100);
      if (dice < 55) {
        // Normal write.
        Bytes data = ToBytes("s" + std::to_string(seed) + "-" +
                             std::to_string(step));
        Result<Lsn> end = log->EndOfLog();
        Result<Lsn> lsn = log->WriteLog(data);
        if (lsn.ok()) {
          committed[*lsn] = data;
        } else {
          // The write may have reached some servers; treat it like a
          // crashed attempt and re-initialize with everything up.
          if (end.ok()) attempted[*end + 1] = data;
          for (auto& s : c.servers) s->SetAvailable(true);
          ASSERT_TRUE(log->Init().ok());
        }
      } else if (dice < 70) {
        // Crash mid-write, then restart.
        Bytes data = ToBytes("crash" + std::to_string(step));
        const int partial = static_cast<int>(rng.NextBelow(n));
        Result<Lsn> end = log->EndOfLog();
        (void)log->WriteLogCrashAfter(data, partial);
        if (end.ok() && partial > 0) attempted[*end + 1] = data;
        log = c.NewLog(n);
        // Recovery may need retries while servers flap; give it every
        // server.
        for (auto& s : c.servers) s->SetAvailable(true);
        ASSERT_TRUE(log->Init().ok());
      } else if (dice < 85) {
        // Server churn, keeping at least N up.
        const ServerId victim = 1 + rng.NextBelow(m);
        int up = 0;
        for (auto& s : c.servers) up += s->IsAvailable() ? 1 : 0;
        if (c.server(victim).IsAvailable() && up > n) {
          c.server(victim).SetAvailable(false);
        } else {
          c.server(victim).SetAvailable(true);
        }
      } else {
        // Random read-back of a committed record.
        if (!committed.empty()) {
          auto it = committed.begin();
          std::advance(it, rng.NextBelow(committed.size()));
          Result<Bytes> r = log->ReadLog(it->first);
          if (r.ok()) {
            ASSERT_EQ(*r, it->second) << "seed " << seed;
          } else {
            // Only acceptable failure: every holder is down.
            ASSERT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
          }
        }
      }
    }

    // Final audit with everything up.
    for (auto& s : c.servers) s->SetAvailable(true);
    log = c.NewLog(n);
    ASSERT_TRUE(log->Init().ok());
    for (const auto& [lsn, data] : committed) {
      Result<Bytes> r = log->ReadLog(lsn);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " lsn " << lsn << ": "
                          << r.status().ToString();
      ASSERT_EQ(*r, data) << "seed " << seed << " lsn " << lsn;
    }
    // Every readable LSN is either a committed record (exact data), a
    // crashed attempt (exact data), or signals not-present.
    const Lsn end = *log->EndOfLog();
    for (Lsn lsn = 1; lsn <= end; ++lsn) {
      Result<Bytes> r = log->ReadLog(lsn);
      if (committed.count(lsn) > 0) {
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(*r, committed[lsn]);
      } else if (r.ok()) {
        ASSERT_TRUE(attempted.count(lsn) > 0) << "phantom LSN " << lsn;
        ASSERT_EQ(*r, attempted[lsn]) << "seed " << seed;
      } else {
        ASSERT_TRUE(r.status().IsNotFound()) << r.status().ToString();
      }
    }
  }
}

TEST(ReplicatedLogTest, TripleCopyBasics) {
  Cluster c(5);
  auto log = c.NewLog(3);
  ASSERT_TRUE(log->Init().ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(log->WriteLog(ToBytes("x")).ok());
  for (Lsn lsn = 1; lsn <= 5; ++lsn) {
    int holders = 0;
    for (auto& s : c.servers) {
      if (s->store(kClient).Read(lsn).ok()) ++holders;
    }
    EXPECT_EQ(holders, 3);
  }
  // Two servers can die without losing readability.
  c.server(1).SetAvailable(false);
  c.server(2).SetAvailable(false);
  for (Lsn lsn = 1; lsn <= 5; ++lsn) EXPECT_TRUE(log->ReadLog(lsn).ok());
}

}  // namespace
}  // namespace dlog::client
