#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/et1_driver.h"

namespace dlog::harness {
namespace {

TEST(ClusterTest, ServersGetSequentialIds) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.num_servers(), 4);
  EXPECT_EQ(cluster.server_ids(), (std::vector<net::NodeId>{1, 2, 3, 4}));
  for (int s = 1; s <= 4; ++s) {
    EXPECT_EQ(cluster.server(s).id(), static_cast<net::NodeId>(s));
    EXPECT_TRUE(cluster.server(s).IsUp());
  }
}

TEST(ClusterTest, AddClientFillsServersAndNodeIds) {
  Cluster cluster(ClusterConfig{});
  ClientHandle a = cluster.AddClient();
  ClientHandle b = cluster.AddClient();
  EXPECT_EQ(cluster.num_clients(), 2);
  EXPECT_EQ(a.index(), 0);
  EXPECT_EQ(b.index(), 1);
  // Distinct auto-assigned node ids (no Attach collisions).
  bool ready = false;
  a->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));
  ready = false;
  b->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));
}

TEST(ClusterTest, RestartClientPreservesIdentityAndMetrics) {
  Cluster cluster(ClusterConfig{});
  client::LogClientConfig cfg;
  cfg.client_id = 7;
  ClientHandle c = cluster.AddClient(cfg);
  bool ready = false;
  c->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(c->WriteLog(ToBytes("x")).ok());

  cluster.CrashClient(c);
  EXPECT_FALSE(c->IsUp());
  cluster.RestartClient(c);
  EXPECT_TRUE(c->IsUp());
  // A fresh node behind the same handle, same identity, metrics intact.
  EXPECT_FALSE(c->IsInitialized());
  EXPECT_EQ(c->client_id(), 7u);
  const auto names = cluster.metrics().Names();
  bool found = false;
  for (const auto& n : names) {
    if (n == "client-7/log/records_sent") found = true;
  }
  EXPECT_TRUE(found);

  // The restarted node re-enters the log (Section 3.1.2) and can write.
  ready = false;
  c->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));
  EXPECT_TRUE(c->WriteLog(ToBytes("y")).ok());
}

TEST(ClusterTest, RunUntilTimesOut) {
  Cluster cluster(ClusterConfig{});
  const sim::Time before = cluster.sim().Now();
  EXPECT_FALSE(
      cluster.RunUntil([]() { return false; }, 5 * sim::kSecond));
  EXPECT_GE(cluster.sim().Now(), before);
}

TEST(ClusterTest, DualNetworkConfiguration) {
  ClusterConfig cfg;
  cfg.num_networks = 2;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.num_networks(), 2);
  ClientHandle c = cluster.AddClient();
  bool ready = false;
  c->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));
}

TEST(Et1DriverTest, GeneratesCommittedTransactions) {
  Cluster cluster(ClusterConfig{});
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 1;
  Et1DriverConfig cfg;
  cfg.tps = 50.0;
  Et1Driver driver(&cluster, log_cfg, cfg);
  driver.Start();
  cluster.sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(driver.started());
  // ~250 expected; allow wide slack for Poisson arrivals.
  EXPECT_GT(driver.committed(), 150u);
  EXPECT_LT(driver.committed(), 400u);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_GT(driver.txn_latency_ms().count(), 0u);
  // The bank's invariant: all three totals equal.
  EXPECT_EQ(driver.bank().TotalAccounts(), driver.bank().TotalTellers());
  EXPECT_EQ(driver.bank().TotalTellers(), driver.bank().TotalBranches());
}

TEST(Et1DriverTest, StopHaltsArrivals) {
  Cluster cluster(ClusterConfig{});
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 2;
  Et1DriverConfig cfg;
  cfg.tps = 50.0;
  Et1Driver driver(&cluster, log_cfg, cfg);
  driver.Start();
  cluster.sim().RunFor(2 * sim::kSecond);
  driver.Stop();
  const uint64_t at_stop = driver.committed();
  cluster.sim().RunFor(3 * sim::kSecond);
  EXPECT_LE(driver.committed(), at_stop + 2);  // in-flight only
}

TEST(Et1DriverTest, RetriesInitWhenServersComeUpLate) {
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);
  for (int s = 1; s <= 3; ++s) cluster.server(s).Crash();
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 3;
  log_cfg.rpc_timeout = 100 * sim::kMillisecond;
  log_cfg.rpc_attempts = 2;
  Et1DriverConfig cfg;
  Et1Driver driver(&cluster, log_cfg, cfg);
  driver.Start();
  cluster.sim().RunFor(3 * sim::kSecond);
  EXPECT_FALSE(driver.started());
  for (int s = 1; s <= 3; ++s) cluster.server(s).Restart();
  cluster.sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(driver.started());
  EXPECT_GT(driver.committed(), 0u);
}

}  // namespace
}  // namespace dlog::harness
