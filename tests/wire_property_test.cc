// Parameterized sweep of the transport under adverse network conditions:
// across loss/duplication rates and window sizes, every payload that the
// (non-retransmitting) transport delivers arrives exactly once and in
// recognizable form, and RPCs with enough retries always complete.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "net/network.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "wire/connection.h"
#include "wire/messages.h"
#include "wire/rpc.h"

namespace dlog::wire {
namespace {

class WireSweep
    : public ::testing::TestWithParam<
          std::tuple<double /*loss*/, double /*dup*/, int /*window*/>> {};

TEST_P(WireSweep, AtMostOnceDeliveryAndNoDuplicates) {
  const auto [loss, dup, window] = GetParam();

  sim::Simulator sim;
  net::NetworkConfig net_cfg;
  net_cfg.loss_probability = loss;
  net_cfg.duplicate_probability = dup;
  net_cfg.seed = 42 + static_cast<uint64_t>(loss * 100) +
                 static_cast<uint64_t>(dup * 10) + window;
  net::Network network(&sim, net_cfg);

  WireConfig wire_cfg;
  wire_cfg.window_packets = window;
  wire_cfg.allocation_override_delay = 2 * sim::kSecond;

  sim::Cpu cpu_a(&sim, 100.0), cpu_b(&sim, 100.0);
  net::Nic nic_a(&sim, 64), nic_b(&sim, 64);
  network.Attach(1, &nic_a);
  network.Attach(2, &nic_b);
  Endpoint a(&sim, &cpu_a, 1, wire_cfg);
  Endpoint b(&sim, &cpu_b, 2, wire_cfg);
  a.AttachNetwork(&network, &nic_a);
  b.AttachNetwork(&network, &nic_b);

  std::multiset<std::string> received;
  b.SetAcceptHandler([&](Connection* conn) {
    conn->SetMessageHandler([&](const SharedBytes& payload) {
      received.insert(ToString(payload));
    });
  });

  Connection* conn = a.Connect(2);
  sim.RunFor(10 * sim::kSecond);  // handshake may retry through loss
  if (!conn->IsEstablished()) GTEST_SKIP() << "handshake lost repeatedly";

  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    conn->Send(ToBytes("msg-" + std::to_string(i)));
  }
  sim.RunFor(120 * sim::kSecond);

  // Exactly-once for everything that survived: no duplicates, and each
  // received payload is one of ours.
  std::set<std::string> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size()) << "duplicate delivery";
  for (const std::string& payload : unique) {
    EXPECT_EQ(payload.rfind("msg-", 0), 0u);
  }
  if (loss == 0.0) {
    EXPECT_EQ(received.size(), static_cast<size_t>(kMessages));
  } else {
    EXPECT_GT(received.size(), static_cast<size_t>(kMessages) / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WireSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.2),  // loss
                       ::testing::Values(0.0, 0.1, 0.5),   // duplication
                       ::testing::Values(2, 8, 32)));      // window

class RpcSweep : public ::testing::TestWithParam<double> {};

TEST_P(RpcSweep, CallsCompleteWithEnoughRetries) {
  const double loss = GetParam();
  sim::Simulator sim;
  net::NetworkConfig net_cfg;
  net_cfg.loss_probability = loss;
  net_cfg.seed = 7 + static_cast<uint64_t>(loss * 1000);
  net::Network network(&sim, net_cfg);
  sim::Cpu cpu_a(&sim, 100.0), cpu_b(&sim, 100.0);
  net::Nic nic_a(&sim, 64), nic_b(&sim, 64);
  network.Attach(1, &nic_a);
  network.Attach(2, &nic_b);
  Endpoint a(&sim, &cpu_a, 1, WireConfig{});
  Endpoint b(&sim, &cpu_b, 2, WireConfig{});
  a.AttachNetwork(&network, &nic_a);
  b.AttachNetwork(&network, &nic_b);

  Connection* accepted = nullptr;
  b.SetAcceptHandler([&](Connection* conn) {
    accepted = conn;
    conn->SetMessageHandler([&](const SharedBytes& payload) {
      auto env = DecodeEnvelope(payload);
      if (env.ok() && env->type == MessageType::kIntervalListReq) {
        accepted->Send(EncodeIntervalListResp({}, env->rpc_id));
      }
    });
  });
  Connection* conn = a.Connect(2);
  sim.RunFor(10 * sim::kSecond);
  ASSERT_TRUE(conn->IsEstablished());

  RpcClient rpc(&sim, conn);
  conn->SetMessageHandler([&](const SharedBytes& payload) {
    auto env = DecodeEnvelope(payload);
    if (env.ok()) rpc.HandleResponse(*env);
  });
  RpcClient::CallOptions opts;
  opts.timeout = 200 * sim::kMillisecond;
  opts.max_attempts = 60;
  int completed = 0;
  for (int i = 0; i < 25; ++i) {
    rpc.Call(
        [](uint64_t id) { return EncodeIntervalListReq({1}, id); }, opts,
        [&](Result<Envelope> env) {
          if (env.ok()) ++completed;
        });
  }
  sim.RunFor(300 * sim::kSecond);
  EXPECT_EQ(completed, 25);
}

INSTANTIATE_TEST_SUITE_P(LossRates, RpcSweep,
                         ::testing::Values(0.0, 0.1, 0.3));

}  // namespace
}  // namespace dlog::wire
