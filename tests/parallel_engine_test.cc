// The sharded parallel engine's contract: a run is byte-identical at
// any worker count, and — with predicate waits quantized — identical to
// the serial engine. Covers the window-boundary edge cases (events
// exactly at the window edge, cross-shard Cancel of a mailboxed
// injection) at the engine level, then full-cluster identity on
// miniature versions of the E10 (Markov faults + probe lifecycle) and
// E16 (Et1 drivers under load) experiments.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace dlog {
namespace {

constexpr sim::Duration kLookahead = 50;  // microticks, like the LAN

// ---------------------------------------------------------------------
// Engine-level: a synthetic multi-node workload written against the
// Scheduler interface, so the same generator runs on the serial engine
// (every handle is the one Simulator) and on the parallel engine (one
// handle per shard).

struct SyntheticNode {
  sim::Scheduler* sched = nullptr;
  std::vector<SyntheticNode*>* peers = nullptr;
  int id = 0;
  int steps_left = 0;
  /// (time, tag) execution log. Strictly node-local: every append runs
  /// on this node's scheduler, so shard execution needs no locking.
  std::vector<std::pair<sim::Time, int>> log;

  void Step() {
    log.emplace_back(sched->Now(), id);
    if (--steps_left <= 0) return;
    // Local chain with period 100; every third step pokes the next node
    // with a cross-shard injection at delay 51 (>= lookahead 50) — the
    // +1 keeps injected times off the local grid so local and injected
    // events never tie.
    sched->After(100, [this]() { Step(); });
    if (steps_left % 3 == 0) {
      SyntheticNode* peer =
          (*peers)[static_cast<size_t>(id + 1) % peers->size()];
      peer->sched->At(sched->Now() + kLookahead + 1,
                      [peer]() { peer->Poked(); });
    }
  }

  void Poked() { log.emplace_back(sched->Now(), -id - 1); }
};

using NodeLogs = std::vector<std::vector<std::pair<sim::Time, int>>>;

NodeLogs RunSynthetic(int num_nodes, int steps, int workers) {
  std::unique_ptr<sim::Simulator> serial;
  std::unique_ptr<sim::ParallelSimulator> parallel;
  std::vector<sim::Scheduler*> handles;
  if (workers == 0) {
    serial = std::make_unique<sim::Simulator>();
    for (int i = 0; i < num_nodes; ++i) handles.push_back(serial.get());
  } else {
    sim::ParallelConfig pc;
    pc.num_workers = workers;
    pc.lookahead = kLookahead;
    parallel = std::make_unique<sim::ParallelSimulator>(pc);
    for (int i = 0; i < num_nodes; ++i) {
      handles.push_back(parallel->shard(parallel->AddShard()));
    }
  }
  std::vector<std::unique_ptr<SyntheticNode>> nodes;
  std::vector<SyntheticNode*> node_ptrs;
  for (int i = 0; i < num_nodes; ++i) {
    auto node = std::make_unique<SyntheticNode>();
    node->sched = handles[static_cast<size_t>(i)];
    node->peers = &node_ptrs;
    node->id = i;
    node->steps_left = steps;
    node_ptrs.push_back(node.get());
    nodes.push_back(std::move(node));
  }
  for (auto& node : nodes) {
    // Stagger starts so shards are never empty-queued in lockstep.
    node->sched->At(static_cast<sim::Time>(node->id),
                    [n = node.get()]() { n->Step(); });
  }
  if (serial) {
    serial->Run();
  } else {
    parallel->Run();
  }
  NodeLogs logs;
  for (auto& n : nodes) logs.push_back(std::move(n->log));
  return logs;
}

TEST(ParallelEngineTest, MatchesSerialOnSyntheticWorkload) {
  const NodeLogs serial = RunSynthetic(5, 30, /*workers=*/0);
  const NodeLogs parallel = RunSynthetic(5, 30, /*workers=*/2);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEngineTest, ByteIdenticalAcrossWorkerCounts) {
  const NodeLogs one = RunSynthetic(6, 40, /*workers=*/1);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(one, RunSynthetic(6, 40, workers))
        << "diverged at " << workers << " workers";
  }
}

TEST(ParallelEngineTest, EventsExecutedAndPendingAggregate) {
  sim::ParallelConfig pc;
  pc.num_workers = 2;
  pc.lookahead = kLookahead;
  sim::ParallelSimulator engine(pc);
  sim::Scheduler* a = engine.shard(engine.AddShard());
  sim::Scheduler* b = engine.shard(engine.AddShard());
  int ran = 0;
  a->At(10, [&]() { ++ran; });
  b->At(20, [&]() { ++ran; });
  b->At(500, [&]() { ++ran; });
  EXPECT_EQ(engine.pending_events(), 3u);
  engine.RunUntil(100);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.Now(), 100);
  EXPECT_EQ(engine.events_executed(), 2u);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.Run();
  EXPECT_EQ(ran, 3);
}

// An event landing exactly at the window edge W + lookahead belongs to
// the *next* window; an injection aimed exactly at the edge is legal
// (the lookahead contract is ">= window end") and must merge after the
// target's own event at the same time, matching the serial engine's
// insertion order (the local event was scheduled first).
TEST(ParallelEngineTest, WindowEdgeEventOrdering) {
  sim::ParallelConfig pc;
  pc.num_workers = 2;
  pc.lookahead = kLookahead;
  sim::ParallelSimulator engine(pc);
  sim::Scheduler* a = engine.shard(engine.AddShard());
  sim::Scheduler* b = engine.shard(engine.AddShard());

  std::vector<int> order;
  // Shard B's own event at exactly t = 50 (= 0 + lookahead, the first
  // window is [0, 49]).
  b->At(kLookahead, [&]() { order.push_back(1); });
  // Shard A, executing at t = 0, injects into B at exactly t = 50.
  a->At(0, [&, b]() { b->At(kLookahead, [&]() { order.push_back(2); }); });
  // And an event at the last covered tick of the window, t = 49,
  // injecting at the minimum legal distance 49 + 50 = 99.
  a->At(kLookahead - 1,
        [&, b]() { b->At(99, [&]() { order.push_back(3); }); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.Now(), 99);
}

TEST(ParallelEngineTest, CrossShardCancelBeforeBarrier) {
  sim::ParallelConfig pc;
  pc.num_workers = 2;
  pc.lookahead = kLookahead;
  sim::ParallelSimulator engine(pc);
  sim::Scheduler* a = engine.shard(engine.AddShard());
  sim::Scheduler* b = engine.shard(engine.AddShard());

  bool injected_ran = false;
  sim::EventId id = 0;
  // t = 0: inject into B at t = 100; t = 10, same window on the same
  // shard: cancel it. The injection is still mailboxed, so the cancel
  // must succeed and the callback must never run.
  a->At(0, [&, b]() {
    id = b->At(100, [&]() { injected_ran = true; });
    EXPECT_NE(id, 0u);
  });
  bool cancel_ok = false;
  a->At(10, [&, b]() { cancel_ok = b->Cancel(id); });
  engine.Run();
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(injected_ran);
}

TEST(ParallelEngineTest, CrossShardCancelAfterBarrierFails) {
  sim::ParallelConfig pc;
  pc.num_workers = 2;
  pc.lookahead = kLookahead;
  sim::ParallelSimulator engine(pc);
  sim::Scheduler* a = engine.shard(engine.AddShard());
  sim::Scheduler* b = engine.shard(engine.AddShard());

  bool injected_ran = false;
  sim::EventId id = 0;
  a->At(0, [&, b]() { id = b->At(200, [&]() { injected_ran = true; }); });
  // t = 60 is past the first barrier: the injection has been handed to
  // shard B, so the source can no longer cancel it.
  bool cancel_ok = true;
  a->At(60, [&, b]() { cancel_ok = b->Cancel(id); });
  engine.Run();
  EXPECT_FALSE(cancel_ok);
  EXPECT_TRUE(injected_ran);
}

TEST(ParallelEngineTest, QuiescentSchedulingAndCancel) {
  sim::ParallelConfig pc;
  pc.num_workers = 1;
  pc.lookahead = kLookahead;
  sim::ParallelSimulator engine(pc);
  sim::Scheduler* a = engine.shard(engine.AddShard());
  // No window is executing: At/Cancel behave exactly like the serial
  // engine, including sub-lookahead times.
  bool ran = false;
  sim::EventId id = a->At(1, [&]() { ran = true; });
  EXPECT_TRUE(a->Cancel(id));
  EXPECT_FALSE(a->Cancel(id));
  engine.Run();
  EXPECT_FALSE(ran);
}

TEST(ParallelConfigTest, Validate) {
  sim::ParallelConfig pc;
  pc.num_workers = 1;
  pc.lookahead = 1;
  EXPECT_TRUE(pc.Validate().ok());
  pc.num_workers = 0;
  EXPECT_FALSE(pc.Validate().ok());
  pc.num_workers = 1;
  pc.lookahead = 0;
  EXPECT_FALSE(pc.Validate().ok());
}

TEST(ClusterConfigTest, ParallelValidation) {
  harness::ClusterConfig cfg;
  cfg.shard_workers = 2;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.tracing = true;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.tracing = false;
  cfg.profiling = true;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.profiling = false;
  cfg.network.propagation_delay = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = harness::ClusterConfig{};
  cfg.shard_workers = -1;
  EXPECT_FALSE(cfg.Validate().ok());
}

// ---------------------------------------------------------------------
// Cluster-level identity: the acceptance property behind the E10/E16
// byte-identical-JSON requirement, shrunk to test size. Each run is
// summarized as the full metrics snapshot text plus the driver-visible
// counts; the strings must match exactly between the serial engine and
// the parallel engine at every worker count.

harness::ClusterConfig EngineComparableConfig(int shard_workers) {
  harness::ClusterConfig cfg;
  cfg.shard_workers = shard_workers;
  // Quantize predicate waits identically in both modes so stopping
  // times depend only on the simulated schedule.
  cfg.run_until_quantum = cfg.network.propagation_delay;
  return cfg;
}

std::string RunMiniE16(int shard_workers) {
  harness::Cluster cluster(EngineComparableConfig(shard_workers));
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < 3; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<uint32_t>(i + 1);
    harness::Et1DriverConfig cfg;
    cfg.tps = 80.0;
    cfg.seed = 1600 + static_cast<uint64_t>(i);
    cfg.max_log_backlog = 32;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, cfg));
    drivers.back()->Start();
  }
  cluster.RunFor(3 * sim::kSecond);
  for (auto& d : drivers) d->Stop();
  cluster.RunFor(sim::kSecond);

  std::string sig = cluster.metrics().Snapshot(cluster.Now()).ToText();
  for (auto& d : drivers) {
    sig += "committed=" + std::to_string(d->committed()) +
           " failed=" + std::to_string(d->failed()) +
           " shed=" + std::to_string(d->txns_shed()) + "\n";
  }
  return sig;
}

TEST(ParallelClusterTest, MiniE16IdenticalAcrossEngines) {
  const std::string serial = RunMiniE16(/*shard_workers=*/0);
  for (int workers : {1, 2, 4, 8}) {
    EXPECT_EQ(serial, RunMiniE16(workers))
        << "diverged from serial at " << workers << " workers";
  }
}

std::string RunMiniE10(int shard_workers) {
  harness::ClusterConfig cluster_cfg = EngineComparableConfig(shard_workers);
  cluster_cfg.num_servers = 3;
  harness::Cluster cluster(cluster_cfg);

  client::LogClientConfig probe_cfg;
  probe_cfg.client_id = 1;
  probe_cfg.force_timeout = 300 * sim::kMillisecond;
  probe_cfg.force_retries = 2;
  probe_cfg.rpc_timeout = 150 * sim::kMillisecond;
  probe_cfg.rpc_attempts = 2;
  harness::ClientHandle writer = cluster.AddClient(probe_cfg);
  probe_cfg.client_id = 2;
  harness::ClientHandle initer = cluster.AddClient(probe_cfg);

  auto init_client = [&](harness::ClientHandle& c) {
    bool done = false, ok = false;
    c->Init([&](Status st) {
      ok = st.ok();
      done = true;
    });
    cluster.RunUntil([&]() { return done; }, 3 * sim::kSecond);
    return done && ok;
  };
  EXPECT_TRUE(init_client(writer));
  EXPECT_TRUE(init_client(initer));

  chaos::MarkovFaultConfig markov;
  markov.mttf = 8 * sim::kSecond;  // fast cycles: faults inside the run
  markov.mttr = 2 * sim::kSecond;
  markov.seed = 42;
  cluster.chaos().StartMarkov(markov);

  uint64_t write_ok = 0, init_ok = 0;
  for (int i = 0; i < 6; ++i) {
    Result<Lsn> lsn = writer->WriteLog(ToBytes("p" + std::to_string(i)));
    if (lsn.ok()) {
      bool done = false, ok = false;
      writer->ForceLog(*lsn, [&](Status st) {
        ok = st.ok();
        done = true;
      });
      cluster.RunUntil([&]() { return done; }, 3 * sim::kSecond);
      if (done && ok) ++write_ok;
    }
    cluster.CrashClient(initer);
    cluster.RestartClient(initer);
    if (init_client(initer)) ++init_ok;
    cluster.RunFor(2 * sim::kSecond);
  }
  cluster.chaos().StopMarkov();

  return cluster.metrics().Snapshot(cluster.Now()).ToText() +
         "write_ok=" + std::to_string(write_ok) +
         " init_ok=" + std::to_string(init_ok) + "\n";
}

TEST(ParallelClusterTest, MiniE10IdenticalAcrossEngines) {
  const std::string serial = RunMiniE10(/*shard_workers=*/0);
  for (int workers : {1, 4}) {
    EXPECT_EQ(serial, RunMiniE10(workers))
        << "diverged from serial at " << workers << " workers";
  }
}

}  // namespace
}  // namespace dlog
