#include <gtest/gtest.h>

#include <memory>

#include "baseline/duplexed_logger.h"
#include "sim/simulator.h"
#include "tp/bank.h"
#include "tp/engine.h"

namespace dlog::baseline {
namespace {

TEST(DuplexedLoggerTest, AppendForceRead) {
  sim::Simulator sim;
  DuplexedDiskLogger logger(&sim, DuplexedLogConfig{});
  Result<Lsn> l1 = logger.Append(ToBytes("one"));
  Result<Lsn> l2 = logger.Append(ToBytes("two"));
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);

  Status forced = Status::Internal("pending");
  logger.Force(2, [&](Status st) { forced = st; });
  sim.Run();
  EXPECT_TRUE(forced.ok());
  EXPECT_EQ(logger.stable_high(), 2u);

  Result<Bytes> read = Status::Internal("pending");
  logger.Read(1, [&](Result<Bytes> r) { read = std::move(r); });
  sim.Run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, ToBytes("one"));
}

TEST(DuplexedLoggerTest, ForcePaysRotationalLatency) {
  sim::Simulator sim;
  DuplexedLogConfig cfg;
  cfg.disk.rpm = 3600;  // 16.7 ms/rotation: write >= 25 ms
  DuplexedDiskLogger logger(&sim, cfg);
  ASSERT_TRUE(logger.Append(ToBytes("r")).ok());
  sim::Time done_at = 0;
  logger.Force(1, [&](Status) { done_at = sim.Now(); });
  sim.Run();
  EXPECT_GE(done_at, 20 * sim::kMillisecond);
}

TEST(DuplexedLoggerTest, BothDisksReceiveEveryTrack) {
  sim::Simulator sim;
  DuplexedDiskLogger logger(&sim, DuplexedLogConfig{});
  ASSERT_TRUE(logger.Append(ToBytes("mirrored")).ok());
  logger.Force(1, [](Status) {});
  sim.Run();
  EXPECT_TRUE(logger.disk(0).IsWritten(0));
  EXPECT_TRUE(logger.disk(1).IsWritten(0));
  EXPECT_EQ(*logger.disk(0).Peek(0), *logger.disk(1).Peek(0));
}

TEST(DuplexedLoggerTest, GroupCommitMergesConcurrentForces) {
  sim::Simulator sim;
  DuplexedLogConfig cfg;
  cfg.num_disks = 1;
  DuplexedDiskLogger logger(&sim, cfg);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    Result<Lsn> lsn = logger.Append(ToBytes("r" + std::to_string(i)));
    ASSERT_TRUE(lsn.ok());
    logger.Force(*lsn, [&](Status st) {
      EXPECT_TRUE(st.ok());
      ++completed;
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 10);
  // Far fewer track writes than forces: the second flush groups the
  // remaining nine records.
  EXPECT_LE(logger.tracks_written().value(), 3u);
}

TEST(DuplexedLoggerTest, CrashLosesUnforcedSuffix) {
  sim::Simulator sim;
  DuplexedDiskLogger logger(&sim, DuplexedLogConfig{});
  ASSERT_TRUE(logger.Append(ToBytes("stable")).ok());
  logger.Force(1, [](Status) {});
  sim.Run();
  ASSERT_TRUE(logger.Append(ToBytes("volatile")).ok());
  logger.Crash();
  EXPECT_EQ(logger.End(), 1u);
  EXPECT_EQ(logger.stable_high(), 1u);
}

// The same transaction engine runs unmodified on the baseline logger.
TEST(DuplexedLoggerTest, DrivesTransactionEngine) {
  sim::Simulator sim;
  DuplexedDiskLogger logger(&sim, DuplexedLogConfig{});
  tp::PageDisk disk(1024);
  tp::TransactionEngine engine(&sim, &logger, &disk, tp::EngineConfig{});
  tp::BankDb bank(&engine, tp::BankConfig{});

  Status result = Status::Internal("pending");
  bank.RunEt1(1, 1, 1, 77, [&](Status st) { result = st; });
  sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(bank.AccountBalance(1), 77);

  // Crash and recover on the baseline log.
  engine.Crash();
  logger.Crash();
  tp::TransactionEngine recovered(&sim, &logger, &disk, tp::EngineConfig{});
  Status rst = Status::Internal("pending");
  recovered.Recover([&](Status st) { rst = st; });
  sim.Run();
  ASSERT_TRUE(rst.ok());
  tp::BankDb bank_after(&recovered, tp::BankConfig{});
  EXPECT_EQ(bank_after.AccountBalance(1), 77);
}

}  // namespace
}  // namespace dlog::baseline
