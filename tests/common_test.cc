#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/log_types.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dlog {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing record");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing record");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").code() ==
              StatusCode::kInvalidArgument);
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Doubled(Result<int> in) {
  DLOG_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::Aborted("x")).status().IsAborted());
}

// --- Encoder / Decoder ---

TEST(BytesTest, RoundTripScalars) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutBool(true);
  enc.PutString("hello");

  Decoder dec(buf);
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU16(), 0x1234);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_EQ(*dec.GetString(), "hello");
  EXPECT_TRUE(dec.Done());
}

TEST(BytesTest, TruncatedDecodeFailsWithCorruption) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutU64(7);
  Decoder dec(buf.data(), 3);  // cut mid-integer
  Result<uint64_t> r = dec.GetU64();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(BytesTest, TruncatedBlobFails) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutBlob(ToBytes("abcdef"));
  Decoder dec(buf.data(), buf.size() - 2);
  EXPECT_FALSE(dec.GetBlob().ok());
}

TEST(BytesTest, EmptyBlobRoundTrip) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutBlob(Bytes{});
  Decoder dec(buf);
  Result<Bytes> r = dec.GetBlob();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// --- SharedBytes / zero-copy decode ---

TEST(SharedBytesTest, SharesStorageAcrossCopiesAndSlices) {
  SharedBytes whole(ToBytes("hello, world"));
  SharedBytes copy = whole;                 // shares, no byte copy
  SharedBytes slice = whole.Slice(7, 5);    // "world"
  EXPECT_EQ(copy.data(), whole.data());
  EXPECT_EQ(slice.data(), whole.data() + 7);
  EXPECT_EQ(slice.view(), "world");
  EXPECT_TRUE(slice == SharedBytes(ToBytes("world")));
  EXPECT_TRUE(slice != whole);
}

TEST(SharedBytesTest, SliceKeepsBufferAliveAfterParentDies) {
  SharedBytes slice;
  {
    SharedBytes whole(ToBytes("the quick brown fox"));
    slice = whole.Slice(4, 5);
  }
  // The owning buffer is refcounted; the slice must still be readable
  // after every other handle is gone (ASan guards this).
  EXPECT_EQ(slice.view(), "quick");
}

TEST(SharedBytesTest, CopyAndToBytesAreCounted) {
  ResetBytesCopied();
  SharedBytes a(ToBytes("0123456789"));  // move-in: not a copy
  SharedBytes b = a.Slice(2, 6);         // view: not a copy
  EXPECT_EQ(BytesCopied(), 0u);
  Bytes owned = b.ToBytes();  // materialization: counted
  EXPECT_EQ(owned.size(), 6u);
  EXPECT_EQ(BytesCopied(), 6u);
  SharedBytes c = SharedBytes::Copy(a.data(), a.size());  // counted
  EXPECT_EQ(BytesCopied(), 16u);
  EXPECT_TRUE(c == a);
  ResetBytesCopied();
}

TEST(SharedBytesTest, DecoderBlobViewIsZeroCopy) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutU32(7);
  enc.PutBlob(ToBytes("payload"));
  enc.PutBlob(Bytes{});
  SharedBytes wire(std::move(buf));

  ResetBytesCopied();
  Decoder dec(wire);
  ASSERT_TRUE(dec.GetU32().ok());
  Result<SharedBytes> blob = dec.GetBlobView();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->view(), "payload");
  // The view points into the wire buffer itself: zero bytes copied.
  EXPECT_EQ(blob->data(), wire.data() + 8);
  EXPECT_EQ(BytesCopied(), 0u);
  Result<SharedBytes> empty = dec.GetBlobView();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(dec.Done());
}

TEST(SharedBytesTest, DecoderBlobViewWithoutOwnerCopies) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutBlob(ToBytes("abc"));
  ResetBytesCopied();
  Decoder dec(buf);  // plain Bytes: lifetime unknown, so views must copy
  Result<SharedBytes> blob = dec.GetBlobView();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->view(), "abc");
  EXPECT_EQ(BytesCopied(), 3u);
  ResetBytesCopied();
}

TEST(SharedBytesTest, GetStringCountsOneCopy) {
  Bytes buf;
  Encoder enc(&buf);
  enc.PutString("twelve bytes");
  ResetBytesCopied();
  Decoder dec(buf);
  Result<std::string> s = dec.GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "twelve bytes");
  // Exactly one copy: the materialization itself (the old implementation
  // built a temporary Bytes first, paying twice).
  EXPECT_EQ(BytesCopied(), 12u);
  ResetBytesCopied();
}

// --- CRC32C ---

TEST(Crc32cTest, KnownVector) {
  // Standard CRC-32C check value for "123456789".
  const Bytes data = ToBytes("123456789");
  EXPECT_EQ(crc32c::Value(data), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const Bytes data = ToBytes("distributed logging");
  uint32_t whole = crc32c::Value(data);
  uint32_t part = crc32c::Extend(0, data.data(), 5);
  part = crc32c::Extend(part, data.data() + 5, data.size() - 5);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, DetectsBitFlip) {
  Bytes data = ToBytes("log record payload");
  const uint32_t before = crc32c::Value(data);
  data[4] ^= 0x01;
  EXPECT_NE(before, crc32c::Value(data));
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kTrials, 2.0, 0.1);
}

// --- Interval / MergedLogView ---

TEST(LogTypesTest, IntervalContains) {
  Interval iv{3, 5, 9};
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_TRUE(iv.Contains(9));
  EXPECT_FALSE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(10));
}

TEST(LogTypesTest, IntervalListToStringFormats) {
  IntervalList list = {{1, 1, 3}, {3, 3, 9}};
  EXPECT_EQ(IntervalListToString(list), "[(<1,1> <3,1>) (<3,3> <9,3>)]");
}

TEST(MergedLogViewTest, EmptyInput) {
  MergedLogView view = MergedLogView::Build({});
  EXPECT_FALSE(view.HighLsn().has_value());
  EXPECT_EQ(view.Find(1), nullptr);
}

TEST(MergedLogViewTest, SingleServerSingleInterval) {
  MergedLogView view = MergedLogView::Build({{7, {2, 1, 5}}});
  ASSERT_TRUE(view.HighLsn().has_value());
  EXPECT_EQ(*view.HighLsn(), 5u);
  const auto* seg = view.Find(3);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->epoch, 2u);
  EXPECT_EQ(seg->servers, std::vector<ServerId>{7});
}

// The Figure 3-1 configuration: three servers, the merge must keep only
// the highest-epoch entry per LSN and remember every holder of it.
TEST(MergedLogViewTest, Figure31Merge) {
  std::vector<ServerInterval> intervals = {
      {1, {1, 1, 3}}, {1, {3, 3, 9}},   // server 1
      {2, {1, 1, 3}}, {2, {3, 6, 7}},   // server 2
      {3, {3, 3, 5}}, {3, {3, 8, 9}},   // server 3
  };
  MergedLogView view = MergedLogView::Build(intervals);

  ASSERT_EQ(view.segments().size(), 4u);
  // LSNs 1-2 win at epoch 1 (LSN 3 is superseded by epoch 3).
  EXPECT_EQ(view.segments()[0],
            (MergedLogView::Segment{1, 2, 1, {1, 2}}));
  EXPECT_EQ(view.segments()[1],
            (MergedLogView::Segment{3, 5, 3, {1, 3}}));
  EXPECT_EQ(view.segments()[2],
            (MergedLogView::Segment{6, 7, 3, {1, 2}}));
  EXPECT_EQ(view.segments()[3],
            (MergedLogView::Segment{8, 9, 3, {1, 3}}));
  EXPECT_EQ(*view.HighLsn(), 9u);
  EXPECT_EQ(*view.HighEpoch(), 3u);
  EXPECT_EQ(*view.MaxEpoch(), 3u);
}

TEST(MergedLogViewTest, FindBinarySearch) {
  MergedLogView view = MergedLogView::Build({
      {1, {1, 1, 10}},
      {2, {2, 11, 20}},
      {3, {3, 21, 30}},
  });
  EXPECT_EQ(view.Find(1)->epoch, 1u);
  EXPECT_EQ(view.Find(15)->epoch, 2u);
  EXPECT_EQ(view.Find(30)->epoch, 3u);
  EXPECT_EQ(view.Find(31), nullptr);
}

TEST(MergedLogViewTest, NoteWriteExtendsTail) {
  MergedLogView view;
  view.NoteWrite(1, 5, {1, 2});
  view.NoteWrite(2, 5, {1, 2});
  view.NoteWrite(3, 5, {2, 1});  // holder order normalized
  ASSERT_EQ(view.segments().size(), 1u);
  EXPECT_EQ(view.segments()[0],
            (MergedLogView::Segment{1, 3, 5, {1, 2}}));
}

TEST(MergedLogViewTest, NoteWriteNewServersSplitsSegment) {
  MergedLogView view;
  view.NoteWrite(1, 5, {1, 2});
  view.NoteWrite(2, 5, {1, 2});
  view.NoteWrite(3, 5, {1, 3});  // switched servers
  ASSERT_EQ(view.segments().size(), 2u);
  EXPECT_EQ(view.segments()[1],
            (MergedLogView::Segment{3, 3, 5, {1, 3}}));
}

// Recovery copies the tail record under a new epoch: the note must
// supersede the old coverage of that LSN.
TEST(MergedLogViewTest, NoteWriteHigherEpochOverridesInterior) {
  MergedLogView view = MergedLogView::Build({{1, {3, 1, 9}}});
  view.NoteWrite(9, 4, {1, 2});
  view.NoteWrite(10, 4, {1, 2});
  const auto* seg = view.Find(9);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->epoch, 4u);
  EXPECT_EQ(seg->servers, (std::vector<ServerId>{1, 2}));
  EXPECT_EQ(view.Find(8)->epoch, 3u);
  EXPECT_EQ(*view.HighLsn(), 10u);
}

TEST(MergedLogViewTest, NoteWriteLowerEpochIsIgnored) {
  MergedLogView view = MergedLogView::Build({{1, {5, 1, 9}}});
  view.NoteWrite(4, 3, {9});
  EXPECT_EQ(view.Find(4)->epoch, 5u);
  EXPECT_EQ(view.Find(4)->servers, (std::vector<ServerId>{1}));
}

TEST(MergedLogViewTest, EqualEpochOverlapKeepsAllHolders) {
  MergedLogView view = MergedLogView::Build({
      {1, {3, 1, 5}},
      {2, {3, 4, 8}},
  });
  EXPECT_EQ(view.Find(4)->servers, (std::vector<ServerId>{1, 2}));
  EXPECT_EQ(view.Find(2)->servers, (std::vector<ServerId>{1}));
  EXPECT_EQ(view.Find(7)->servers, (std::vector<ServerId>{2}));
}

}  // namespace
}  // namespace dlog
