#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/trial_runner.h"
#include "obs/bench_report.h"
#include "sim/simulator.h"

namespace dlog::harness {
namespace {

// One self-contained deterministic trial: a small simulation whose result
// depends only on the seed. Mirrors how E10 decomposes its probe budget.
uint64_t RunTrial(size_t trial) {
  sim::Simulator sim;
  Rng rng(1000 + 7 * static_cast<uint64_t>(trial + 1));
  uint64_t sum = 0;
  for (int i = 0; i < 200; ++i) {
    sim.After(1 + rng.NextBelow(50), [&sum, &rng]() {
      sum += rng.NextBelow(1000);
    });
  }
  sim.Run();
  return sum;
}

TEST(TrialRunnerTest, SerialAndParallelResultsAreIdentical) {
  constexpr size_t kTrials = 16;
  TrialRunner serial(1);
  std::vector<uint64_t> base = serial.Run(kTrials, RunTrial);
  ASSERT_EQ(base.size(), kTrials);
  for (size_t threads : {2u, 4u, 8u}) {
    TrialRunner runner(threads);
    EXPECT_EQ(runner.Run(kTrials, RunTrial), base)
        << "results diverged at " << threads << " threads";
  }
}

TEST(TrialRunnerTest, ResultsIndexedByTrialNotCompletionOrder) {
  TrialRunner runner(4);
  std::vector<size_t> out = runner.Run(32, [](size_t trial) {
    // Uneven per-trial work so completion order differs from trial order.
    volatile size_t spin = 0;
    for (size_t i = 0; i < (trial % 5) * 10000; ++i) spin = spin + i;
    return trial;
  });
  ASSERT_EQ(out.size(), 32u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(TrialRunnerTest, MoreThreadsThanTrialsIsFine) {
  TrialRunner runner(8);
  std::vector<size_t> out = runner.Run(3, [](size_t t) { return t * t; });
  EXPECT_EQ(out, (std::vector<size_t>{0, 1, 4}));
}

TEST(TrialRunnerTest, ZeroTrialsReturnsEmpty) {
  TrialRunner runner(4);
  EXPECT_TRUE(runner.Run(0, [](size_t t) { return t; }).empty());
}

TEST(TrialRunnerTest, AggregatedReportIsByteIdenticalAcrossThreadCounts) {
  // The E10 contract: a BenchReport built by merging per-trial results in
  // trial order serialises to the same bytes no matter the thread count.
  auto build_report = [](size_t threads) {
    TrialRunner runner(threads);
    std::vector<uint64_t> sums = runner.Run(8, RunTrial);
    uint64_t total = 0;
    for (uint64_t s : sums) total += s;
    obs::BenchReport report("trial_runner_identity");
    report.BeginRow();
    report.SetConfig("trials", 8.0);
    report.SetMetric("total", static_cast<double>(total));
    report.SetMetric("first", static_cast<double>(sums.front()));
    report.SetMetric("last", static_cast<double>(sums.back()));
    return report.ToJson();
  };
  const std::string serial = build_report(1);
  EXPECT_EQ(build_report(2), serial);
  EXPECT_EQ(build_report(8), serial);
}

}  // namespace
}  // namespace dlog::harness
