// Section 5.3 log space management: checkpoint-driven truncation of the
// online log, from the store level up through the full stack.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "server/client_log_store.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"

namespace dlog {
namespace {

using server::ClientLogStore;

LogRecord Rec(Lsn lsn, Epoch epoch) {
  LogRecord r;
  r.lsn = lsn;
  r.epoch = epoch;
  r.data = ToBytes("d");
  return r;
}

TEST(TruncationStoreTest, DropsRecordsAndClipsIntervals) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 10; ++l) ASSERT_TRUE(store.Write(Rec(l, 1)).ok());
  EXPECT_EQ(store.TruncateBelow(6), 5u);
  EXPECT_EQ(store.record_count(), 5u);
  EXPECT_EQ(store.Intervals(), (IntervalList{{1, 6, 10}}));
  EXPECT_TRUE(store.Read(5).status().IsNotFound());
  EXPECT_TRUE(store.Read(6).ok());
  // Writes continue at the tail.
  EXPECT_TRUE(store.Write(Rec(11, 1)).ok());
  EXPECT_EQ(store.HighestLsn(), 11u);
}

TEST(TruncationStoreTest, TruncatingNothingIsFree) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(5, 1)).ok());
  EXPECT_EQ(store.TruncateBelow(3), 0u);
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(TruncationStoreTest, SpansMultipleIntervals) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(2, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(5, 1)).ok());  // gap
  ASSERT_TRUE(store.Write(Rec(6, 1)).ok());
  EXPECT_EQ(store.TruncateBelow(6), 3u);
  EXPECT_EQ(store.Intervals(), (IntervalList{{1, 6, 6}}));
}

// --- Full stack ---

using client::LogClientConfig;
using harness::Cluster;
using harness::ClusterConfig;

struct StackFixture {
  StackFixture() : cluster(ClusterConfig{}) {
    LogClientConfig cfg;
    cfg.client_id = 1;
    cfg.delta = 4;
    log = cluster.AddClient(cfg);
    bool ready = false;
    log->Init([&](Status st) { ready = st.ok(); });
    cluster.RunUntil([&]() { return ready; });
    EXPECT_TRUE(log->IsInitialized());
  }

  void WriteForced(int n) {
    Lsn last = kNoLsn;
    for (int i = 0; i < n; ++i) {
      auto lsn = log->WriteLog(ToBytes("x" + std::to_string(i)));
      ASSERT_TRUE(lsn.ok());
      last = *lsn;
    }
    bool done = false;
    log->ForceLog(last, [&](Status st) {
      EXPECT_TRUE(st.ok());
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }

  size_t TotalLiveRecords() {
    cluster.sim().RunFor(sim::kSecond);  // let truncations propagate
    size_t live = 0;
    for (int s = 1; s <= 3; ++s) live += cluster.server(s).LiveRecordsOf(1);
    return live;
  }

  Cluster cluster;
  harness::ClientHandle log;
};

TEST(TruncationSystemTest, ShrinksOnlineLog) {
  StackFixture f;
  f.WriteForced(40);
  const size_t before = f.TotalLiveRecords();
  const Lsn applied = f.log->TruncateLog(30);
  EXPECT_GT(applied, 1u);
  const size_t after = f.TotalLiveRecords();
  EXPECT_LT(after, before);
  // The recovery window (δ) and tail always survive.
  EXPECT_GE(after, 2u * f.log->view().segments().back().servers.size());
}

TEST(TruncationSystemTest, ClampKeepsRecoveryWindow) {
  StackFixture f;
  f.WriteForced(20);
  // Ask to truncate everything; the client must keep the last δ records.
  const Lsn applied = f.log->TruncateLog(1000);
  EXPECT_LE(applied, 20u - 4 + 1);
  f.cluster.sim().RunFor(sim::kSecond);
  // Restart recovery still works.
  f.cluster.CrashClient(f.log);
  f.cluster.RestartClient(f.log);
  auto log2 = f.log;
  bool ready = false;
  log2->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(f.cluster.RunUntil([&]() { return ready; }));
  EXPECT_GE(log2->EndOfLog(), 20u);
}

TEST(TruncationSystemTest, MarkSurvivesServerRestart) {
  StackFixture f;
  f.WriteForced(30);
  ASSERT_GT(f.log->TruncateLog(20), 1u);
  f.cluster.sim().RunFor(sim::kSecond);
  const size_t before = f.TotalLiveRecords();

  for (int s = 1; s <= 3; ++s) f.cluster.server(s).Crash();
  f.cluster.sim().RunFor(100 * sim::kMillisecond);
  for (int s = 1; s <= 3; ++s) f.cluster.server(s).Restart();

  // The disk scan must not resurrect the truncated prefix.
  size_t after = 0;
  for (int s = 1; s <= 3; ++s) after += f.cluster.server(s).LiveRecordsOf(1);
  EXPECT_EQ(after, before);
}

TEST(TruncationSystemTest, ReadableRangeFollowsTruncation) {
  StackFixture f;
  f.WriteForced(25);
  const Lsn applied = f.log->TruncateLog(10);
  ASSERT_EQ(applied, 10u);
  f.cluster.sim().RunFor(sim::kSecond);

  bool done = false;
  Result<Bytes> r = Status::Internal("never");
  f.log->ReadLog(5, [&](Result<Bytes> got) {
    r = std::move(got);
    done = true;
  });
  ASSERT_TRUE(f.cluster.RunUntil([&]() { return done; }));
  EXPECT_TRUE(r.status().IsNotFound());

  done = false;
  f.log->ReadLog(15, [&](Result<Bytes> got) {
    r = std::move(got);
    done = true;
  });
  ASSERT_TRUE(f.cluster.RunUntil([&]() { return done; }));
  EXPECT_TRUE(r.ok());
}

// --- Engine checkpoint-driven truncation ---

TEST(TruncationEngineTest, CheckpointTruncatesReplicatedLog) {
  ClusterConfig cluster_cfg;
  Cluster cluster(cluster_cfg);
  LogClientConfig log_cfg;
  log_cfg.client_id = 7;
  log_cfg.delta = 4;
  auto log = cluster.AddClient(log_cfg);
  bool ready = false;
  log->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));

  tp::ReplicatedTxnLogger logger(log.get());
  tp::PageDisk disk(1024);
  tp::EngineConfig cfg;
  cfg.truncate_after_checkpoint = true;
  tp::TransactionEngine engine(&cluster.sim(), &logger, &disk, cfg);
  tp::BankDb bank(&engine, tp::BankConfig{});

  for (int i = 0; i < 20; ++i) {
    bool done = false;
    bank.RunEt1(i, i % 10, i % 5, 10, [&](Status st) {
      EXPECT_TRUE(st.ok());
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }
  size_t live_before = 0;
  cluster.sim().RunFor(sim::kSecond);
  for (int s = 1; s <= 3; ++s) live_before += cluster.server(s).LiveRecordsOf(7);

  bool cleaned = false;
  engine.CleanPages([&](Status st) {
    EXPECT_TRUE(st.ok());
    cleaned = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return cleaned; }));
  cluster.sim().RunFor(sim::kSecond);

  size_t live_after = 0;
  for (int s = 1; s <= 3; ++s) live_after += cluster.server(s).LiveRecordsOf(7);
  EXPECT_LT(live_after, live_before / 4);  // online log collapsed

  // And the bank still recovers correctly afterwards.
  engine.Crash();
  cluster.CrashClient(log);
  cluster.RestartClient(log);
  auto log2 = log;
  ready = false;
  for (int attempt = 0; attempt < 5 && !ready; ++attempt) {
    bool done = false;
    log2->Init([&](Status st) {
      ready = st.ok();
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }
  ASSERT_TRUE(ready);
  tp::ReplicatedTxnLogger logger2(log2.get());
  tp::TransactionEngine recovered(&cluster.sim(), &logger2, &disk,
                                  tp::EngineConfig{});
  bool rec_done = false;
  Status rec_st;
  recovered.Recover([&](Status st) {
    rec_st = st;
    rec_done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return rec_done; },
                               120 * sim::kSecond));
  ASSERT_TRUE(rec_st.ok());
  tp::BankDb bank_after(&recovered, tp::BankConfig{});
  EXPECT_EQ(bank_after.TotalAccounts(), 200);
}

}  // namespace
}  // namespace dlog
