// Tests of the src/chaos fault-injection subsystem: plan building,
// controller execution against a live cluster (with idempotence guards
// and per-fault spans/counters), the dual-LAN partition capability,
// Markov crash/repair sampling of the paper's per-server down
// probability p, and byte-for-byte determinism of a faulted run's
// exported artifacts.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/controller.h"
#include "chaos/fault_plan.h"
#include "harness/cluster.h"
#include "obs/bench_report.h"
#include "obs/export.h"

namespace dlog {
namespace {

Status InitClient(harness::Cluster& cluster, client::LogClient& log) {
  Status result = Status::Internal("pending");
  bool done = false;
  log.Init([&](Status st) {
    result = st;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::Internal("Init did not complete");
  }
  return result;
}

Status ForceAll(harness::Cluster& cluster, client::LogClient& log,
                Lsn lsn) {
  Status result = Status::Internal("pending");
  bool done = false;
  log.ForceLog(lsn, [&](Status st) {
    result = st;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::Internal("ForceLog did not complete");
  }
  return result;
}

TEST(FaultPlanTest, BuilderRecordsTypedEventsInOrder) {
  chaos::FaultPlan plan;
  plan.CrashServer(2 * sim::kSecond, 1)
      .Partition(3 * sim::kSecond, 0, {{1, 2}, {3, 1000}})
      .DegradeLink(4 * sim::kSecond, 0, 1000, 1,
                   net::LinkFault{0.5, 2 * sim::kMillisecond})
      .Heal(6 * sim::kSecond, 0)
      .RestoreLink(7 * sim::kSecond, 0, 1000, 1)
      .RestartServer(8 * sim::kSecond, 1)
      .CrashClient(9 * sim::kSecond, 0)
      .RestartClient(10 * sim::kSecond, 0)
      .FailDisk(11 * sim::kSecond, 2)
      .LoseNvram(12 * sim::kSecond, 3);
  ASSERT_EQ(plan.size(), 10u);
  EXPECT_EQ(plan.events()[0].type, chaos::FaultType::kServerCrash);
  EXPECT_EQ(plan.events()[0].target, 1);
  EXPECT_EQ(plan.events()[1].groups.size(), 2u);
  EXPECT_EQ(plan.events()[2].link.extra_loss, 0.5);
  EXPECT_EQ(plan.events()[9].at, 12 * sim::kSecond);
  EXPECT_EQ(chaos::FaultTypeName(chaos::FaultType::kServerCrash),
            "server_crash");
  EXPECT_EQ(chaos::FaultTypeName(chaos::FaultType::kNvramLoss),
            "nvram_loss");
}

TEST(MarkovFaultConfigTest, SteadyStateDownProbability) {
  chaos::MarkovFaultConfig cfg;  // 190s / 10s defaults
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_DOUBLE_EQ(cfg.SteadyStateDownProbability(), 0.05);
  cfg.mttf = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ChaosControllerTest, PlanDrivesClusterThroughCrashAndRestart) {
  harness::Cluster cluster(harness::ClusterConfig{});
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  chaos::FaultPlan plan;
  plan.CrashServer(1 * sim::kSecond, 1)
      .RestartServer(5 * sim::kSecond, 1);
  cluster.chaos().Execute(plan);

  cluster.sim().RunFor(2 * sim::kSecond);
  EXPECT_FALSE(cluster.server(1).IsUp());
  // N=2-of-3: commits keep flowing with one server down, and the down
  // NIC counts the traffic it swallowed.
  Lsn last = kNoLsn;
  for (int i = 0; i < 8; ++i) {
    Result<Lsn> lsn = c->WriteLog(ToBytes("during-crash"));
    ASSERT_TRUE(lsn.ok());
    last = *lsn;
  }
  ASSERT_TRUE(ForceAll(cluster, *c, last).ok());
  // A down server's NIC swallows (and counts) whatever still reaches it.
  net::Packet probe;
  probe.src = 1000;
  probe.dst = 1;
  probe.payload = ToBytes("probe");
  cluster.network(0).Send(probe);
  cluster.sim().RunFor(4 * sim::kSecond);
  EXPECT_TRUE(cluster.server(1).IsUp());
  EXPECT_GT(cluster.server(1).nic().down_drops().value(), 0u);
  EXPECT_EQ(cluster.chaos().server_crashes().value(), 1u);
  EXPECT_EQ(cluster.chaos().server_restarts().value(), 1u);
  EXPECT_EQ(cluster.chaos().faults_injected(), 2u);
}

TEST(ChaosControllerTest, InjectSkipsFaultsAgainstWrongStateTargets) {
  harness::Cluster cluster(harness::ClusterConfig{});
  chaos::ChaosController& chaos = cluster.chaos();

  chaos::FaultEvent restart_up;
  restart_up.type = chaos::FaultType::kServerRestart;
  restart_up.target = 1;
  chaos.Inject(restart_up);  // already up: skipped
  EXPECT_EQ(chaos.faults_injected(), 0u);

  chaos::FaultEvent crash;
  crash.type = chaos::FaultType::kServerCrash;
  crash.target = 1;
  chaos.Inject(crash);
  chaos.Inject(crash);  // already down: skipped
  EXPECT_EQ(chaos.faults_injected(), 1u);
  EXPECT_EQ(chaos.server_crashes().value(), 1u);

  chaos::FaultEvent bogus;
  bogus.type = chaos::FaultType::kServerCrash;
  bogus.target = 99;  // no such server: skipped
  chaos.Inject(bogus);
  EXPECT_EQ(chaos.faults_injected(), 1u);
}

TEST(ChaosControllerTest, ClientFaultsCycleTheClusterOwnedNode) {
  harness::Cluster cluster(harness::ClusterConfig{});
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  chaos::FaultPlan plan;
  plan.CrashClient(1 * sim::kSecond, 0).RestartClient(2 * sim::kSecond, 0);
  cluster.chaos().Execute(plan);
  cluster.sim().RunFor(90 * sim::kSecond / 60);  // 1.5s
  EXPECT_FALSE(c->IsUp());
  cluster.sim().RunFor(1 * sim::kSecond);
  EXPECT_TRUE(c->IsUp());
  EXPECT_FALSE(c->IsInitialized());
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  EXPECT_TRUE(c->WriteLog(ToBytes("after-restart")).ok());
  EXPECT_EQ(cluster.chaos().client_crashes().value(), 1u);
  EXPECT_EQ(cluster.chaos().client_restarts().value(), 1u);
}

TEST(ChaosControllerTest, DiskFailAndNvramLossWipeAndStayDown) {
  harness::Cluster cluster(harness::ClusterConfig{});
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  Lsn last = kNoLsn;
  for (int i = 0; i < 4; ++i) last = *c->WriteLog(ToBytes("x"));
  ASSERT_TRUE(ForceAll(cluster, *c, last).ok());

  chaos::FaultPlan plan;
  plan.FailDisk(1 * sim::kSecond, 1).LoseNvram(1 * sim::kSecond, 2);
  cluster.chaos().Execute(plan);
  cluster.sim().RunFor(2 * sim::kSecond);
  EXPECT_FALSE(cluster.server(1).IsUp());
  EXPECT_FALSE(cluster.server(2).IsUp());
  EXPECT_EQ(cluster.chaos().disk_failures().value(), 1u);
  EXPECT_EQ(cluster.chaos().nvram_losses().value(), 1u);
  // They stay down until restarted; the wiped server comes back empty.
  cluster.server(1).Restart();
  cluster.server(2).Restart();
  EXPECT_TRUE(cluster.server(1).IsUp());
  EXPECT_TRUE(cluster.server(1).IntervalsOf(c->client_id()).empty());
}

// The dual-LAN partition capability: isolating the client from the
// servers on network 0 drops exactly that network's packets (counted),
// while the second LAN keeps the protocol available; partitioning both
// stalls it; healing restores it.
TEST(ChaosPartitionTest, DualLanPartitionFiltersDeliveryPerNetwork) {
  harness::ClusterConfig cfg;
  cfg.num_networks = 2;
  harness::Cluster cluster(cfg);
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  const std::vector<std::vector<net::NodeId>> split = {{1, 2, 3}, {1000}};
  chaos::FaultPlan plan;
  plan.Partition(0, 0, split);
  cluster.chaos().Execute(plan);
  cluster.sim().RunFor(100 * sim::kMillisecond);
  EXPECT_TRUE(cluster.network(0).HasPartition());
  EXPECT_TRUE(cluster.network(0).Partitioned(1000, 1));
  EXPECT_FALSE(cluster.network(0).Partitioned(1, 2));
  EXPECT_FALSE(cluster.network(1).HasPartition());

  // One LAN down: commits still go through (the endpoint spreads over
  // both networks; lost halves are retried), and network 0 counts drops.
  Lsn last = kNoLsn;
  for (int i = 0; i < 8; ++i) last = *c->WriteLog(ToBytes("one-lan"));
  EXPECT_TRUE(ForceAll(cluster, *c, last).ok());
  EXPECT_GT(cluster.network(0).packets_partition_dropped().value(), 0u);
  EXPECT_EQ(cluster.network(1).packets_partition_dropped().value(), 0u);

  // Both LANs partitioned: the client is fully isolated.
  chaos::FaultPlan cut_both;
  cut_both.Partition(0, 1, split);
  cluster.chaos().Execute(cut_both);
  cluster.sim().RunFor(100 * sim::kMillisecond);
  last = *c->WriteLog(ToBytes("isolated"));
  bool done = false;
  Status forced = Status::OK();
  c->ForceLog(last, [&](Status st) {
    forced = st;
    done = true;
  });
  cluster.sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(!done || !forced.ok());
  EXPECT_GT(cluster.network(1).packets_partition_dropped().value(), 0u);

  // Heal both: the log is reachable again.
  chaos::FaultPlan heal;
  heal.Heal(0, 0).Heal(0, 1);
  cluster.chaos().Execute(heal);
  EXPECT_TRUE(
      cluster.RunUntil([&]() { return done; }, 60 * sim::kSecond));
  EXPECT_FALSE(cluster.network(0).HasPartition());
  EXPECT_FALSE(cluster.network(1).HasPartition());
  EXPECT_EQ(cluster.chaos().partitions().value(), 2u);
  EXPECT_EQ(cluster.chaos().partition_heals().value(), 2u);
}

TEST(ChaosMarkovTest, TimeAverageDownFractionApproachesP) {
  harness::ClusterConfig cfg;
  cfg.num_servers = 3;
  harness::Cluster cluster(cfg);

  chaos::MarkovFaultConfig markov;
  markov.mttf = 19 * sim::kSecond;  // p = 1 / 20 = 0.05, fast cycles
  markov.mttr = 1 * sim::kSecond;
  markov.seed = 42;
  cluster.chaos().StartMarkov(markov);
  EXPECT_TRUE(cluster.chaos().MarkovRunning());

  uint64_t down_samples = 0;
  uint64_t samples = 0;
  for (int i = 0; i < 8000; ++i) {
    cluster.sim().RunFor(500 * sim::kMillisecond);
    for (int s = 1; s <= cluster.num_servers(); ++s) {
      ++samples;
      if (!cluster.server(s).IsUp()) ++down_samples;
    }
  }
  const double frac =
      static_cast<double>(down_samples) / static_cast<double>(samples);
  EXPECT_NEAR(frac, markov.SteadyStateDownProbability(), 0.015)
      << down_samples << "/" << samples;
  EXPECT_GT(cluster.chaos().server_crashes().value(), 100u);

  cluster.chaos().StopMarkov();
  EXPECT_FALSE(cluster.chaos().MarkovRunning());
  const uint64_t at_stop = cluster.chaos().faults_injected();
  cluster.sim().RunFor(100 * sim::kSecond);
  EXPECT_EQ(cluster.chaos().faults_injected(), at_stop);
}

// The subsystem's contract: a faulted run is a pure function of
// (config, seed, plan). Both the causal trace and the benchmark-report
// JSON must come out byte-identical across runs.
std::string RunFaultedWorkload() {
  harness::ClusterConfig cfg;
  cfg.tracing = true;
  cfg.seed = 7;
  harness::Cluster cluster(cfg);
  harness::ClientHandle c = cluster.AddClient();
  EXPECT_TRUE(InitClient(cluster, *c).ok());

  chaos::FaultPlan plan;
  plan.CrashServer(1 * sim::kSecond, 2)
      .DegradeLink(2 * sim::kSecond, 0, 1000, 1,
                   net::LinkFault{0.3, 1 * sim::kMillisecond})
      .RestartServer(4 * sim::kSecond, 2)
      .RestoreLink(5 * sim::kSecond, 0, 1000, 1);
  cluster.chaos().Execute(plan);

  chaos::MarkovFaultConfig markov;
  markov.mttf = 20 * sim::kSecond;
  markov.mttr = 2 * sim::kSecond;
  markov.seed = 99;
  cluster.chaos().StartMarkov(markov);

  uint64_t committed = 0;
  for (int i = 0; i < 30; ++i) {
    Result<Lsn> lsn = c->WriteLog(ToBytes("r" + std::to_string(i)));
    if (!lsn.ok()) continue;
    if (ForceAll(cluster, *c, *lsn).ok()) ++committed;
    cluster.sim().RunFor(500 * sim::kMillisecond);
  }
  cluster.chaos().StopMarkov();

  obs::BenchReport report("chaos_determinism");
  report.BeginRow();
  report.SetConfig("seed", 7);
  report.SetMetric("committed", static_cast<double>(committed));
  report.SetMetric("faults_injected",
                   static_cast<double>(cluster.chaos().faults_injected()));
  report.AddSnapshot("", cluster.metrics().Snapshot(cluster.sim().Now()));
  return obs::ChromeTraceJson(cluster.tracer()) + "---\n" +
         report.ToJson();
}

TEST(ChaosDeterminismTest, SameSeedAndPlanExportByteIdenticalArtifacts) {
  const std::string first = RunFaultedWorkload();
  const std::string second = RunFaultedWorkload();
  EXPECT_FALSE(first.empty());
  // Chaos spans made it into the trace.
  EXPECT_NE(first.find("chaos.server_crash"), std::string::npos);
  EXPECT_NE(first.find("chaos.link_degrade"), std::string::npos);
  EXPECT_EQ(first, second);
}

// Same contract with the full flow stack engaged: admission control shed
// replies, client retry backoff (jitter drawn from the client's seeded
// Rng), and adaptive wire windows must all stay pure functions of
// (config, seed, plan) even while Markov faults crash servers.
std::string RunFlowFaultedWorkload() {
  harness::ClusterConfig cfg;
  cfg.tracing = true;
  cfg.seed = 11;
  cfg.server.nvram_bytes = 4000;  // tiny: admission sheds under load
  cfg.server.admission.nvram_shed_fraction = 0.4;
  harness::Cluster cluster(cfg);

  client::LogClientConfig ccfg;
  ccfg.wire.adaptive_window.enabled = true;
  harness::ClientHandle c = cluster.AddClient(ccfg);
  EXPECT_TRUE(InitClient(cluster, *c).ok());

  chaos::MarkovFaultConfig markov;
  markov.mttf = 15 * sim::kSecond;
  markov.mttr = 2 * sim::kSecond;
  markov.seed = 33;
  cluster.chaos().StartMarkov(markov);

  uint64_t committed = 0;
  for (int round = 0; round < 8; ++round) {
    // Burst 8 records then force: the burst overruns the tiny NVRAM
    // admission threshold, so servers shed and the client backs off.
    Lsn last = kNoLsn;
    for (int i = 0; i < 8; ++i) {
      Result<Lsn> lsn = c->WriteLog(ToBytes(std::string(400, 'f')));
      if (lsn.ok()) last = *lsn;
    }
    if (last != kNoLsn && ForceAll(cluster, *c, last).ok()) ++committed;
    cluster.sim().RunFor(500 * sim::kMillisecond);
  }
  cluster.chaos().StopMarkov();

  obs::BenchReport report("chaos_flow_determinism");
  report.BeginRow();
  report.SetConfig("seed", 11);
  report.SetMetric("committed", static_cast<double>(committed));
  report.SetMetric(
      "overloads_received",
      static_cast<double>(c->overloads_received().value()));
  report.SetMetric("backoffs", static_cast<double>(c->backoffs().value()));
  report.AddSnapshot("", cluster.metrics().Snapshot(cluster.sim().Now()));
  return obs::ChromeTraceJson(cluster.tracer()) + "---\n" +
         report.ToJson();
}

TEST(ChaosDeterminismTest, FlowEnabledMarkovRunsAreByteIdentical) {
  const std::string first = RunFlowFaultedWorkload();
  const std::string second = RunFlowFaultedWorkload();
  EXPECT_FALSE(first.empty());
  // The run actually exercised the flow stack.
  EXPECT_NE(first.find("flow.shed"), std::string::npos);
  EXPECT_NE(first.find("flow.backoff"), std::string::npos);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dlog
