#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace dlog::net {
namespace {

Packet MakePacket(NodeId src, NodeId dst, size_t payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload = Bytes(payload_size, 0x42);
  return p;
}

struct TestNode {
  explicit TestNode(sim::Simulator* sim, size_t slots = 8)
      : nic(sim, slots) {
    nic.SetHandler([this](const Packet& p) {
      received.push_back(p);
      nic.CompleteReceive();
    });
  }
  Nic nic;
  std::vector<Packet> received;
};

TEST(NetworkTest, UnicastDelivery) {
  sim::Simulator sim;
  NetworkConfig cfg;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);

  net.Send(MakePacket(1, 2, 100));
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, 1u);
  EXPECT_EQ(b.received[0].payload.size(), 100u);
  EXPECT_TRUE(a.received.empty());
}

TEST(NetworkTest, DeliveryLatencyIsTransmitPlusPropagation) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.bandwidth_bits_per_sec = 10e6;
  cfg.propagation_delay = 50 * sim::kMicrosecond;
  cfg.header_bytes = 0;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);

  sim::Time arrival = 0;
  b.nic.SetHandler([&](const Packet&) {
    arrival = sim.Now();
    b.nic.CompleteReceive();
  });
  // 1250 bytes = 10000 bits at 10 Mbit/s = 1 ms transmit.
  net.Send(MakePacket(1, 2, 1250));
  sim.Run();
  EXPECT_EQ(arrival, sim::kMillisecond + 50 * sim::kMicrosecond);
}

TEST(NetworkTest, SharedMediumSerializesTransmissions) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.bandwidth_bits_per_sec = 10e6;
  cfg.propagation_delay = 0;
  cfg.header_bytes = 0;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);

  std::vector<sim::Time> arrivals;
  b.nic.SetHandler([&](const Packet&) {
    arrivals.push_back(sim.Now());
    b.nic.CompleteReceive();
  });
  net.Send(MakePacket(1, 2, 1250));  // 1 ms each
  net.Send(MakePacket(1, 2, 1250));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::kMillisecond);
  EXPECT_EQ(arrivals[1], 2 * sim::kMillisecond);  // queued on the medium
}

TEST(NetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    NetworkConfig cfg;
    cfg.loss_probability = 0.5;
    cfg.seed = seed;
    Network net(&sim, cfg);
    TestNode a(&sim), b(&sim, 1000);
    net.Attach(1, &a.nic);
    net.Attach(2, &b.nic);
    for (int i = 0; i < 100; ++i) net.Send(MakePacket(1, 2, 10));
    sim.Run();
    return b.received.size();
  };
  const size_t first = run(7);
  EXPECT_EQ(first, run(7));
  EXPECT_GT(first, 20u);
  EXPECT_LT(first, 80u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);
  net.Send(MakePacket(1, 2, 10));
  sim.Run();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(NetworkTest, MulticastReachesAllMembersExceptSender) {
  sim::Simulator sim;
  Network net(&sim, NetworkConfig{});
  TestNode a(&sim), b(&sim), c(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);
  net.Attach(3, &c.nic);
  const NodeId group = kMulticastBase + 1;
  net.JoinGroup(group, 1);
  net.JoinGroup(group, 2);
  net.JoinGroup(group, 3);

  net.Send(MakePacket(1, group, 64));
  sim.Run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  // One transmission on the medium regardless of group size.
  EXPECT_EQ(net.packets_sent().value(), 1u);
  EXPECT_EQ(net.packets_delivered().value(), 2u);
}

TEST(NetworkTest, UnknownDestinationCountsAsLost) {
  sim::Simulator sim;
  Network net(&sim, NetworkConfig{});
  TestNode a(&sim);
  net.Attach(1, &a.nic);
  net.Send(MakePacket(1, 99, 10));
  sim.Run();
  EXPECT_EQ(net.packets_lost().value(), 1u);
}

TEST(NetworkTest, OversizedPayloadDropped) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.mtu_bytes = 100;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);
  net.Send(MakePacket(1, 2, 101));
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.packets_oversized().value(), 1u);
}

TEST(NetworkTest, UtilizationAccounting) {
  sim::Simulator sim;
  NetworkConfig cfg;
  cfg.bandwidth_bits_per_sec = 10e6;
  cfg.propagation_delay = 0;
  cfg.header_bytes = 0;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);
  net.Send(MakePacket(1, 2, 1250));  // 1 ms of a 10 Mbit medium
  sim.RunUntil(10 * sim::kMillisecond);
  EXPECT_NEAR(net.Utilization(), 0.1, 1e-9);
}

// --- Nic ---

TEST(NicTest, RingOverflowDropsBackToBackPackets) {
  sim::Simulator sim;
  Network net(&sim, NetworkConfig{});
  TestNode a(&sim);
  net.Attach(1, &a.nic);

  // A slow endpoint that never frees its two ring slots.
  Nic slow(&sim, 2);
  int handled = 0;
  slow.SetHandler([&](const Packet&) { ++handled; /* never completes */ });
  net.Attach(2, &slow);

  for (int i = 0; i < 5; ++i) net.Send(MakePacket(1, 2, 10));
  sim.Run();
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(slow.overflow_drops().value(), 3u);
  EXPECT_EQ(slow.ring_in_use(), 2u);
}

TEST(NicTest, CompleteReceiveFreesSlot) {
  sim::Simulator sim;
  Nic nic(&sim, 1);
  int handled = 0;
  nic.SetHandler([&](const Packet&) {
    ++handled;
    nic.CompleteReceive();
  });
  Packet p = MakePacket(1, 2, 10);
  nic.Deliver(p);
  nic.Deliver(p);
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(nic.overflow_drops().value(), 0u);
}

TEST(NicTest, DownNicDropsEverything) {
  sim::Simulator sim;
  Nic nic(&sim, 4);
  int handled = 0;
  nic.SetHandler([&](const Packet&) {
    ++handled;
    nic.CompleteReceive();
  });
  nic.SetUp(false);
  nic.Deliver(MakePacket(1, 2, 10));
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(nic.down_drops().value(), 1u);
  nic.SetUp(true);
  nic.Deliver(MakePacket(1, 2, 10));
  EXPECT_EQ(handled, 1);
}

// --- Zero-copy payload lifetime ---

TEST(NetworkTest, MulticastFanOutSharesOnePayloadBuffer) {
  sim::Simulator sim;
  NetworkConfig cfg;
  Network net(&sim, cfg);
  TestNode a(&sim), b(&sim), c(&sim);
  net.Attach(1, &a.nic);
  net.Attach(2, &b.nic);
  net.Attach(3, &c.nic);
  const NodeId group = kMulticastBase + 1;
  net.JoinGroup(group, 2);
  net.JoinGroup(group, 3);

  Packet p = MakePacket(1, group, 64);
  net.Send(p);
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  // Every receiver's packet aliases the sender's buffer: fan-out to N
  // receivers costs zero payload copies, not N.
  EXPECT_EQ(b.received[0].payload.data(), p.payload.data());
  EXPECT_EQ(c.received[0].payload.data(), p.payload.data());
}

TEST(NetworkTest, ReceivedPayloadOutlivesSenderAndNetwork) {
  SharedBytes survivor;
  {
    sim::Simulator sim;
    NetworkConfig cfg;
    Network net(&sim, cfg);
    TestNode a(&sim), b(&sim);
    net.Attach(1, &a.nic);
    net.Attach(2, &b.nic);
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.payload = ToBytes("keepalive payload");
    net.Send(p);
    p = Packet{};  // sender drops its handle before delivery completes
    sim.Run();
    ASSERT_EQ(b.received.size(), 1u);
    survivor = b.received[0].payload;
  }
  // The refcounted buffer keeps the bytes valid after the network, NICs,
  // and simulator are all destroyed (ASan verifies no use-after-free).
  EXPECT_EQ(survivor.view(), "keepalive payload");
}

}  // namespace
}  // namespace dlog::net
