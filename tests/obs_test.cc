// Unit tests for the observability subsystem: tracer semantics, the
// metrics registry and snapshot diffing, the exporters, BenchReport
// JSON, and the trace-driven invariant probes.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_report.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dlog::obs {
namespace {

// --- Tracer ---

TEST(TracerTest, RootChildAndInstantFormATree) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  sim.RunFor(5);
  SpanContext child = tracer.StartSpan("commit", "client-1", root);
  SpanContext instant = tracer.Instant("force.ack", "server-1", child);
  sim.RunFor(5);
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.span_count(), 3u);
  const Span& r = tracer.spans()[0];
  const Span& c = tracer.spans()[1];
  const Span& i = tracer.spans()[2];
  EXPECT_EQ(r.parent, kNoSpan);
  EXPECT_EQ(c.parent, r.id);
  EXPECT_EQ(i.parent, c.id);
  EXPECT_EQ(c.trace, r.trace);
  EXPECT_EQ(i.trace, r.trace);
  EXPECT_FALSE(r.open);
  EXPECT_EQ(r.start, 0);
  EXPECT_EQ(r.end, 10);
  EXPECT_EQ(c.start, 5);
  EXPECT_EQ(c.end, 10);
  // Instants are closed, zero-length events.
  EXPECT_FALSE(i.open);
  EXPECT_EQ(i.start, i.end);
  (void)instant;
}

TEST(TracerTest, InvalidParentDropsSubtree) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext child = tracer.StartSpan("orphan", "n", SpanContext{});
  EXPECT_FALSE(child.valid());
  EXPECT_EQ(tracer.span_count(), 0u);
  // Operations on the invalid context are harmless no-ops.
  tracer.AddArg(child, "k", 1);
  tracer.EndSpan(child);
}

TEST(TracerTest, EndSpanIsIdempotent) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "n");
  sim.RunFor(7);
  tracer.EndSpan(root);
  sim.RunFor(7);
  tracer.EndSpan(root);  // second close must not move the end time
  EXPECT_EQ(tracer.spans()[0].end, 7);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  tracer.set_enabled(false);
  SpanContext root = tracer.StartTrace("txn", "n");
  EXPECT_FALSE(root.valid());
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TracerTest, ContextStackScopes) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  EXPECT_FALSE(tracer.Current().valid());
  SpanContext root = tracer.StartTrace("txn", "n");
  {
    Tracer::Scope scope(&tracer, root);
    EXPECT_EQ(tracer.Current().span, root.span);
    {
      Tracer::Scope inner(&tracer, SpanContext{});
      EXPECT_FALSE(tracer.Current().valid());
    }
    EXPECT_EQ(tracer.Current().span, root.span);
  }
  EXPECT_FALSE(tracer.Current().valid());
  // A null tracer Scope must be safe.
  { Tracer::Scope scope(nullptr, root); }
}

TEST(TracerTest, ArgsAttachInOrder) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "n");
  tracer.AddArg(root, "lsn", 42);
  tracer.AddArg(root, "upto", 7);
  const Span& s = tracer.spans()[0];
  ASSERT_EQ(s.args.size(), 2u);
  EXPECT_EQ(s.args[0].first, "lsn");
  EXPECT_EQ(s.args[0].second, 42u);
  EXPECT_EQ(s.args[1].first, "upto");
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, SnapshotFlattensAllKinds) {
  sim::Simulator sim;
  sim::Counter counter;
  sim::Gauge gauge;
  sim::TimeWeightedGauge twg;
  sim::Histogram hist;
  MetricsRegistry registry;
  registry.RegisterCounter("server-1/log/records_written", &counter);
  registry.RegisterGauge("server-1/net/ring_slots", &gauge);
  registry.RegisterTimeWeightedGauge("server-1/nvram/occupancy_bytes",
                                     &twg);
  registry.RegisterHistogram("client-1/log/force_latency_ms", &hist);
  EXPECT_EQ(registry.size(), 4u);

  counter.Increment(3);
  gauge.Set(5);
  gauge.Set(2);
  twg.Set(0, 10.0);
  twg.Set(9, 0.0);
  hist.Add(1.0);
  hist.Add(3.0);

  MetricsSnapshot snap = registry.Snapshot(/*now=*/10);
  EXPECT_DOUBLE_EQ(snap.Get("server-1/log/records_written"), 3.0);
  EXPECT_DOUBLE_EQ(snap.Get("server-1/net/ring_slots"), 2.0);
  EXPECT_DOUBLE_EQ(snap.Get("server-1/net/ring_slots/max"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Get("server-1/nvram/occupancy_bytes/avg"), 9.0);
  EXPECT_DOUBLE_EQ(snap.Get("server-1/nvram/occupancy_bytes/max"), 10.0);
  EXPECT_DOUBLE_EQ(snap.Get("client-1/log/force_latency_ms/count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.Get("client-1/log/force_latency_ms/mean"), 2.0);
  EXPECT_DOUBLE_EQ(snap.Get("client-1/log/force_latency_ms/max"), 3.0);
}

TEST(MetricsRegistryTest, DiffGivesPerIntervalDeltas) {
  sim::Counter counter;
  MetricsRegistry registry;
  registry.RegisterCounter("c", &counter);
  counter.Increment(5);
  MetricsSnapshot before = registry.Snapshot(0);
  counter.Increment(7);
  MetricsSnapshot after = registry.Snapshot(100);
  MetricsSnapshot delta = after.Diff(before);
  EXPECT_DOUBLE_EQ(delta.Get("c"), 7.0);
}

TEST(MetricsRegistryTest, UnregisterPrefixDropsComponent) {
  sim::Counter a, b;
  MetricsRegistry registry;
  registry.RegisterCounter("client-1/log/x", &a);
  registry.RegisterCounter("server-1/log/y", &b);
  registry.UnregisterPrefix("client-1/");
  std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "server-1/log/y");
}

TEST(MetricsRegistryTest, ReRegisteringReplaces) {
  sim::Counter old_counter, new_counter;
  MetricsRegistry registry;
  registry.RegisterCounter("c", &old_counter);
  new_counter.Increment(9);
  registry.RegisterCounter("c", &new_counter);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_DOUBLE_EQ(registry.Snapshot(0).Get("c"), 9.0);
}

TEST(MetricsSnapshotTest, ToTextIsSortedAndDeterministic) {
  sim::Counter a, b;
  MetricsRegistry registry;
  registry.RegisterCounter("z/second", &b);
  registry.RegisterCounter("a/first", &a);
  a.Increment(1);
  b.Increment(2);
  std::string text = registry.Snapshot(0).ToText();
  EXPECT_EQ(text, "a/first 1\nz/second 2\n");
}

// --- Exporters ---

TEST(ExportTest, ChromeTraceJsonShape) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  tracer.AddArg(root, "txn", 1);
  sim.RunFor(1500);  // 1.5 us
  SpanContext send = tracer.StartSpan("wire.send", "client-1", root);
  tracer.EndSpan(root);
  std::string json = ChromeTraceJson(tracer);

  // Structure and both spans present; the wire.send is still open.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"txn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wire.send\""), std::string::npos);
  EXPECT_NE(json.find("\"open\":1"), std::string::npos);
  // Node becomes a named thread.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("client-1"), std::string::npos);
  // Microsecond timestamps keep nanosecond precision: 1500 ns = 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  (void)send;
}

TEST(ExportTest, TextTimelineOneLinePerSpan) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  tracer.AddArg(root, "txn", 3);
  sim.RunFor(2000);
  tracer.EndSpan(root);
  std::string text = TextTimeline(tracer);
  EXPECT_NE(text.find("client-1 txn"), std::string::npos);
  EXPECT_NE(text.find("txn=3"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(ExportTest, IdenticalRunsExportIdenticalBytes) {
  auto run = []() {
    sim::Simulator sim;
    Tracer tracer(&sim);
    SpanContext root = tracer.StartTrace("txn", "n");
    sim.RunFor(10);
    SpanContext child = tracer.StartSpan("commit", "n", root);
    sim.RunFor(5);
    tracer.EndSpan(child);
    tracer.EndSpan(root);
    return ChromeTraceJson(tracer);
  };
  EXPECT_EQ(run(), run());
}

// --- exporter edge cases ---

TEST(ExportTest, EmptyTraceExportsValidSkeletons) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  const std::string plain = ChromeTraceJson(tracer);
  EXPECT_EQ(plain, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
  // The colored export always announces its critical-path lane, even
  // with nothing to put in it.
  const std::string colored = ChromeTraceJsonColored(tracer, {});
  EXPECT_NE(colored.find("\"critical-path\""), std::string::npos);
  EXPECT_EQ(colored.substr(colored.size() - 3), "]}\n");
  EXPECT_EQ(TextTimeline(tracer), "");
}

TEST(ExportTest, JsonSpecialCharactersAreEscaped) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("a\"b\\c", "node\n1");
  sim.RunFor(10);
  tracer.EndSpan(root);
  for (const std::string& json :
       {ChromeTraceJson(tracer),
        ChromeTraceJsonColored(tracer, ExtractCriticalPaths(tracer))}) {
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
    EXPECT_NE(json.find("node\\u000a1"), std::string::npos);
    // No raw quote from the name survives to break the JSON string.
    EXPECT_EQ(json.find("a\"b"), std::string::npos);
  }
}

TEST(ExportTest, ZeroDurationSpansExportZeroDur) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "n");
  tracer.Instant("force.ack", "s", root);
  tracer.EndSpan(root);  // closes at its start time: zero duration
  const std::vector<CriticalPath> paths = ExtractCriticalPaths(tracer);
  const std::string json = ChromeTraceJsonColored(tracer, paths);
  EXPECT_NE(json.find("\"dur\":0.000"), std::string::npos);
}

TEST(ExportTest, ColoredExportByteIdenticalAcrossReruns) {
  auto run = []() {
    sim::Simulator sim;
    Tracer tracer(&sim);
    SpanContext root = tracer.StartTrace("txn", "client-1");
    sim.RunFor(10);
    SpanContext send = tracer.StartSpan("wire.send", "client-1", root);
    sim.RunFor(5);
    tracer.Instant("force.ack", "server-1", send);
    tracer.EndSpan(send);
    sim.RunFor(3);
    tracer.EndSpan(root);
    return ChromeTraceJsonColored(tracer, ExtractCriticalPaths(tracer));
  };
  const std::string first = run();
  EXPECT_NE(first.find("\"cname\""), std::string::npos);
  EXPECT_NE(first.find("dlog.critical"), std::string::npos);
  EXPECT_EQ(first, run());
}

// --- BenchReport ---

TEST(BenchReportTest, DeterministicJson) {
  BenchReport report("E0");
  report.BeginRow();
  report.SetConfig("servers", 3.0);
  report.SetConfig("design", "grouped");
  report.SetMetric("tps", 512.5);
  report.BeginRow();
  report.SetConfig("servers", 4.0);
  report.SetMetric("tps", 600.0);
  EXPECT_EQ(report.rows(), 2u);
  EXPECT_EQ(report.ToJson(),
            "{\"experiment\":\"E0\",\"rows\":["
            "{\"config\":{\"design\":\"grouped\",\"servers\":3},"
            "\"metrics\":{\"tps\":512.5}},"
            "{\"config\":{\"servers\":4},\"metrics\":{\"tps\":600}}]}\n");
}

TEST(BenchReportTest, AddSnapshotPrefixesKeys) {
  sim::Counter c;
  c.Increment(4);
  MetricsRegistry registry;
  registry.RegisterCounter("server-1/log/forces", &c);
  BenchReport report("E0");
  report.BeginRow();
  report.AddSnapshot("final/", registry.Snapshot(0));
  EXPECT_NE(report.ToJson().find("\"final/server-1/log/forces\":4"),
            std::string::npos);
}

// --- Probes ---

TEST(ProbesTest, ForceAckQuorumHoldsWithEnoughAcks) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  SpanContext force = tracer.StartSpan("ForceLog", "client-1", root);
  tracer.Instant("force.ack", "server-1", force);
  tracer.Instant("force.ack", "server-2", force);
  sim.RunFor(10);
  tracer.EndSpan(force);
  tracer.EndSpan(root);
  EXPECT_TRUE(CheckForceAckQuorum(tracer, 2).empty());
  // Three distinct servers never acked.
  EXPECT_FALSE(CheckForceAckQuorum(tracer, 3).empty());
}

TEST(ProbesTest, ForceAckQuorumIgnoresOpenForces) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  tracer.StartSpan("ForceLog", "client-1", root);  // never completes
  EXPECT_TRUE(CheckForceAckQuorum(tracer, 2).empty());
}

TEST(ProbesTest, ForceAckQuorumCountsDistinctServers) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  SpanContext force = tracer.StartSpan("ForceLog", "client-1", root);
  // Two acks from the same server are one vote, not two.
  tracer.Instant("force.ack", "server-1", force);
  tracer.Instant("force.ack", "server-1", force);
  tracer.EndSpan(force);
  tracer.EndSpan(root);
  EXPECT_FALSE(CheckForceAckQuorum(tracer, 2).empty());
}

SpanContext BufferInstant(Tracer* tracer, const std::string& server,
                          SpanContext parent, uint64_t client, uint64_t lsn,
                          uint64_t epoch) {
  SpanContext i = tracer->Instant("nvram.buffer", server, parent);
  tracer->AddArg(i, "client", client);
  tracer->AddArg(i, "lsn", lsn);
  tracer->AddArg(i, "epoch", epoch);
  return i;
}

TEST(ProbesTest, LsnMonotonicAcceptsLegalStreams) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  BufferInstant(&tracer, "server-1", root, 1, 1, 1);
  BufferInstant(&tracer, "server-1", root, 1, 2, 1);
  // New epoch may restart lsns (post-crash resend).
  BufferInstant(&tracer, "server-1", root, 1, 2, 2);
  // A different server has its own stream.
  BufferInstant(&tracer, "server-2", root, 1, 1, 1);
  tracer.EndSpan(root);
  EXPECT_TRUE(CheckLsnMonotonic(tracer).empty());
}

TEST(ProbesTest, LsnMonotonicFlagsRegression) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "client-1");
  BufferInstant(&tracer, "server-1", root, 1, 5, 1);
  BufferInstant(&tracer, "server-1", root, 1, 5, 1);  // repeat, same epoch
  tracer.EndSpan(root);
  EXPECT_FALSE(CheckLsnMonotonic(tracer).empty());
}

TEST(ProbesTest, SpanTreeConnectedOnWellFormedTrace) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  SpanContext root = tracer.StartTrace("txn", "n");
  SpanContext child = tracer.StartSpan("commit", "n", root);
  tracer.EndSpan(child);
  tracer.EndSpan(root);
  EXPECT_TRUE(CheckSpanTreeConnected(tracer).empty());
  EXPECT_TRUE(RunAllProbes(tracer, 0).empty());
}

}  // namespace
}  // namespace dlog::obs
