#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "server/log_server.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "wire/connection.h"
#include "wire/messages.h"

namespace dlog::server {
namespace {

constexpr ClientId kClient = 9;

LogRecord Rec(Lsn lsn, Epoch epoch, bool present = true,
              std::string_view data = "data") {
  LogRecord r;
  r.lsn = lsn;
  r.epoch = epoch;
  r.present = present;
  r.data = ToBytes(data);
  return r;
}

/// Drives a LogServer with raw protocol messages, recording everything
/// the server sends back.
struct RawDriver {
  explicit RawDriver(LogServerConfig server_cfg = {}) {
    server_cfg.node_id = 1;
    network = std::make_unique<net::Network>(&sim, net::NetworkConfig{});
    server = std::make_unique<LogServer>(&sim, server_cfg);
    server->AttachNetwork(network.get());

    cpu = std::make_unique<sim::Cpu>(&sim, 100.0);
    nic = std::make_unique<net::Nic>(&sim, 64);
    network->Attach(99, nic.get());
    endpoint = std::make_unique<wire::Endpoint>(&sim, cpu.get(), 99,
                                                wire::WireConfig{});
    endpoint->AttachNetwork(network.get(), nic.get());
    conn = endpoint->Connect(1);
    conn->SetMessageHandler([this](const SharedBytes& payload) {
      Result<wire::Envelope> env = wire::DecodeEnvelope(payload);
      if (env.ok()) inbox.push_back(*env);
    });
    sim.Run();
  }

  void Send(Bytes message) {
    conn->Send(std::move(message));
    // Bounded run: long-period timers (e.g., a 60 s flush interval used
    // by some tests) must stay pending.
    sim.RunFor(2 * sim::kSecond);
  }

  /// Sends a WriteLog/ForceLog batch.
  void SendBatch(wire::MessageType type, Epoch epoch,
                 std::vector<LogRecord> records) {
    wire::RecordBatch batch;
    batch.client = kClient;
    batch.epoch = epoch;
    batch.records = std::move(records);
    Send(wire::EncodeRecordBatch(type, batch));
  }

  /// Last message of the given type, if any.
  const wire::Envelope* Last(wire::MessageType type) const {
    for (auto it = inbox.rbegin(); it != inbox.rend(); ++it) {
      if (it->type == type) return &*it;
    }
    return nullptr;
  }

  int CountOf(wire::MessageType type) const {
    int n = 0;
    for (const auto& env : inbox) {
      if (env.type == type) ++n;
    }
    return n;
  }

  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<LogServer> server;
  std::unique_ptr<sim::Cpu> cpu;
  std::unique_ptr<net::Nic> nic;
  std::unique_ptr<wire::Endpoint> endpoint;
  wire::Connection* conn = nullptr;
  std::vector<wire::Envelope> inbox;
  uint64_t next_rpc = 1;
};

TEST(LogServerTest, ForceLogAcknowledgedWithNewHighLsn) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  const wire::Envelope* ack = d.Last(wire::MessageType::kNewHighLsn);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(wire::DecodeNewHighLsn(ack->body)->new_high_lsn, 2u);
  EXPECT_EQ(d.server->records_written().value(), 2u);
}

TEST(LogServerTest, WriteLogIsNotAcknowledged) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kWriteLog, 1, {Rec(1, 1)});
  EXPECT_EQ(d.Last(wire::MessageType::kNewHighLsn), nullptr);
  EXPECT_EQ(d.server->records_written().value(), 1u);
}

TEST(LogServerTest, GapTriggersMissingInterval) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  // Records 3-4 lost; 5-6 arrive.
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(5, 1), Rec(6, 1)});
  const wire::Envelope* miss = d.Last(wire::MessageType::kMissingInterval);
  ASSERT_NE(miss, nullptr);
  auto m = wire::DecodeMissingInterval(miss->body);
  EXPECT_EQ(m->low, 3u);
  EXPECT_EQ(m->high, 4u);
  // The force ack reports only the contiguous prefix.
  auto ack = wire::DecodeNewHighLsn(
      d.Last(wire::MessageType::kNewHighLsn)->body);
  EXPECT_EQ(ack->new_high_lsn, 2u);
}

TEST(LogServerTest, ResendFillsGapAndDrainsPending) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1)});
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(4, 1), Rec(5, 1)});
  // Resend the missing records.
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(2, 1), Rec(3, 1)});
  auto ack = wire::DecodeNewHighLsn(
      d.Last(wire::MessageType::kNewHighLsn)->body);
  EXPECT_EQ(ack->new_high_lsn, 5u);
  EXPECT_EQ(d.server->IntervalsOf(kClient),
            (IntervalList{{1, 1, 5}}));
}

TEST(LogServerTest, NewIntervalSkipsGap) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1)});
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(4, 1), Rec(5, 1)});
  // The skipped records live elsewhere: start a new interval at 4.
  d.Send(wire::EncodeNewInterval({kClient, 1, 4}));
  EXPECT_EQ(d.server->IntervalsOf(kClient),
            (IntervalList{{1, 1, 1}, {1, 4, 5}}));
}

TEST(LogServerTest, ProactiveNewIntervalAcceptsJump) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1)});
  d.Send(wire::EncodeNewInterval({kClient, 1, 10}));
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(10, 1), Rec(11, 1)});
  EXPECT_EQ(d.server->IntervalsOf(kClient),
            (IntervalList{{1, 1, 1}, {1, 10, 11}}));
  EXPECT_EQ(d.CountOf(wire::MessageType::kMissingInterval), 0);
}

TEST(LogServerTest, DuplicateBatchIsIdempotent) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  EXPECT_EQ(d.server->records_written().value(), 2u);
  EXPECT_EQ(d.server->IntervalsOf(kClient), (IntervalList{{1, 1, 2}}));
}

TEST(LogServerTest, IntervalListRpc) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  d.Send(wire::EncodeIntervalListReq({kClient}, d.next_rpc++));
  const wire::Envelope* resp = d.Last(wire::MessageType::kIntervalListResp);
  ASSERT_NE(resp, nullptr);
  auto m = wire::DecodeIntervalListResp(resp->body);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->intervals, (IntervalList{{1, 1, 2}}));
}

TEST(LogServerTest, IntervalListForUnknownClientIsEmpty) {
  RawDriver d;
  d.Send(wire::EncodeIntervalListReq({1234}, d.next_rpc++));
  auto m = wire::DecodeIntervalListResp(
      d.Last(wire::MessageType::kIntervalListResp)->body);
  EXPECT_EQ(m->status, wire::RpcStatus::kOk);
  EXPECT_TRUE(m->intervals.empty());
}

TEST(LogServerTest, ReadLogForwardPacksFollowingRecords) {
  RawDriver d;
  std::vector<LogRecord> records;
  for (Lsn l = 1; l <= 10; ++l) records.push_back(Rec(l, 1));
  d.SendBatch(wire::MessageType::kForceLog, 1, records);

  d.Send(wire::EncodeReadLogReq(wire::MessageType::kReadLogForwardReq,
                                {kClient, 4}, d.next_rpc++));
  auto m = wire::DecodeReadLogResp(
      d.Last(wire::MessageType::kReadLogResp)->body);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->status, wire::RpcStatus::kOk);
  ASSERT_GE(m->records.size(), 2u);
  EXPECT_EQ(m->records[0].lsn, 4u);
  EXPECT_EQ(m->records[1].lsn, 5u);  // forward fill
}

TEST(LogServerTest, ReadLogBackwardPacksPrecedingRecords) {
  RawDriver d;
  std::vector<LogRecord> records;
  for (Lsn l = 1; l <= 10; ++l) records.push_back(Rec(l, 1));
  d.SendBatch(wire::MessageType::kForceLog, 1, records);

  d.Send(wire::EncodeReadLogReq(wire::MessageType::kReadLogBackwardReq,
                                {kClient, 5}, d.next_rpc++));
  auto m = wire::DecodeReadLogResp(
      d.Last(wire::MessageType::kReadLogResp)->body);
  ASSERT_TRUE(m.ok());
  ASSERT_GE(m->records.size(), 2u);
  EXPECT_EQ(m->records[0].lsn, 5u);
  EXPECT_EQ(m->records[1].lsn, 4u);  // backward fill
}

TEST(LogServerTest, ReadOfUnstoredLsnIsNotFound) {
  RawDriver d;
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1)});
  d.Send(wire::EncodeReadLogReq(wire::MessageType::kReadLogForwardReq,
                                {kClient, 7}, d.next_rpc++));
  auto m = wire::DecodeReadLogResp(
      d.Last(wire::MessageType::kReadLogResp)->body);
  EXPECT_EQ(m->status, wire::RpcStatus::kNotFound);
}

TEST(LogServerTest, CopyLogInstallCopiesFlow) {
  RawDriver d;
  std::vector<LogRecord> records;
  for (Lsn l = 1; l <= 9; ++l) records.push_back(Rec(l, 3));
  d.SendBatch(wire::MessageType::kForceLog, 3, records);

  // Stage copies with the new epoch 4.
  wire::CopyLogReq creq;
  creq.client = kClient;
  creq.epoch = 4;
  creq.records = {Rec(9, 4, true, "copy"), Rec(10, 4, false, "")};
  d.Send(wire::EncodeCopyLogReq(creq, d.next_rpc++));
  auto cresp = wire::DecodeCopyLogResp(
      d.Last(wire::MessageType::kCopyLogResp)->body);
  EXPECT_EQ(cresp->status, wire::RpcStatus::kOk);
  // Not yet visible.
  EXPECT_EQ(d.server->IntervalsOf(kClient), (IntervalList{{3, 1, 9}}));

  d.Send(wire::EncodeInstallCopiesReq({kClient, 4}, d.next_rpc++));
  auto iresp = wire::DecodeInstallCopiesResp(
      d.Last(wire::MessageType::kInstallCopiesResp)->body);
  EXPECT_EQ(iresp->status, wire::RpcStatus::kOk);
  EXPECT_EQ(d.server->IntervalsOf(kClient),
            (IntervalList{{3, 1, 9}, {4, 9, 10}}));
}

TEST(LogServerTest, MismatchedCopyEpochRejected) {
  RawDriver d;
  wire::CopyLogReq creq;
  creq.client = kClient;
  creq.epoch = 4;
  creq.records = {Rec(9, 5)};  // record epoch != call epoch
  d.Send(wire::EncodeCopyLogReq(creq, d.next_rpc++));
  auto resp = wire::DecodeCopyLogResp(
      d.Last(wire::MessageType::kCopyLogResp)->body);
  EXPECT_EQ(resp->status, wire::RpcStatus::kError);
}

TEST(LogServerTest, LoadSheddingIgnoresWritesWhenNvramFull) {
  LogServerConfig cfg;
  cfg.nvram_bytes = 600;  // tiny group buffer
  cfg.admission.enabled = false;  // legacy behavior: shed silently
  cfg.admission.nvram_shed_fraction = 0.5;
  cfg.flush_interval = 60 * sim::kSecond;  // no flushing: stay full
  RawDriver d(cfg);

  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(1, 1, true, std::string(300, 'x'))});
  const uint64_t written = d.server->records_written().value();
  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(2, 1, true, std::string(300, 'y'))});
  // Second write shed silently: no ack progress, no new record, and no
  // Overloaded reply (admission control is off).
  EXPECT_EQ(d.server->records_written().value(), written);
  EXPECT_GT(d.server->writes_shed().value(), 0u);
  EXPECT_EQ(d.CountOf(wire::MessageType::kOverloaded), 0);
}

TEST(LogServerTest, AdmissionRejectsWithOverloadedReplyAtThreshold) {
  LogServerConfig cfg;
  cfg.nvram_bytes = 600;
  cfg.admission.nvram_shed_fraction = 0.5;
  cfg.flush_interval = 60 * sim::kSecond;  // no flushing: stay full
  RawDriver d(cfg);

  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(1, 1, true, std::string(300, 'x'))});
  const uint64_t written = d.server->records_written().value();
  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(2, 1, true, std::string(300, 'y'))});

  // Past the occupancy threshold the batch is rejected with an explicit
  // Overloaded reply carrying a retry-after hint and the stored high LSN.
  EXPECT_EQ(d.server->records_written().value(), written);
  EXPECT_GT(d.server->writes_shed().value(), 0u);
  EXPECT_EQ(d.server->admission().overload_replies().value(), 1u);
  const wire::Envelope* shed = d.Last(wire::MessageType::kOverloaded);
  ASSERT_NE(shed, nullptr);
  auto msg = wire::DecodeOverloaded(shed->body);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->client, kClient);
  EXPECT_EQ(msg->shed_type,
            static_cast<uint8_t>(wire::MessageType::kForceLog));
  EXPECT_EQ(msg->high_lsn, 1u);  // the server stored record 1
  EXPECT_GT(msg->retry_after_us, 0u);
}

TEST(LogServerTest, AdmissionRecoversAfterDrain) {
  LogServerConfig cfg;
  cfg.nvram_bytes = 600;
  cfg.admission.nvram_shed_fraction = 0.5;
  // Each Send() runs the sim for 2 s, so the first flush (t=3 s) lands
  // between the shed second batch and the retry.
  cfg.flush_interval = 3 * sim::kSecond;
  RawDriver d(cfg);

  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(1, 1, true, std::string(300, 'x'))});
  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(2, 1, true, std::string(300, 'y'))});
  EXPECT_GT(d.server->writes_shed().value(), 0u);

  // By the retry the flush has drained the buffer and admission opens
  // again: the retried record is accepted and force-acknowledged.
  const uint64_t shed_before = d.server->writes_shed().value();
  d.SendBatch(wire::MessageType::kForceLog, 1,
              {Rec(2, 1, true, std::string(300, 'y'))});
  EXPECT_EQ(d.server->writes_shed().value(), shed_before);
  const wire::Envelope* ack = d.Last(wire::MessageType::kNewHighLsn);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(wire::DecodeNewHighLsn(ack->body)->new_high_lsn, 2u);
}

TEST(LogServerTest, GeneratorCellsSurviveCrash) {
  RawDriver d;
  d.Send(wire::EncodeGenWriteReq({kClient, 42}, d.next_rpc++));
  auto wr = wire::DecodeGenWriteResp(
      d.Last(wire::MessageType::kGenWriteResp)->body);
  EXPECT_EQ(wr->status, wire::RpcStatus::kOk);

  d.server->Crash();
  d.sim.RunFor(10 * sim::kMillisecond);
  d.server->Restart();

  EXPECT_EQ(d.server->generator_cell(kClient)->Read(), 42u);
}

TEST(LogServerTest, CrashRestartRebuildsFromNvramAndDisk) {
  LogServerConfig cfg;
  cfg.disk.track_bytes = 2048;
  cfg.flush_interval = 10 * sim::kMillisecond;
  RawDriver d(cfg);

  std::vector<LogRecord> records;
  for (Lsn l = 1; l <= 40; ++l) {
    records.push_back(Rec(l, 1, true, std::string(100, 'a')));
  }
  // Send in chunks so several tracks fill.
  for (size_t i = 0; i < records.size(); i += 8) {
    d.SendBatch(
        wire::MessageType::kForceLog, 1,
        std::vector<LogRecord>(records.begin() + i,
                               records.begin() + i + 8));
  }
  d.sim.RunFor(sim::kSecond);  // allow flushes
  ASSERT_GT(d.server->tracks_written().value(), 1u);

  d.server->Crash();
  d.sim.RunFor(100 * sim::kMillisecond);
  d.server->Restart();

  // Everything is recovered, in order, as one interval.
  EXPECT_EQ(d.server->IntervalsOf(kClient), (IntervalList{{1, 1, 40}}));
  std::vector<LogRecord> recovered = d.server->RecordsOf(kClient);
  ASSERT_EQ(recovered.size(), 40u);
  for (Lsn l = 1; l <= 40; ++l) {
    EXPECT_EQ(recovered[l - 1].lsn, l);
    EXPECT_EQ(recovered[l - 1].data, ToBytes(std::string(100, 'a')));
  }
}

TEST(LogServerTest, UnflushedNvramRecordsSurviveCrash) {
  LogServerConfig cfg;
  cfg.flush_interval = 60 * sim::kSecond;  // records stay in NVRAM
  RawDriver d(cfg);
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1), Rec(2, 1)});
  EXPECT_EQ(d.server->tracks_written().value(), 0u);  // never hit disk

  d.server->Crash();
  d.sim.RunFor(10 * sim::kMillisecond);
  d.server->Restart();
  EXPECT_EQ(d.server->IntervalsOf(kClient), (IntervalList{{1, 1, 2}}));
}

TEST(LogServerTest, DownServerIgnoresTraffic) {
  RawDriver d;
  d.server->Crash();
  d.SendBatch(wire::MessageType::kForceLog, 1, {Rec(1, 1)});
  EXPECT_EQ(d.server->records_written().value(), 0u);
  EXPECT_EQ(d.Last(wire::MessageType::kNewHighLsn), nullptr);
}

TEST(LogServerTest, WriteOnceDiskModeWorks) {
  LogServerConfig cfg;
  cfg.disk.write_once = true;  // optical storage (Section 4.3)
  cfg.disk.track_bytes = 2048;
  cfg.flush_interval = 10 * sim::kMillisecond;
  RawDriver d(cfg);
  for (Lsn l = 1; l <= 30; ++l) {
    d.SendBatch(wire::MessageType::kForceLog, 1,
                {Rec(l, 1, true, std::string(100, 'w'))});
  }
  d.sim.RunFor(sim::kSecond);
  EXPECT_GT(d.server->tracks_written().value(), 0u);
  d.server->Crash();
  d.sim.RunFor(10 * sim::kMillisecond);
  d.server->Restart();
  EXPECT_EQ(d.server->IntervalsOf(kClient), (IntervalList{{1, 1, 30}}));
}

}  // namespace
}  // namespace dlog::server
